#include "src/graph/digraph.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace digg::graph {

namespace {

// Debug post-condition of build()/from_parts(): every adjacency row is
// strictly increasing (sorted + deduplicated). The hybrid visibility sets
// (src/digg/hybrid_set.h) merge fans()/friends() spans linearly and would
// silently drop elements on unsorted input, so the invariant is asserted at
// the single place rows are materialised instead of defended per consumer.
[[maybe_unused]] void debug_assert_rows_sorted(
    const std::vector<std::size_t>& offsets, const std::vector<NodeId>& ids) {
#ifndef NDEBUG
  for (std::size_t u = 0; u + 1 < offsets.size(); ++u) {
    for (std::size_t i = offsets[u] + 1; i < offsets[u + 1]; ++i) {
      assert(ids[i - 1] < ids[i] &&
             "Digraph: adjacency row not strictly increasing");
    }
  }
#else
  (void)offsets;
  (void)ids;
#endif
}

}  // namespace

std::span<const NodeId> Digraph::friends(NodeId u) const {
  if (u >= node_count()) throw std::out_of_range("Digraph::friends: bad node");
  return {out_targets_.data() + out_offsets_[u],
          out_offsets_[u + 1] - out_offsets_[u]};
}

std::span<const NodeId> Digraph::fans(NodeId u) const {
  if (u >= node_count()) throw std::out_of_range("Digraph::fans: bad node");
  return {in_sources_.data() + in_offsets_[u],
          in_offsets_[u + 1] - in_offsets_[u]};
}

bool Digraph::has_edge(NodeId u, NodeId v) const {
  const auto row = friends(u);
  return std::binary_search(row.begin(), row.end(), v);
}

std::vector<std::uint32_t> Digraph::out_degrees() const {
  std::vector<std::uint32_t> out(node_count());
  for (std::size_t u = 0; u < out.size(); ++u)
    out[u] = static_cast<std::uint32_t>(out_offsets_[u + 1] - out_offsets_[u]);
  return out;
}

std::vector<std::uint32_t> Digraph::in_degrees() const {
  std::vector<std::uint32_t> out(node_count());
  for (std::size_t u = 0; u < out.size(); ++u)
    out[u] = static_cast<std::uint32_t>(in_offsets_[u + 1] - in_offsets_[u]);
  return out;
}

namespace {

void check_csr(const std::vector<std::size_t>& offsets,
               const std::vector<NodeId>& ids, std::size_t n,
               const char* what) {
  if (offsets.size() != n + 1 || offsets.front() != 0 ||
      offsets.back() != ids.size())
    throw std::invalid_argument(std::string("Digraph::from_parts: bad ") +
                                what + " offsets");
  for (std::size_t u = 0; u < n; ++u) {
    if (offsets[u] > offsets[u + 1])
      throw std::invalid_argument(std::string("Digraph::from_parts: ") + what +
                                  " offsets not monotone");
    for (std::size_t i = offsets[u]; i < offsets[u + 1]; ++i) {
      if (ids[i] >= n)
        throw std::invalid_argument(std::string("Digraph::from_parts: ") +
                                    what + " id out of range");
      if (i > offsets[u] && ids[i] <= ids[i - 1])
        throw std::invalid_argument(std::string("Digraph::from_parts: ") +
                                    what + " row not strictly sorted");
    }
  }
}

}  // namespace

Digraph Digraph::from_parts(std::vector<std::size_t> out_offsets,
                            std::vector<NodeId> out_targets,
                            std::vector<std::size_t> in_offsets,
                            std::vector<NodeId> in_sources) {
  if (out_offsets.empty() || in_offsets.size() != out_offsets.size())
    throw std::invalid_argument("Digraph::from_parts: offset size mismatch");
  if (out_targets.size() != in_sources.size())
    throw std::invalid_argument("Digraph::from_parts: edge count mismatch");
  const std::size_t n = out_offsets.size() - 1;
  check_csr(out_offsets, out_targets, n, "out");
  check_csr(in_offsets, in_sources, n, "in");
  Digraph g;
  g.out_offsets_ = std::move(out_offsets);
  g.out_targets_ = std::move(out_targets);
  g.in_offsets_ = std::move(in_offsets);
  g.in_sources_ = std::move(in_sources);
  return g;
}

DigraphBuilder::DigraphBuilder(std::size_t node_count)
    : node_count_(node_count) {}

void DigraphBuilder::ensure_nodes(std::size_t count) {
  node_count_ = std::max(node_count_, count);
}

void DigraphBuilder::add_follow(NodeId u, NodeId v) {
  if (u == v) throw std::invalid_argument("DigraphBuilder: self-loop");
  ensure_nodes(static_cast<std::size_t>(std::max(u, v)) + 1);
  edges_.emplace_back(u, v);
}

Digraph DigraphBuilder::build() const {
  const std::size_t n = node_count_;
  std::vector<std::pair<NodeId, NodeId>> edges = edges_;
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Digraph g;
  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : edges) {
    ++g.out_offsets_[u + 1];
    ++g.in_offsets_[v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) {
    g.out_offsets_[i] += g.out_offsets_[i - 1];
    g.in_offsets_[i] += g.in_offsets_[i - 1];
  }
  g.out_targets_.resize(edges.size());
  g.in_sources_.resize(edges.size());
  std::vector<std::size_t> out_fill(g.out_offsets_.begin(),
                                    g.out_offsets_.end() - 1);
  std::vector<std::size_t> in_fill(g.in_offsets_.begin(),
                                   g.in_offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.out_targets_[out_fill[u]++] = v;
    g.in_sources_[in_fill[v]++] = u;
  }
  // Edges were sorted by (u, v), so each out-row is already sorted by target;
  // in-rows are filled in (u, v) order, hence sorted by source. Debug builds
  // verify both directions — arbitrary insertion order must normalize here.
  debug_assert_rows_sorted(g.out_offsets_, g.out_targets_);
  debug_assert_rows_sorted(g.in_offsets_, g.in_sources_);
  return g;
}

}  // namespace digg::graph
