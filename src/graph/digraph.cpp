#include "src/graph/digraph.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace digg::graph {

namespace {

// Post-condition of build(): every adjacency row is strictly increasing
// (sorted + deduplicated). The hybrid visibility sets (src/digg/hybrid_set.h)
// consume fans()/friends() spans through HybridSet::union_span, whose SIMD
// merge kernels assume strictly-increasing input and would silently drop or
// misplace elements otherwise — union_span itself only asserts in debug
// builds. So the invariant is enforced unconditionally at the single place
// rows are materialised (one predictable O(E) scan over columns build() just
// wrote, ~free next to the counting sort) instead of defended per consumer.
// from_parts/from_views reach the same guarantee through check_csr below.
void check_rows_sorted(std::span<const std::size_t> offsets,
                       std::span<const NodeId> ids, const char* what) {
  for (std::size_t u = 0; u + 1 < offsets.size(); ++u) {
    for (std::size_t i = offsets[u] + 1; i < offsets[u + 1]; ++i) {
      if (ids[i - 1] >= ids[i])
        throw std::logic_error(
            std::string("Digraph::build: ") + what + " row " +
            std::to_string(u) +
            " not strictly increasing (would corrupt union_span)");
    }
  }
}

}  // namespace

void Digraph::bind_owned() {
  out_offsets_ = own_out_offsets_;
  out_targets_ = own_out_targets_;
  in_offsets_ = own_in_offsets_;
  in_sources_ = own_in_sources_;
  borrowed_ = false;
}

Digraph& Digraph::operator=(const Digraph& other) {
  if (this == &other) return *this;
  if (other.borrowed_) {
    // Borrowed graphs share the caller-owned columns; copying the spans is
    // the whole copy.
    own_out_offsets_.clear();
    own_out_targets_.clear();
    own_in_offsets_.clear();
    own_in_sources_.clear();
    out_offsets_ = other.out_offsets_;
    out_targets_ = other.out_targets_;
    in_offsets_ = other.in_offsets_;
    in_sources_ = other.in_sources_;
    borrowed_ = true;
  } else {
    own_out_offsets_ = other.own_out_offsets_;
    own_out_targets_ = other.own_out_targets_;
    own_in_offsets_ = other.own_in_offsets_;
    own_in_sources_ = other.own_in_sources_;
    bind_owned();
  }
  return *this;
}

std::span<const NodeId> Digraph::friends(NodeId u) const {
  if (u >= node_count()) throw std::out_of_range("Digraph::friends: bad node");
  return {out_targets_.data() + out_offsets_[u],
          out_offsets_[u + 1] - out_offsets_[u]};
}

std::span<const NodeId> Digraph::fans(NodeId u) const {
  if (u >= node_count()) throw std::out_of_range("Digraph::fans: bad node");
  return {in_sources_.data() + in_offsets_[u],
          in_offsets_[u + 1] - in_offsets_[u]};
}

bool Digraph::has_edge(NodeId u, NodeId v) const {
  const auto row = friends(u);
  return std::binary_search(row.begin(), row.end(), v);
}

std::vector<std::uint32_t> Digraph::out_degrees() const {
  std::vector<std::uint32_t> out(node_count());
  for (std::size_t u = 0; u < out.size(); ++u)
    out[u] = static_cast<std::uint32_t>(out_offsets_[u + 1] - out_offsets_[u]);
  return out;
}

std::vector<std::uint32_t> Digraph::in_degrees() const {
  std::vector<std::uint32_t> out(node_count());
  for (std::size_t u = 0; u < out.size(); ++u)
    out[u] = static_cast<std::uint32_t>(in_offsets_[u + 1] - in_offsets_[u]);
  return out;
}

namespace {

void check_csr(std::span<const std::size_t> offsets,
               std::span<const NodeId> ids, std::size_t n, const char* what) {
  if (offsets.size() != n + 1 || offsets.front() != 0 ||
      offsets.back() != ids.size())
    throw std::invalid_argument(std::string("Digraph::from_parts: bad ") +
                                what + " offsets");
  for (std::size_t u = 0; u < n; ++u) {
    if (offsets[u] > offsets[u + 1])
      throw std::invalid_argument(std::string("Digraph::from_parts: ") + what +
                                  " offsets not monotone");
    for (std::size_t i = offsets[u]; i < offsets[u + 1]; ++i) {
      if (ids[i] >= n)
        throw std::invalid_argument(std::string("Digraph::from_parts: ") +
                                    what + " id out of range");
      if (i > offsets[u] && ids[i] <= ids[i - 1])
        throw std::invalid_argument(std::string("Digraph::from_parts: ") +
                                    what + " row not strictly sorted");
    }
  }
}

void check_parts(std::span<const std::size_t> out_offsets,
                 std::span<const NodeId> out_targets,
                 std::span<const std::size_t> in_offsets,
                 std::span<const NodeId> in_sources) {
  if (out_offsets.empty() || in_offsets.size() != out_offsets.size())
    throw std::invalid_argument("Digraph::from_parts: offset size mismatch");
  if (out_targets.size() != in_sources.size())
    throw std::invalid_argument("Digraph::from_parts: edge count mismatch");
  const std::size_t n = out_offsets.size() - 1;
  check_csr(out_offsets, out_targets, n, "out");
  check_csr(in_offsets, in_sources, n, "in");
}

}  // namespace

Digraph Digraph::from_parts(std::vector<std::size_t> out_offsets,
                            std::vector<NodeId> out_targets,
                            std::vector<std::size_t> in_offsets,
                            std::vector<NodeId> in_sources) {
  check_parts(out_offsets, out_targets, in_offsets, in_sources);
  Digraph g;
  g.own_out_offsets_ = std::move(out_offsets);
  g.own_out_targets_ = std::move(out_targets);
  g.own_in_offsets_ = std::move(in_offsets);
  g.own_in_sources_ = std::move(in_sources);
  g.bind_owned();
  return g;
}

Digraph Digraph::from_views(std::span<const std::size_t> out_offsets,
                            std::span<const NodeId> out_targets,
                            std::span<const std::size_t> in_offsets,
                            std::span<const NodeId> in_sources) {
  // Same O(E) structural validation as from_parts — a borrowed graph is
  // no less trusted than a copied one, and validating a mapped column
  // costs one sequential scan (milliseconds even at millions of users).
  check_parts(out_offsets, out_targets, in_offsets, in_sources);
  Digraph g;
  g.out_offsets_ = out_offsets;
  g.out_targets_ = out_targets;
  g.in_offsets_ = in_offsets;
  g.in_sources_ = in_sources;
  g.borrowed_ = true;
  return g;
}

DigraphBuilder::DigraphBuilder(std::size_t node_count)
    : node_count_(node_count) {}

void DigraphBuilder::ensure_nodes(std::size_t count) {
  node_count_ = std::max(node_count_, count);
}

void DigraphBuilder::add_follow(NodeId u, NodeId v) {
  if (u == v) throw std::invalid_argument("DigraphBuilder: self-loop");
  ensure_nodes(static_cast<std::size_t>(std::max(u, v)) + 1);
  edges_.emplace_back(u, v);
}

Digraph DigraphBuilder::build() const {
  const std::size_t n = node_count_;
  std::vector<std::pair<NodeId, NodeId>> edges = edges_;
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Digraph g;
  g.own_out_offsets_.assign(n + 1, 0);
  g.own_in_offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : edges) {
    ++g.own_out_offsets_[u + 1];
    ++g.own_in_offsets_[v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) {
    g.own_out_offsets_[i] += g.own_out_offsets_[i - 1];
    g.own_in_offsets_[i] += g.own_in_offsets_[i - 1];
  }
  g.own_out_targets_.resize(edges.size());
  g.own_in_sources_.resize(edges.size());
  std::vector<std::size_t> out_fill(g.own_out_offsets_.begin(),
                                    g.own_out_offsets_.end() - 1);
  std::vector<std::size_t> in_fill(g.own_in_offsets_.begin(),
                                   g.own_in_offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.own_out_targets_[out_fill[u]++] = v;
    g.own_in_sources_[in_fill[v]++] = u;
  }
  g.bind_owned();
  // Edges were sorted by (u, v), so each out-row is already sorted by target;
  // in-rows are filled in (u, v) order, hence sorted by source. Both
  // directions are verified unconditionally — arbitrary insertion order must
  // normalize here, in release builds too (see check_rows_sorted).
  check_rows_sorted(g.out_offsets_, g.out_targets_, "out");
  check_rows_sorted(g.in_offsets_, g.in_sources_, "in");
  return g;
}

}  // namespace digg::graph
