#include "src/graph/digraph.h"

#include <algorithm>
#include <stdexcept>

namespace digg::graph {

std::span<const NodeId> Digraph::friends(NodeId u) const {
  if (u >= node_count()) throw std::out_of_range("Digraph::friends: bad node");
  return {out_targets_.data() + out_offsets_[u],
          out_offsets_[u + 1] - out_offsets_[u]};
}

std::span<const NodeId> Digraph::fans(NodeId u) const {
  if (u >= node_count()) throw std::out_of_range("Digraph::fans: bad node");
  return {in_sources_.data() + in_offsets_[u],
          in_offsets_[u + 1] - in_offsets_[u]};
}

bool Digraph::has_edge(NodeId u, NodeId v) const {
  const auto row = friends(u);
  return std::binary_search(row.begin(), row.end(), v);
}

std::vector<std::uint32_t> Digraph::out_degrees() const {
  std::vector<std::uint32_t> out(node_count());
  for (std::size_t u = 0; u < out.size(); ++u)
    out[u] = static_cast<std::uint32_t>(out_offsets_[u + 1] - out_offsets_[u]);
  return out;
}

std::vector<std::uint32_t> Digraph::in_degrees() const {
  std::vector<std::uint32_t> out(node_count());
  for (std::size_t u = 0; u < out.size(); ++u)
    out[u] = static_cast<std::uint32_t>(in_offsets_[u + 1] - in_offsets_[u]);
  return out;
}

DigraphBuilder::DigraphBuilder(std::size_t node_count)
    : node_count_(node_count) {}

void DigraphBuilder::ensure_nodes(std::size_t count) {
  node_count_ = std::max(node_count_, count);
}

void DigraphBuilder::add_follow(NodeId u, NodeId v) {
  if (u == v) throw std::invalid_argument("DigraphBuilder: self-loop");
  ensure_nodes(static_cast<std::size_t>(std::max(u, v)) + 1);
  edges_.emplace_back(u, v);
}

Digraph DigraphBuilder::build() const {
  const std::size_t n = node_count_;
  std::vector<std::pair<NodeId, NodeId>> edges = edges_;
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Digraph g;
  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : edges) {
    ++g.out_offsets_[u + 1];
    ++g.in_offsets_[v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) {
    g.out_offsets_[i] += g.out_offsets_[i - 1];
    g.in_offsets_[i] += g.in_offsets_[i - 1];
  }
  g.out_targets_.resize(edges.size());
  g.in_sources_.resize(edges.size());
  std::vector<std::size_t> out_fill(g.out_offsets_.begin(),
                                    g.out_offsets_.end() - 1);
  std::vector<std::size_t> in_fill(g.in_offsets_.begin(),
                                   g.in_offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.out_targets_[out_fill[u]++] = v;
    g.in_sources_[in_fill[v]++] = u;
  }
  // Edges were sorted by (u, v), so each out-row is already sorted by target;
  // in-rows are filled in (u, v) order, hence sorted by source.
  return g;
}

}  // namespace digg::graph
