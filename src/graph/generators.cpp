#include "src/graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace digg::graph {

Digraph erdos_renyi(std::size_t n, double p, stats::Rng& rng) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("erdos_renyi: bad p");
  DigraphBuilder builder(n);
  if (p > 0.0 && n > 1) {
    // Skip-sampling over the n*(n-1) ordered non-loop pairs.
    const auto total = static_cast<std::uint64_t>(n) * (n - 1);
    const double log_q = std::log(1.0 - p);
    std::uint64_t idx = 0;
    while (true) {
      // Geometric skip: number of non-edges before the next edge.
      const double u = std::max(rng.uniform(), 1e-300);
      const auto skip = (p >= 1.0)
                            ? std::uint64_t{0}
                            : static_cast<std::uint64_t>(std::log(u) / log_q);
      if (skip > total - idx - 1 && idx + skip >= total) break;
      idx += skip;
      if (idx >= total) break;
      const auto src = static_cast<NodeId>(idx / (n - 1));
      auto dst = static_cast<NodeId>(idx % (n - 1));
      if (dst >= src) ++dst;  // skip the diagonal
      builder.add_follow(src, dst);
      ++idx;
      if (idx >= total) break;
    }
  }
  return builder.build();
}

Digraph preferential_attachment(const PreferentialAttachmentParams& params,
                                stats::Rng& rng) {
  const std::size_t n = params.node_count;
  if (n < 2)
    throw std::invalid_argument("preferential_attachment: node_count < 2");
  if (params.mean_out_degree <= 0.0)
    throw std::invalid_argument("preferential_attachment: mean_out_degree <= 0");
  if (params.smoothing <= 0.0)
    throw std::invalid_argument("preferential_attachment: smoothing <= 0");

  DigraphBuilder builder(n);
  std::vector<std::size_t> fan_count(n, 0);
  // repeated[i] holds node ids proportional to fan count for O(1) weighted
  // draws (the classic Barabási–Albert urn trick).
  std::vector<NodeId> urn;
  urn.reserve(static_cast<std::size_t>(
      static_cast<double>(n) * params.mean_out_degree * 1.2));

  for (NodeId u = 1; u < n; ++u) {
    const auto edges =
        std::max<std::int64_t>(1, rng.poisson(params.mean_out_degree));
    std::vector<NodeId> chosen;
    for (std::int64_t e = 0; e < edges && chosen.size() < u; ++e) {
      NodeId target;
      // Reciprocity mixes in uniform choices among earlier arrivals, which
      // creates mutual-follow pairs once the other side's preferential edges
      // land; exact fan-list tracking is not needed for calibration.
      const bool uniform_pick =
          rng.bernoulli(params.reciprocity) && fan_count[u] > 0;
      if (uniform_pick) {
        target = static_cast<NodeId>(rng.uniform_int(0, u - 1));
      } else {
        // Preferential attachment with additive smoothing: with probability
        // s_total/(s_total + urn) pick uniformly, else pick from the urn.
        const double urn_mass = static_cast<double>(urn.size());
        const double smooth_mass =
            params.smoothing * static_cast<double>(u);  // existing nodes
        if (urn.empty() ||
            rng.uniform() < smooth_mass / (smooth_mass + urn_mass)) {
          target = static_cast<NodeId>(rng.uniform_int(0, u - 1));
        } else {
          target = urn[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(urn.size()) - 1))];
        }
      }
      if (target == u) continue;
      if (std::find(chosen.begin(), chosen.end(), target) != chosen.end())
        continue;
      chosen.push_back(target);
      builder.add_follow(u, target);
      ++fan_count[target];
      urn.push_back(target);
    }
  }

  // Second growth phase: long-lived heavy users accumulate friends.
  if (params.extra_friend_rate > 0.0) {
    const double half_n = static_cast<double>(n) / 2.0;
    for (NodeId u = 0; u < n; ++u) {
      const double mean = std::min<double>(
          static_cast<double>(params.extra_friend_cap),
          params.extra_friend_rate *
              std::pow(half_n / static_cast<double>(u + 1), 0.7));
      if (mean < 1e-3) continue;
      const std::int64_t extra =
          std::min<std::int64_t>(rng.poisson(mean),
                                 static_cast<std::int64_t>(
                                     params.extra_friend_cap));
      for (std::int64_t e = 0; e < extra; ++e) {
        // Mostly uniform targets: heavy users browse widely, so their late
        // friendships do not all concentrate on the existing hubs.
        NodeId target;
        if (urn.empty() || rng.bernoulli(0.65)) {
          target = static_cast<NodeId>(
              rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        } else {
          target = urn[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(urn.size()) - 1))];
        }
        if (target == u) continue;
        builder.add_follow(u, target);  // duplicates removed at build()
        urn.push_back(target);
      }
    }
  }
  return builder.build();
}

Digraph configuration_model(const std::vector<std::size_t>& out_degrees,
                            const std::vector<std::size_t>& in_degrees,
                            stats::Rng& rng) {
  if (out_degrees.size() != in_degrees.size())
    throw std::invalid_argument("configuration_model: size mismatch");
  const std::size_t n = out_degrees.size();
  std::vector<NodeId> out_stubs;
  std::vector<NodeId> in_stubs;
  for (std::size_t u = 0; u < n; ++u) {
    out_stubs.insert(out_stubs.end(), out_degrees[u], static_cast<NodeId>(u));
    in_stubs.insert(in_stubs.end(), in_degrees[u], static_cast<NodeId>(u));
  }
  std::shuffle(out_stubs.begin(), out_stubs.end(), rng.engine());
  std::shuffle(in_stubs.begin(), in_stubs.end(), rng.engine());
  const std::size_t m = std::min(out_stubs.size(), in_stubs.size());
  DigraphBuilder builder(n);
  for (std::size_t i = 0; i < m; ++i) {
    if (out_stubs[i] == in_stubs[i]) continue;  // drop self-loops
    builder.add_follow(out_stubs[i], in_stubs[i]);
  }
  return builder.build();  // build() dedups multi-edges
}

Digraph planted_partition(const PlantedPartitionParams& params,
                          stats::Rng& rng) {
  const std::size_t n = params.node_count;
  if (params.communities == 0 || params.communities > n)
    throw std::invalid_argument("planted_partition: bad community count");
  const std::vector<std::size_t> community = planted_communities(params);
  DigraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) continue;
      const double p =
          community[u] == community[v] ? params.p_in : params.p_out;
      if (rng.bernoulli(p)) builder.add_follow(u, v);
    }
  }
  return builder.build();
}

std::vector<std::size_t> planted_communities(
    const PlantedPartitionParams& params) {
  std::vector<std::size_t> community(params.node_count);
  const std::size_t block =
      (params.node_count + params.communities - 1) / params.communities;
  for (std::size_t u = 0; u < params.node_count; ++u) community[u] = u / block;
  return community;
}

}  // namespace digg::graph
