#include "src/graph/traversal.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace digg::graph {

namespace {

template <typename Visit>
void for_each_neighbor(const Digraph& g, NodeId u, Direction dir,
                       Visit&& visit) {
  if (dir == Direction::kFollowing || dir == Direction::kBoth)
    for (NodeId v : g.friends(u)) visit(v);
  if (dir == Direction::kFans || dir == Direction::kBoth)
    for (NodeId v : g.fans(u)) visit(v);
}

}  // namespace

std::vector<std::size_t> bfs_distances(const Digraph& g, NodeId source,
                                       Direction dir) {
  if (source >= g.node_count())
    throw std::out_of_range("bfs_distances: bad source");
  std::vector<std::size_t> dist(g.node_count(), kUnreachable);
  std::deque<NodeId> frontier{source};
  dist[source] = 0;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for_each_neighbor(g, u, dir, [&](NodeId v) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push_back(v);
      }
    });
  }
  return dist;
}

std::vector<std::size_t> weak_components(const Digraph& g) {
  std::vector<std::size_t> label(g.node_count(), kUnreachable);
  std::size_t next = 0;
  std::deque<NodeId> frontier;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    if (label[s] != kUnreachable) continue;
    label[s] = next;
    frontier.push_back(s);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      for_each_neighbor(g, u, Direction::kBoth, [&](NodeId v) {
        if (label[v] == kUnreachable) {
          label[v] = next;
          frontier.push_back(v);
        }
      });
    }
    ++next;
  }
  return label;
}

std::vector<std::size_t> component_sizes(const Digraph& g) {
  const std::vector<std::size_t> label = weak_components(g);
  std::vector<std::size_t> sizes;
  for (std::size_t l : label) {
    if (l >= sizes.size()) sizes.resize(l + 1, 0);
    ++sizes[l];
  }
  std::sort(sizes.rbegin(), sizes.rend());
  return sizes;
}

double giant_component_fraction(const Digraph& g) {
  if (g.node_count() == 0) return 0.0;
  const std::vector<std::size_t> sizes = component_sizes(g);
  return static_cast<double>(sizes.front()) /
         static_cast<double>(g.node_count());
}

std::vector<NodeId> neighborhood(const Digraph& g, NodeId source,
                                 std::size_t max_hops, Direction dir) {
  if (source >= g.node_count())
    throw std::out_of_range("neighborhood: bad source");
  std::vector<std::size_t> dist(g.node_count(), kUnreachable);
  std::deque<NodeId> frontier{source};
  dist[source] = 0;
  std::vector<NodeId> out;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    if (dist[u] >= max_hops) continue;
    for_each_neighbor(g, u, dir, [&](NodeId v) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        out.push_back(v);
        frontier.push_back(v);
      }
    });
  }
  return out;
}

}  // namespace digg::graph
