#pragma once
// Node centralities over the fan graph. §6 points to structural properties
// as drivers of voting dynamics; these are the standard instruments:
//   - PageRank over follow edges — who the network "watches";
//   - betweenness (Brandes) — brokers between communities;
//   - k-core decomposition — the densely interlinked top-user core.
// The centrality_analysis example/bench relates them to story outcomes.

#include <cstddef>
#include <vector>

#include "src/graph/digraph.h"

namespace digg::graph {

struct PageRankParams {
  double damping = 0.85;
  std::size_t max_iterations = 100;
  double tolerance = 1e-10;  // L1 change per iteration to stop
};

/// PageRank over the *follow* direction: u distributes its score to the
/// users u watches, so highly watched users (many fans) score high.
/// Dangling mass is redistributed uniformly. Scores sum to 1.
[[nodiscard]] std::vector<double> pagerank(const Digraph& g,
                                           const PageRankParams& params = {});

/// Exact betweenness centrality (Brandes 2001) over directed follow edges,
/// unnormalized (sum over source-target dependency pairs). O(V·E) — fine up
/// to ~10^5 edges; sample sources via `source_stride` (>1 approximates by
/// using every stride-th node as a source and scaling). Sources run
/// concurrently on the parallel runtime (src/runtime); per-chunk partials
/// combine in fixed order, so output is identical for any DIGG_THREADS.
[[nodiscard]] std::vector<double> betweenness(const Digraph& g,
                                              std::size_t source_stride = 1);

/// k-core decomposition over the undirected projection: core_number[u] is
/// the largest k such that u belongs to a subgraph of minimum degree k.
[[nodiscard]] std::vector<std::size_t> core_numbers(const Digraph& g);

/// The maximum core number (the depth of the densest nucleus — the
/// "top-user community" of §5).
[[nodiscard]] std::size_t degeneracy(const Digraph& g);

}  // namespace digg::graph
