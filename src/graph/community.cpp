#include "src/graph/community.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace digg::graph {

std::vector<std::size_t> label_propagation(const Digraph& g, stats::Rng& rng,
                                           std::size_t max_rounds) {
  const std::size_t n = g.node_count();
  std::vector<std::size_t> label(n);
  std::iota(label.begin(), label.end(), std::size_t{0});
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});

  // Dense tally: labels are always < n, so neighbor-label counts live in a
  // flat array and only the touched slots are zeroed between nodes — no hash
  // probes in the O(rounds * edges) inner loop.
  std::vector<std::size_t> counts(n, 0);
  std::vector<std::size_t> touched;

  for (std::size_t round = 0; round < max_rounds; ++round) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    bool changed = false;
    for (NodeId u : order) {
      touched.clear();
      const auto tally = [&](NodeId v) {
        if (counts[label[v]]++ == 0) touched.push_back(label[v]);
      };
      for (NodeId v : g.friends(u)) tally(v);
      for (NodeId v : g.fans(u)) tally(v);
      if (touched.empty()) continue;
      // Pick the most frequent neighbor label; break ties toward the current
      // label, then toward the smallest label for determinism. (The rule is
      // iteration-order independent: the current label is never displaced on
      // an equal count, and among strictly better counts the smallest label
      // with the maximal count wins.)
      std::size_t best_label = label[u];
      std::size_t best_count = counts[best_label];
      for (std::size_t l : touched) {
        const std::size_t c = counts[l];
        if (c > best_count || (c == best_count && l < best_label &&
                               best_label != label[u])) {
          best_label = l;
          best_count = c;
        }
      }
      for (std::size_t l : touched) counts[l] = 0;
      if (best_label != label[u]) {
        label[u] = best_label;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Renumber densely, in order of first appearance.
  constexpr std::size_t kUnassigned = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dense(n, kUnassigned);
  std::size_t next = 0;
  for (std::size_t& l : label) {
    if (dense[l] == kUnassigned) dense[l] = next++;
    l = dense[l];
  }
  return label;
}

double modularity(const Digraph& g,
                  const std::vector<std::size_t>& communities) {
  if (communities.size() != g.node_count())
    throw std::invalid_argument("modularity: partition size mismatch");
  const double m = static_cast<double>(g.edge_count());
  if (m == 0.0) return 0.0;
  // Undirected projection where each directed edge contributes one endpoint
  // pair; degree of u = friends + fans (mutual edges naturally count twice).
  const std::size_t label_count =
      communities.empty()
          ? 0
          : *std::max_element(communities.begin(), communities.end()) + 1;
  std::vector<double> internal(label_count, 0.0);
  std::vector<double> degree_sum(label_count, 0.0);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    degree_sum[communities[u]] +=
        static_cast<double>(g.friend_count(u) + g.fan_count(u));
    for (NodeId v : g.friends(u)) {
      if (communities[u] == communities[v]) internal[communities[u]] += 1.0;
    }
  }
  double q = 0.0;
  for (std::size_t c = 0; c < label_count; ++c) {
    q += internal[c] / m - (degree_sum[c] / (2.0 * m)) *
                               (degree_sum[c] / (2.0 * m));
  }
  return q;
}

std::size_t community_count(const std::vector<std::size_t>& communities) {
  if (communities.empty()) return 0;
  std::vector<std::size_t> sorted = communities;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return sorted.size();
}

double rand_index(const std::vector<std::size_t>& a,
                  const std::vector<std::size_t>& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("rand_index: size mismatch");
  const std::size_t n = a.size();
  if (n < 2) return 1.0;
  std::size_t agree = 0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool same_a = a[i] == a[j];
      const bool same_b = b[i] == b[j];
      if (same_a == same_b) ++agree;
      ++pairs;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(pairs);
}

}  // namespace digg::graph
