#include "src/graph/centrality.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stack>
#include <stdexcept>

#include "src/runtime/parallel.h"

namespace digg::graph {

std::vector<double> pagerank(const Digraph& g, const PageRankParams& params) {
  const std::size_t n = g.node_count();
  if (n == 0) return {};
  if (params.damping < 0.0 || params.damping >= 1.0)
    throw std::invalid_argument("pagerank: damping outside [0,1)");

  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  const std::vector<std::uint32_t> out_deg = g.out_degrees();

  for (std::size_t iter = 0; iter < params.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      if (out_deg[u] == 0) {
        dangling += rank[u];
        continue;
      }
      const double share = rank[u] / static_cast<double>(out_deg[u]);
      for (NodeId v : g.friends(u)) next[v] += share;
    }
    const double base =
        (1.0 - params.damping) / static_cast<double>(n) +
        params.damping * dangling / static_cast<double>(n);
    double delta = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      const double updated = base + params.damping * next[u];
      delta += std::abs(updated - rank[u]);
      rank[u] = updated;
    }
    if (delta < params.tolerance) break;
  }
  return rank;
}

namespace {

/// Per-thread workspace for Brandes' algorithm (one BFS tree per source).
struct BrandesScratch {
  explicit BrandesScratch(std::size_t n)
      : dist(n), sigma(n), delta(n), predecessors(n) {
    order.reserve(n);
  }
  std::vector<std::size_t> dist;
  std::vector<double> sigma;
  std::vector<double> delta;
  std::vector<std::vector<NodeId>> predecessors;
  std::vector<NodeId> order;  // nodes in non-decreasing distance
};

/// One source of Brandes' algorithm with BFS (unweighted): accumulates the
/// source's dependency contributions into `centrality`.
void brandes_from_source(const Digraph& g, NodeId s, BrandesScratch& ws,
                         std::vector<double>& centrality) {
  std::fill(ws.dist.begin(), ws.dist.end(), static_cast<std::size_t>(-1));
  std::fill(ws.sigma.begin(), ws.sigma.end(), 0.0);
  std::fill(ws.delta.begin(), ws.delta.end(), 0.0);
  for (auto& p : ws.predecessors) p.clear();
  ws.order.clear();

  ws.dist[s] = 0;
  ws.sigma[s] = 1.0;
  std::deque<NodeId> queue{s};
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    ws.order.push_back(u);
    for (NodeId v : g.friends(u)) {
      if (ws.dist[v] == static_cast<std::size_t>(-1)) {
        ws.dist[v] = ws.dist[u] + 1;
        queue.push_back(v);
      }
      if (ws.dist[v] == ws.dist[u] + 1) {
        ws.sigma[v] += ws.sigma[u];
        ws.predecessors[v].push_back(u);
      }
    }
  }
  for (auto it = ws.order.rbegin(); it != ws.order.rend(); ++it) {
    const NodeId w = *it;
    for (NodeId u : ws.predecessors[w]) {
      ws.delta[u] += ws.sigma[u] / ws.sigma[w] * (1.0 + ws.delta[w]);
    }
    if (w != s) centrality[w] += ws.delta[w];
  }
}

}  // namespace

std::vector<double> betweenness(const Digraph& g, std::size_t source_stride) {
  const std::size_t n = g.node_count();
  if (source_stride == 0)
    throw std::invalid_argument("betweenness: stride == 0");
  if (n == 0) return {};

  std::vector<NodeId> sources;
  sources.reserve(n / source_stride + 1);
  for (NodeId s = 0; s < n; s += static_cast<NodeId>(source_stride))
    sources.push_back(s);

  // Sources are independent BFS trees over the read-only CSR graph: each
  // chunk of sources accumulates into its own partial vector with its own
  // scratch, and partials combine in fixed chunk order — identical output
  // for any thread count. The grain bounds live partials (each is n
  // doubles) to at most 32.
  runtime::ParallelOptions opts;
  opts.grain = std::max<std::size_t>(1, (sources.size() + 31) / 32);
  std::vector<double> centrality =
      runtime::parallel_reduce_ranges<std::vector<double>>(
          sources.size(), std::vector<double>(n, 0.0),
          [&](std::size_t begin, std::size_t end) {
            std::vector<double> partial(n, 0.0);
            BrandesScratch ws(n);
            for (std::size_t k = begin; k < end; ++k)
              brandes_from_source(g, sources[k], ws, partial);
            return partial;
          },
          [](std::vector<double> acc, std::vector<double> partial) {
            for (std::size_t i = 0; i < acc.size(); ++i)
              acc[i] += partial[i];
            return acc;
          },
          opts);

  if (source_stride > 1) {
    const double scale = static_cast<double>(source_stride);
    for (double& c : centrality) c *= scale;
  }
  return centrality;
}

std::vector<std::size_t> core_numbers(const Digraph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::size_t> degree(n, 0);
  // Undirected projection degree with neighbor dedup.
  std::vector<std::vector<NodeId>> neighbors(n);
  for (NodeId u = 0; u < n; ++u) {
    auto& nbrs = neighbors[u];
    const auto out = g.friends(u);
    const auto in = g.fans(u);
    nbrs.assign(out.begin(), out.end());
    nbrs.insert(nbrs.end(), in.begin(), in.end());
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    degree[u] = nbrs.size();
  }

  if (n == 0) return {};

  // Bin-sort peeling (Batagelj & Zaversnik 2003), O(V + E). `vert` holds
  // the vertices ordered by current degree; `bin[d]` is the start index of
  // degree-d vertices in `vert`; `pos[u]` is u's index within `vert`.
  const std::size_t max_degree =
      *std::max_element(degree.begin(), degree.end());
  std::vector<std::size_t> bin(max_degree + 1, 0);
  for (NodeId u = 0; u < n; ++u) ++bin[degree[u]];
  std::size_t start = 0;
  for (std::size_t d = 0; d <= max_degree; ++d) {
    const std::size_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<NodeId> vert(n);
  std::vector<std::size_t> pos(n);
  {
    std::vector<std::size_t> fill = bin;
    for (NodeId u = 0; u < n; ++u) {
      pos[u] = fill[degree[u]]++;
      vert[pos[u]] = u;
    }
  }

  std::vector<std::size_t> core = degree;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId v = vert[i];
    for (NodeId u : neighbors[v]) {
      if (core[u] > core[v]) {
        // Move u to the front of its degree block, then shrink its degree.
        const std::size_t du = core[u];
        const std::size_t pu = pos[u];
        const std::size_t pw = bin[du];
        const NodeId w = vert[pw];
        if (u != w) {
          std::swap(vert[pu], vert[pw]);
          pos[u] = pw;
          pos[w] = pu;
        }
        ++bin[du];
        --core[u];
      }
    }
  }
  return core;
}

std::size_t degeneracy(const Digraph& g) {
  const std::vector<std::size_t> core = core_numbers(g);
  return core.empty() ? 0 : *std::max_element(core.begin(), core.end());
}

}  // namespace digg::graph
