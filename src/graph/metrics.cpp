#include "src/graph/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/stats/summary.h"

namespace digg::graph {

DegreeStats degree_stats(const std::vector<std::size_t>& degrees) {
  DegreeStats s;
  if (degrees.empty()) return s;
  std::vector<double> d(degrees.begin(), degrees.end());
  const stats::Summary sum = stats::summarize(std::move(d));
  s.min = *std::min_element(degrees.begin(), degrees.end());
  s.max = *std::max_element(degrees.begin(), degrees.end());
  s.mean = sum.mean;
  s.median = sum.median;
  return s;
}

double reciprocity(const Digraph& g) {
  if (g.edge_count() == 0) return 0.0;
  std::size_t mutual = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId v : g.friends(u)) {
      if (g.has_edge(v, u)) ++mutual;
    }
  }
  return static_cast<double>(mutual) / static_cast<double>(g.edge_count());
}

namespace {

// Undirected neighbor set of u (friends ∪ fans), deduplicated and sorted.
std::vector<NodeId> undirected_neighbors(const Digraph& g, NodeId u) {
  std::vector<NodeId> nbrs;
  const auto out = g.friends(u);
  const auto in = g.fans(u);
  nbrs.reserve(out.size() + in.size());
  nbrs.insert(nbrs.end(), out.begin(), out.end());
  nbrs.insert(nbrs.end(), in.begin(), in.end());
  std::sort(nbrs.begin(), nbrs.end());
  nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  return nbrs;
}

}  // namespace

double local_clustering(const Digraph& g, NodeId u) {
  const std::vector<NodeId> nbrs = undirected_neighbors(g, u);
  const std::size_t k = nbrs.size();
  if (k < 2) return 0.0;
  std::size_t links = 0;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      if (g.has_edge(nbrs[i], nbrs[j]) || g.has_edge(nbrs[j], nbrs[i]))
        ++links;
    }
  }
  return 2.0 * static_cast<double>(links) /
         (static_cast<double>(k) * static_cast<double>(k - 1));
}

double average_clustering(const Digraph& g) {
  if (g.node_count() == 0) return 0.0;
  double acc = 0.0;
  for (NodeId u = 0; u < g.node_count(); ++u) acc += local_clustering(g, u);
  return acc / static_cast<double>(g.node_count());
}

double in_degree_assortativity(const Digraph& g) {
  if (g.edge_count() < 2) return 0.0;
  const std::vector<std::uint32_t> in_deg = g.in_degrees();
  std::vector<double> src;
  std::vector<double> dst;
  src.reserve(g.edge_count());
  dst.reserve(g.edge_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId v : g.friends(u)) {
      src.push_back(static_cast<double>(in_deg[u]));
      dst.push_back(static_cast<double>(in_deg[v]));
    }
  }
  try {
    return stats::pearson(src, dst);
  } catch (const std::invalid_argument&) {
    return 0.0;  // zero-variance degenerate graph
  }
}

std::vector<std::pair<std::size_t, std::size_t>> friends_fans_scatter(
    const Digraph& g) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u)
    out.emplace_back(g.friend_count(u) + 1, g.fan_count(u) + 1);
  return out;
}

}  // namespace digg::graph
