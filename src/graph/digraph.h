#pragma once
// Directed social graph with Digg's fan/friend semantics.
//
// On Digg the friendship relation is asymmetric: when user A lists user B as
// a friend, A watches B's activity. We store the edge A -> B ("A follows B").
// Then:
//   - friends of A  = out-neighbors of A (users A watches),
//   - fans of B     = in-neighbors of B  (users watching B).
// A story dugg by B becomes visible, via the Friends interface, to all fans
// of B — so influence and cascade computations iterate *in*-neighbors.
//
// The graph is built incrementally with DigraphBuilder and then frozen into
// an immutable CSR (compressed sparse row) Digraph for cache-friendly
// iteration; analysis workloads are read-only and fan lists are scanned
// millions of times.
//
// Storage is either *owned* (vectors, via build()/from_parts()) or
// *borrowed* (spans over caller-owned memory, via from_views()) — the
// borrowed mode is how memory-mapped snapshots bind CSR columns zero-copy.
// All read paths go through the span views, so the two modes are
// indistinguishable to consumers; whoever creates a borrowed graph must
// keep the underlying memory alive for the graph's lifetime.

#include <cstdint>
#include <span>
#include <vector>

namespace digg::graph {

using NodeId = std::uint32_t;

/// Immutable CSR digraph. Create via DigraphBuilder::build().
class Digraph {
 public:
  Digraph() = default;
  Digraph(Digraph&&) noexcept = default;  // moved vectors keep their buffers
  Digraph& operator=(Digraph&&) noexcept = default;
  Digraph(const Digraph& other) { *this = other; }
  Digraph& operator=(const Digraph& other);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return out_offsets_.empty() ? 0 : out_offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return out_targets_.size();
  }

  /// Out-neighbors of u: the users u watches (u's "friends" on Digg).
  [[nodiscard]] std::span<const NodeId> friends(NodeId u) const;
  /// In-neighbors of u: the users watching u (u's "fans" on Digg).
  [[nodiscard]] std::span<const NodeId> fans(NodeId u) const;

  [[nodiscard]] std::size_t friend_count(NodeId u) const {
    return friends(u).size();
  }
  [[nodiscard]] std::size_t fan_count(NodeId u) const { return fans(u).size(); }

  /// True if the edge u -> v exists (u lists v as a friend). O(log deg).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Out-degree (friend count) of every node. uint32 — a degree never
  /// exceeds the node count (NodeId is 32-bit), and the narrow vector
  /// halves the footprint on million-node graphs.
  [[nodiscard]] std::vector<std::uint32_t> out_degrees() const;
  /// In-degree (fan count) of every node.
  [[nodiscard]] std::vector<std::uint32_t> in_degrees() const;

  /// Raw CSR arrays, exposed for binary snapshot serialisation. Offset
  /// spans have size node_count()+1; neighbor rows are sorted.
  [[nodiscard]] std::span<const std::size_t> out_offsets() const noexcept {
    return out_offsets_;
  }
  [[nodiscard]] std::span<const NodeId> out_targets() const noexcept {
    return out_targets_;
  }
  [[nodiscard]] std::span<const std::size_t> in_offsets() const noexcept {
    return in_offsets_;
  }
  [[nodiscard]] std::span<const NodeId> in_sources() const noexcept {
    return in_sources_;
  }

  /// True when this graph borrows its CSR arrays from caller-owned memory
  /// (from_views) rather than owning them.
  [[nodiscard]] bool borrowed() const noexcept { return borrowed_; }

  /// Reassembles a graph from raw CSR arrays (snapshot deserialisation).
  /// Validates structure — offsets monotone from 0 to the edge count, both
  /// directions the same size, ids in range, rows strictly sorted — and
  /// throws std::invalid_argument on any violation. (It does not prove the
  /// in-arrays are the exact transpose of the out-arrays; snapshots carry a
  /// checksum for whole-file integrity.)
  [[nodiscard]] static Digraph from_parts(std::vector<std::size_t> out_offsets,
                                          std::vector<NodeId> out_targets,
                                          std::vector<std::size_t> in_offsets,
                                          std::vector<NodeId> in_sources);

  /// Borrowed-mode from_parts: binds the CSR views directly over
  /// caller-owned columns (e.g. a memory-mapped snapshot) with the same
  /// structural validation. The memory must stay alive and unchanged for
  /// the graph's lifetime; copying a borrowed graph copies the *spans*,
  /// not the data.
  [[nodiscard]] static Digraph from_views(
      std::span<const std::size_t> out_offsets,
      std::span<const NodeId> out_targets,
      std::span<const std::size_t> in_offsets,
      std::span<const NodeId> in_sources);

 private:
  friend class DigraphBuilder;

  /// Points the view spans at the owned vectors.
  void bind_owned();

  // Read paths use only these spans; they alias either the owned vectors
  // below or caller-owned (mapped) memory when borrowed_.
  std::span<const std::size_t> out_offsets_;  // size n+1
  std::span<const NodeId> out_targets_;       // sorted within each row
  std::span<const std::size_t> in_offsets_;   // size n+1
  std::span<const NodeId> in_sources_;        // sorted within each row
  bool borrowed_ = false;

  std::vector<std::size_t> own_out_offsets_;
  std::vector<NodeId> own_out_targets_;
  std::vector<std::size_t> own_in_offsets_;
  std::vector<NodeId> own_in_sources_;
};

/// Mutable edge-list accumulator. Duplicate edges and self-loops are
/// rejected at build() time (Digg has neither).
class DigraphBuilder {
 public:
  explicit DigraphBuilder(std::size_t node_count = 0);

  /// Grows the node set to at least `count` nodes.
  void ensure_nodes(std::size_t count);
  [[nodiscard]] std::size_t node_count() const noexcept { return node_count_; }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size();
  }

  /// Adds the follow edge u -> v (u lists v as friend; u becomes a fan of v).
  /// Nodes are created implicitly. Self-loops throw immediately.
  void add_follow(NodeId u, NodeId v);

  /// Convenience inverse: records that `fan` watches `target`.
  void add_fan(NodeId target, NodeId fan) { add_follow(fan, target); }

  /// Freezes into a CSR digraph. Duplicate edges are removed (keeping one).
  [[nodiscard]] Digraph build() const;

 private:
  std::size_t node_count_ = 0;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace digg::graph
