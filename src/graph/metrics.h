#pragma once
// Structural metrics of the social graph: degree statistics for the
// friends-vs-fans scatter (final figure of the paper), reciprocity of the
// asymmetric fan relation, and clustering, which §6 identifies as relevant
// to influence-propagation transients.

#include <cstddef>
#include <vector>

#include "src/graph/digraph.h"

namespace digg::graph {

struct DegreeStats {
  std::size_t min = 0;
  std::size_t max = 0;
  double mean = 0.0;
  double median = 0.0;
};

[[nodiscard]] DegreeStats degree_stats(const std::vector<std::size_t>& degrees);

/// Fraction of edges u->v whose reverse v->u also exists.
[[nodiscard]] double reciprocity(const Digraph& g);

/// Local clustering coefficient of node u over the undirected projection:
/// fraction of pairs of neighbors that are themselves connected (either
/// direction). Returns 0 for degree < 2.
[[nodiscard]] double local_clustering(const Digraph& g, NodeId u);

/// Mean local clustering over all nodes (Watts–Strogatz average).
[[nodiscard]] double average_clustering(const Digraph& g);

/// Degree assortativity (Pearson correlation of in-degree across edges:
/// fan count of source vs fan count of target). Positive values mean
/// well-connected users follow other well-connected users — the "top user
/// community" effect of §5.
[[nodiscard]] double in_degree_assortativity(const Digraph& g);

/// (friends+1, fans+1) pairs for every node — the paper's final scatter
/// plot. The +1 matches the paper's axes, which plot number+1 on log scales.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
friends_fans_scatter(const Digraph& g);

}  // namespace digg::graph
