#pragma once
// Community detection and modularity (Newman 2006), cited by the paper's
// future work (§6) on the role of community structure in voting dynamics.
// Label propagation is used because the networks here reach ~10^5 nodes.

#include <cstddef>
#include <vector>

#include "src/graph/digraph.h"
#include "src/stats/rng.h"

namespace digg::graph {

/// Synchronous-ish label propagation over the undirected projection.
/// Returns a community label per node (densely renumbered from 0).
/// Deterministic given the Rng: node visit order is shuffled per round.
[[nodiscard]] std::vector<std::size_t> label_propagation(
    const Digraph& g, stats::Rng& rng, std::size_t max_rounds = 100);

/// Newman modularity Q of a partition over the undirected projection of g
/// (each directed edge counts once as an undirected edge; mutual pairs count
/// twice, consistently between the degree and edge terms).
[[nodiscard]] double modularity(const Digraph& g,
                                const std::vector<std::size_t>& communities);

/// Number of distinct labels in a partition.
[[nodiscard]] std::size_t community_count(
    const std::vector<std::size_t>& communities);

/// Fraction of node pairs on which two partitions agree (same/different
/// community) — Rand index, for comparing detected vs planted partitions.
[[nodiscard]] double rand_index(const std::vector<std::size_t>& a,
                                const std::vector<std::size_t>& b);

}  // namespace digg::graph
