#pragma once
// Graph traversal: BFS distances, weakly connected components, and reachable
// sets. Used to validate generated networks (a believable Digg snapshot is
// dominated by one giant weak component) and by the cascade analysis.

#include <cstdint>
#include <limits>
#include <vector>

#include "src/graph/digraph.h"

namespace digg::graph {

inline constexpr std::size_t kUnreachable =
    std::numeric_limits<std::size_t>::max();

/// Directions a traversal may move along edges.
enum class Direction {
  kFollowing,  // along u -> v edges (towards whom u watches)
  kFans,       // against edges (towards watchers)
  kBoth,       // undirected projection
};

/// BFS hop distances from `source`; kUnreachable where not reachable.
[[nodiscard]] std::vector<std::size_t> bfs_distances(
    const Digraph& g, NodeId source, Direction dir = Direction::kBoth);

/// Weakly connected component label per node, labels densely numbered from 0
/// in order of discovery.
[[nodiscard]] std::vector<std::size_t> weak_components(const Digraph& g);

/// Sizes of the weak components, descending.
[[nodiscard]] std::vector<std::size_t> component_sizes(const Digraph& g);

/// Fraction of nodes in the largest weak component (0 for the empty graph).
[[nodiscard]] double giant_component_fraction(const Digraph& g);

/// All nodes within `max_hops` of source (excluding source), moving in the
/// given direction. max_hops = 1 with kFans gives exactly the fans of source.
[[nodiscard]] std::vector<NodeId> neighborhood(const Digraph& g, NodeId source,
                                               std::size_t max_hops,
                                               Direction dir);

}  // namespace digg::graph
