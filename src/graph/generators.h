#pragma once
// Random graph generators. The synthetic Digg fan network is produced by the
// directed preferential-attachment generator (power-law fan counts with a
// small head of very well connected "top users", matching §3.2 and the
// friends-vs-fans scatter). ER and planted-partition graphs support the §6
// future-work experiments on epidemic thresholds and modular networks.

#include <cstdint>
#include <vector>

#include "src/graph/digraph.h"
#include "src/stats/rng.h"

namespace digg::graph {

/// G(n, p) Erdős–Rényi digraph: each ordered pair (u, v), u != v, is an edge
/// independently with probability p. O(expected edges) via geometric skips.
[[nodiscard]] Digraph erdos_renyi(std::size_t n, double p, stats::Rng& rng);

/// Parameters for the directed preferential-attachment fan network.
struct PreferentialAttachmentParams {
  std::size_t node_count = 1000;
  /// Mean number of follow edges created by each arriving node (its initial
  /// friend count); actual counts are Poisson distributed with this mean.
  double mean_out_degree = 5.0;
  /// Additive smoothing: target selected with probability ∝ fans + smoothing.
  /// Smaller values give heavier tails (more dominant top users).
  double smoothing = 1.0;
  /// Probability that a new edge reciprocates an existing fan instead of
  /// preferentially attaching — produces the mutual-fan clusters visible in
  /// the top-user community.
  double reciprocity = 0.15;
  /// Second growth phase: heavy users keep adding friends over the site's
  /// life, so early arrivals end with many *friends* as well as many fans
  /// (the paper's final figure: top users are high on both axes). Node u
  /// gains Poisson(extra_friend_rate * (n/2/(u+1))^0.7) extra follow edges,
  /// capped at extra_friend_cap, with preferentially chosen targets.
  /// Set the rate to 0 to disable.
  double extra_friend_rate = 0.5;
  std::size_t extra_friend_cap = 150;
};

/// Grows a digraph by preferential attachment on *fan* counts: arriving user
/// u follows existing users chosen with probability proportional to their
/// current fan count (plus smoothing). Fan counts come out power-law
/// distributed; early nodes become "top users" with orders of magnitude more
/// fans, as in the paper's network snapshot.
[[nodiscard]] Digraph preferential_attachment(
    const PreferentialAttachmentParams& params, stats::Rng& rng);

/// Directed configuration model: wires half-edges of the given out/in degree
/// sequences uniformly at random, discarding self-loops and duplicates.
/// Degree sums need not match exactly; the shorter side truncates.
[[nodiscard]] Digraph configuration_model(
    const std::vector<std::size_t>& out_degrees,
    const std::vector<std::size_t>& in_degrees, stats::Rng& rng);

/// Planted-partition (stochastic block) digraph: `communities` equal-sized
/// groups; within-group edge probability p_in, across-group p_out. Supports
/// the §6 experiment on cascades in modular networks.
struct PlantedPartitionParams {
  std::size_t node_count = 1000;
  std::size_t communities = 4;
  double p_in = 0.02;
  double p_out = 0.001;
};
[[nodiscard]] Digraph planted_partition(const PlantedPartitionParams& params,
                                        stats::Rng& rng);

/// Ground-truth community of each node for a planted-partition graph built
/// with the same params (node i belongs to community i % communities ... see
/// implementation: contiguous blocks).
[[nodiscard]] std::vector<std::size_t> planted_communities(
    const PlantedPartitionParams& params);

}  // namespace digg::graph
