#include "src/core/predictor.h"

#include <algorithm>
#include <stdexcept>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace digg::core {

namespace {

std::vector<ml::Attribute> attributes_for(FeatureSet features) {
  using ml::Attribute;
  using ml::AttributeKind;
  std::vector<Attribute> attrs;
  if (features == FeatureSet::kExtended)
    attrs.push_back({"v6", AttributeKind::kNumeric, {}});
  attrs.push_back({"v10", AttributeKind::kNumeric, {}});
  if (features == FeatureSet::kExtended)
    attrs.push_back({"v20", AttributeKind::kNumeric, {}});
  attrs.push_back({"fans1", AttributeKind::kNumeric, {}});
  if (features == FeatureSet::kExtended)
    attrs.push_back({"influence10", AttributeKind::kNumeric, {}});
  return attrs;
}

}  // namespace

std::vector<double> InterestingnessPredictor::encode(const StoryFeatures& f,
                                                     FeatureSet features) {
  std::vector<double> row;
  if (features == FeatureSet::kExtended)
    row.push_back(static_cast<double>(f.v6));
  row.push_back(static_cast<double>(f.v10));
  if (features == FeatureSet::kExtended)
    row.push_back(static_cast<double>(f.v20));
  row.push_back(static_cast<double>(f.fans1));
  if (features == FeatureSet::kExtended)
    row.push_back(static_cast<double>(f.influence10));
  return row;
}

ml::Dataset InterestingnessPredictor::make_dataset(
    const std::vector<StoryFeatures>& sample, FeatureSet features) {
  ml::Dataset data(attributes_for(features), {"no", "yes"});
  for (const StoryFeatures& f : sample) {
    data.add(encode(f, features), f.interesting ? 1 : 0);
  }
  return data;
}

InterestingnessPredictor InterestingnessPredictor::train(
    const std::vector<StoryFeatures>& sample, FeatureSet features,
    ml::C45Params params) {
  if (sample.empty())
    throw std::invalid_argument("InterestingnessPredictor: empty sample");
  obs::Span span("predictor_train", "core");
  InterestingnessPredictor p;
  p.features_ = features;
  p.tree_ = ml::DecisionTree::train(make_dataset(sample, features), params);
  p.flat_ = ml::FlatTree(p.tree_);
  return p;
}

bool InterestingnessPredictor::predict(const StoryFeatures& f) const {
  static obs::Counter& scored =
      obs::Registry::global().counter("core.predictions_scored");
  scored.inc();
  return tree_.predict(encode(f, features_)) == 1;
}

void InterestingnessPredictor::predict_batch(const StoryFeatures* sample,
                                             std::size_t n,
                                             std::uint8_t* out) const {
  if (n == 0) return;
  static obs::Counter& scored =
      obs::Registry::global().counter("core.predictions_scored");
  scored.inc(n);
  if (!flat_.valid()) {
    for (std::size_t i = 0; i < n; ++i)
      out[i] = tree_.predict(encode(sample[i], features_)) == 1 ? 1 : 0;
    return;
  }
  const std::size_t stride = encode(sample[0], features_).size();
  std::vector<double> rows(n * stride);
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<double> row = encode(sample[i], features_);
    std::copy(row.begin(), row.end(), rows.begin() + i * stride);
  }
  std::vector<std::int32_t> klass(n);
  flat_.predict_classes(rows.data(), n, stride, klass.data());
  for (std::size_t i = 0; i < n; ++i) out[i] = klass[i] == 1 ? 1 : 0;
}

double InterestingnessPredictor::predict_proba(const StoryFeatures& f) const {
  return tree_.predict_proba(encode(f, features_))[1];
}

ml::CrossValidationResult cross_validate_predictor(
    const std::vector<StoryFeatures>& sample, FeatureSet features,
    std::size_t folds, stats::Rng& rng, ml::C45Params params) {
  const ml::Dataset data =
      InterestingnessPredictor::make_dataset(sample, features);
  // Stratified CV needs every class in every fold; on small samples clamp
  // the fold count to the rarest class size (but never below 2).
  std::size_t min_class = data.size();
  for (std::size_t count : data.class_histogram()) {
    if (count > 0) min_class = std::min(min_class, count);
  }
  const std::size_t usable_folds =
      std::max<std::size_t>(2, std::min(folds, min_class));
  const ml::Trainer trainer = [params](const ml::Dataset& train) {
    const ml::DecisionTree tree = ml::DecisionTree::train(train, params);
    return ml::Classifier([tree](const std::vector<double>& row) {
      return tree.predict(row);
    });
  };
  return ml::cross_validate(trainer, data, usable_folds, rng,
                            /*positive_class=*/1);
}

}  // namespace digg::core
