#pragma once
// The end-to-end interestingness predictor of §5.2: a C4.5 tree over early-
// vote features. The paper's attribute set is {v10, fans1}; the extended set
// adds v6, v20 and influence10 for the ablation bench.

#include <memory>
#include <string>
#include <vector>

#include "src/core/features.h"
#include "src/ml/c45.h"
#include "src/ml/flat_tree.h"
#include "src/ml/validation.h"

namespace digg::core {

enum class FeatureSet {
  kPaper,     // v10, fans1  (Fig. 5)
  kExtended,  // v6, v10, v20, fans1, influence10
};

class InterestingnessPredictor {
 public:
  /// Trains on a feature sample. The class labels are "no"/"yes"
  /// (uninteresting/interesting), with "yes" as the positive class.
  static InterestingnessPredictor train(
      const std::vector<StoryFeatures>& sample,
      FeatureSet features = FeatureSet::kPaper, ml::C45Params params = {});

  [[nodiscard]] bool predict(const StoryFeatures& f) const;
  [[nodiscard]] double predict_proba(const StoryFeatures& f) const;

  /// Batched §5.2 decisions: out[i] = predict(sample[i]) for n stories in
  /// one call. Goes through the compiled branch-free evaluator
  /// (ml::FlatTree — the paper's feature sets are all numeric, so the tree
  /// always compiles; a nominal-split tree would fall back to the pointer
  /// walk). Bit-identical to n single predict() calls.
  void predict_batch(const StoryFeatures* sample, std::size_t n,
                     std::uint8_t* out) const;

  /// The trained tree (Fig. 5 shape).
  [[nodiscard]] const ml::DecisionTree& tree() const noexcept { return tree_; }
  [[nodiscard]] FeatureSet feature_set() const noexcept { return features_; }

  /// Builds the ml::Dataset for a sample (exposed so cross-validation and
  /// baselines reuse the exact same encoding).
  [[nodiscard]] static ml::Dataset make_dataset(
      const std::vector<StoryFeatures>& sample, FeatureSet features);

  /// Row encoding for one story, matching make_dataset's attribute order.
  [[nodiscard]] static std::vector<double> encode(const StoryFeatures& f,
                                                  FeatureSet features);

 private:
  ml::DecisionTree tree_;
  ml::FlatTree flat_;  // compiled at train time; invalid => pointer walk
  FeatureSet features_ = FeatureSet::kPaper;
};

/// 10-fold cross-validation of the paper's classifier on a sample
/// (the "correctly classifies 174 of the examples" number).
[[nodiscard]] ml::CrossValidationResult cross_validate_predictor(
    const std::vector<StoryFeatures>& sample, FeatureSet features,
    std::size_t folds, stats::Rng& rng, ml::C45Params params = {});

}  // namespace digg::core
