#pragma once
// Information cascades (§4.1). A vote is *in-network* if the voter is a fan
// of the submitter or of any previous voter — i.e. the story could have
// reached them through the Friends interface. The story's cascade after N
// votes is the number of in-network votes among its first N votes (not
// counting the submitter's own digg, which opens the cascade).

#include <cstddef>
#include <vector>

#include "src/digg/types.h"

namespace digg::core {

using platform::StoryView;
using platform::UserId;

/// Per-vote provenance for one story: entry k corresponds to the story's
/// (k+1)-th vote overall (the first vote after the submitter's digg has
/// index 0) and is true if that vote was in-network.
[[nodiscard]] std::vector<bool> vote_provenance(const StoryView& story,
                                                const graph::Digraph& network);

/// Number of in-network votes among the first `n` votes after the
/// submitter's digg ("the number of in-network votes the story received
/// within the first n votes"). If the story has fewer than n votes, counts
/// over what exists.
[[nodiscard]] std::size_t in_network_votes(const StoryView& story,
                                           const graph::Digraph& network,
                                           std::size_t n);

/// Cascade sizes at several checkpoints in one pass (cheaper than repeated
/// in_network_votes calls). checkpoints must be ascending.
[[nodiscard]] std::vector<std::size_t> cascade_profile(
    const StoryView& story, const graph::Digraph& network,
    const std::vector<std::size_t>& checkpoints);

}  // namespace digg::core
