#pragma once
// Early-vote feature extraction and interestingness labeling (§5).
//
// The paper's classifier uses two attributes per story: v10 (in-network
// votes within the first ten votes, not counting the submitter) and fans1
// (the submitter's fan count), with the boolean class "interesting" =
// final votes > 520. We also extract v6, v20 and early influence so the
// extended predictor and the Fig. 4 analysis share one pass.

#include <cstddef>
#include <vector>

#include "src/data/corpus.h"
#include "src/digg/types.h"

namespace digg::core {

/// The paper's interestingness threshold: "We define a story to be
/// interesting if it receives at least 520 votes" (§5.1, footnote 3: 500
/// suggested by Fig. 2(a), raised to 520 to keep two borderline top-user
/// stories in the sample).
inline constexpr std::size_t kInterestingnessThreshold = 520;

struct StoryFeatures {
  platform::StoryId story = 0;
  platform::UserId submitter = 0;
  std::size_t v6 = 0;    // in-network votes within first 6 (excl. submitter)
  std::size_t v10 = 0;   // ... within first 10 — the paper's v10
  std::size_t v20 = 0;   // ... within first 20
  std::size_t fans1 = 0;      // submitter's fan count — the paper's fans1
  std::size_t influence10 = 0;  // influence after 10 votes (extension)
  std::size_t final_votes = 0;
  bool interesting = false;   // final_votes > threshold
};

/// Extracts features for one story.
[[nodiscard]] StoryFeatures extract_features(
    const data::Story& story, const graph::Digraph& network,
    std::size_t threshold = kInterestingnessThreshold);

/// Extracts features for a whole sample.
[[nodiscard]] std::vector<StoryFeatures> extract_features(
    const std::vector<data::Story>& stories, const graph::Digraph& network,
    std::size_t threshold = kInterestingnessThreshold);

/// Candidates for the §5.2 held-out set, mirroring the paper's scrape of
/// the upcoming queue: stories submitted by top users (rank < `rank_cutoff`
/// in corpus.top_users) that, `scrape_delay` minutes after submission, were
/// still in the queue (not yet promoted) yet had gathered at least
/// `min_votes` votes beyond the submitter's digg. Final vote counts come
/// from the full record, so stories promoted *after* the scrape are part of
/// the test population (14 of the paper's 48 were).
[[nodiscard]] std::vector<data::Story> top_user_testset(
    const data::Corpus& corpus, std::size_t rank_cutoff = 100,
    std::size_t min_votes = 10,
    platform::Minutes scrape_delay = 6.0 * 60.0);

}  // namespace digg::core
