#include "src/core/ablation.h"

#include <algorithm>

#include "src/core/features.h"
#include "src/stats/summary.h"

namespace digg::core {

namespace {

AblationVariant summarize_variant(std::string name,
                                  const data::Corpus& corpus) {
  AblationVariant v;
  v.name = std::move(name);
  v.front_page = corpus.front_page.size();
  v.upcoming = corpus.upcoming.size();
  if (corpus.front_page.empty()) return v;

  const std::vector<StoryFeatures> features =
      extract_features(corpus.front_page, corpus.network);
  std::vector<double> finals;
  std::vector<double> v10s;
  std::size_t interesting = 0;
  double v10_sum = 0.0;
  for (const StoryFeatures& f : features) {
    finals.push_back(static_cast<double>(f.final_votes));
    v10s.push_back(static_cast<double>(f.v10));
    v10_sum += static_cast<double>(f.v10);
    if (f.interesting) ++interesting;
  }
  v.median_final_votes = stats::summarize(finals).median;
  v.interesting_fraction =
      static_cast<double>(interesting) / static_cast<double>(features.size());
  v.mean_v10 = v10_sum / static_cast<double>(features.size());
  if (features.size() >= 3) {
    try {
      v.spearman_v10_final = stats::spearman(v10s, finals);
    } catch (const std::invalid_argument&) {
      v.spearman_v10_final = 0.0;  // zero variance in one of the series
    }
  }
  return v;
}

}  // namespace

MechanismAblationResult mechanism_ablation(const data::SyntheticParams& params,
                                           std::uint64_t seed) {
  MechanismAblationResult result;
  {
    stats::Rng rng(seed);
    result.full =
        summarize_variant("full model", data::generate_corpus(params, rng).corpus);
  }
  {
    data::SyntheticParams no_fan = params;
    no_fan.vote_model.fan_consider_rate = 0.0;
    stats::Rng rng(seed);
    result.no_fan_channel = summarize_variant(
        "no fan channel", data::generate_corpus(no_fan, rng).corpus);
  }
  {
    data::SyntheticParams no_discovery = params;
    no_discovery.vote_model.upcoming_discovery_rate = 0.0;
    no_discovery.vote_model.upcoming_background_rate = 0.0;
    no_discovery.vote_model.front_page_rate = 0.0;
    stats::Rng rng(seed);
    result.no_discovery = summarize_variant(
        "no discovery", data::generate_corpus(no_discovery, rng).corpus);
  }
  return result;
}

}  // namespace digg::core
