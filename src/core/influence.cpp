#include "src/core/influence.h"

#include <algorithm>
#include <stdexcept>

#include "src/digg/friends_interface.h"

namespace digg::core {

std::size_t influence_after(const platform::StoryView& story,
                            const graph::Digraph& network,
                            std::size_t votes_counted) {
  return platform::story_influence(story, network, votes_counted);
}

std::vector<std::size_t> influence_profile(
    const platform::StoryView& story, const graph::Digraph& network,
    const std::vector<std::size_t>& checkpoints) {
  if (!std::is_sorted(checkpoints.begin(), checkpoints.end()))
    throw std::invalid_argument("influence_profile: checkpoints not ascending");
  // Hybrid scratch set reused across stories: rebinding keeps the buffers,
  // so the fig3a sweep does no per-story allocation, and each vote merges
  // one sorted fan span instead of writing O(num_users) dense stamps.
  thread_local platform::VisibilitySet vis;
  vis.rebind(network);
  const auto voters = story.voters();
  std::vector<std::size_t> out;
  out.reserve(checkpoints.size());
  std::size_t applied = 0;
  for (std::size_t checkpoint : checkpoints) {
    const std::size_t limit = std::min(checkpoint, voters.size());
    for (; applied < limit; ++applied) vis.add_voter(voters[applied]);
    out.push_back(vis.influence());
  }
  return out;
}

}  // namespace digg::core
