#pragma once
// One-call reproduction report: runs every experiment on a corpus and
// renders a Markdown document with the paper-vs-measured comparison —
// the programmatic equivalent of running every bench binary. Used by the
// full_report example; useful for regression-diffing two corpora (e.g.
// synthetic vs converted real data).

#include <iosfwd>
#include <string>

#include "src/data/corpus.h"
#include "src/stats/rng.h"

namespace digg::core {

struct ReportOptions {
  std::size_t fig1_curves = 5;
  bool include_significance = true;  // Mann–Whitney / z-test sections
};

/// Renders the full Markdown report. Deterministic given `rng`'s seed.
[[nodiscard]] std::string reproduction_report(const data::Corpus& corpus,
                                              stats::Rng& rng,
                                              const ReportOptions& options = {});

/// Writes the report to a stream.
void write_reproduction_report(const data::Corpus& corpus, stats::Rng& rng,
                               std::ostream& os,
                               const ReportOptions& options = {});

}  // namespace digg::core
