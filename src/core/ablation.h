#pragma once
// Mechanism ablation: rerun corpus generation with one of the paper's two
// spreading mechanisms disabled, and measure what survives.
//   - "no fan channel": fans never see friends' diggs — §1's claim that
//     social networks drive promotion predicts the front page largely
//     empties and the early-vote signal (Fig. 4) vanishes;
//   - "no discovery": no independent adopters — stories live or die by the
//     submitter's community, popularity decouples from general appeal.
// This is the design-choice ablation DESIGN.md calls out for the vote model.

#include <string>
#include <vector>

#include "src/data/synthetic.h"

namespace digg::core {

struct AblationVariant {
  std::string name;
  std::size_t front_page = 0;
  std::size_t upcoming = 0;
  double median_final_votes = 0.0;     // over front-page stories (0 if none)
  double interesting_fraction = 0.0;   // front-page stories > 520 votes
  double mean_v10 = 0.0;               // over front-page stories
  double spearman_v10_final = 0.0;     // 0 when undefined (<3 stories)
};

struct MechanismAblationResult {
  AblationVariant full;
  AblationVariant no_fan_channel;
  AblationVariant no_discovery;
};

/// Generates three corpora from identical seeds and parameters, differing
/// only in which mechanism is active, and summarizes each.
[[nodiscard]] MechanismAblationResult mechanism_ablation(
    const data::SyntheticParams& params, std::uint64_t seed);

}  // namespace digg::core
