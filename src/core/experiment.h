#pragma once
// Experiment runners: one function per paper artifact (figure, table, or
// quoted statistic). Bench binaries print these results; tests assert the
// qualitative shape the paper reports. Everything consumes the neutral
// data::Corpus, so the runners work identically on synthetic or real data.

#include <cstddef>
#include <optional>
#include <vector>

#include "src/core/features.h"
#include "src/core/predictor.h"
#include "src/data/corpus.h"
#include "src/ml/validation.h"
#include "src/stats/histogram.h"
#include "src/stats/powerlaw.h"
#include "src/stats/rng.h"
#include "src/stats/summary.h"
#include "src/stats/timeseries.h"

namespace digg::core {

// ---------------------------------------------------------------- Fig. 1 --

/// Cumulative vote time series of one story, from its recorded vote times.
[[nodiscard]] stats::TimeSeries vote_timeseries(const data::Story& story);

struct Fig1Result {
  struct StoryCurve {
    platform::StoryId story = 0;
    stats::TimeSeries series;
    std::optional<platform::Minutes> promoted_after;  // minutes to promotion
    std::size_t votes_at_promotion = 0;
    std::optional<platform::Minutes> post_promotion_half_life;
  };
  std::vector<StoryCurve> curves;
};

/// Vote dynamics of `count` randomly chosen front-page stories (Fig. 1:
/// slow accrual upcoming, explosion at promotion, saturation).
[[nodiscard]] Fig1Result fig1_vote_dynamics(const data::Corpus& corpus,
                                            std::size_t count,
                                            stats::Rng& rng);

// --------------------------------------------------------------- Fig. 2a --

struct Fig2aResult {
  stats::LinearHistogram histogram;      // 100-vote bins over [0, 4000)
  double fraction_below_500 = 0.0;       // paper: ~20%
  double fraction_above_1500 = 0.0;      // paper: ~20%
  stats::Summary votes_summary;
};
[[nodiscard]] Fig2aResult fig2a_vote_histogram(const data::Corpus& corpus);

// --------------------------------------------------------------- Fig. 2b --

struct Fig2bResult {
  stats::FrequencyCounter submissions_per_user;  // over users with >= 1
  stats::FrequencyCounter votes_per_user;        // over users with >= 1
  stats::PowerLawFit votes_fit;   // heavy-tail fit of the vote counts
  std::size_t distinct_voters = 0;
  std::size_t distinct_submitters = 0;
};
[[nodiscard]] Fig2bResult fig2b_user_activity(const data::Corpus& corpus);

// --------------------------------------------------------------- Fig. 3a --

struct Fig3aResult {
  /// Raw influence values per story at submission / after 10 / after 20
  /// votes (checkpoints include the submitter's digg internally).
  std::vector<std::size_t> at_submission;
  std::vector<std::size_t> after_10;
  std::vector<std::size_t> after_20;
  /// Quoted statistics (§4.1).
  double fraction_submitters_under_10_fans = 0.0;  // paper: ~half
  double fraction_visible_to_200_after_10 = 0.0;   // paper: ~half
};
[[nodiscard]] Fig3aResult fig3a_influence(const data::Corpus& corpus);

// --------------------------------------------------------------- Fig. 3b --

struct Fig3bResult {
  stats::FrequencyCounter cascade_after_10;
  stats::FrequencyCounter cascade_after_20;
  stats::FrequencyCounter cascade_after_30;
  /// Quoted statistics (§4.1): 30% of stories have >= 5 of first 10 votes
  /// in-network; 28% have >= 10 after 20; 36% have >= 10 after 30.
  double frac_half_of_first10 = 0.0;
  double frac_10plus_after20 = 0.0;
  double frac_10plus_after30 = 0.0;
};
[[nodiscard]] Fig3bResult fig3b_cascades(const data::Corpus& corpus);

// ---------------------------------------------------------------- Fig. 4 --

struct Fig4Group {
  std::size_t in_network_votes = 0;  // x-axis value
  stats::Summary final_votes;        // median + trimmed spread (y)
};
struct Fig4Result {
  std::vector<Fig4Group> after_6;
  std::vector<Fig4Group> after_10;
  std::vector<Fig4Group> after_20;
  /// Spearman correlation between v10 and final votes (the paper's "clear
  /// inverse relationship" — expect a solidly negative value).
  double spearman_v10_final = 0.0;
};
[[nodiscard]] Fig4Result fig4_innetwork_vs_final(const data::Corpus& corpus);

/// Fig. 4 from an already-extracted feature sample. The corpus runner above
/// delegates here; the streaming engine feeds the same function with its
/// incrementally-built features (stream::to_story_features), so batch and
/// stream share one grouping/correlation implementation by construction.
[[nodiscard]] Fig4Result fig4_from_features(
    const std::vector<StoryFeatures>& features);

// ------------------------------------------------------- Fig. 5 and §5.2 --

struct Fig5Result {
  InterestingnessPredictor predictor;       // trained on all front-page
  ml::CrossValidationResult cross_validation;  // 10-fold (174/207 in paper)
  std::size_t training_stories = 0;

  // Held-out evaluation on top-user upcoming stories (paper: 48 stories,
  // TP=4 TN=32 FP=11 FN=1).
  ml::Confusion holdout;
  std::size_t holdout_stories = 0;

  // Digg-promotion comparison (§5.2): among held-out stories that Digg
  // (eventually) promoted / that our classifier calls interesting from the
  // first ten votes, what fraction end interesting. Paper: Digg P=0.36
  // (5/14), ours P=0.57 (4/7).
  std::size_t digg_promoted = 0;
  std::size_t digg_promoted_interesting = 0;
  std::size_t ours_predicted = 0;
  std::size_t ours_predicted_interesting = 0;
  [[nodiscard]] double digg_precision() const;
  [[nodiscard]] double our_precision() const;
};

struct Fig5Params {
  FeatureSet features = FeatureSet::kPaper;
  std::size_t folds = 10;
  std::size_t top_user_rank_cutoff = 100;
  std::size_t min_holdout_votes = 10;
  /// Size of the held-out "scraped from the queue" sample (paper: 48
  /// top-user stories). Sampled from the top-user candidates; any candidate
  /// that lands in the holdout is excluded from training.
  std::size_t holdout_size = 48;
  ml::C45Params c45;
};
[[nodiscard]] Fig5Result fig5_prediction(const data::Corpus& corpus,
                                         const Fig5Params& params,
                                         stats::Rng& rng);

// -------------------------------------------------- §3 quoted statistics --

struct ActivitySkewResult {
  double top3pct_submission_share = 0.0;  // paper: ~35%
  std::size_t min_front_page_votes = 0;   // paper: >= 43
  std::size_t max_upcoming_votes = 0;     // paper: <= 42 at promotion time
  std::size_t max_upcoming_votes_within_day = 0;
  std::size_t front_page_count = 0;
  std::size_t upcoming_count = 0;
};
[[nodiscard]] ActivitySkewResult text_activity_skew(const data::Corpus& corpus);

// -------------------------------------------------------- final scatter --

struct ScatterPoint {
  std::size_t friends_plus_1 = 1;
  std::size_t fans_plus_1 = 1;
  bool top_user = false;
};
/// The paper's final (unnumbered) figure: friends+1 vs fans+1 for all users,
/// with top users highlighted. Only users who appear in the corpus's votes
/// are included (mirrors "users in our dataset").
[[nodiscard]] std::vector<ScatterPoint> friends_fans_scatter(
    const data::Corpus& corpus, std::size_t top_rank_cutoff = 100);

}  // namespace digg::core
