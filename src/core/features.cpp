#include "src/core/features.h"

#include <algorithm>

#include "src/core/cascade.h"
#include "src/core/influence.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/parallel.h"

namespace digg::core {

StoryFeatures extract_features(const data::Story& story,
                               const graph::Digraph& network,
                               std::size_t threshold) {
  StoryFeatures f;
  f.story = story.id;
  f.submitter = story.submitter;
  const std::vector<std::size_t> cascade =
      cascade_profile(story, network, {6, 10, 20});
  f.v6 = cascade[0];
  f.v10 = cascade[1];
  f.v20 = cascade[2];
  f.fans1 = story.submitter < network.node_count()
                ? network.fan_count(story.submitter)
                : 0;
  // Influence checkpoint counts total votes including the submitter's digg;
  // "after 10 votes" in Fig. 3(a) means 10 votes beyond the submitter.
  f.influence10 = influence_profile(story, network, {11})[0];
  f.final_votes = story.vote_count();
  f.interesting = f.final_votes > threshold;
  return f;
}

std::vector<StoryFeatures> extract_features(
    const std::vector<data::Story>& stories, const graph::Digraph& network,
    std::size_t threshold) {
  obs::Span span("extract_features", "core");
  static obs::Counter& extracted =
      obs::Registry::global().counter("core.features_extracted");
  extracted.inc(stories.size());
  // Stories are independent (read-only CSR network scans); features land by
  // story index, so the output order matches the input for any thread count.
  return runtime::parallel_map<StoryFeatures>(
      stories.size(), [&](std::size_t i) {
        return extract_features(stories[i], network, threshold);
      });
}

std::vector<data::Story> top_user_testset(const data::Corpus& corpus,
                                          std::size_t rank_cutoff,
                                          std::size_t min_votes,
                                          platform::Minutes scrape_delay) {
  std::vector<data::Story> out;
  auto consider = [&](const data::Story& s) {
    if (!corpus.is_top_user(s.submitter, rank_cutoff)) return;
    const platform::Minutes scrape_time = s.submitted_at + scrape_delay;
    // Still in the upcoming queue at scrape time...
    if (s.promoted_at && *s.promoted_at <= scrape_time) return;
    // ...but already with >= min_votes votes beyond the submitter's digg.
    if (s.votes_before(scrape_time) < min_votes + 1) return;
    out.push_back(s);
  };
  for (const data::Story& s : corpus.upcoming) consider(s);
  for (const data::Story& s : corpus.front_page) consider(s);
  return out;
}

}  // namespace digg::core
