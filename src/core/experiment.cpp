#include "src/core/experiment.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "src/core/cascade.h"
#include "src/core/influence.h"
#include "src/digg/user.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/parallel.h"

namespace digg::core {

stats::TimeSeries vote_timeseries(const data::Story& story) {
  stats::TimeSeries series;
  const auto times = story.times();
  for (std::size_t i = 0; i < times.size(); ++i) {
    series.append(times[i] - story.submitted_at,
                  static_cast<double>(i + 1));
  }
  return series;
}

Fig1Result fig1_vote_dynamics(const data::Corpus& corpus, std::size_t count,
                              stats::Rng& rng) {
  obs::Span span("fig1_vote_dynamics", "core");
  if (corpus.front_page.empty())
    throw std::invalid_argument("fig1: no front-page stories");
  std::vector<std::size_t> order(corpus.front_page.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::shuffle(order.begin(), order.end(), rng.engine());
  order.resize(std::min(count, order.size()));

  Fig1Result result;
  for (std::size_t idx : order) {
    const data::Story& s = corpus.front_page[idx];
    Fig1Result::StoryCurve curve;
    curve.story = s.id;
    curve.series = vote_timeseries(s);
    if (s.promoted_at) {
      const platform::Minutes rel = *s.promoted_at - s.submitted_at;
      curve.promoted_after = rel;
      curve.votes_at_promotion = s.votes_before(*s.promoted_at + 1e-9);
      curve.post_promotion_half_life = curve.series.half_life(rel);
    }
    result.curves.push_back(std::move(curve));
  }
  return result;
}

Fig2aResult fig2a_vote_histogram(const data::Corpus& corpus) {
  obs::Span span("fig2a_vote_histogram", "core");
  Fig2aResult result{stats::LinearHistogram(0.0, 4000.0, 40), 0.0, 0.0, {}};
  const std::vector<double> votes = data::final_votes(corpus.front_page);
  result.histogram.add_many(votes);
  if (!votes.empty()) {
    const double n = static_cast<double>(votes.size());
    result.fraction_below_500 =
        static_cast<double>(std::count_if(votes.begin(), votes.end(),
                                          [](double v) { return v < 500.0; })) /
        n;
    result.fraction_above_1500 =
        static_cast<double>(
            std::count_if(votes.begin(), votes.end(),
                          [](double v) { return v > 1500.0; })) /
        n;
  }
  result.votes_summary = stats::summarize(votes);
  return result;
}

Fig2bResult fig2b_user_activity(const data::Corpus& corpus) {
  obs::Span span("fig2b_user_activity", "core");
  Fig2bResult result;
  const data::UserActivity activity = data::user_activity(corpus);
  std::vector<std::int64_t> votes_sample;
  for (std::size_t u = 0; u < corpus.user_count(); ++u) {
    if (activity.submissions[u] > 0) {
      result.submissions_per_user.add(activity.submissions[u]);
      ++result.distinct_submitters;
    }
    if (activity.votes[u] > 0) {
      result.votes_per_user.add(activity.votes[u]);
      votes_sample.push_back(activity.votes[u]);
      ++result.distinct_voters;
    }
  }
  if (!votes_sample.empty())
    result.votes_fit = stats::fit_power_law(votes_sample, 1);
  return result;
}

Fig3aResult fig3a_influence(const data::Corpus& corpus) {
  obs::Span span("fig3a_influence", "core");
  Fig3aResult result;
  std::size_t under_10_fans = 0;
  std::size_t visible_200_after_10 = 0;
  // Per-story influence profiles are independent read-only network scans —
  // the hot loop. Profiles land by story index; aggregation stays serial.
  const auto profiles = runtime::parallel_map<std::vector<std::size_t>>(
      corpus.front_page.size(), [&](std::size_t i) {
        // Checkpoints count total votes; "after 10 votes" = submitter + 10.
        return influence_profile(corpus.front_page[i], corpus.network,
                                 {1, 11, 21});
      });
  for (const std::vector<std::size_t>& profile : profiles) {
    result.at_submission.push_back(profile[0]);
    result.after_10.push_back(profile[1]);
    result.after_20.push_back(profile[2]);
    if (profile[0] < 10) ++under_10_fans;
    if (profile[1] >= 200) ++visible_200_after_10;
  }
  const double n = std::max<std::size_t>(1, corpus.front_page.size());
  result.fraction_submitters_under_10_fans =
      static_cast<double>(under_10_fans) / n;
  result.fraction_visible_to_200_after_10 =
      static_cast<double>(visible_200_after_10) / n;
  return result;
}

Fig3bResult fig3b_cascades(const data::Corpus& corpus) {
  obs::Span span("fig3b_cascades", "core");
  Fig3bResult result;
  std::size_t half_of_10 = 0;
  std::size_t ten_after_20 = 0;
  std::size_t ten_after_30 = 0;
  const auto cascades = runtime::parallel_map<std::vector<std::size_t>>(
      corpus.front_page.size(), [&](std::size_t i) {
        return cascade_profile(corpus.front_page[i], corpus.network,
                               {10, 20, 30});
      });
  for (const std::vector<std::size_t>& cascade : cascades) {
    result.cascade_after_10.add(static_cast<std::int64_t>(cascade[0]));
    result.cascade_after_20.add(static_cast<std::int64_t>(cascade[1]));
    result.cascade_after_30.add(static_cast<std::int64_t>(cascade[2]));
    if (cascade[0] >= 5) ++half_of_10;
    if (cascade[1] >= 10) ++ten_after_20;
    if (cascade[2] >= 10) ++ten_after_30;
  }
  const double n = std::max<std::size_t>(1, corpus.front_page.size());
  result.frac_half_of_first10 = static_cast<double>(half_of_10) / n;
  result.frac_10plus_after20 = static_cast<double>(ten_after_20) / n;
  result.frac_10plus_after30 = static_cast<double>(ten_after_30) / n;
  return result;
}

namespace {

std::vector<Fig4Group> group_by_cascade(
    const std::vector<StoryFeatures>& features,
    std::size_t StoryFeatures::* member) {
  std::map<std::size_t, std::vector<double>> groups;
  for (const StoryFeatures& f : features) {
    groups[f.*member].push_back(static_cast<double>(f.final_votes));
  }
  std::vector<Fig4Group> out;
  out.reserve(groups.size());
  for (auto& [k, votes] : groups) {
    Fig4Group g;
    g.in_network_votes = k;
    g.final_votes = stats::summarize(std::move(votes));
    out.push_back(std::move(g));
  }
  return out;
}

}  // namespace

Fig4Result fig4_from_features(const std::vector<StoryFeatures>& features) {
  Fig4Result result;
  result.after_6 = group_by_cascade(features, &StoryFeatures::v6);
  result.after_10 = group_by_cascade(features, &StoryFeatures::v10);
  result.after_20 = group_by_cascade(features, &StoryFeatures::v20);
  if (features.size() >= 3) {
    std::vector<double> v10s;
    std::vector<double> finals;
    for (const StoryFeatures& f : features) {
      v10s.push_back(static_cast<double>(f.v10));
      finals.push_back(static_cast<double>(f.final_votes));
    }
    result.spearman_v10_final = stats::spearman(v10s, finals);
  }
  return result;
}

Fig4Result fig4_innetwork_vs_final(const data::Corpus& corpus) {
  obs::Span span("fig4_innetwork_vs_final", "core");
  return fig4_from_features(extract_features(corpus.front_page,
                                             corpus.network));
}

double Fig5Result::digg_precision() const {
  return digg_promoted == 0 ? 0.0
                            : static_cast<double>(digg_promoted_interesting) /
                                  static_cast<double>(digg_promoted);
}

double Fig5Result::our_precision() const {
  return ours_predicted == 0 ? 0.0
                             : static_cast<double>(ours_predicted_interesting) /
                                   static_cast<double>(ours_predicted);
}

Fig5Result fig5_prediction(const data::Corpus& corpus,
                           const Fig5Params& params, stats::Rng& rng) {
  obs::Span span("fig5_prediction", "core");
  // Held-out "scraped from the queue" sample: top-user stories judged from
  // their first ten votes, final counts retrieved later (§5.2). Sampled
  // before training so the training set can exclude them.
  std::vector<data::Story> candidates = top_user_testset(
      corpus, params.top_user_rank_cutoff, params.min_holdout_votes);
  std::shuffle(candidates.begin(), candidates.end(), rng.engine());
  if (candidates.size() > params.holdout_size)
    candidates.resize(params.holdout_size);
  std::unordered_set<platform::StoryId> holdout_ids;
  for (const data::Story& s : candidates) holdout_ids.insert(s.id);

  std::vector<data::Story> train_stories;
  train_stories.reserve(corpus.front_page.size());
  for (const data::Story& s : corpus.front_page) {
    if (!holdout_ids.count(s.id)) train_stories.push_back(s);
  }
  const std::vector<StoryFeatures> train_features =
      extract_features(train_stories, corpus.network);
  if (train_features.empty())
    throw std::invalid_argument("fig5: no front-page stories to train on");

  Fig5Result result{
      InterestingnessPredictor::train(train_features, params.features,
                                      params.c45),
      cross_validate_predictor(train_features, params.features, params.folds,
                               rng, params.c45),
      train_features.size(),
      {}, 0, 0, 0, 0, 0};

  const std::vector<StoryFeatures> holdout_features =
      extract_features(candidates, corpus.network);
  result.holdout_stories = candidates.size();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const StoryFeatures& f = holdout_features[i];
    const bool predicted = result.predictor.predict(f);
    result.holdout.add(f.interesting, predicted);

    // Digg comparison: the platform's own judgement is whether the story
    // was (eventually) promoted by the 43-vote June-2006 rule.
    if (candidates[i].promoted()) {
      ++result.digg_promoted;
      if (f.interesting) ++result.digg_promoted_interesting;
    }
    if (predicted) {
      ++result.ours_predicted;
      if (f.interesting) ++result.ours_predicted_interesting;
    }
  }
  return result;
}

ActivitySkewResult text_activity_skew(const data::Corpus& corpus) {
  obs::Span span("text_activity_skew", "core");
  ActivitySkewResult result;
  result.front_page_count = corpus.front_page.size();
  result.upcoming_count = corpus.upcoming.size();

  // The paper's statistic is over the population of front-page submitters
  // (the "top 1000 users" with promoted stories), not all registered users.
  std::vector<std::uint32_t> submissions(corpus.user_count(), 0);
  for (const data::Story& s : corpus.front_page) ++submissions[s.submitter];
  std::vector<std::uint32_t> submitter_counts;
  for (std::uint32_t c : submissions)
    if (c > 0) submitter_counts.push_back(c);
  result.top3pct_submission_share =
      submitter_counts.empty() ? 0.0
                               : platform::top_share(submitter_counts, 0.03);

  std::size_t min_fp = static_cast<std::size_t>(-1);
  for (const data::Story& s : corpus.front_page)
    min_fp = std::min(min_fp, s.vote_count());
  result.min_front_page_votes = corpus.front_page.empty() ? 0 : min_fp;

  std::size_t max_up = 0;
  std::size_t max_up_day = 0;
  for (const data::Story& s : corpus.upcoming) {
    max_up = std::max(max_up, s.vote_count());
    max_up_day = std::max(
        max_up_day,
        s.votes_before(s.submitted_at + platform::kMinutesPerDay));
  }
  result.max_upcoming_votes = max_up;
  result.max_upcoming_votes_within_day = max_up_day;
  return result;
}

std::vector<ScatterPoint> friends_fans_scatter(const data::Corpus& corpus,
                                               std::size_t top_rank_cutoff) {
  obs::Span span("friends_fans_scatter", "core");
  std::unordered_set<data::UserId> in_dataset;
  auto absorb = [&](const std::vector<data::Story>& stories) {
    for (const data::Story& s : stories)
      for (data::UserId voter : s.voters()) in_dataset.insert(voter);
  };
  absorb(corpus.front_page);
  absorb(corpus.upcoming);

  std::unordered_set<data::UserId> top;
  for (std::size_t r = 0;
       r < std::min(top_rank_cutoff, corpus.top_users.size()); ++r)
    top.insert(corpus.top_users[r]);

  std::vector<ScatterPoint> out;
  out.reserve(in_dataset.size());
  for (data::UserId u : in_dataset) {
    if (u >= corpus.network.node_count()) continue;
    ScatterPoint p;
    p.friends_plus_1 = corpus.network.friend_count(u) + 1;
    p.fans_plus_1 = corpus.network.fan_count(u) + 1;
    p.top_user = top.count(u) > 0;
    out.push_back(p);
  }
  return out;
}

}  // namespace digg::core
