#include "src/core/cascade.h"

#include <algorithm>
#include <stdexcept>

#include "src/digg/hybrid_set.h"

namespace digg::core {

std::vector<bool> vote_provenance(const StoryView& story,
                                  const graph::Digraph& network) {
  std::vector<bool> provenance;
  const auto voters = story.voters();
  if (voters.empty()) return provenance;
  provenance.reserve(voters.size() - 1);

  // Users who could have seen the story through the Friends interface:
  // fans of the submitter, then fans of each voter as they digg. Hybrid
  // scratch set reused across stories — each vote is one merge of the
  // sorted fan span (bit-sets once the union grows past the bitmap
  // threshold). This loop dominates the fig3b cascade sweep.
  thread_local platform::HybridSet exposed;
  exposed.reset(network.node_count());
  auto expose_fans_of = [&](UserId voter) {
    if (voter < network.node_count()) exposed.union_span(network.fans(voter));
  };
  expose_fans_of(story.submitter);
  for (std::size_t k = 1; k < voters.size(); ++k) {
    const UserId voter = voters[k];
    provenance.push_back(exposed.contains(voter));
    expose_fans_of(voter);
  }
  return provenance;
}

std::size_t in_network_votes(const StoryView& story,
                             const graph::Digraph& network, std::size_t n) {
  const std::vector<bool> provenance = vote_provenance(story, network);
  const std::size_t limit = std::min(n, provenance.size());
  std::size_t count = 0;
  for (std::size_t k = 0; k < limit; ++k)
    if (provenance[k]) ++count;
  return count;
}

std::vector<std::size_t> cascade_profile(
    const StoryView& story, const graph::Digraph& network,
    const std::vector<std::size_t>& checkpoints) {
  if (!std::is_sorted(checkpoints.begin(), checkpoints.end()))
    throw std::invalid_argument("cascade_profile: checkpoints not ascending");
  const std::vector<bool> provenance = vote_provenance(story, network);
  std::vector<std::size_t> out;
  out.reserve(checkpoints.size());
  std::size_t count = 0;
  std::size_t k = 0;
  for (std::size_t checkpoint : checkpoints) {
    const std::size_t limit = std::min(checkpoint, provenance.size());
    for (; k < limit; ++k)
      if (provenance[k]) ++count;
    out.push_back(count);
  }
  return out;
}

}  // namespace digg::core
