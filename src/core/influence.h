#pragma once
// Story influence (§4.1): "A story's influence is given by the number of
// users who can see it through the Friends interface." Computed after a
// given number of votes — Fig. 3(a) reports it at submission, after 10 and
// after 20 votes.

#include <cstddef>
#include <vector>

#include "src/digg/types.h"

namespace digg::core {

/// Influence after the first `votes_counted` votes (including the
/// submitter's digg; pass 1 for "at submission"). Voters themselves are not
/// counted — they have already acted.
[[nodiscard]] std::size_t influence_after(const platform::StoryView& story,
                                          const graph::Digraph& network,
                                          std::size_t votes_counted);

/// Influence at several vote checkpoints in one incremental pass.
/// `checkpoints` must be ascending; values beyond the vote record saturate.
[[nodiscard]] std::vector<std::size_t> influence_profile(
    const platform::StoryView& story, const graph::Digraph& network,
    const std::vector<std::size_t>& checkpoints);

}  // namespace digg::core
