#include "src/core/report.h"

#include <ostream>
#include <sstream>

#include "src/core/experiment.h"
#include "src/stats/hypothesis.h"
#include "src/stats/table.h"

namespace digg::core {

namespace {

void md_row(std::ostringstream& os, const std::string& what,
            const std::string& paper, const std::string& measured) {
  os << "| " << what << " | " << paper << " | " << measured << " |\n";
}

void md_header(std::ostringstream& os) {
  os << "| statistic | paper | measured |\n|---|---|---|\n";
}

}  // namespace

std::string reproduction_report(const data::Corpus& corpus, stats::Rng& rng,
                                const ReportOptions& options) {
  using stats::fmt;
  using stats::fmt_pct;
  std::ostringstream os;
  os << "# Reproduction report\n\n";
  os << "Corpus: " << corpus.user_count() << " users, "
     << corpus.front_page.size() << " front-page stories, "
     << corpus.upcoming.size() << " upcoming stories.\n\n";

  // --- Fig. 1 ---------------------------------------------------------
  os << "## Figure 1 — vote dynamics\n\n";
  const Fig1Result fig1 =
      fig1_vote_dynamics(corpus, options.fig1_curves, rng);
  std::size_t with_half_life = 0;
  double half_life_sum = 0.0;
  for (const auto& c : fig1.curves) {
    if (c.post_promotion_half_life) {
      ++with_half_life;
      half_life_sum += *c.post_promotion_half_life;
    }
  }
  md_header(os);
  md_row(os, "sampled stories promoted within a day", "all",
         fmt(static_cast<std::int64_t>(fig1.curves.size())));
  if (with_half_life > 0) {
    md_row(os, "mean post-promotion half-life", "~1440 min",
           fmt(half_life_sum / static_cast<double>(with_half_life), 0) +
               " min");
  }
  os << "\n";

  // --- Fig. 2a --------------------------------------------------------
  os << "## Figure 2a — final vote histogram\n\n";
  const Fig2aResult fig2a = fig2a_vote_histogram(corpus);
  md_header(os);
  md_row(os, "stories below 500 votes", "~20%",
         fmt_pct(fig2a.fraction_below_500));
  md_row(os, "stories above 1500 votes", "~20%",
         fmt_pct(fig2a.fraction_above_1500));
  md_row(os, "median final votes", "~600-1000",
         fmt(fig2a.votes_summary.median, 0));
  os << "\n";

  // --- Fig. 2b --------------------------------------------------------
  os << "## Figure 2b — user activity\n\n";
  const Fig2bResult fig2b = fig2b_user_activity(corpus);
  md_header(os);
  md_row(os, "distinct voters", "~16,600",
         fmt(static_cast<std::int64_t>(fig2b.distinct_voters)));
  md_row(os, "power-law alpha of votes/user", "~2",
         fmt(fig2b.votes_fit.alpha, 2));
  os << "\n";

  // --- Fig. 3 ---------------------------------------------------------
  os << "## Figure 3 — influence and cascades\n\n";
  const Fig3aResult fig3a = fig3a_influence(corpus);
  const Fig3bResult fig3b = fig3b_cascades(corpus);
  md_header(os);
  md_row(os, "submitters with <10 fans", "~half",
         fmt_pct(fig3a.fraction_submitters_under_10_fans));
  md_row(os, "visible to >=200 users after 10 votes", "~half",
         fmt_pct(fig3a.fraction_visible_to_200_after_10));
  md_row(os, ">=5 of first 10 votes in-network", "30%",
         fmt_pct(fig3b.frac_half_of_first10));
  md_row(os, ">=10 in-network after 20 votes", "28%",
         fmt_pct(fig3b.frac_10plus_after20));
  md_row(os, ">=10 in-network after 30 votes", "36%",
         fmt_pct(fig3b.frac_10plus_after30));
  os << "\n";

  // --- Fig. 4 ---------------------------------------------------------
  os << "## Figure 4 — in-network votes vs interestingness\n\n";
  const Fig4Result fig4 = fig4_innetwork_vs_final(corpus);
  md_header(os);
  md_row(os, "Spearman(v10, final votes)", "clearly negative",
         fmt(fig4.spearman_v10_final, 2));
  if (options.include_significance) {
    // Mann–Whitney: final votes of v10<=3 vs v10>=7 stories.
    const auto features = extract_features(corpus.front_page, corpus.network);
    std::vector<double> low;
    std::vector<double> high;
    for (const StoryFeatures& f : features) {
      if (f.v10 <= 3) low.push_back(static_cast<double>(f.final_votes));
      if (f.v10 >= 7) high.push_back(static_cast<double>(f.final_votes));
    }
    if (low.size() >= 8 && high.size() >= 8) {
      const stats::TestResult mw = stats::mann_whitney_u(low, high);
      md_row(os, "Mann-Whitney p (v10<=3 vs v10>=7 finals)",
             "(not reported)", mw.p_value < 1e-6 ? "<1e-6" : fmt(mw.p_value, 4));
    }
  }
  os << "\n";

  // --- Fig. 5 ---------------------------------------------------------
  os << "## Figure 5 / Section 5.2 — prediction\n\n";
  const Fig5Result fig5 = fig5_prediction(corpus, Fig5Params{}, rng);
  md_header(os);
  md_row(os, "10-fold CV accuracy", "84.1% (174/207)",
         fmt_pct(fig5.cross_validation.pooled.accuracy()));
  md_row(os, "held-out confusion", "TP=4 TN=32 FP=11 FN=1",
         fig5.holdout.to_string());
  md_row(os, "Digg promotion precision", "0.36",
         fmt(fig5.digg_precision(), 2));
  md_row(os, "our precision", "0.57", fmt(fig5.our_precision(), 2));
  if (options.include_significance && fig5.digg_promoted > 0 &&
      fig5.ours_predicted > 0) {
    const stats::TestResult z = stats::two_proportion_z(
        fig5.ours_predicted_interesting, fig5.ours_predicted,
        fig5.digg_promoted_interesting, fig5.digg_promoted);
    md_row(os, "two-proportion z-test p", "(not reported)",
           fmt(z.p_value, 3));
  }
  os << "\n```\n" << fig5.predictor.tree().render() << "```\n\n";

  // --- §3 -------------------------------------------------------------
  os << "## Section 3 — platform statistics\n\n";
  const ActivitySkewResult skew = text_activity_skew(corpus);
  md_header(os);
  md_row(os, "top 3% submitters' share", "35%",
         fmt_pct(skew.top3pct_submission_share));
  md_row(os, "minimum front-page votes", ">=43",
         fmt(static_cast<std::int64_t>(skew.min_front_page_votes)));
  md_row(os, "front-page : upcoming", "~200 : 900",
         fmt(static_cast<std::int64_t>(skew.front_page_count)) + " : " +
             fmt(static_cast<std::int64_t>(skew.upcoming_count)));
  os << "\n";
  return os.str();
}

void write_reproduction_report(const data::Corpus& corpus, stats::Rng& rng,
                               std::ostream& os, const ReportOptions& options) {
  os << reproduction_report(corpus, rng, options);
}

}  // namespace digg::core
