#include "src/data/io.h"

#include <charconv>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "src/digg/story.h"

namespace digg::data {

namespace {

std::ofstream open_out(const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  // Round-trip exact doubles: a corpus written to CSV and reloaded must be
  // value-identical to one restored from a binary snapshot.
  out.precision(std::numeric_limits<double>::max_digits10);
  return out;
}

std::ifstream open_in(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  return in;
}

/// Every parse error carries file name and 1-based line number so a broken
/// row in a multi-million-line vote file can be found directly.
[[noreturn]] void fail_at(const std::filesystem::path& path, std::size_t line,
                          const std::string& message) {
  throw std::runtime_error(path.string() + ":" + std::to_string(line) + ": " +
                           message);
}

std::vector<std::string_view> split(std::string_view line, char sep = ',') {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

template <typename T>
T parse_number(std::string_view s, const char* what) {
  T value{};
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end)
    throw std::runtime_error(std::string("bad ") + what + ": '" +
                             std::string(s) + "'");
  return value;
}

double parse_double(std::string_view s, const char* what) {
  // std::from_chars<double> is not universally available; go through stod.
  try {
    std::size_t used = 0;
    const double v = std::stod(std::string(s), &used);
    if (used != s.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("bad ") + what + ": '" +
                             std::string(s) + "'");
  }
}

void expect_header(std::ifstream& in, const std::string& expected,
                   const std::filesystem::path& path) {
  std::string line;
  if (!std::getline(in, line) || line != expected)
    throw std::runtime_error("bad header in " + path.string() +
                             " (expected '" + expected + "')");
}

/// Runs `body(fields)` for each data row, wrapping any parse exception with
/// the file name and line number. Empty lines are skipped.
template <typename Body>
void for_each_row(const std::filesystem::path& path,
                  const std::string& header, Body&& body) {
  std::ifstream in = open_in(path);
  expect_header(in, header, path);
  std::string line;
  std::size_t lineno = 1;  // header was line 1
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    try {
      body(split(line), line);
    } catch (const std::runtime_error& e) {
      fail_at(path, lineno, e.what());
    }
  }
}

}  // namespace

void save_corpus(const Corpus& corpus, const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);

  {
    std::ofstream out = open_out(dir / "network.csv");
    out << "fan,target\n";
    for (graph::NodeId u = 0; u < corpus.network.node_count(); ++u) {
      for (graph::NodeId v : corpus.network.friends(u)) {
        out << u << ',' << v << '\n';  // u watches v: u is a fan of v
      }
    }
  }
  {
    std::ofstream out = open_out(dir / "stories.csv");
    out << "id,section,submitter,submitted_at,promoted_at,quality\n";
    auto emit = [&](const Story& s, const char* section) {
      out << s.id << ',' << section << ',' << s.submitter << ','
          << s.submitted_at << ',';
      if (s.promoted_at) out << *s.promoted_at;
      out << ',' << s.quality << '\n';
    };
    for (const Story& s : corpus.front_page) emit(s, "front_page");
    for (const Story& s : corpus.upcoming) emit(s, "upcoming");
  }
  {
    std::ofstream out = open_out(dir / "votes.csv");
    out << "story_id,user,time\n";
    auto emit = [&](const Story& s) {
      const auto voters = s.voters();
      const auto times = s.times();
      for (std::size_t i = 0; i < voters.size(); ++i)
        out << s.id << ',' << voters[i] << ',' << times[i] << '\n';
    };
    for (const Story& s : corpus.front_page) emit(s);
    for (const Story& s : corpus.upcoming) emit(s);
  }
  {
    std::ofstream out = open_out(dir / "top_users.csv");
    out << "user\n";
    for (UserId u : corpus.top_users) out << u << '\n';
  }
}

Corpus load_corpus(const std::filesystem::path& dir) {
  Corpus corpus;

  {
    graph::DigraphBuilder builder;
    for_each_row(dir / "network.csv", "fan,target",
                 [&](const std::vector<std::string_view>& fields,
                     const std::string& line) {
                   if (fields.size() != 2)
                     throw std::runtime_error("bad network row: " + line);
                   builder.add_follow(
                       parse_number<graph::NodeId>(fields[0], "fan"),
                       parse_number<graph::NodeId>(fields[1], "target"));
                 });
    corpus.network = builder.build();
  }
  const std::size_t user_count = corpus.network.node_count();

  // Stories and votes are staged as owning platform::Story records (indexed
  // by story id), then bulk-copied into the corpus arena in file order.
  std::vector<platform::Story> staged;
  std::vector<Corpus::Section> sections;
  std::vector<std::uint32_t> index_of;  // story id -> staged index
  constexpr std::uint32_t kAbsent = 0xffffffffu;

  for_each_row(
      dir / "stories.csv",
      "id,section,submitter,submitted_at,promoted_at,quality",
      [&](const std::vector<std::string_view>& fields,
          const std::string& line) {
        if (fields.size() != 6)
          throw std::runtime_error("bad stories row: " + line);
        platform::Story s;
        s.id = parse_number<StoryId>(fields[0], "story id");
        s.submitter = parse_number<UserId>(fields[2], "submitter");
        if (s.submitter >= user_count)
          throw std::runtime_error("submitter " + std::to_string(s.submitter) +
                                   " outside the network (" +
                                   std::to_string(user_count) + " users)");
        s.submitted_at = parse_double(fields[3], "submitted_at");
        if (!fields[4].empty()) {
          s.promoted_at = parse_double(fields[4], "promoted_at");
          s.phase = platform::StoryPhase::kFrontPage;
        }
        s.quality = parse_double(fields[5], "quality");
        const bool is_front = fields[1] == "front_page";
        if (!is_front && fields[1] != "upcoming")
          throw std::runtime_error("bad section: " + line);
        if (is_front != s.promoted_at.has_value())
          throw std::runtime_error("section/promoted_at mismatch: " + line);
        if (s.id >= index_of.size()) index_of.resize(s.id + 1, kAbsent);
        if (index_of[s.id] != kAbsent)
          throw std::runtime_error("duplicate story id " +
                                   std::to_string(s.id));
        index_of[s.id] = static_cast<std::uint32_t>(staged.size());
        staged.push_back(std::move(s));
        sections.push_back(is_front ? Corpus::Section::kFrontPage
                                    : Corpus::Section::kUpcoming);
      });

  for_each_row(dir / "votes.csv", "story_id,user,time",
               [&](const std::vector<std::string_view>& fields,
                   const std::string& line) {
                 if (fields.size() != 3)
                   throw std::runtime_error("bad votes row: " + line);
                 const auto story_id =
                     parse_number<StoryId>(fields[0], "story id");
                 if (story_id >= index_of.size() ||
                     index_of[story_id] == kAbsent)
                   throw std::runtime_error("vote for unknown story: " + line);
                 const UserId user = parse_number<UserId>(fields[1], "voter");
                 if (user >= user_count)
                   throw std::runtime_error(
                       "voter " + std::to_string(user) +
                       " outside the network (" + std::to_string(user_count) +
                       " users)");
                 platform::Story& s = staged[index_of[story_id]];
                 s.voters.push_back(user);
                 s.times.push_back(parse_double(fields[2], "vote time"));
               });

  for_each_row(dir / "top_users.csv", "user",
               [&](const std::vector<std::string_view>& fields,
                   const std::string& line) {
                 if (fields.size() != 1)
                   throw std::runtime_error("bad top_users row: " + line);
                 const UserId u = parse_number<UserId>(fields[0], "top user");
                 if (u >= user_count)
                   throw std::runtime_error(
                       "top user " + std::to_string(u) +
                       " outside the network (" + std::to_string(user_count) +
                       " users)");
                 corpus.top_users.push_back(u);
                 (void)line;
               });

  for (std::size_t i = 0; i < staged.size(); ++i)
    corpus.add_story(staged[i], sections[i]);

  validate(corpus);
  return corpus;
}

}  // namespace digg::data
