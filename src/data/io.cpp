#include "src/data/io.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace digg::data {

namespace {

std::ofstream open_out(const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  return out;
}

std::ifstream open_in(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  return in;
}

std::vector<std::string_view> split(std::string_view line, char sep = ',') {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

template <typename T>
T parse_number(std::string_view s, const char* what) {
  T value{};
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end)
    throw std::runtime_error(std::string("bad ") + what + ": '" +
                             std::string(s) + "'");
  return value;
}

double parse_double(std::string_view s, const char* what) {
  // std::from_chars<double> is not universally available; go through stod.
  try {
    std::size_t used = 0;
    const double v = std::stod(std::string(s), &used);
    if (used != s.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("bad ") + what + ": '" +
                             std::string(s) + "'");
  }
}

void expect_header(std::ifstream& in, const std::string& expected,
                   const std::filesystem::path& path) {
  std::string line;
  if (!std::getline(in, line) || line != expected)
    throw std::runtime_error("bad header in " + path.string() +
                             " (expected '" + expected + "')");
}

}  // namespace

void save_corpus(const Corpus& corpus, const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);

  {
    std::ofstream out = open_out(dir / "network.csv");
    out << "fan,target\n";
    for (graph::NodeId u = 0; u < corpus.network.node_count(); ++u) {
      for (graph::NodeId v : corpus.network.friends(u)) {
        out << u << ',' << v << '\n';  // u watches v: u is a fan of v
      }
    }
  }
  {
    std::ofstream out = open_out(dir / "stories.csv");
    out << "id,section,submitter,submitted_at,promoted_at,quality\n";
    auto emit = [&](const Story& s, const char* section) {
      out << s.id << ',' << section << ',' << s.submitter << ','
          << s.submitted_at << ',';
      if (s.promoted_at) out << *s.promoted_at;
      out << ',' << s.quality << '\n';
    };
    for (const Story& s : corpus.front_page) emit(s, "front_page");
    for (const Story& s : corpus.upcoming) emit(s, "upcoming");
  }
  {
    std::ofstream out = open_out(dir / "votes.csv");
    out << "story_id,user,time\n";
    auto emit = [&](const Story& s) {
      for (const platform::Vote& v : s.votes)
        out << s.id << ',' << v.user << ',' << v.time << '\n';
    };
    for (const Story& s : corpus.front_page) emit(s);
    for (const Story& s : corpus.upcoming) emit(s);
  }
  {
    std::ofstream out = open_out(dir / "top_users.csv");
    out << "user\n";
    for (UserId u : corpus.top_users) out << u << '\n';
  }
}

Corpus load_corpus(const std::filesystem::path& dir) {
  Corpus corpus;

  {
    std::ifstream in = open_in(dir / "network.csv");
    expect_header(in, "fan,target", dir / "network.csv");
    graph::DigraphBuilder builder;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const auto fields = split(line);
      if (fields.size() != 2)
        throw std::runtime_error("bad network.csv row: " + line);
      builder.add_follow(parse_number<graph::NodeId>(fields[0], "fan"),
                         parse_number<graph::NodeId>(fields[1], "target"));
    }
    corpus.network = builder.build();
  }

  std::vector<Story*> by_id;
  {
    std::ifstream in = open_in(dir / "stories.csv");
    expect_header(in, "id,section,submitter,submitted_at,promoted_at,quality",
                  dir / "stories.csv");
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const auto fields = split(line);
      if (fields.size() != 6)
        throw std::runtime_error("bad stories.csv row: " + line);
      Story s;
      s.id = parse_number<StoryId>(fields[0], "story id");
      s.submitter = parse_number<UserId>(fields[2], "submitter");
      s.submitted_at = parse_double(fields[3], "submitted_at");
      if (!fields[4].empty()) {
        s.promoted_at = parse_double(fields[4], "promoted_at");
        s.phase = platform::StoryPhase::kFrontPage;
      }
      s.quality = parse_double(fields[5], "quality");
      const bool is_front = fields[1] == "front_page";
      if (!is_front && fields[1] != "upcoming")
        throw std::runtime_error("bad section in stories.csv: " + line);
      if (is_front != s.promoted_at.has_value())
        throw std::runtime_error("section/promoted_at mismatch: " + line);
      auto& bucket = is_front ? corpus.front_page : corpus.upcoming;
      bucket.push_back(std::move(s));
    }
    // Build the id index after both vectors stopped reallocating.
    std::size_t max_id = 0;
    for (const Story& s : corpus.front_page) max_id = std::max<std::size_t>(max_id, s.id);
    for (const Story& s : corpus.upcoming) max_id = std::max<std::size_t>(max_id, s.id);
    by_id.assign(max_id + 1, nullptr);
    for (Story& s : corpus.front_page) by_id[s.id] = &s;
    for (Story& s : corpus.upcoming) by_id[s.id] = &s;
  }

  {
    std::ifstream in = open_in(dir / "votes.csv");
    expect_header(in, "story_id,user,time", dir / "votes.csv");
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const auto fields = split(line);
      if (fields.size() != 3)
        throw std::runtime_error("bad votes.csv row: " + line);
      const auto story_id = parse_number<StoryId>(fields[0], "story id");
      if (story_id >= by_id.size() || by_id[story_id] == nullptr)
        throw std::runtime_error("vote for unknown story: " + line);
      platform::Vote v;
      v.user = parse_number<UserId>(fields[1], "voter");
      v.time = parse_double(fields[2], "vote time");
      by_id[story_id]->votes.push_back(v);
    }
  }

  {
    std::ifstream in = open_in(dir / "top_users.csv");
    expect_header(in, "user", dir / "top_users.csv");
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      corpus.top_users.push_back(parse_number<UserId>(line, "top user"));
    }
  }

  validate(corpus);
  return corpus;
}

}  // namespace digg::data
