#include "src/data/corpus.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace digg::data {

std::size_t Corpus::rank_of(UserId user) const {
  const auto it = std::find(top_users.begin(), top_users.end(), user);
  return it == top_users.end()
             ? npos
             : static_cast<std::size_t>(it - top_users.begin());
}

bool Corpus::is_top_user(UserId user, std::size_t cutoff) const {
  const std::size_t rank = rank_of(user);
  return rank != npos && rank < cutoff;
}

UserActivity user_activity(const Corpus& corpus) {
  UserActivity act;
  act.submissions.assign(corpus.user_count(), 0);
  act.votes.assign(corpus.user_count(), 0);
  for (const Story& s : corpus.front_page) {
    if (s.submitter < act.submissions.size()) ++act.submissions[s.submitter];
    for (const platform::Vote& v : s.votes) {
      if (v.user < act.votes.size()) ++act.votes[v.user];
    }
  }
  return act;
}

std::vector<double> final_votes(const std::vector<Story>& stories) {
  std::vector<double> out;
  out.reserve(stories.size());
  for (const Story& s : stories)
    out.push_back(static_cast<double>(s.vote_count()));
  return out;
}

namespace {

void validate_story(const Story& s, std::size_t user_count,
                    const char* which) {
  const std::string ctx = std::string(which) + " story " +
                          std::to_string(s.id) + ": ";
  if (s.votes.empty())
    throw std::runtime_error(ctx + "no votes (submitter digg missing)");
  if (s.votes.front().user != s.submitter)
    throw std::runtime_error(ctx + "first vote is not the submitter's");
  if (s.submitter >= user_count)
    throw std::runtime_error(ctx + "submitter outside the network");
  std::unordered_set<UserId> seen;
  platform::Minutes prev = s.votes.front().time;
  for (const platform::Vote& v : s.votes) {
    if (v.user >= user_count)
      throw std::runtime_error(ctx + "voter outside the network");
    if (!seen.insert(v.user).second)
      throw std::runtime_error(ctx + "duplicate voter");
    if (v.time < prev)
      throw std::runtime_error(ctx + "votes out of chronological order");
    prev = v.time;
  }
}

}  // namespace

void validate(const Corpus& corpus) {
  for (const Story& s : corpus.front_page) {
    validate_story(s, corpus.user_count(), "front-page");
    if (!s.promoted())
      throw std::runtime_error("front-page story " + std::to_string(s.id) +
                               ": missing promotion time");
  }
  for (const Story& s : corpus.upcoming) {
    validate_story(s, corpus.user_count(), "upcoming");
    if (s.promoted())
      throw std::runtime_error("upcoming story " + std::to_string(s.id) +
                               ": has a promotion time");
  }
  for (UserId u : corpus.top_users) {
    if (u >= corpus.user_count())
      throw std::runtime_error("top user outside the network");
  }
}

}  // namespace digg::data
