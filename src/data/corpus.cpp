#include "src/data/corpus.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/obs/metrics.h"

namespace digg::data {

namespace {

void record_vote_column_bytes(const VoteStore& store) {
  static obs::Gauge& gauge =
      obs::Registry::global().gauge("data.corpus_vote_column_bytes");
  gauge.set(static_cast<double>(store.size_bytes()));
}

}  // namespace

Corpus& Corpus::operator=(const Corpus& other) {
  if (this == &other) return *this;
  network = other.network;
  vote_store = other.vote_store;
  front_page = other.front_page;
  upcoming = other.upcoming;
  top_users = other.top_users;
  model_id = other.model_id;
  backing = other.backing;  // borrowed spans stay valid across copies
  rebind_views();  // copied views still point at other's arena
  return *this;
}

Story& Corpus::add_story(const Story& story, Section section) {
  const std::uint32_t slot = vote_store.append(story.voters(), story.times());
  auto& bucket = section == Section::kFrontPage ? front_page : upcoming;
  Story& resident = bucket.emplace_back(story);
  resident.bind(vote_store.voters(slot), vote_store.times(slot), slot);
  // Growing the arena may have relocated the columns under earlier views.
  rebind_views();
  record_vote_column_bytes(vote_store);
  return bucket.back();
}

void Corpus::rebind_views() {
  const auto rebind = [&](Story& s) {
    const std::uint32_t slot = s.store_slot();
    if (slot != Story::kNoSlot)
      s.bind(vote_store.voters(slot), vote_store.times(slot), slot);
  };
  for (Story& s : front_page) rebind(s);
  for (Story& s : upcoming) rebind(s);
}

std::size_t Corpus::rank_of(UserId user) const {
  const auto it = std::find(top_users.begin(), top_users.end(), user);
  return it == top_users.end()
             ? npos
             : static_cast<std::size_t>(it - top_users.begin());
}

bool Corpus::is_top_user(UserId user, std::size_t cutoff) const {
  const std::size_t rank = rank_of(user);
  return rank != npos && rank < cutoff;
}

UserActivity user_activity(const Corpus& corpus) {
  UserActivity act;
  act.submissions.assign(corpus.user_count(), 0);
  act.votes.assign(corpus.user_count(), 0);
  for (const Story& s : corpus.front_page) {
    if (s.submitter < act.submissions.size()) ++act.submissions[s.submitter];
    for (UserId voter : s.voters()) {
      if (voter < act.votes.size()) ++act.votes[voter];
    }
  }
  return act;
}

std::vector<double> final_votes(const std::vector<Story>& stories) {
  std::vector<double> out;
  out.reserve(stories.size());
  for (const Story& s : stories)
    out.push_back(static_cast<double>(s.vote_count()));
  return out;
}

namespace {

void validate_story(const Story& s, std::size_t user_count,
                    const char* which) {
  const std::string ctx = std::string(which) + " story " +
                          std::to_string(s.id) + ": ";
  const auto voters = s.voters();
  const auto times = s.times();
  if (voters.empty())
    throw std::runtime_error(ctx + "no votes (submitter digg missing)");
  if (voters.front() != s.submitter)
    throw std::runtime_error(ctx + "first vote is not the submitter's");
  if (s.submitter >= user_count)
    throw std::runtime_error(ctx + "submitter outside the network");
  for (std::size_t i = 0; i < voters.size(); ++i) {
    if (voters[i] >= user_count)
      throw std::runtime_error(ctx + "voter outside the network");
    if (i > 0 && times[i] < times[i - 1])
      throw std::runtime_error(ctx + "votes out of chronological order");
  }
  // Duplicate check via sort — no per-story hash set on the hot path.
  std::vector<UserId> sorted(voters.begin(), voters.end());
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
    throw std::runtime_error(ctx + "duplicate voter");
}

}  // namespace

void validate(const Corpus& corpus) {
  for (const Story& s : corpus.front_page) {
    validate_story(s, corpus.user_count(), "front-page");
    if (!s.promoted())
      throw std::runtime_error("front-page story " + std::to_string(s.id) +
                               ": missing promotion time");
  }
  for (const Story& s : corpus.upcoming) {
    validate_story(s, corpus.user_count(), "upcoming");
    if (s.promoted())
      throw std::runtime_error("upcoming story " + std::to_string(s.id) +
                               ": has a promotion time");
  }
  for (UserId u : corpus.top_users) {
    if (u >= corpus.user_count())
      throw std::runtime_error("top user outside the network");
  }
}

}  // namespace digg::data
