#pragma once
// The neutral dataset boundary. Every §4–§5 analysis consumes a Corpus; the
// synthetic generator (synthetic.h), the CSV loader (io.h), and the binary
// snapshot loader (snapshot.h) all produce one, so the real June-2006 scrape
// could be substituted without touching analysis code. Mirrors the paper's
// data (§3.1–3.2):
//   - ~200 front-page stories with chronologically ordered votes
//     (submitter first) and final vote counts,
//   - ~900 upcoming-queue stories from the same period,
//   - the fan network of all voters,
//   - the top-user ranking.
//
// Storage is columnar: all vote records live in one arena (VoteStore) and a
// data::Story is a platform::StoryView — metadata by value plus spans into
// the arena. Stories enter through add_story(), which copies their votes in
// and keeps every view bound; copying a Corpus rebinds views to the copied
// arena, and moves are cheap (spans follow the moved heap buffers).

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/data/vote_store.h"
#include "src/digg/types.h"

namespace digg::data {

namespace snapfmt {
class MmapSectionFile;
}  // namespace snapfmt

using Story = platform::StoryView;
using platform::StoryId;
using platform::UserId;

struct Corpus {
  graph::Digraph network;  // fan graph over all users (user id = node id)
  VoteStore vote_store;    // every story's vote columns, in one arena
  std::vector<Story> front_page;  // promoted stories
  std::vector<Story> upcoming;    // never-promoted stories (final counts known)
  /// Users ranked by reputation (promoted submissions), best first. The
  /// paper's top-user cutoffs (rank <= 100, top 1020 snapshot) index into
  /// this.
  std::vector<UserId> top_users;
  /// Which registered dynamics::Model generated the vote records (see
  /// dynamics/model.h). Loaded corpora carry the id recorded in their
  /// snapshot; files that predate the MODELINFO section default to the
  /// legacy two-mechanism model. Real scraped data would use a reserved id.
  std::string model_id = "two-mechanism";  // dynamics::kLegacyModelId
  /// Keeps a memory-mapped snapshot alive while `network`/`vote_store`
  /// borrow column spans from it (load_snapshot_mmap). Null for owned
  /// corpora; copies of the corpus share the mapping.
  std::shared_ptr<const snapfmt::MmapSectionFile> backing;

  enum class Section { kFrontPage, kUpcoming };

  Corpus() = default;
  Corpus(const Corpus& other) { *this = other; }
  Corpus& operator=(const Corpus& other);
  Corpus(Corpus&&) noexcept = default;
  Corpus& operator=(Corpus&&) noexcept = default;

  /// Copies `story`'s metadata and votes into the corpus (a platform::Story
  /// converts implicitly). Returns the arena-bound resident view.
  Story& add_story(const Story& story, Section section);

  [[nodiscard]] std::size_t user_count() const noexcept {
    return network.node_count();
  }
  [[nodiscard]] std::size_t story_count() const noexcept {
    return front_page.size() + upcoming.size();
  }

  /// Rank of a user in the top-user list (0-based), or npos if absent.
  [[nodiscard]] std::size_t rank_of(UserId user) const;
  /// True if `user` is among the `cutoff` highest-ranked users (the paper's
  /// "top users (with rank <= 100)" uses cutoff = 100).
  [[nodiscard]] bool is_top_user(UserId user, std::size_t cutoff) const;

  /// Re-points every story view at this corpus's arena (used after the
  /// arena relocates: add_story growth, corpus copies, snapshot loads).
  void rebind_views();

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Per-user activity counts (Fig. 2b): number of front-page submissions and
/// number of votes cast, over the given stories.
struct UserActivity {
  std::vector<std::uint32_t> submissions;
  std::vector<std::uint32_t> votes;
};
[[nodiscard]] UserActivity user_activity(const Corpus& corpus);

/// Final vote counts of the front-page stories (Fig. 2a input).
[[nodiscard]] std::vector<double> final_votes(const std::vector<Story>& stories);

/// Basic integrity checks; throws std::runtime_error describing the first
/// violation (vote order, duplicate voters, submitter-first, node range).
void validate(const Corpus& corpus);

}  // namespace digg::data
