#include "src/data/scenario.h"

#include <algorithm>
#include <stdexcept>

namespace digg::data {

namespace {

ScenarioSpec legacy_scenario() {
  ScenarioSpec s;
  s.name = "legacy";
  s.description =
      "calibrated two-mechanism reconstruction (the figures' corpus)";
  // Pure defaults: this is bit-identical to the pre-scenario generator.
  return s;
}

ScenarioSpec stochastic_base() {
  ScenarioSpec s;
  s.name = "stochastic";
  s.description =
      "rate-based stochastic user model, June-2006 count-and-rate promotion";
  s.params.model_id = dynamics::kStochasticModelId;
  return s;
}

}  // namespace

std::vector<std::string> scenario_names() {
  return {"legacy", "stochastic", "stochastic-diversity", "stochastic-flat",
          "stochastic-casual"};
}

ScenarioSpec make_scenario(std::string_view name, std::uint64_t seed) {
  ScenarioSpec s;
  if (name == "legacy") {
    s = legacy_scenario();
  } else if (name == "stochastic") {
    s = stochastic_base();
  } else if (name == "stochastic-diversity") {
    // Promotion-algorithm variant: diversity-weighted promotion discounts
    // fan votes, the direction Digg announced after the top-user
    // controversy (§6).
    s = stochastic_base();
    s.name = "stochastic-diversity";
    s.description =
        "stochastic model under diversity-weighted promotion (fan votes "
        "discounted)";
    s.params.promotion_rule = PromotionRule::kDiversity;
  } else if (name == "stochastic-flat") {
    // Network-skew variant: heavier smoothing flattens the preferential-
    // attachment fan distribution, so no submitter starts with a mega-hub
    // audience.
    s = stochastic_base();
    s.name = "stochastic-flat";
    s.description =
        "stochastic model on a low-skew fan network (no mega-hub "
        "submitters)";
    s.params.network.smoothing = 12.0;
  } else if (name == "stochastic-casual") {
    // Activity-mix variant: a flatter activity profile with a busier median
    // user — discovery traffic shifts from the hyperactive top users toward
    // the casual majority.
    s = stochastic_base();
    s.name = "stochastic-casual";
    s.description =
        "stochastic model with a flatter, busier activity profile";
    s.params.population.activity_zipf_exponent = 0.6;
    s.params.population.base_activity_rate = 0.8;
  } else {
    std::string known;
    for (const std::string& n : scenario_names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("unknown scenario '" + std::string(name) +
                                "' (known: " + known + ")");
  }
  s.seed = seed;
  return s;
}

void downscale(ScenarioSpec& spec, std::size_t users, std::size_t stories) {
  spec.params.user_count = users;
  spec.params.story_count = stories;
  spec.params.top_submitter_pool =
      std::min<std::size_t>(spec.params.top_submitter_pool, users);
  // Coarser steps keep smoke runs fast; both nested model params move so
  // the downscale applies whichever model the scenario names.
  spec.params.vote_model.step = 4.0;
  spec.params.stochastic.step = 4.0;
}

}  // namespace digg::data
