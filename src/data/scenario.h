#pragma once
// Named generation scenarios: one spec bundles a registered dynamics::Model
// id, the fully configured SyntheticParams, and a seed, so every bench,
// example, and test asks for a corpus the same way ("legacy", seed 42)
// instead of hand-assembling parameter structs. The scenario axes follow
// the questions the paper leaves open — how the promotion algorithm and the
// fan-network skew shape what gets promoted (§6) — plus an activity-mix
// axis the stochastic model (arXiv:1202.0031) makes expressible.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/data/synthetic.h"

namespace digg::data {

struct ScenarioSpec {
  std::string name;
  std::string description;  // one line, for --help style listings
  SyntheticParams params;   // params.model_id names the generative model
  std::uint64_t seed = 42;

  [[nodiscard]] const std::string& model_id() const noexcept {
    return params.model_id;
  }
};

/// Registered scenario names, in listing order ("legacy" first).
[[nodiscard]] std::vector<std::string> scenario_names();

/// The named scenario with `seed` substituted. Throws std::invalid_argument
/// naming the known scenarios for an unknown name.
[[nodiscard]] ScenarioSpec make_scenario(std::string_view name,
                                         std::uint64_t seed = 42);

/// Shrinks a scenario for smoke tests and perf harnesses: `users`/`stories`
/// replace the population and story counts and the simulation step is
/// coarsened to keep tiny runs fast. Keeps everything else — model,
/// promotion rule, skew — so downscaled runs still exercise the scenario's
/// distinguishing machinery.
void downscale(ScenarioSpec& spec, std::size_t users, std::size_t stories);

}  // namespace digg::data
