#pragma once
// Corpus slicing utilities: the paper repeatedly restricts its samples
// ("stories submitted by top users", "stories with at least 10 votes",
// "submitted within the same time period"). These filters make the same
// restrictions first-class and reusable across benches and examples.

#include <functional>
#include <vector>

#include "src/data/corpus.h"

namespace digg::data {

using StoryPredicate = std::function<bool(const Story&)>;

/// Stories (from both sections) matching the predicate. The returned
/// stories are views into `corpus`'s vote arena — cheap to copy, but they
/// must not outlive (or observe mutations of) the source corpus. Use
/// filter_corpus for a self-contained result.
[[nodiscard]] std::vector<Story> select_stories(const Corpus& corpus,
                                                const StoryPredicate& keep);

/// A corpus restricted to matching stories (network/top-users unchanged).
[[nodiscard]] Corpus filter_corpus(const Corpus& corpus,
                                   const StoryPredicate& keep);

// Ready-made predicates -----------------------------------------------------

/// Submitted within [from, to) minutes.
[[nodiscard]] StoryPredicate submitted_between(platform::Minutes from,
                                               platform::Minutes to);

/// At least `n` votes beyond the submitter's digg.
[[nodiscard]] StoryPredicate min_votes(std::size_t n);

/// Submitter ranked better than `cutoff` in the corpus's top-user list.
/// (Captures the corpus by reference — it must outlive the predicate.)
[[nodiscard]] StoryPredicate by_top_user(const Corpus& corpus,
                                         std::size_t cutoff);

/// Logical combinators.
[[nodiscard]] StoryPredicate both(StoryPredicate a, StoryPredicate b);
[[nodiscard]] StoryPredicate either(StoryPredicate a, StoryPredicate b);
[[nodiscard]] StoryPredicate negate(StoryPredicate p);

}  // namespace digg::data
