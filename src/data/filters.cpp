#include "src/data/filters.h"

namespace digg::data {

std::vector<Story> select_stories(const Corpus& corpus,
                                  const StoryPredicate& keep) {
  std::vector<Story> out;
  for (const Story& s : corpus.front_page)
    if (keep(s)) out.push_back(s);
  for (const Story& s : corpus.upcoming)
    if (keep(s)) out.push_back(s);
  return out;
}

Corpus filter_corpus(const Corpus& corpus, const StoryPredicate& keep) {
  Corpus out;
  out.network = corpus.network;
  out.top_users = corpus.top_users;
  // add_story deep-copies votes into out's own arena, so the filtered corpus
  // is self-contained and outlives the source.
  for (const Story& s : corpus.front_page)
    if (keep(s)) out.add_story(s, Corpus::Section::kFrontPage);
  for (const Story& s : corpus.upcoming)
    if (keep(s)) out.add_story(s, Corpus::Section::kUpcoming);
  return out;
}

StoryPredicate submitted_between(platform::Minutes from, platform::Minutes to) {
  return [from, to](const Story& s) {
    return s.submitted_at >= from && s.submitted_at < to;
  };
}

StoryPredicate min_votes(std::size_t n) {
  return [n](const Story& s) { return s.vote_count() >= n + 1; };
}

StoryPredicate by_top_user(const Corpus& corpus, std::size_t cutoff) {
  return [&corpus, cutoff](const Story& s) {
    return corpus.is_top_user(s.submitter, cutoff);
  };
}

StoryPredicate both(StoryPredicate a, StoryPredicate b) {
  return [a = std::move(a), b = std::move(b)](const Story& s) {
    return a(s) && b(s);
  };
}

StoryPredicate either(StoryPredicate a, StoryPredicate b) {
  return [a = std::move(a), b = std::move(b)](const Story& s) {
    return a(s) || b(s);
  };
}

StoryPredicate negate(StoryPredicate p) {
  return [p = std::move(p)](const Story& s) { return !p(s); };
}

}  // namespace digg::data
