#pragma once
// Arena-backed columnar vote storage for a corpus: every story's voter ids
// and vote times live in two shared contiguous arrays, with a CSR-style
// offset table mapping a story's *slot* to its range. A thousand-story
// corpus is three allocations instead of two per story, snapshot I/O is a
// handful of column writes, and whole-corpus scans (user activity, vote
// histograms) stream one dense array.
//
// Slots are append-only and returned by append(); data::Story (a
// platform::StoryView) records its slot so owners can rebind views after
// the arena relocates (growth or corpus copies).
//
// The store has two modes:
//   - *owned* (default): the columns are vectors and append() grows them;
//   - *borrowed* (from_views): the columns are spans over caller-owned
//     memory — a memory-mapped snapshot's vote chunks — and the store is
//     read-only. The voter/time data may be split across several chunks
//     (bounded chunk bodies in snapshot format v2); chunk boundaries
//     always fall on story boundaries, so a story's spans are still
//     contiguous and voters()/times() just add a chunk lookup.

#include <cstdint>
#include <span>
#include <vector>

#include "src/digg/types.h"

namespace digg::data {

/// One borrowed vote chunk: a contiguous run of whole stories whose voter
/// and time columns live in caller-owned memory.
struct VoteChunkView {
  std::size_t first_story = 0;   // global index of the chunk's first story
  std::uint64_t first_vote = 0;  // global index of its first vote
  std::span<const platform::UserId> users;
  std::span<const platform::Minutes> times;
};

class VoteStore {
 public:
  VoteStore() { offsets_view_ = offsets_; }
  VoteStore(VoteStore&&) noexcept = default;  // moved vectors keep buffers
  VoteStore& operator=(VoteStore&&) noexcept = default;
  VoteStore(const VoteStore& other) { *this = other; }
  VoteStore& operator=(const VoteStore& other);

  /// Copies one story's columns into the arena; returns its slot.
  /// Throws std::invalid_argument if the columns differ in length and
  /// std::logic_error if the store is borrowed (read-only).
  std::uint32_t append(std::span<const platform::UserId> voters,
                       std::span<const platform::Minutes> times);

  [[nodiscard]] std::span<const platform::UserId> voters(
      std::uint32_t slot) const {
    const std::size_t count =
        static_cast<std::size_t>(offsets_view_[slot + 1] -
                                 offsets_view_[slot]);
    if (!borrowed_) return {users_.data() + offsets_view_[slot], count};
    const VoteChunkView& c = chunk_of(slot);
    return {c.users.data() + (offsets_view_[slot] - c.first_vote), count};
  }
  [[nodiscard]] std::span<const platform::Minutes> times(
      std::uint32_t slot) const {
    const std::size_t count =
        static_cast<std::size_t>(offsets_view_[slot + 1] -
                                 offsets_view_[slot]);
    if (!borrowed_) return {times_.data() + offsets_view_[slot], count};
    const VoteChunkView& c = chunk_of(slot);
    return {c.times.data() + (offsets_view_[slot] - c.first_vote), count};
  }

  [[nodiscard]] std::size_t story_count() const noexcept {
    return offsets_view_.size() - 1;
  }
  [[nodiscard]] std::size_t total_votes() const noexcept {
    return static_cast<std::size_t>(offsets_view_.back());
  }
  /// Bytes addressed by the three columns: heap capacity when owned,
  /// mapped column footprint when borrowed.
  [[nodiscard]] std::size_t size_bytes() const noexcept;

  /// True when the columns borrow caller-owned (mapped) memory.
  [[nodiscard]] bool borrowed() const noexcept { return borrowed_; }

  /// The CSR offset column (size story_count()+1), whichever mode.
  [[nodiscard]] std::span<const std::uint64_t> offsets() const noexcept {
    return offsets_view_;
  }

  /// Reassembles a store from raw columns (snapshot deserialisation).
  /// Validates the offset table; throws std::invalid_argument on mismatch.
  [[nodiscard]] static VoteStore from_parts(
      std::vector<std::uint64_t> offsets, std::vector<platform::UserId> users,
      std::vector<platform::Minutes> times);

  /// Borrowed-mode assembly over caller-owned columns (memory-mapped
  /// snapshot chunks). Validates that the offset table is monotone and
  /// that the chunks tile the story range exactly; throws
  /// std::invalid_argument on mismatch. The caller must keep the
  /// underlying memory alive for the store's lifetime; copying a borrowed
  /// store copies the spans, not the data.
  [[nodiscard]] static VoteStore from_views(
      std::span<const std::uint64_t> offsets,
      std::vector<VoteChunkView> chunks);

 private:
  [[nodiscard]] const VoteChunkView& chunk_of(std::uint32_t slot) const;

  // All reads of the offset table go through this span; it aliases either
  // offsets_ (owned) or a mapped column (borrowed).
  std::span<const std::uint64_t> offsets_view_;
  bool borrowed_ = false;

  // offsets_[s] .. offsets_[s+1] is slot s's range in the data columns.
  std::vector<std::uint64_t> offsets_{0};
  std::vector<platform::UserId> users_;
  std::vector<platform::Minutes> times_;

  // Borrowed mode only: chunks sorted by first_story, tiling [0, S).
  std::vector<VoteChunkView> chunks_;
};

}  // namespace digg::data
