#pragma once
// Arena-backed columnar vote storage for a corpus: every story's voter ids
// and vote times live in two shared contiguous arrays, with a CSR-style
// offset table mapping a story's *slot* to its range. A thousand-story
// corpus is three allocations instead of two per story, snapshot I/O is a
// handful of column writes, and whole-corpus scans (user activity, vote
// histograms) stream one dense array.
//
// Slots are append-only and returned by append(); data::Story (a
// platform::StoryView) records its slot so owners can rebind views after
// the arena relocates (growth or corpus copies).

#include <cstdint>
#include <span>
#include <vector>

#include "src/digg/types.h"

namespace digg::data {

class VoteStore {
 public:
  /// Copies one story's columns into the arena; returns its slot.
  /// Throws std::invalid_argument if the columns differ in length.
  std::uint32_t append(std::span<const platform::UserId> voters,
                       std::span<const platform::Minutes> times);

  [[nodiscard]] std::span<const platform::UserId> voters(
      std::uint32_t slot) const {
    return {users_.data() + offsets_[slot],
            static_cast<std::size_t>(offsets_[slot + 1] - offsets_[slot])};
  }
  [[nodiscard]] std::span<const platform::Minutes> times(
      std::uint32_t slot) const {
    return {times_.data() + offsets_[slot],
            static_cast<std::size_t>(offsets_[slot + 1] - offsets_[slot])};
  }

  [[nodiscard]] std::size_t story_count() const noexcept {
    return offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t total_votes() const noexcept {
    return users_.size();
  }
  /// Resident bytes of the three columns (capacity, not size).
  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return offsets_.capacity() * sizeof(std::uint64_t) +
           users_.capacity() * sizeof(platform::UserId) +
           times_.capacity() * sizeof(platform::Minutes);
  }

  /// Raw columns, exposed for binary snapshot serialisation.
  [[nodiscard]] const std::vector<std::uint64_t>& offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] const std::vector<platform::UserId>& users() const noexcept {
    return users_;
  }
  [[nodiscard]] const std::vector<platform::Minutes>& vote_times()
      const noexcept {
    return times_;
  }

  /// Reassembles a store from raw columns (snapshot deserialisation).
  /// Validates the offset table; throws std::invalid_argument on mismatch.
  [[nodiscard]] static VoteStore from_parts(
      std::vector<std::uint64_t> offsets, std::vector<platform::UserId> users,
      std::vector<platform::Minutes> times);

 private:
  // offsets_[s] .. offsets_[s+1] is slot s's range in the data columns.
  std::vector<std::uint64_t> offsets_{0};
  std::vector<platform::UserId> users_;
  std::vector<platform::Minutes> times_;
};

}  // namespace digg::data
