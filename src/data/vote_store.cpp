#include "src/data/vote_store.h"

#include <stdexcept>

namespace digg::data {

std::uint32_t VoteStore::append(std::span<const platform::UserId> voters,
                                std::span<const platform::Minutes> times) {
  if (voters.size() != times.size())
    throw std::invalid_argument("VoteStore::append: column length mismatch");
  const auto slot = static_cast<std::uint32_t>(offsets_.size() - 1);
  users_.insert(users_.end(), voters.begin(), voters.end());
  times_.insert(times_.end(), times.begin(), times.end());
  offsets_.push_back(users_.size());
  return slot;
}

VoteStore VoteStore::from_parts(std::vector<std::uint64_t> offsets,
                                std::vector<platform::UserId> users,
                                std::vector<platform::Minutes> times) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != users.size() || users.size() != times.size())
    throw std::invalid_argument("VoteStore::from_parts: bad offset table");
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i - 1] > offsets[i])
      throw std::invalid_argument(
          "VoteStore::from_parts: offsets not monotone");
  }
  VoteStore store;
  store.offsets_ = std::move(offsets);
  store.users_ = std::move(users);
  store.times_ = std::move(times);
  return store;
}

}  // namespace digg::data
