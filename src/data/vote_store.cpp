#include "src/data/vote_store.h"

#include <algorithm>
#include <stdexcept>

namespace digg::data {

VoteStore& VoteStore::operator=(const VoteStore& other) {
  if (this == &other) return *this;
  borrowed_ = other.borrowed_;
  if (borrowed_) {
    // Borrowed stores share caller-owned columns; copy the views.
    offsets_ = {0};
    users_.clear();
    times_.clear();
    offsets_view_ = other.offsets_view_;
    chunks_ = other.chunks_;
  } else {
    offsets_ = other.offsets_;
    users_ = other.users_;
    times_ = other.times_;
    chunks_.clear();
    offsets_view_ = offsets_;
  }
  return *this;
}

std::uint32_t VoteStore::append(std::span<const platform::UserId> voters,
                                std::span<const platform::Minutes> times) {
  if (borrowed_)
    throw std::logic_error("VoteStore::append: store is borrowed (read-only)");
  if (voters.size() != times.size())
    throw std::invalid_argument("VoteStore::append: column length mismatch");
  const auto slot = static_cast<std::uint32_t>(offsets_.size() - 1);
  users_.insert(users_.end(), voters.begin(), voters.end());
  times_.insert(times_.end(), times.begin(), times.end());
  offsets_.push_back(users_.size());
  offsets_view_ = offsets_;  // push_back may have relocated the vector
  return slot;
}

std::size_t VoteStore::size_bytes() const noexcept {
  if (borrowed_) {
    std::size_t bytes = offsets_view_.size() * sizeof(std::uint64_t);
    for (const VoteChunkView& c : chunks_)
      bytes += c.users.size() * sizeof(platform::UserId) +
               c.times.size() * sizeof(platform::Minutes);
    return bytes;
  }
  return offsets_.capacity() * sizeof(std::uint64_t) +
         users_.capacity() * sizeof(platform::UserId) +
         times_.capacity() * sizeof(platform::Minutes);
}

const VoteChunkView& VoteStore::chunk_of(std::uint32_t slot) const {
  // Last chunk whose first_story <= slot. Chunks tile the story range, so
  // the partition point is always preceded by the owning chunk.
  const auto it = std::partition_point(
      chunks_.begin(), chunks_.end(),
      [slot](const VoteChunkView& c) { return c.first_story <= slot; });
  return *(it - 1);
}

VoteStore VoteStore::from_parts(std::vector<std::uint64_t> offsets,
                                std::vector<platform::UserId> users,
                                std::vector<platform::Minutes> times) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != users.size() || users.size() != times.size())
    throw std::invalid_argument("VoteStore::from_parts: bad offset table");
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i - 1] > offsets[i])
      throw std::invalid_argument(
          "VoteStore::from_parts: offsets not monotone");
  }
  VoteStore store;
  store.offsets_ = std::move(offsets);
  store.users_ = std::move(users);
  store.times_ = std::move(times);
  store.offsets_view_ = store.offsets_;
  return store;
}

VoteStore VoteStore::from_views(std::span<const std::uint64_t> offsets,
                                std::vector<VoteChunkView> chunks) {
  if (offsets.empty() || offsets.front() != 0)
    throw std::invalid_argument("VoteStore::from_views: bad offset table");
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i - 1] > offsets[i])
      throw std::invalid_argument(
          "VoteStore::from_views: offsets not monotone");
  }
  // The chunks must tile [0, story_count) in order, each starting at the
  // vote offset of its first story and sized to its stories' total votes.
  const std::size_t story_count = offsets.size() - 1;
  std::size_t next_story = 0;
  std::uint64_t next_vote = 0;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    const VoteChunkView& chunk = chunks[c];
    if (chunk.first_story != next_story || chunk.first_vote != next_vote)
      throw std::invalid_argument(
          "VoteStore::from_views: chunks do not tile the story range");
    const std::size_t end_story = c + 1 < chunks.size()
                                      ? chunks[c + 1].first_story
                                      : story_count;
    if (end_story > story_count)
      throw std::invalid_argument(
          "VoteStore::from_views: chunk beyond story range");
    const std::uint64_t votes = offsets[end_story] - chunk.first_vote;
    if (chunk.users.size() != votes || chunk.times.size() != votes)
      throw std::invalid_argument(
          "VoteStore::from_views: chunk size mismatch");
    next_story = end_story;
    next_vote = offsets[end_story];
  }
  if (next_story != story_count || next_vote != offsets.back())
    throw std::invalid_argument(
        "VoteStore::from_views: chunks do not cover all stories");

  VoteStore store;
  store.borrowed_ = true;
  store.offsets_view_ = offsets;
  store.chunks_ = std::move(chunks);
  return store;
}

}  // namespace digg::data
