#include "src/data/snapshot.h"

#include <chrono>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

#include "src/obs/metrics.h"

namespace digg::data {

namespace {

constexpr char kMagic[8] = {'D', 'I', 'G', 'G', 'S', 'N', 'A', 'P'};

enum SectionType : std::uint32_t {
  kNetwork = 1,
  kStories = 2,
  kVotes = 3,
  kTopUsers = 4,
};

struct SectionEntry {
  std::uint32_t type = 0;
  std::uint32_t flags = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
};
constexpr std::size_t kEntryBytes = 24;
constexpr std::size_t kHeaderBytes = 16;  // magic + version + section count

// FNV-1a over 8-byte little-endian words, final partial word zero-padded.
// Word-at-a-time keeps the multiply chain 8x shorter than the classic
// byte-wise form — checksumming is on both the save and load hot paths.
std::uint64_t fnv1a(const char* data, std::size_t size) {
  std::uint64_t h = 14695981039346656037ull;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, data + i, 8);
    h = (h ^ w) * 1099511628211ull;
  }
  if (i < size) {
    std::uint64_t w = 0;
    std::memcpy(&w, data + i, size - i);
    h = (h ^ w) * 1099511628211ull;
  }
  return h;
}

// ---- writer ---------------------------------------------------------------

class ByteBuffer {
 public:
  void raw(const void* p, std::size_t n) {
    const std::size_t at = buf_.size();
    buf_.resize(at + n);
    std::memcpy(buf_.data() + at, p, n);
  }
  template <typename T>
  void pod(T v) {
    raw(&v, sizeof(T));
  }
  template <typename T>
  void column(const std::vector<T>& v) {
    raw(v.data(), v.size() * sizeof(T));
  }
  [[nodiscard]] const std::vector<char>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<char> buf_;
};

void write_u64_column(ByteBuffer& out, const std::vector<std::size_t>& v) {
  for (std::size_t x : v) out.pod(static_cast<std::uint64_t>(x));
}

ByteBuffer encode_network(const graph::Digraph& g) {
  ByteBuffer out;
  out.pod(static_cast<std::uint64_t>(g.node_count()));
  out.pod(static_cast<std::uint64_t>(g.edge_count()));
  write_u64_column(out, g.out_offsets());
  out.column(g.out_targets());
  write_u64_column(out, g.in_offsets());
  out.column(g.in_sources());
  return out;
}

ByteBuffer encode_stories(const Corpus& corpus) {
  ByteBuffer out;
  out.pod(static_cast<std::uint64_t>(corpus.front_page.size()));
  out.pod(static_cast<std::uint64_t>(corpus.upcoming.size()));
  const auto each = [&](auto&& emit) {
    for (const Story& s : corpus.front_page) emit(s);
    for (const Story& s : corpus.upcoming) emit(s);
  };
  each([&](const Story& s) { out.pod(s.id); });
  each([&](const Story& s) { out.pod(s.submitter); });
  each([&](const Story& s) { out.pod(s.submitted_at); });
  each([&](const Story& s) { out.pod(s.quality); });
  each([&](const Story& s) { out.pod(static_cast<std::uint8_t>(s.phase)); });
  each([&](const Story& s) {
    out.pod(static_cast<std::uint8_t>(s.promoted() ? 1 : 0));
  });
  each([&](const Story& s) { out.pod(s.promoted_at.value_or(0.0)); });
  return out;
}

ByteBuffer encode_votes(const Corpus& corpus) {
  ByteBuffer out;
  std::uint64_t total = 0;
  std::vector<std::uint64_t> offsets{0};
  const auto each = [&](auto&& emit) {
    for (const Story& s : corpus.front_page) emit(s);
    for (const Story& s : corpus.upcoming) emit(s);
  };
  each([&](const Story& s) {
    total += s.vote_count();
    offsets.push_back(total);
  });
  out.pod(static_cast<std::uint64_t>(corpus.story_count()));
  out.pod(total);
  out.column(offsets);
  each([&](const Story& s) {
    out.raw(s.voters().data(), s.voters().size() * sizeof(UserId));
  });
  each([&](const Story& s) {
    out.raw(s.times().data(), s.times().size() * sizeof(platform::Minutes));
  });
  return out;
}

ByteBuffer encode_top_users(const Corpus& corpus) {
  ByteBuffer out;
  out.pod(static_cast<std::uint64_t>(corpus.top_users.size()));
  out.column(corpus.top_users);
  return out;
}

// ---- reader ---------------------------------------------------------------

class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size) : data_(data), size_(size) {}

  void seek(std::size_t pos) { pos_ = pos; }

  template <typename T>
  T pod() {
    T v{};
    read_into(&v, sizeof(T));
    return v;
  }
  void read_into(void* dst, std::size_t bytes) {
    if (pos_ + bytes > size_)
      throw std::runtime_error("truncated file (section overruns payload)");
    std::memcpy(dst, data_ + pos_, bytes);
    pos_ += bytes;
  }
  template <typename T>
  std::vector<T> column(std::size_t count) {
    std::vector<T> v(count);
    if (count > 0) read_into(v.data(), count * sizeof(T));
    return v;
  }
  std::vector<std::size_t> u64_column(std::size_t count) {
    std::vector<std::size_t> v(count);
    for (std::size_t i = 0; i < count; ++i)
      v[i] = static_cast<std::size_t>(pod<std::uint64_t>());
    return v;
  }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

void save_snapshot(const Corpus& corpus, const std::filesystem::path& path) {
  const auto start = std::chrono::steady_clock::now();

  const ByteBuffer bodies[] = {encode_network(corpus.network),
                               encode_stories(corpus), encode_votes(corpus),
                               encode_top_users(corpus)};
  const std::uint32_t types[] = {kNetwork, kStories, kVotes, kTopUsers};
  const std::uint32_t count = 4;

  ByteBuffer file;
  file.raw(kMagic, sizeof(kMagic));
  file.pod(kSnapshotVersion);
  file.pod(count);
  std::uint64_t offset = kHeaderBytes + count * kEntryBytes;
  for (std::uint32_t i = 0; i < count; ++i) {
    file.pod(types[i]);
    file.pod(std::uint32_t{0});  // flags, reserved
    file.pod(offset);
    file.pod(static_cast<std::uint64_t>(bodies[i].size()));
    offset += bodies[i].size();
  }
  for (const ByteBuffer& body : bodies)
    file.raw(body.bytes().data(), body.size());
  file.pod(fnv1a(file.bytes().data(), file.size()));

  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out.write(file.bytes().data(), static_cast<std::streamsize>(file.size()));
  if (!out) throw std::runtime_error("short write to " + path.string());
  out.close();

  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  obs::Registry::global().counter("data.snapshot_save_bytes").inc(file.size());
  obs::Registry::global().histogram("data.snapshot_save_us").observe(us);
}

Corpus load_snapshot(const std::filesystem::path& path) {
  const auto start = std::chrono::steady_clock::now();

  // Single whole-file read; everything else is in-memory pointer work.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  const auto file_size = static_cast<std::size_t>(in.tellg());
  std::vector<char> bytes(file_size);
  in.seekg(0);
  in.read(bytes.data(), static_cast<std::streamsize>(file_size));
  if (!in) throw std::runtime_error("cannot read " + path.string());

  const std::string ctx = path.string() + ": ";
  if (file_size < kHeaderBytes + sizeof(std::uint64_t))
    throw std::runtime_error(ctx + "truncated file (smaller than header)");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error(ctx + "bad magic (not a corpus snapshot)");

  ByteReader header(bytes.data(), file_size);
  header.seek(sizeof(kMagic));
  const auto version = header.pod<std::uint32_t>();
  if (version > kSnapshotVersion)
    throw std::runtime_error(ctx + "unsupported version " +
                             std::to_string(version) + " (reader supports <= " +
                             std::to_string(kSnapshotVersion) + ")");
  const auto section_count = header.pod<std::uint32_t>();
  const std::size_t table_end =
      kHeaderBytes + static_cast<std::size_t>(section_count) * kEntryBytes;
  if (table_end + sizeof(std::uint64_t) > file_size)
    throw std::runtime_error(ctx + "truncated file (section table cut off)");

  std::vector<SectionEntry> table(section_count);
  const std::size_t payload_end = file_size - sizeof(std::uint64_t);
  for (SectionEntry& e : table) {
    e.type = header.pod<std::uint32_t>();
    e.flags = header.pod<std::uint32_t>();
    e.offset = header.pod<std::uint64_t>();
    e.size = header.pod<std::uint64_t>();
    if (e.offset > payload_end || e.size > payload_end - e.offset)
      throw std::runtime_error(ctx + "truncated file (section overruns)");
  }

  ByteReader checksum_reader(bytes.data(), file_size);
  checksum_reader.seek(payload_end);
  const auto stored = checksum_reader.pod<std::uint64_t>();
  if (fnv1a(bytes.data(), payload_end) != stored)
    throw std::runtime_error(ctx + "checksum mismatch (corrupt snapshot)");

  const auto find = [&](std::uint32_t type) -> const SectionEntry& {
    for (const SectionEntry& e : table)
      if (e.type == type) return e;
    throw std::runtime_error(ctx + "missing section " + std::to_string(type));
  };

  Corpus corpus;

  {
    const SectionEntry& e = find(kNetwork);
    ByteReader r(bytes.data(), static_cast<std::size_t>(e.offset + e.size));
    r.seek(e.offset);
    const auto n = static_cast<std::size_t>(r.pod<std::uint64_t>());
    const auto edges = static_cast<std::size_t>(r.pod<std::uint64_t>());
    auto out_offsets = r.u64_column(n + 1);
    auto out_targets = r.column<graph::NodeId>(edges);
    auto in_offsets = r.u64_column(n + 1);
    auto in_sources = r.column<graph::NodeId>(edges);
    try {
      corpus.network = graph::Digraph::from_parts(
          std::move(out_offsets), std::move(out_targets),
          std::move(in_offsets), std::move(in_sources));
    } catch (const std::invalid_argument& err) {
      throw std::runtime_error(ctx + err.what());
    }
  }

  std::size_t front_count = 0;
  std::size_t story_count = 0;
  std::vector<StoryId> ids;
  std::vector<UserId> submitters;
  std::vector<double> submitted_at, quality, promoted_at;
  std::vector<std::uint8_t> phases, has_promoted;
  {
    const SectionEntry& e = find(kStories);
    ByteReader r(bytes.data(), static_cast<std::size_t>(e.offset + e.size));
    r.seek(e.offset);
    front_count = static_cast<std::size_t>(r.pod<std::uint64_t>());
    const auto up_count = static_cast<std::size_t>(r.pod<std::uint64_t>());
    story_count = front_count + up_count;
    ids = r.column<StoryId>(story_count);
    submitters = r.column<UserId>(story_count);
    submitted_at = r.column<double>(story_count);
    quality = r.column<double>(story_count);
    phases = r.column<std::uint8_t>(story_count);
    has_promoted = r.column<std::uint8_t>(story_count);
    promoted_at = r.column<double>(story_count);
  }

  {
    const SectionEntry& e = find(kVotes);
    ByteReader r(bytes.data(), static_cast<std::size_t>(e.offset + e.size));
    r.seek(e.offset);
    const auto vote_stories = static_cast<std::size_t>(r.pod<std::uint64_t>());
    if (vote_stories != story_count)
      throw std::runtime_error(ctx + "story count mismatch between sections");
    const auto total = static_cast<std::size_t>(r.pod<std::uint64_t>());
    auto offsets = r.column<std::uint64_t>(story_count + 1);
    auto users = r.column<UserId>(total);
    auto times = r.column<platform::Minutes>(total);
    try {
      corpus.vote_store = VoteStore::from_parts(
          std::move(offsets), std::move(users), std::move(times));
    } catch (const std::invalid_argument& err) {
      throw std::runtime_error(ctx + err.what());
    }
  }

  {
    const SectionEntry& e = find(kTopUsers);
    ByteReader r(bytes.data(), static_cast<std::size_t>(e.offset + e.size));
    r.seek(e.offset);
    const auto n = static_cast<std::size_t>(r.pod<std::uint64_t>());
    corpus.top_users = r.column<UserId>(n);
  }

  corpus.front_page.reserve(front_count);
  corpus.upcoming.reserve(story_count - front_count);
  for (std::size_t i = 0; i < story_count; ++i) {
    Story s;
    s.id = ids[i];
    s.submitter = submitters[i];
    s.submitted_at = submitted_at[i];
    s.quality = quality[i];
    if (phases[i] > static_cast<std::uint8_t>(platform::StoryPhase::kExpired))
      throw std::runtime_error(ctx + "bad story phase");
    s.phase = static_cast<platform::StoryPhase>(phases[i]);
    if (has_promoted[i]) s.promoted_at = promoted_at[i];
    s.bind(corpus.vote_store.voters(static_cast<std::uint32_t>(i)),
           corpus.vote_store.times(static_cast<std::uint32_t>(i)),
           static_cast<std::uint32_t>(i));
    (i < front_count ? corpus.front_page : corpus.upcoming)
        .push_back(std::move(s));
  }

  validate(corpus);

  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  obs::Registry::global().counter("data.snapshot_load_bytes").inc(file_size);
  obs::Registry::global().histogram("data.snapshot_load_us").observe(us);
  obs::Registry::global()
      .gauge("data.corpus_vote_column_bytes")
      .set(static_cast<double>(corpus.vote_store.size_bytes()));
  return corpus;
}

}  // namespace digg::data
