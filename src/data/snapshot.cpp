#include "src/data/snapshot.h"

#include <chrono>
#include <stdexcept>
#include <string>

#include "src/data/snapshot_format.h"
#include "src/obs/metrics.h"

namespace digg::data {

namespace {

using snapfmt::ByteBuffer;
using snapfmt::ByteReader;
using snapfmt::Section;

void write_u64_column(ByteBuffer& out, const std::vector<std::size_t>& v) {
  for (std::size_t x : v) out.pod(static_cast<std::uint64_t>(x));
}

ByteBuffer encode_network(const graph::Digraph& g) {
  ByteBuffer out;
  out.pod(static_cast<std::uint64_t>(g.node_count()));
  out.pod(static_cast<std::uint64_t>(g.edge_count()));
  write_u64_column(out, g.out_offsets());
  out.column(g.out_targets());
  write_u64_column(out, g.in_offsets());
  out.column(g.in_sources());
  return out;
}

ByteBuffer encode_stories(const Corpus& corpus) {
  ByteBuffer out;
  out.pod(static_cast<std::uint64_t>(corpus.front_page.size()));
  out.pod(static_cast<std::uint64_t>(corpus.upcoming.size()));
  const auto each = [&](auto&& emit) {
    for (const Story& s : corpus.front_page) emit(s);
    for (const Story& s : corpus.upcoming) emit(s);
  };
  each([&](const Story& s) { out.pod(s.id); });
  each([&](const Story& s) { out.pod(s.submitter); });
  each([&](const Story& s) { out.pod(s.submitted_at); });
  each([&](const Story& s) { out.pod(s.quality); });
  each([&](const Story& s) { out.pod(static_cast<std::uint8_t>(s.phase)); });
  each([&](const Story& s) {
    out.pod(static_cast<std::uint8_t>(s.promoted() ? 1 : 0));
  });
  each([&](const Story& s) { out.pod(s.promoted_at.value_or(0.0)); });
  return out;
}

ByteBuffer encode_votes(const Corpus& corpus) {
  ByteBuffer out;
  std::uint64_t total = 0;
  std::vector<std::uint64_t> offsets{0};
  const auto each = [&](auto&& emit) {
    for (const Story& s : corpus.front_page) emit(s);
    for (const Story& s : corpus.upcoming) emit(s);
  };
  each([&](const Story& s) {
    total += s.vote_count();
    offsets.push_back(total);
  });
  out.pod(static_cast<std::uint64_t>(corpus.story_count()));
  out.pod(total);
  out.column(offsets);
  each([&](const Story& s) {
    out.raw(s.voters().data(), s.voters().size() * sizeof(UserId));
  });
  each([&](const Story& s) {
    out.raw(s.times().data(), s.times().size() * sizeof(platform::Minutes));
  });
  return out;
}

ByteBuffer encode_top_users(const Corpus& corpus) {
  ByteBuffer out;
  out.pod(static_cast<std::uint64_t>(corpus.top_users.size()));
  out.column(corpus.top_users);
  return out;
}

}  // namespace

void save_snapshot(const Corpus& corpus, const std::filesystem::path& path) {
  const auto start = std::chrono::steady_clock::now();

  Section sections[] = {{snapfmt::kNetwork, encode_network(corpus.network)},
                        {snapfmt::kStories, encode_stories(corpus)},
                        {snapfmt::kVotes, encode_votes(corpus)},
                        {snapfmt::kTopUsers, encode_top_users(corpus)}};
  snapfmt::write_section_file(path, sections);

  std::size_t file_bytes = snapfmt::kHeaderBytes +
                           std::size(sections) * snapfmt::kEntryBytes +
                           sizeof(std::uint64_t);
  for (const Section& s : sections) file_bytes += s.body.size();

  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  obs::Registry::global().counter("data.snapshot_save_bytes").inc(file_bytes);
  obs::Registry::global().histogram("data.snapshot_save_us").observe(us);
}

Corpus load_snapshot(const std::filesystem::path& path) {
  const auto start = std::chrono::steady_clock::now();

  const snapfmt::SectionFile file = snapfmt::read_section_file(path);
  const std::string& ctx = file.context;

  Corpus corpus;

  {
    ByteReader r = file.open(snapfmt::kNetwork);
    const auto n = static_cast<std::size_t>(r.pod<std::uint64_t>());
    const auto edges = static_cast<std::size_t>(r.pod<std::uint64_t>());
    auto out_offsets = r.u64_column(n + 1);
    auto out_targets = r.column<graph::NodeId>(edges);
    auto in_offsets = r.u64_column(n + 1);
    auto in_sources = r.column<graph::NodeId>(edges);
    try {
      corpus.network = graph::Digraph::from_parts(
          std::move(out_offsets), std::move(out_targets),
          std::move(in_offsets), std::move(in_sources));
    } catch (const std::invalid_argument& err) {
      throw std::runtime_error(ctx + err.what());
    }
  }

  std::size_t front_count = 0;
  std::size_t story_count = 0;
  std::vector<StoryId> ids;
  std::vector<UserId> submitters;
  std::vector<double> submitted_at, quality, promoted_at;
  std::vector<std::uint8_t> phases, has_promoted;
  {
    ByteReader r = file.open(snapfmt::kStories);
    front_count = static_cast<std::size_t>(r.pod<std::uint64_t>());
    const auto up_count = static_cast<std::size_t>(r.pod<std::uint64_t>());
    story_count = front_count + up_count;
    ids = r.column<StoryId>(story_count);
    submitters = r.column<UserId>(story_count);
    submitted_at = r.column<double>(story_count);
    quality = r.column<double>(story_count);
    phases = r.column<std::uint8_t>(story_count);
    has_promoted = r.column<std::uint8_t>(story_count);
    promoted_at = r.column<double>(story_count);
  }

  {
    ByteReader r = file.open(snapfmt::kVotes);
    const auto vote_stories = static_cast<std::size_t>(r.pod<std::uint64_t>());
    if (vote_stories != story_count)
      throw std::runtime_error(ctx + "story count mismatch between sections");
    const auto total = static_cast<std::size_t>(r.pod<std::uint64_t>());
    auto offsets = r.column<std::uint64_t>(story_count + 1);
    auto users = r.column<UserId>(total);
    auto times = r.column<platform::Minutes>(total);
    try {
      corpus.vote_store = VoteStore::from_parts(
          std::move(offsets), std::move(users), std::move(times));
    } catch (const std::invalid_argument& err) {
      throw std::runtime_error(ctx + err.what());
    }
  }

  {
    ByteReader r = file.open(snapfmt::kTopUsers);
    const auto n = static_cast<std::size_t>(r.pod<std::uint64_t>());
    corpus.top_users = r.column<UserId>(n);
  }

  corpus.front_page.reserve(front_count);
  corpus.upcoming.reserve(story_count - front_count);
  for (std::size_t i = 0; i < story_count; ++i) {
    Story s;
    s.id = ids[i];
    s.submitter = submitters[i];
    s.submitted_at = submitted_at[i];
    s.quality = quality[i];
    if (phases[i] > static_cast<std::uint8_t>(platform::StoryPhase::kExpired))
      throw std::runtime_error(ctx + "bad story phase");
    s.phase = static_cast<platform::StoryPhase>(phases[i]);
    if (has_promoted[i]) s.promoted_at = promoted_at[i];
    s.bind(corpus.vote_store.voters(static_cast<std::uint32_t>(i)),
           corpus.vote_store.times(static_cast<std::uint32_t>(i)),
           static_cast<std::uint32_t>(i));
    (i < front_count ? corpus.front_page : corpus.upcoming)
        .push_back(std::move(s));
  }

  validate(corpus);

  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  obs::Registry::global().counter("data.snapshot_load_bytes")
      .inc(file.bytes.size());
  obs::Registry::global().histogram("data.snapshot_load_us").observe(us);
  obs::Registry::global()
      .gauge("data.corpus_vote_column_bytes")
      .set(static_cast<double>(corpus.vote_store.size_bytes()));
  return corpus;
}

}  // namespace digg::data
