#include "src/data/snapshot.h"

#include <bit>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/dynamics/model.h"
#include "src/obs/metrics.h"
#include "src/runtime/parallel.h"

namespace digg::data {

namespace {

using snapfmt::ByteBuffer;
using snapfmt::ByteReader;
using snapfmt::Section;

// On little-endian hosts with 64-bit size_t the in-memory column already
// has the on-disk u64 layout; elsewhere widen per element.
inline constexpr bool kNativeU64 =
    sizeof(std::size_t) == sizeof(std::uint64_t) &&
    std::endian::native == std::endian::little;

void write_u64_column(ByteBuffer& out, std::span<const std::size_t> v) {
  if constexpr (kNativeU64) {
    out.column(v);
  } else {
    for (std::size_t x : v) out.pod(static_cast<std::uint64_t>(x));
  }
}

ByteBuffer encode_network(const graph::Digraph& g, bool align_columns) {
  ByteBuffer out;
  out.pod(static_cast<std::uint64_t>(g.node_count()));
  out.pod(static_cast<std::uint64_t>(g.edge_count()));
  write_u64_column(out, g.out_offsets());
  out.column(g.out_targets());
  // v2 keeps u64 columns 8-byte aligned within the body so mapped readers
  // can bind them in place; v1 bodies stay byte-identical to old writers.
  if (align_columns) out.pad8();
  write_u64_column(out, g.in_offsets());
  out.column(g.in_sources());
  return out;
}

ByteBuffer encode_stories_v1(const Corpus& corpus) {
  ByteBuffer out;
  out.pod(static_cast<std::uint64_t>(corpus.front_page.size()));
  out.pod(static_cast<std::uint64_t>(corpus.upcoming.size()));
  const auto each = [&](auto&& emit) {
    for (const Story& s : corpus.front_page) emit(s);
    for (const Story& s : corpus.upcoming) emit(s);
  };
  each([&](const Story& s) { out.pod(s.id); });
  each([&](const Story& s) { out.pod(s.submitter); });
  each([&](const Story& s) { out.pod(s.submitted_at); });
  each([&](const Story& s) { out.pod(s.quality); });
  each([&](const Story& s) { out.pod(static_cast<std::uint8_t>(s.phase)); });
  each([&](const Story& s) {
    out.pod(static_cast<std::uint8_t>(s.promoted() ? 1 : 0));
  });
  each([&](const Story& s) { out.pod(s.promoted_at.value_or(0.0)); });
  return out;
}

ByteBuffer encode_votes_v1(const Corpus& corpus) {
  ByteBuffer out;
  std::uint64_t total = 0;
  std::vector<std::uint64_t> offsets{0};
  const auto each = [&](auto&& emit) {
    for (const Story& s : corpus.front_page) emit(s);
    for (const Story& s : corpus.upcoming) emit(s);
  };
  each([&](const Story& s) {
    total += s.vote_count();
    offsets.push_back(total);
  });
  out.pod(static_cast<std::uint64_t>(corpus.story_count()));
  out.pod(total);
  out.column(offsets);
  each([&](const Story& s) {
    out.raw(s.voters().data(), s.voters().size() * sizeof(UserId));
  });
  each([&](const Story& s) {
    out.raw(s.times().data(), s.times().size() * sizeof(platform::Minutes));
  });
  return out;
}

ByteBuffer encode_model_id(std::string_view id) {
  ByteBuffer out;
  out.pod(static_cast<std::uint64_t>(id.size()));
  out.raw(id.data(), id.size());
  return out;
}

/// Reads the MODELINFO section if present; files that predate it carry the
/// legacy two-mechanism model. An id the running binary has no registered
/// model for is a load error — analyses keyed on the model (scenario
/// comparisons, predictor calibration) must not silently misattribute data.
template <typename File>
std::string read_model_id(const File& file, const std::string& ctx) {
  if (file.entries(snapfmt::kModelInfo).empty())
    return dynamics::kLegacyModelId;
  ByteReader r = file.open(snapfmt::kModelInfo);
  const auto len = static_cast<std::size_t>(r.pod<std::uint64_t>());
  std::string id(len, '\0');
  r.read_into(id.data(), len);
  if (!dynamics::model_registered(id))
    throw std::runtime_error(ctx + "unknown generative model id '" + id +
                             "' (not in the dynamics::Model registry)");
  return id;
}

ByteBuffer encode_top_users(std::span<const UserId> top_users) {
  ByteBuffer out;
  out.pod(static_cast<std::uint64_t>(top_users.size()));
  out.column(top_users);
  return out;
}

void record_save_metrics(const std::filesystem::path& path, double start_us) {
  obs::Registry::global()
      .counter("data.snapshot_save_bytes")
      .inc(static_cast<std::size_t>(std::filesystem::file_size(path)));
  obs::Registry::global().histogram("data.snapshot_save_us").observe(start_us);
}

double elapsed_us(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// Streaming writer

SnapshotWriter::SnapshotWriter(const std::filesystem::path& path,
                               std::size_t chunk_target_bytes)
    : out_(path), chunk_target_bytes_(chunk_target_bytes) {}

void SnapshotWriter::write_network(const graph::Digraph& network) {
  if (network_written_)
    throw std::logic_error("SnapshotWriter: network written twice");
  out_.add(snapfmt::kNetwork, encode_network(network, /*align_columns=*/true));
  network_written_ = true;
}

void SnapshotWriter::write_model_id(std::string_view model_id) {
  if (model_written_)
    throw std::logic_error("SnapshotWriter: model id written twice");
  out_.add(snapfmt::kModelInfo, encode_model_id(model_id));
  model_written_ = true;
}

void SnapshotWriter::add_votes(std::span<const UserId> voters,
                               std::span<const platform::Minutes> times) {
  if (voters.size() != times.size())
    throw std::invalid_argument(
        "SnapshotWriter::add_votes: column length mismatch");
  chunk_users_.raw(voters.data(), voters.size() * sizeof(UserId));
  chunk_times_.raw(times.data(), times.size() * sizeof(platform::Minutes));
  offsets_.push_back(offsets_.back() + voters.size());
  if (chunk_users_.size() + chunk_times_.size() >= chunk_target_bytes_)
    flush_chunk();
}

void SnapshotWriter::flush_chunk() {
  // Chunks cut at story boundaries only; an in-flight chunk covering zero
  // stories (right after a flush, or an empty corpus) writes nothing.
  if (story_count() == chunk_first_story_) return;
  chunk_table_.push_back(ChunkRef{chunk_first_story_, chunk_first_vote_});
  out_.add(snapfmt::kVotesUsers, chunk_users_);
  out_.add(snapfmt::kVotesTimes, chunk_times_);
  chunk_users_ = ByteBuffer{};
  chunk_times_ = ByteBuffer{};
  chunk_first_story_ = story_count();
  chunk_first_vote_ = offsets_.back();
}

void SnapshotWriter::add_story(const Story& story) {
  ids_.push_back(story.id);
  submitters_.push_back(story.submitter);
  submitted_at_.push_back(story.submitted_at);
  quality_.push_back(story.quality);
  phases_.push_back(static_cast<std::uint8_t>(story.phase));
  has_promoted_.push_back(story.promoted() ? 1 : 0);
  promoted_at_.push_back(story.promoted_at.value_or(0.0));
}

void SnapshotWriter::write_top_users(std::span<const UserId> top_users) {
  if (top_users_written_)
    throw std::logic_error("SnapshotWriter: top users written twice");
  out_.add(snapfmt::kTopUsers, encode_top_users(top_users));
  top_users_written_ = true;
}

void SnapshotWriter::finish() {
  if (!network_written_)
    throw std::logic_error("SnapshotWriter: finish without write_network");
  if (!top_users_written_)
    throw std::logic_error("SnapshotWriter: finish without write_top_users");
  if (ids_.size() != story_count())
    throw std::logic_error(
        "SnapshotWriter: add_story/add_votes call counts disagree");
  flush_chunk();

  ByteBuffer stories;
  stories.pod(static_cast<std::uint64_t>(story_count()));
  stories.column(ids_);
  stories.column(submitters_);
  stories.column(submitted_at_);
  stories.column(quality_);
  stories.column(phases_);
  stories.column(has_promoted_);
  stories.column(promoted_at_);
  out_.add(snapfmt::kStories, stories);

  ByteBuffer index;
  index.pod(static_cast<std::uint64_t>(story_count()));
  index.pod(offsets_.back());
  index.pod(static_cast<std::uint64_t>(chunk_table_.size()));
  index.column(offsets_);
  for (const ChunkRef& c : chunk_table_) {
    index.pod(c.first_story);
    index.pod(c.first_vote);
  }
  out_.add(snapfmt::kVotesIndex, index);

  out_.finish();
}

// ---------------------------------------------------------------------------
// Whole-corpus save

void save_snapshot(const Corpus& corpus, const std::filesystem::path& path,
                   std::uint32_t version, std::size_t chunk_target_bytes) {
  const auto start = std::chrono::steady_clock::now();

  if (version == kSnapshotVersion) {
    SnapshotWriter writer(path, chunk_target_bytes);
    writer.write_network(corpus.network);
    writer.write_model_id(corpus.model_id);
    const auto each = [&](auto&& emit) {
      for (const Story& s : corpus.front_page) emit(s);
      for (const Story& s : corpus.upcoming) emit(s);
    };
    each([&](const Story& s) { writer.add_votes(s.voters(), s.times()); });
    each([&](const Story& s) { writer.add_story(s); });
    writer.write_top_users(corpus.top_users);
    writer.finish();
  } else if (version == 1) {
    Section sections[] = {
        {snapfmt::kNetwork, encode_network(corpus.network, false)},
        {snapfmt::kStories, encode_stories_v1(corpus)},
        {snapfmt::kVotes, encode_votes_v1(corpus)},
        {snapfmt::kTopUsers, encode_top_users(corpus.top_users)}};
    snapfmt::write_section_file(path, sections, version);
  } else {
    throw std::invalid_argument("save_snapshot: unknown version " +
                                std::to_string(version));
  }

  record_save_metrics(path, elapsed_us(start));
}

// ---------------------------------------------------------------------------
// Loaders

namespace {

/// The STORIES metadata columns shared by both formats (v1 prepends
/// front/upcoming counts; v2 stores one total and partitions by flag).
struct StoryColumns {
  std::size_t count = 0;
  std::vector<StoryId> ids;
  std::vector<UserId> submitters;
  std::vector<double> submitted_at, quality, promoted_at;
  std::vector<std::uint8_t> phases, has_promoted;
};

void read_story_columns(ByteReader& r, StoryColumns& cols) {
  cols.ids = r.column<StoryId>(cols.count);
  cols.submitters = r.column<UserId>(cols.count);
  cols.submitted_at = r.column<double>(cols.count);
  cols.quality = r.column<double>(cols.count);
  cols.phases = r.column<std::uint8_t>(cols.count);
  cols.has_promoted = r.column<std::uint8_t>(cols.count);
  cols.promoted_at = r.column<double>(cols.count);
}

/// Materialises the story views over corpus.vote_store (already loaded),
/// assigning slot i to file-order story i. `front_of` decides the bucket.
template <typename FrontOf>
void emplace_stories(Corpus& corpus, const StoryColumns& cols,
                     const std::string& ctx, FrontOf&& front_of) {
  for (std::size_t i = 0; i < cols.count; ++i) {
    Story s;
    s.id = cols.ids[i];
    s.submitter = cols.submitters[i];
    s.submitted_at = cols.submitted_at[i];
    s.quality = cols.quality[i];
    if (cols.phases[i] >
        static_cast<std::uint8_t>(platform::StoryPhase::kExpired))
      throw std::runtime_error(ctx + "bad story phase");
    s.phase = static_cast<platform::StoryPhase>(cols.phases[i]);
    if (cols.has_promoted[i]) s.promoted_at = cols.promoted_at[i];
    s.bind(corpus.vote_store.voters(static_cast<std::uint32_t>(i)),
           corpus.vote_store.times(static_cast<std::uint32_t>(i)),
           static_cast<std::uint32_t>(i));
    (front_of(i) ? corpus.front_page : corpus.upcoming).push_back(std::move(s));
  }
}

graph::Digraph decode_network_owned(ByteReader& r, bool aligned,
                                    const std::string& ctx) {
  const auto n = static_cast<std::size_t>(r.pod<std::uint64_t>());
  const auto edges = static_cast<std::size_t>(r.pod<std::uint64_t>());
  auto out_offsets = r.u64_column(n + 1);
  auto out_targets = r.column<graph::NodeId>(edges);
  if (aligned) r.align8();
  auto in_offsets = r.u64_column(n + 1);
  auto in_sources = r.column<graph::NodeId>(edges);
  try {
    return graph::Digraph::from_parts(std::move(out_offsets),
                                      std::move(out_targets),
                                      std::move(in_offsets),
                                      std::move(in_sources));
  } catch (const std::invalid_argument& err) {
    throw std::runtime_error(ctx + err.what());
  }
}

Corpus load_v1(const snapfmt::SectionFile& file) {
  const std::string& ctx = file.context;
  Corpus corpus;
  corpus.model_id = read_model_id(file, ctx);

  {
    ByteReader r = file.open(snapfmt::kNetwork);
    corpus.network = decode_network_owned(r, /*aligned=*/false, ctx);
  }

  std::size_t front_count = 0;
  StoryColumns cols;
  {
    ByteReader r = file.open(snapfmt::kStories);
    front_count = static_cast<std::size_t>(r.pod<std::uint64_t>());
    const auto up_count = static_cast<std::size_t>(r.pod<std::uint64_t>());
    cols.count = front_count + up_count;
    read_story_columns(r, cols);
  }

  {
    ByteReader r = file.open(snapfmt::kVotes);
    const auto vote_stories = static_cast<std::size_t>(r.pod<std::uint64_t>());
    if (vote_stories != cols.count)
      throw std::runtime_error(ctx + "story count mismatch between sections");
    const auto total = static_cast<std::size_t>(r.pod<std::uint64_t>());
    auto offsets = r.column<std::uint64_t>(cols.count + 1);
    auto users = r.column<UserId>(total);
    auto times = r.column<platform::Minutes>(total);
    try {
      corpus.vote_store = VoteStore::from_parts(
          std::move(offsets), std::move(users), std::move(times));
    } catch (const std::invalid_argument& err) {
      throw std::runtime_error(ctx + err.what());
    }
  }

  {
    ByteReader r = file.open(snapfmt::kTopUsers);
    const auto n = static_cast<std::size_t>(r.pod<std::uint64_t>());
    corpus.top_users = r.column<UserId>(n);
  }

  corpus.front_page.reserve(front_count);
  corpus.upcoming.reserve(cols.count - front_count);
  // v1 files order stories front page first; partition by position.
  emplace_stories(corpus, cols, ctx,
                  [&](std::size_t i) { return i < front_count; });
  return corpus;
}

/// The VOTES_INDEX preamble + chunk table shared by both v2 loaders.
struct VoteIndex {
  std::size_t story_count = 0;
  std::uint64_t total = 0;
  std::size_t chunk_count = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> chunks;  // story, vote
};

VoteIndex read_vote_index_preamble(ByteReader& r) {
  VoteIndex idx;
  idx.story_count = static_cast<std::size_t>(r.pod<std::uint64_t>());
  idx.total = r.pod<std::uint64_t>();
  idx.chunk_count = static_cast<std::size_t>(r.pod<std::uint64_t>());
  return idx;
}

void read_vote_index_chunks(ByteReader& r, VoteIndex& idx) {
  idx.chunks.reserve(idx.chunk_count);
  for (std::size_t c = 0; c < idx.chunk_count; ++c) {
    const auto story = r.pod<std::uint64_t>();
    const auto vote = r.pod<std::uint64_t>();
    idx.chunks.emplace_back(story, vote);
  }
}

Corpus load_v2(const snapfmt::SectionFile& file) {
  const std::string& ctx = file.context;
  Corpus corpus;
  corpus.model_id = read_model_id(file, ctx);

  {
    ByteReader r = file.open(snapfmt::kNetwork);
    corpus.network = decode_network_owned(r, /*aligned=*/true, ctx);
  }

  StoryColumns cols;
  {
    ByteReader r = file.open(snapfmt::kStories);
    cols.count = static_cast<std::size_t>(r.pod<std::uint64_t>());
    read_story_columns(r, cols);
  }

  {
    ByteReader r = file.open(snapfmt::kVotesIndex);
    VoteIndex idx = read_vote_index_preamble(r);
    if (idx.story_count != cols.count)
      throw std::runtime_error(ctx + "story count mismatch between sections");
    auto offsets = r.column<std::uint64_t>(cols.count + 1);
    read_vote_index_chunks(r, idx);

    const auto user_chunks = file.entries(snapfmt::kVotesUsers);
    const auto time_chunks = file.entries(snapfmt::kVotesTimes);
    if (user_chunks.size() != idx.chunk_count ||
        time_chunks.size() != idx.chunk_count)
      throw std::runtime_error(ctx + "vote chunk count mismatch");

    std::vector<UserId> users;
    std::vector<platform::Minutes> times;
    users.reserve(static_cast<std::size_t>(idx.total));
    times.reserve(static_cast<std::size_t>(idx.total));
    for (std::size_t c = 0; c < idx.chunk_count; ++c) {
      ByteReader ur = file.open(*user_chunks[c]);
      ByteReader tr = file.open(*time_chunks[c]);
      const std::size_t votes =
          static_cast<std::size_t>(user_chunks[c]->size) / sizeof(UserId);
      auto u = ur.column<UserId>(votes);
      auto t = tr.column<platform::Minutes>(votes);
      if (user_chunks[c]->size % sizeof(UserId) != 0 ||
          time_chunks[c]->size != votes * sizeof(platform::Minutes))
        throw std::runtime_error(ctx + "vote chunk size mismatch");
      users.insert(users.end(), u.begin(), u.end());
      times.insert(times.end(), t.begin(), t.end());
    }
    if (users.size() != idx.total)
      throw std::runtime_error(ctx + "vote chunk size mismatch");
    try {
      corpus.vote_store = VoteStore::from_parts(
          std::move(offsets), std::move(users), std::move(times));
    } catch (const std::invalid_argument& err) {
      throw std::runtime_error(ctx + err.what());
    }
  }

  {
    ByteReader r = file.open(snapfmt::kTopUsers);
    const auto n = static_cast<std::size_t>(r.pod<std::uint64_t>());
    corpus.top_users = r.column<UserId>(n);
  }

  // v2 partitions by the promotion flag, so file order can be anything
  // (submission order for streamed files, front-first for saved corpora).
  emplace_stories(corpus, cols, ctx,
                  [&](std::size_t i) { return cols.has_promoted[i] != 0; });
  return corpus;
}

}  // namespace

Corpus load_snapshot(const std::filesystem::path& path) {
  const auto start = std::chrono::steady_clock::now();

  const snapfmt::SectionFile file = snapfmt::read_section_file(path);
  Corpus corpus =
      file.version == kSnapshotVersion ? load_v2(file) : load_v1(file);

  validate(corpus);

  obs::Registry::global()
      .counter("data.snapshot_load_bytes")
      .inc(file.bytes.size());
  obs::Registry::global()
      .histogram("data.snapshot_load_us")
      .observe(elapsed_us(start));
  obs::Registry::global()
      .gauge("data.corpus_vote_column_bytes")
      .set(static_cast<double>(corpus.vote_store.size_bytes()));
  return corpus;
}

Corpus load_snapshot_mmap(const std::filesystem::path& path) {
  const auto start = std::chrono::steady_clock::now();

  // v1 files predate per-section checksums and column alignment, so the
  // mapped zero-copy binding cannot apply; route them through the eager
  // loader for compatibility.
  if (snapfmt::peek_version(path) == 1) {
    Corpus corpus = load_snapshot(path);
    obs::Registry::global()
        .gauge("data.snapshot_mmap_load_us")
        .set(elapsed_us(start));
    return corpus;
  }

  auto map = std::make_shared<const snapfmt::MmapSectionFile>(path);
  const std::string& ctx = map->context();
  Corpus corpus;
  corpus.model_id = read_model_id(*map, ctx);

  {
    ByteReader r = map->open(snapfmt::kNetwork);
    if constexpr (kNativeU64) {
      // Bind the CSR columns in place; from_views revalidates structure.
      const auto n = static_cast<std::size_t>(r.pod<std::uint64_t>());
      const auto edges = static_cast<std::size_t>(r.pod<std::uint64_t>());
      const auto as_u64 = [](std::span<const char> s) {
        return std::span<const std::size_t>(
            reinterpret_cast<const std::size_t*>(s.data()), s.size() / 8);
      };
      const auto as_node = [](std::span<const char> s) {
        return std::span<const graph::NodeId>(
            reinterpret_cast<const graph::NodeId*>(s.data()), s.size() / 4);
      };
      const auto out_offsets = as_u64(r.borrow((n + 1) * 8));
      const auto out_targets = as_node(r.borrow(edges * 4));
      r.align8();
      const auto in_offsets = as_u64(r.borrow((n + 1) * 8));
      const auto in_sources = as_node(r.borrow(edges * 4));
      try {
        corpus.network = graph::Digraph::from_views(out_offsets, out_targets,
                                                    in_offsets, in_sources);
      } catch (const std::invalid_argument& err) {
        throw std::runtime_error(ctx + err.what());
      }
    } else {
      // Hosts without the native u64 layout copy the graph (the vote
      // columns below still bind zero-copy — u32/f64 need no widening).
      corpus.network = decode_network_owned(r, /*aligned=*/true, ctx);
    }
  }

  StoryColumns cols;
  {
    ByteReader r = map->open(snapfmt::kStories);
    cols.count = static_cast<std::size_t>(r.pod<std::uint64_t>());
    read_story_columns(r, cols);
  }

  {
    ByteReader r = map->open(snapfmt::kVotesIndex);
    VoteIndex idx = read_vote_index_preamble(r);
    if (idx.story_count != cols.count)
      throw std::runtime_error(ctx + "story count mismatch between sections");
    const std::span<const char> offsets_raw = r.borrow((cols.count + 1) * 8);
    const std::span<const std::uint64_t> offsets(
        reinterpret_cast<const std::uint64_t*>(offsets_raw.data()),
        cols.count + 1);
    read_vote_index_chunks(r, idx);

    const auto user_chunks = map->entries(snapfmt::kVotesUsers);
    const auto time_chunks = map->entries(snapfmt::kVotesTimes);
    if (user_chunks.size() != idx.chunk_count ||
        time_chunks.size() != idx.chunk_count)
      throw std::runtime_error(ctx + "vote chunk count mismatch");

    // First touch of every vote chunk — checksum verification dominates
    // large loads, and chunking makes it embarrassingly parallel. A bad
    // chunk throws from the lowest-indexed failing chunk.
    std::vector<VoteChunkView> chunks(idx.chunk_count);
    runtime::parallel_for(idx.chunk_count, [&](std::size_t c) {
      const std::span<const char> u = map->view(*user_chunks[c]);
      const std::span<const char> t = map->view(*time_chunks[c]);
      if (u.size() % sizeof(UserId) != 0 ||
          t.size() != (u.size() / sizeof(UserId)) * sizeof(platform::Minutes))
        throw std::runtime_error(ctx + "vote chunk size mismatch");
      chunks[c] = VoteChunkView{
          static_cast<std::size_t>(idx.chunks[c].first),
          idx.chunks[c].second,
          {reinterpret_cast<const UserId*>(u.data()),
           u.size() / sizeof(UserId)},
          {reinterpret_cast<const platform::Minutes*>(t.data()),
           t.size() / sizeof(platform::Minutes)}};
    });
    try {
      corpus.vote_store = VoteStore::from_views(offsets, std::move(chunks));
    } catch (const std::invalid_argument& err) {
      throw std::runtime_error(ctx + err.what());
    }
  }

  {
    ByteReader r = map->open(snapfmt::kTopUsers);
    const auto n = static_cast<std::size_t>(r.pod<std::uint64_t>());
    corpus.top_users = r.column<UserId>(n);
  }

  emplace_stories(corpus, cols, ctx,
                  [&](std::size_t i) { return cols.has_promoted[i] != 0; });

  // O(stories) structural checks in place of the eager loader's
  // O(votes log votes) content validation (see header).
  for (std::size_t i = 0; i < cols.count; ++i) {
    if (cols.submitters[i] >= corpus.user_count())
      throw std::runtime_error(ctx + "story submitter outside the network");
  }
  for (UserId u : corpus.top_users) {
    if (u >= corpus.user_count())
      throw std::runtime_error(ctx + "top user outside the network");
  }

  corpus.backing = std::move(map);

  obs::Registry::global()
      .gauge("data.snapshot_mmap_load_us")
      .set(elapsed_us(start));
  obs::Registry::global()
      .gauge("data.corpus_vote_column_bytes")
      .set(static_cast<double>(corpus.vote_store.size_bytes()));
  return corpus;
}

}  // namespace digg::data
