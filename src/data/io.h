#pragma once
// CSV serialization of a Corpus. The on-disk layout is four files under a
// directory prefix, designed so a real Digg scrape can be converted into it
// with a few lines of scripting:
//   network.csv    fan,target            (fan watches target)
//   stories.csv    id,section,submitter,submitted_at,promoted_at,quality
//                  (section: front_page|upcoming; promoted_at empty if none)
//   votes.csv      story_id,user,time    (chronological per story,
//                                         submitter's digg first)
//   top_users.csv  user                  (rank order)

#include <filesystem>
#include <string>

#include "src/data/corpus.h"

namespace digg::data {

/// Writes the four CSV files into `dir`, creating it if needed. Throws
/// std::runtime_error on I/O failure.
void save_corpus(const Corpus& corpus, const std::filesystem::path& dir);

/// Loads a corpus previously written by save_corpus (or converted real
/// data). Validates the result (see corpus.h) before returning. Throws
/// std::runtime_error on I/O or format errors.
[[nodiscard]] Corpus load_corpus(const std::filesystem::path& dir);

}  // namespace digg::data
