#include "src/data/synthetic.h"

#include <algorithm>
#include <stdexcept>

#include "src/digg/platform.h"
#include "src/digg/promotion.h"
#include "src/digg/user.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace digg::data {

namespace {

double sample_general_appeal(const SyntheticParams& p, bool top_submitter,
                             stats::Rng& rng) {
  const double dull = top_submitter ? p.top_dull_fraction : p.dull_fraction;
  const double hot = top_submitter ? p.top_hot_fraction : p.hot_fraction;
  const double u = rng.uniform();
  if (u < dull) return rng.uniform(p.dull_lo, p.dull_hi);
  if (u < dull + hot) return rng.uniform(p.hot_lo, p.hot_hi);
  return rng.uniform(p.mid_lo, p.mid_hi);
}

double sample_community_appeal(const SyntheticParams& p, double general,
                               double submitter_fan_pull, stats::Rng& rng) {
  double c = p.community_base + p.community_general_slope * general +
             p.community_top_boost * submitter_fan_pull +
             rng.normal(0.0, p.community_noise);
  return std::clamp(c, 0.0, 1.0);
}

}  // namespace

SyntheticCorpus generate_corpus(const SyntheticParams& params,
                                stats::Rng& rng) {
  if (params.story_count == 0)
    throw std::invalid_argument("generate_corpus: story_count == 0");
  if (params.top_submitter_pool == 0 ||
      params.top_submitter_pool > params.user_count)
    throw std::invalid_argument("generate_corpus: bad top_submitter_pool");

  obs::Span span("generate_corpus", "data");
  static obs::Counter& users_generated =
      obs::Registry::global().counter("data.users_generated");
  static obs::Counter& stories_generated =
      obs::Registry::global().counter("data.stories_generated");
  users_generated.inc(params.user_count);
  stories_generated.inc(params.story_count);

  SyntheticCorpus out;
  out.seed = rng.seed();

  // 1. Fan network; node_count follows user_count regardless of what the
  // nested params carry (they may be stale after field-by-field edits).
  graph::PreferentialAttachmentParams net_params = params.network;
  net_params.node_count = params.user_count;
  const graph::Digraph network = preferential_attachment(net_params, rng);

  // 2. Population (activity aligned with arrival order: user 0 heaviest).
  platform::PopulationParams pop;
  pop.user_count = params.user_count;
  std::vector<platform::UserProfile> users =
      platform::generate_population(pop, rng);

  // 3. Platform with the count-and-rate promotion rule.
  platform::Platform plat(
      network, std::move(users),
      std::make_unique<platform::VoteRatePolicy>(
          params.promotion_threshold, params.promotion_rate_votes,
          params.promotion_rate_window));
  dynamics::VoteSimulator sim(plat, params.vote_model, rng.fork());

  // 4. Submissions: traits drawn per story; community appeal pulled up by
  // the submitter's fan count (their personal audience).
  std::vector<std::pair<platform::UserId, dynamics::StoryTraits>> submissions;
  submissions.reserve(params.story_count);
  const stats::ZipfSampler top_picker(params.top_submitter_pool,
                                      params.top_submitter_zipf);
  for (std::size_t k = 0; k < params.story_count; ++k) {
    platform::UserId submitter;
    const bool top_submitter = rng.bernoulli(params.top_submitter_fraction);
    if (top_submitter) {
      submitter = static_cast<platform::UserId>(top_picker.sample(rng) - 1);
    } else {
      submitter = static_cast<platform::UserId>(rng.uniform_int(
          0, static_cast<std::int64_t>(params.user_count) - 1));
    }
    dynamics::StoryTraits traits;
    traits.general = sample_general_appeal(params, top_submitter, rng);
    const double fan_pull = std::min(
        1.0, static_cast<double>(network.fan_count(submitter)) / 100.0);
    traits.community =
        sample_community_appeal(params, traits.general, fan_pull, rng);
    submissions.emplace_back(submitter, traits);
    out.traits.push_back(traits);
  }

  dynamics::simulate_batch(plat, sim, submissions,
                           params.submission_spacing);

  // 5. Partition into front-page vs upcoming and rank users.
  Corpus& corpus = out.corpus;
  corpus.network = network;
  for (const platform::Story& s : plat.stories()) {
    corpus.add_story(s, s.promoted() ? Corpus::Section::kFrontPage
                                     : Corpus::Section::kUpcoming);
  }
  const std::vector<std::uint32_t> reputation =
      platform::promoted_submission_counts(plat.stories(),
                                           params.user_count);
  corpus.top_users =
      platform::top_user_ranking(reputation, network.in_degrees());
  obs::log_debug("data", "generated corpus",
                 {{"seed", out.seed},
                  {"users", params.user_count},
                  {"stories", params.story_count},
                  {"front_page", corpus.front_page.size()},
                  {"upcoming", corpus.upcoming.size()}});
  return out;
}

}  // namespace digg::data
