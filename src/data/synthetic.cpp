#include "src/data/synthetic.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "src/digg/platform.h"
#include "src/digg/promotion.h"
#include "src/digg/user.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace digg::data {

namespace {

double sample_general_appeal(const SyntheticParams& p, bool top_submitter,
                             stats::Rng& rng) {
  const double dull = top_submitter ? p.top_dull_fraction : p.dull_fraction;
  const double hot = top_submitter ? p.top_hot_fraction : p.hot_fraction;
  const double u = rng.uniform();
  if (u < dull) return rng.uniform(p.dull_lo, p.dull_hi);
  if (u < dull + hot) return rng.uniform(p.hot_lo, p.hot_hi);
  return rng.uniform(p.mid_lo, p.mid_hi);
}

double sample_community_appeal(const SyntheticParams& p, double general,
                               double submitter_fan_pull, stats::Rng& rng) {
  double c = p.community_base + p.community_general_slope * general +
             p.community_top_boost * submitter_fan_pull +
             rng.normal(0.0, p.community_noise);
  return std::clamp(c, 0.0, 1.0);
}

std::unique_ptr<platform::PromotionPolicy> make_policy(
    const SyntheticParams& p) {
  switch (p.promotion_rule) {
    case PromotionRule::kCountOnly:
      return std::make_unique<platform::VoteCountPolicy>(
          p.promotion_threshold);
    case PromotionRule::kCountAndRate:
      return std::make_unique<platform::VoteRatePolicy>(
          p.promotion_threshold, p.promotion_rate_votes,
          p.promotion_rate_window);
    case PromotionRule::kDiversity:
      return std::make_unique<platform::DiversityPolicy>(
          static_cast<double>(p.promotion_threshold),
          p.diversity_fan_vote_weight);
  }
  throw std::invalid_argument("generate_corpus: bad promotion_rule");
}

/// Peak resident set of this process in bytes (VmHWM), or 0 where
/// /proc/self/status is unavailable.
std::size_t peak_rss_bytes() {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0)
      return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
  }
#endif
  return 0;
}

struct GenerationCore {
  std::unique_ptr<platform::Platform> plat;
  std::vector<dynamics::StoryTraits> traits;
};

/// The generation pipeline shared by the in-memory and streamed drivers.
/// Both consume the rng identically (the per-story hooks never draw), so
/// they produce bit-identical platforms. `on_network` fires once, before
/// the network is handed to the platform; `on_story` fires after each
/// story's run finishes, while its vote columns are final and still
/// resident — the streamed driver persists and releases them there.
GenerationCore run_generation(
    const SyntheticParams& params, stats::Rng& rng,
    const std::function<void(const graph::Digraph&)>& on_network,
    const std::function<void(platform::Platform&, platform::StoryId)>&
        on_story) {
  if (params.story_count == 0)
    throw std::invalid_argument("generate_corpus: story_count == 0");
  if (params.top_submitter_pool == 0 ||
      params.top_submitter_pool > params.user_count)
    throw std::invalid_argument("generate_corpus: bad top_submitter_pool");

  obs::Span span("generate_corpus", "data");
  static obs::Counter& users_generated =
      obs::Registry::global().counter("data.users_generated");
  static obs::Counter& stories_generated =
      obs::Registry::global().counter("data.stories_generated");
  users_generated.inc(params.user_count);
  stories_generated.inc(params.story_count);

  // 1. Fan network; node_count follows user_count regardless of what the
  // nested params carry (they may be stale after field-by-field edits).
  graph::PreferentialAttachmentParams net_params = params.network;
  net_params.node_count = params.user_count;
  graph::Digraph network = preferential_attachment(net_params, rng);

  // 2. Population (activity aligned with arrival order: user 0 heaviest).
  platform::PopulationParams pop = params.population;
  pop.user_count = params.user_count;
  std::vector<platform::UserProfile> users =
      platform::generate_population(pop, rng);

  if (on_network) on_network(network);

  // 3. Platform with the scenario's promotion rule.
  auto plat = std::make_unique<platform::Platform>(
      std::move(network), std::move(users), make_policy(params));
  // The model draws from per-story rng.split(story_id) substreams, but the
  // fork here still consumes one parent draw — keeping the trait-sampling
  // stream below identical to pre-Model corpora.
  const std::unique_ptr<dynamics::Model> model = params.make_model();
  const std::unique_ptr<dynamics::Simulator> sim =
      model->make_simulator(*plat, rng.fork());

  // 4. Submissions: traits drawn per story; community appeal pulled up by
  // the submitter's fan count (their personal audience).
  GenerationCore core;
  std::vector<std::pair<platform::UserId, dynamics::StoryTraits>> submissions;
  submissions.reserve(params.story_count);
  core.traits.reserve(params.story_count);
  const stats::ZipfSampler top_picker(params.top_submitter_pool,
                                      params.top_submitter_zipf);
  for (std::size_t k = 0; k < params.story_count; ++k) {
    platform::UserId submitter;
    const bool top_submitter = rng.bernoulli(params.top_submitter_fraction);
    if (top_submitter) {
      submitter = static_cast<platform::UserId>(top_picker.sample(rng) - 1);
    } else {
      submitter = static_cast<platform::UserId>(rng.uniform_int(
          0, static_cast<std::int64_t>(params.user_count) - 1));
    }
    dynamics::StoryTraits traits;
    traits.general = sample_general_appeal(params, top_submitter, rng);
    const double fan_pull = std::min(
        1.0,
        static_cast<double>(plat->network().fan_count(submitter)) / 100.0);
    traits.community =
        sample_community_appeal(params, traits.general, fan_pull, rng);
    submissions.emplace_back(submitter, traits);
    core.traits.push_back(traits);
  }

  platform::Platform& plat_ref = *plat;
  dynamics::simulate_each(
      plat_ref, *sim, submissions, params.submission_spacing,
      [&](platform::StoryId id, dynamics::StoryRun&&) {
        if (on_story) on_story(plat_ref, id);
      });

  core.plat = std::move(plat);
  return core;
}

}  // namespace

std::unique_ptr<dynamics::Model> SyntheticParams::make_model() const {
  if (model_id == dynamics::kLegacyModelId)
    return std::make_unique<dynamics::VoteModel>(vote_model);
  if (model_id == dynamics::kStochasticModelId)
    return std::make_unique<dynamics::StochasticModel>(stochastic);
  return dynamics::make_model(model_id);  // throws for unknown ids
}

SyntheticCorpus generate_corpus(const SyntheticParams& params,
                                stats::Rng& rng) {
  SyntheticCorpus out;
  out.seed = rng.seed();
  GenerationCore core = run_generation(params, rng, nullptr, nullptr);
  out.traits = std::move(core.traits);
  platform::Platform& plat = *core.plat;

  // 5. Partition into front-page vs upcoming and rank users.
  Corpus& corpus = out.corpus;
  corpus.model_id = params.model_id;
  corpus.network = plat.network();
  for (const platform::Story& s : plat.stories()) {
    corpus.add_story(s, s.promoted() ? Corpus::Section::kFrontPage
                                     : Corpus::Section::kUpcoming);
  }
  const std::vector<std::uint32_t> reputation =
      platform::promoted_submission_counts(plat.stories(),
                                           params.user_count);
  corpus.top_users =
      platform::top_user_ranking(reputation, corpus.network.in_degrees());
  obs::log_debug("data", "generated corpus",
                 {{"seed", out.seed},
                  {"users", params.user_count},
                  {"stories", params.story_count},
                  {"front_page", corpus.front_page.size()},
                  {"upcoming", corpus.upcoming.size()}});
  return out;
}

StreamedCorpusInfo generate_corpus_to_snapshot(
    const SyntheticParams& params, stats::Rng& rng,
    const std::filesystem::path& path, std::size_t chunk_target_bytes) {
  SnapshotWriter writer(path, chunk_target_bytes);
  writer.write_model_id(params.model_id);
  StreamedCorpusInfo info;
  info.seed = rng.seed();

  GenerationCore core = run_generation(
      params, rng,
      [&writer](const graph::Digraph& network) {
        writer.write_network(network);
      },
      [&writer](platform::Platform& plat, platform::StoryId id) {
        // The run is over, so the vote columns are final: persist them and
        // drop them from the platform to keep the working set bounded.
        const platform::Story& s = plat.story(id);
        writer.add_votes(s.voters, s.times);
        plat.release_votes(id);
      });
  platform::Platform& plat = *core.plat;

  // Metadata is only final now — expire_stale during later stories' runs
  // can still flip earlier phases — so it is written in one O(stories) pass.
  for (const platform::Story& s : plat.stories()) {
    writer.add_story(s);
    if (s.promoted())
      ++info.front_page_count;
    else
      ++info.upcoming_count;
  }
  const std::vector<std::uint32_t> reputation =
      platform::promoted_submission_counts(plat.stories(), params.user_count);
  const std::vector<platform::UserId> top_users =
      platform::top_user_ranking(reputation, plat.network().in_degrees());
  writer.write_top_users(top_users);
  info.story_count = writer.story_count();
  info.total_votes = writer.total_votes();
  writer.finish();

  static obs::Gauge& peak_rss =
      obs::Registry::global().gauge("data.generation_peak_rss");
  if (const std::size_t rss = peak_rss_bytes(); rss > 0)
    peak_rss.set(static_cast<double>(rss));
  obs::log_debug("data", "streamed corpus to snapshot",
                 {{"seed", info.seed},
                  {"users", params.user_count},
                  {"stories", info.story_count},
                  {"front_page", info.front_page_count},
                  {"upcoming", info.upcoming_count},
                  {"total_votes", info.total_votes}});
  return info;
}

}  // namespace digg::data
