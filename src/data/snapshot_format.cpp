#include "src/data/snapshot_format.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <string>

namespace digg::data::snapfmt {

namespace {

constexpr char kMagic[8] = {'D', 'I', 'G', 'G', 'S', 'N', 'A', 'P'};
constexpr char kZeros[8] = {};

std::string context_for(const std::filesystem::path& path) {
  return path.string() + ": ";
}

[[noreturn]] void throw_bad_version(const std::string& ctx,
                                    std::uint32_t version) {
  throw std::runtime_error(ctx + "unsupported version " +
                           std::to_string(version) + " (reader supports <= " +
                           std::to_string(kSnapshotVersion) + ")");
}

/// Shared header triage for every reader: size floor, magic, version. The
/// buffer must hold at least kHeaderBytes + 8 bytes.
std::uint32_t check_header(const std::string& ctx, const char* data,
                           std::size_t size) {
  if (size < kHeaderBytes + sizeof(std::uint64_t))
    throw std::runtime_error(ctx + "truncated file (smaller than header)");
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error(ctx + "bad magic (not a DIGGSNAP file)");
  std::uint32_t version;
  std::memcpy(&version, data + sizeof(kMagic), sizeof(version));
  if (version == 0 || version > kSnapshotVersion)
    throw_bad_version(ctx, version);
  return version;
}

/// Parses and validates a v2 header + table from a complete in-memory or
/// mapped file image. Verifies the header/table checksum and returns the
/// table; section-body checksums are the caller's (eager readers verify
/// them all, the mmap reader defers each to first open).
std::vector<SectionEntry> read_table_v2(const std::string& ctx,
                                        const char* data, std::size_t size) {
  if (size < kHeaderBytesV2 + sizeof(std::uint64_t))
    throw std::runtime_error(ctx + "truncated file (smaller than header)");
  std::uint32_t count;
  std::uint64_t table_offset;
  std::memcpy(&count, data + 12, sizeof(count));
  std::memcpy(&table_offset, data + 16, sizeof(table_offset));
  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(count) * kEntryBytesV2;
  if (table_offset < kHeaderBytesV2 || table_offset > size ||
      table_bytes + sizeof(std::uint64_t) != size - table_offset)
    throw std::runtime_error(ctx + "truncated file (section table cut off)");

  std::vector<SectionEntry> table(count);
  ByteReader r(data + table_offset, static_cast<std::size_t>(table_bytes));
  for (SectionEntry& e : table) {
    e.type = r.pod<std::uint32_t>();
    e.flags = r.pod<std::uint32_t>();
    e.offset = r.pod<std::uint64_t>();
    e.size = r.pod<std::uint64_t>();
    e.checksum = r.pod<std::uint64_t>();
    if (e.offset < kHeaderBytesV2 || e.offset > table_offset ||
        e.size > table_offset - e.offset)
      throw std::runtime_error(ctx + "truncated file (section overruns)");
  }

  // Header (24B) and table (count * 32B) are both whole numbers of fnv
  // words, so chaining equals checksumming their concatenation.
  std::uint64_t meta = fnv1a(data, kHeaderBytesV2);
  meta = fnv1a(data + table_offset, static_cast<std::size_t>(table_bytes),
               meta);
  std::uint64_t stored;
  std::memcpy(&stored, data + table_offset + table_bytes, sizeof(stored));
  if (meta != stored)
    throw std::runtime_error(ctx + "checksum mismatch (corrupt snapshot)");
  return table;
}

}  // namespace

std::uint64_t fnv1a(const char* data, std::size_t size, std::uint64_t seed) {
  std::uint64_t h = seed;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, data + i, 8);
    h = (h ^ w) * 1099511628211ull;
  }
  if (i < size) {
    std::uint64_t w = 0;
    std::memcpy(&w, data + i, size - i);
    h = (h ^ w) * 1099511628211ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Streaming v2 writer

SectionFileWriter::SectionFileWriter(const std::filesystem::path& path)
    : path_(path) {
  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) throw std::runtime_error("cannot write " + path_.string());
  // Header with count/table_offset placeholders; finish() patches them.
  put(kMagic, sizeof(kMagic));
  const std::uint32_t version = kSnapshotVersion;
  put(&version, sizeof(version));
  const std::uint32_t count = 0;
  put(&count, sizeof(count));
  const std::uint64_t table_offset = 0;
  put(&table_offset, sizeof(table_offset));
}

SectionFileWriter::~SectionFileWriter() = default;

void SectionFileWriter::put(const void* p, std::size_t n) {
  out_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  if (!out_) throw std::runtime_error("short write to " + path_.string());
}

void SectionFileWriter::pad_to8() {
  if (offset_ % 8 != 0) {
    const std::size_t pad = 8 - offset_ % 8;
    put(kZeros, pad);
    offset_ += pad;
  }
}

void SectionFileWriter::add(std::uint32_t type, std::span<const char> body) {
  if (finished_)
    throw std::logic_error("SectionFileWriter: add after finish");
  pad_to8();
  SectionEntry e;
  e.type = type;
  e.offset = offset_;
  e.size = body.size();
  e.checksum = fnv1a(body.data(), body.size());
  table_.push_back(e);
  put(body.data(), body.size());
  offset_ += body.size();
}

void SectionFileWriter::finish() {
  if (finished_)
    throw std::logic_error("SectionFileWriter: finish called twice");
  pad_to8();
  const std::uint64_t table_offset = offset_;
  ByteBuffer table;
  for (const SectionEntry& e : table_) {
    table.pod(e.type);
    table.pod(e.flags);
    table.pod(e.offset);
    table.pod(e.size);
    table.pod(e.checksum);
  }
  put(table.bytes().data(), table.size());

  ByteBuffer header;
  header.raw(kMagic, sizeof(kMagic));
  header.pod(std::uint32_t{kSnapshotVersion});
  header.pod(static_cast<std::uint32_t>(table_.size()));
  header.pod(table_offset);
  std::uint64_t meta = fnv1a(header.bytes().data(), header.size());
  meta = fnv1a(table.bytes().data(), table.size(), meta);
  put(&meta, sizeof(meta));

  out_.seekp(12);  // count + table_offset live at bytes [12, 24)
  if (!out_) throw std::runtime_error("short write to " + path_.string());
  put(header.bytes().data() + 12, kHeaderBytesV2 - 12);
  out_.flush();
  if (!out_) throw std::runtime_error("short write to " + path_.string());
  finished_ = true;
}

void write_section_file(const std::filesystem::path& path,
                        std::span<const Section> sections,
                        std::uint32_t version) {
  if (version == kSnapshotVersion) {
    SectionFileWriter w(path);
    for (const Section& s : sections) w.add(s.type, s.body);
    w.finish();
    return;
  }
  if (version != 1)
    throw std::invalid_argument("write_section_file: unknown version " +
                                std::to_string(version));
  // Legacy v1 layout: table up front, one whole-file trailing checksum.
  const auto count = static_cast<std::uint32_t>(sections.size());
  ByteBuffer file;
  file.raw(kMagic, sizeof(kMagic));
  file.pod(std::uint32_t{1});
  file.pod(count);
  std::uint64_t offset = kHeaderBytes + count * kEntryBytes;
  for (const Section& s : sections) {
    file.pod(s.type);
    file.pod(std::uint32_t{0});  // flags, reserved
    file.pod(offset);
    file.pod(static_cast<std::uint64_t>(s.body.size()));
    offset += s.body.size();
  }
  for (const Section& s : sections)
    file.raw(s.body.bytes().data(), s.body.size());
  file.pod(fnv1a(file.bytes().data(), file.size()));

  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out.write(file.bytes().data(), static_cast<std::streamsize>(file.size()));
  if (!out) throw std::runtime_error("short write to " + path.string());
}

// ---------------------------------------------------------------------------
// Eager reader

const SectionEntry& SectionFile::find(std::uint32_t type) const {
  for (const SectionEntry& e : table)
    if (e.type == type) return e;
  throw std::runtime_error(context + "missing section " +
                           std::to_string(type));
}

std::vector<const SectionEntry*> SectionFile::entries(
    std::uint32_t type) const {
  std::vector<const SectionEntry*> out;
  for (const SectionEntry& e : table)
    if (e.type == type) out.push_back(&e);
  return out;
}

ByteReader SectionFile::open(const SectionEntry& e) const {
  return ByteReader(bytes.data() + e.offset,
                    static_cast<std::size_t>(e.size));
}

ByteReader SectionFile::open(std::uint32_t type) const {
  return open(find(type));
}

SectionFile read_section_file(const std::filesystem::path& path) {
  // Single whole-file read; everything else is in-memory pointer work.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  const auto file_size = static_cast<std::size_t>(in.tellg());
  std::vector<char> bytes(file_size);
  in.seekg(0);
  in.read(bytes.data(), static_cast<std::streamsize>(file_size));
  if (!in) throw std::runtime_error("cannot read " + path.string());

  const std::string ctx = context_for(path);
  const std::uint32_t version = check_header(ctx, bytes.data(), file_size);

  if (version == kSnapshotVersion) {
    std::vector<SectionEntry> table =
        read_table_v2(ctx, bytes.data(), file_size);
    // The eager reader keeps v1's up-front integrity guarantee: verify
    // every section body now. (The mmap reader is the lazy path.)
    for (const SectionEntry& e : table) {
      if (fnv1a(bytes.data() + e.offset, static_cast<std::size_t>(e.size)) !=
          e.checksum)
        throw std::runtime_error(ctx + "checksum mismatch (corrupt snapshot)");
    }
    return SectionFile{std::move(bytes), std::move(table), version, ctx};
  }

  // v1: table right after the header, trailing whole-file checksum.
  ByteReader header(bytes.data(), file_size);
  header.seek(sizeof(kMagic) + sizeof(std::uint32_t));
  const auto section_count = header.pod<std::uint32_t>();
  const std::size_t table_end =
      kHeaderBytes + static_cast<std::size_t>(section_count) * kEntryBytes;
  if (table_end + sizeof(std::uint64_t) > file_size)
    throw std::runtime_error(ctx + "truncated file (section table cut off)");

  std::vector<SectionEntry> table(section_count);
  const std::size_t payload_end = file_size - sizeof(std::uint64_t);
  for (SectionEntry& e : table) {
    e.type = header.pod<std::uint32_t>();
    e.flags = header.pod<std::uint32_t>();
    e.offset = header.pod<std::uint64_t>();
    e.size = header.pod<std::uint64_t>();
    if (e.offset > payload_end || e.size > payload_end - e.offset)
      throw std::runtime_error(ctx + "truncated file (section overruns)");
  }

  ByteReader checksum_reader(bytes.data(), file_size);
  checksum_reader.seek(payload_end);
  const auto stored = checksum_reader.pod<std::uint64_t>();
  if (fnv1a(bytes.data(), payload_end) != stored)
    throw std::runtime_error(ctx + "checksum mismatch (corrupt snapshot)");

  return SectionFile{std::move(bytes), std::move(table), version, ctx};
}

std::uint32_t peek_version(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  const auto file_size = static_cast<std::size_t>(in.tellg());
  char head[kHeaderBytes + sizeof(std::uint64_t)] = {};
  const std::string ctx = context_for(path);
  if (file_size < sizeof(head))
    throw std::runtime_error(ctx + "truncated file (smaller than header)");
  in.seekg(0);
  in.read(head, sizeof(head));
  if (!in) throw std::runtime_error("cannot read " + path.string());
  return check_header(ctx, head, file_size);
}

// ---------------------------------------------------------------------------
// Mapped reader

MmapSectionFile::MmapSectionFile(const std::filesystem::path& path)
    : context_(context_for(path)) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("cannot read " + path.string());
  struct ::stat st = {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot read " + path.string());
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ < kHeaderBytes + sizeof(std::uint64_t)) {
    ::close(fd);
    throw std::runtime_error(context_ +
                             "truncated file (smaller than header)");
  }
  void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED)
    throw std::runtime_error("cannot read " + path.string());
  data_ = static_cast<const char*>(map);

  try {
    const std::uint32_t version = check_header(context_, data_, size_);
    if (version != kSnapshotVersion)
      throw_bad_version(context_, version);  // mmap path is v2-only;
    // load_snapshot_mmap routes v1 files through the eager loader first.
    table_ = read_table_v2(context_, data_, size_);
  } catch (...) {
    ::munmap(const_cast<char*>(data_), size_);
    throw;
  }
  verified_ =
      std::make_unique<std::atomic<std::uint8_t>[]>(table_.size());
  for (std::size_t i = 0; i < table_.size(); ++i) verified_[i] = 0;
}

MmapSectionFile::~MmapSectionFile() {
  if (data_ != nullptr) ::munmap(const_cast<char*>(data_), size_);
}

const SectionEntry& MmapSectionFile::find(std::uint32_t type) const {
  for (const SectionEntry& e : table_)
    if (e.type == type) return e;
  throw std::runtime_error(context_ + "missing section " +
                           std::to_string(type));
}

std::vector<const SectionEntry*> MmapSectionFile::entries(
    std::uint32_t type) const {
  std::vector<const SectionEntry*> out;
  for (const SectionEntry& e : table_)
    if (e.type == type) out.push_back(&e);
  return out;
}

std::span<const char> MmapSectionFile::view(const SectionEntry& e) const {
  const auto idx = static_cast<std::size_t>(&e - table_.data());
  if (idx >= table_.size())
    throw std::logic_error("MmapSectionFile::view: entry not from table()");
  if (verified_[idx].load(std::memory_order_acquire) == 0) {
    if (fnv1a(data_ + e.offset, static_cast<std::size_t>(e.size)) !=
        e.checksum)
      throw std::runtime_error(context_ +
                               "checksum mismatch (corrupt snapshot)");
    verified_[idx].store(1, std::memory_order_release);
  }
  return {data_ + e.offset, static_cast<std::size_t>(e.size)};
}

}  // namespace digg::data::snapfmt
