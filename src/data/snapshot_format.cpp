#include "src/data/snapshot_format.h"

#include <fstream>
#include <string>

namespace digg::data::snapfmt {

namespace {
constexpr char kMagic[8] = {'D', 'I', 'G', 'G', 'S', 'N', 'A', 'P'};
}  // namespace

std::uint64_t fnv1a(const char* data, std::size_t size) {
  std::uint64_t h = 14695981039346656037ull;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, data + i, 8);
    h = (h ^ w) * 1099511628211ull;
  }
  if (i < size) {
    std::uint64_t w = 0;
    std::memcpy(&w, data + i, size - i);
    h = (h ^ w) * 1099511628211ull;
  }
  return h;
}

void write_section_file(const std::filesystem::path& path,
                        std::span<const Section> sections) {
  const auto count = static_cast<std::uint32_t>(sections.size());
  ByteBuffer file;
  file.raw(kMagic, sizeof(kMagic));
  file.pod(kSnapshotVersion);
  file.pod(count);
  std::uint64_t offset = kHeaderBytes + count * kEntryBytes;
  for (const Section& s : sections) {
    file.pod(s.type);
    file.pod(std::uint32_t{0});  // flags, reserved
    file.pod(offset);
    file.pod(static_cast<std::uint64_t>(s.body.size()));
    offset += s.body.size();
  }
  for (const Section& s : sections)
    file.raw(s.body.bytes().data(), s.body.size());
  file.pod(fnv1a(file.bytes().data(), file.size()));

  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out.write(file.bytes().data(), static_cast<std::streamsize>(file.size()));
  if (!out) throw std::runtime_error("short write to " + path.string());
}

const SectionEntry& SectionFile::find(std::uint32_t type) const {
  for (const SectionEntry& e : table)
    if (e.type == type) return e;
  throw std::runtime_error(context + "missing section " +
                           std::to_string(type));
}

ByteReader SectionFile::open(std::uint32_t type) const {
  const SectionEntry& e = find(type);
  ByteReader r(bytes.data(), static_cast<std::size_t>(e.offset + e.size));
  r.seek(e.offset);
  return r;
}

SectionFile read_section_file(const std::filesystem::path& path) {
  // Single whole-file read; everything else is in-memory pointer work.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  const auto file_size = static_cast<std::size_t>(in.tellg());
  std::vector<char> bytes(file_size);
  in.seekg(0);
  in.read(bytes.data(), static_cast<std::streamsize>(file_size));
  if (!in) throw std::runtime_error("cannot read " + path.string());

  const std::string ctx = path.string() + ": ";
  if (file_size < kHeaderBytes + sizeof(std::uint64_t))
    throw std::runtime_error(ctx + "truncated file (smaller than header)");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error(ctx + "bad magic (not a DIGGSNAP file)");

  ByteReader header(bytes.data(), file_size);
  header.seek(sizeof(kMagic));
  const auto version = header.pod<std::uint32_t>();
  if (version > kSnapshotVersion)
    throw std::runtime_error(ctx + "unsupported version " +
                             std::to_string(version) +
                             " (reader supports <= " +
                             std::to_string(kSnapshotVersion) + ")");
  const auto section_count = header.pod<std::uint32_t>();
  const std::size_t table_end =
      kHeaderBytes + static_cast<std::size_t>(section_count) * kEntryBytes;
  if (table_end + sizeof(std::uint64_t) > file_size)
    throw std::runtime_error(ctx + "truncated file (section table cut off)");

  std::vector<SectionEntry> table(section_count);
  const std::size_t payload_end = file_size - sizeof(std::uint64_t);
  for (SectionEntry& e : table) {
    e.type = header.pod<std::uint32_t>();
    e.flags = header.pod<std::uint32_t>();
    e.offset = header.pod<std::uint64_t>();
    e.size = header.pod<std::uint64_t>();
    if (e.offset > payload_end || e.size > payload_end - e.offset)
      throw std::runtime_error(ctx + "truncated file (section overruns)");
  }

  ByteReader checksum_reader(bytes.data(), file_size);
  checksum_reader.seek(payload_end);
  const auto stored = checksum_reader.pod<std::uint64_t>();
  if (fnv1a(bytes.data(), payload_end) != stored)
    throw std::runtime_error(ctx + "checksum mismatch (corrupt snapshot)");

  return SectionFile{std::move(bytes), std::move(table), ctx};
}

}  // namespace digg::data::snapfmt
