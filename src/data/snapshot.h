#pragma once
// Versioned binary snapshots of a Corpus — the fast path next to the CSV
// pair in io.h. The columnar corpus maps almost 1:1 onto flat arrays, so a
// snapshot is a header, a section table, and a handful of bulk column
// blobs; loading is one whole-file read plus a few validated moves instead
// of millions of text parses.
//
// The container discipline (magic, version, section table, checksum, the
// malformed-file error taxonomy, and the section-type registry) lives in
// snapshot_format.h and is shared with the stream-engine checkpoints; this
// header is the corpus-specific payload on top of it.
//
// Corpus sections (offsets are absolute file offsets; sizes in bytes):
//   1 NETWORK   u64 n, u64 e, out_offsets u64[n+1], out_targets u32[e],
//               in_offsets u64[n+1], in_sources u32[e]
//   2 STORIES   u64 front_count, u64 upcoming_count, then columns over all
//               S stories (front page first, each in corpus order):
//               id u32[S], submitter u32[S], submitted_at f64[S],
//               quality f64[S], phase u8[S], has_promoted u8[S],
//               promoted_at f64[S] (0 where has_promoted is 0)
//   3 VOTES     u64 S, u64 total, offsets u64[S+1], users u32[total],
//               times f64[total] — same story order as STORIES
//   4 TOPUSERS  u64 count, user u32[count]
//
// Readers reject files with a version newer than kSnapshotVersion
// ("unsupported version"), truncated files, bad magic, and checksum
// mismatches with distinct messages (see snapshot_format.h).

#include <cstdint>
#include <filesystem>

#include "src/data/corpus.h"
#include "src/data/snapshot_format.h"

namespace digg::data {

/// Writes `corpus` as a binary snapshot at `path` (parent directories are
/// created). Throws std::runtime_error on I/O failure.
void save_snapshot(const Corpus& corpus, const std::filesystem::path& path);

/// Loads a snapshot written by save_snapshot. Verifies magic, version, and
/// checksum, then validates the corpus (see corpus.h) before returning.
/// Throws std::runtime_error on I/O, format, or integrity errors.
[[nodiscard]] Corpus load_snapshot(const std::filesystem::path& path);

}  // namespace digg::data
