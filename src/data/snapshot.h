#pragma once
// Versioned binary snapshots of a Corpus — the fast path next to the CSV
// pair in io.h. The columnar corpus maps almost 1:1 onto flat arrays, so a
// snapshot is a header, a section table, and a handful of bulk column
// blobs; loading is one whole-file read plus a few validated moves — or,
// via load_snapshot_mmap, an O(ms) metadata parse that binds story views
// zero-copy into a memory mapping regardless of corpus size.
//
// The container discipline (magic, version, section table, checksums, the
// malformed-file error taxonomy, and the section-type registry) lives in
// snapshot_format.h and is shared with the stream-engine checkpoints; this
// header is the corpus-specific payload on top of it.
//
// Corpus sections, format v2 (all section bodies start 8-byte aligned so
// mapped readers can bind typed spans; `pad` = zero bytes to the next
// 8-byte boundary):
//   1 NETWORK      u64 n, u64 e, out_offsets u64[n+1], out_targets u32[e],
//                  pad, in_offsets u64[n+1], in_sources u32[e]
//   2 STORIES      u64 S, then columns over all S stories in file order:
//                  id u32[S], submitter u32[S], submitted_at f64[S],
//                  quality f64[S], phase u8[S], has_promoted u8[S],
//                  promoted_at f64[S] (0 where has_promoted is 0).
//                  Loaders partition by has_promoted (promoted stories →
//                  front_page, rest → upcoming), preserving file order
//                  within each bucket — so the file can store stories in
//                  submission order (streamed generation) or front-first
//                  (save_snapshot of a corpus) interchangeably.
//   5 VOTES_INDEX  u64 S, u64 total, u64 chunk_count,
//                  offsets u64[S+1] (global vote offsets per story),
//                  chunk_count * {u64 first_story, u64 first_vote}
//   6 VOTES_USERS  voter column of one chunk: u32[chunk_votes]  (repeated;
//                  the i-th entry of this type is chunk i)
//   7 VOTES_TIMES  time column of one chunk: f64[chunk_votes]   (repeated)
//   4 TOPUSERS     u64 count, user u32[count]
//   8 MODELINFO    u64 length, id bytes (UTF-8, no terminator) — the
//                  registered dynamics::Model id that generated the votes.
//                  Optional: files that predate it load as the legacy
//                  two-mechanism model; an id unknown to the running
//                  binary's model registry is a load error.
// Vote chunks are bounded (~chunk_target_bytes per column) and cut at
// story boundaries, so a writer can stream millions of stories with a
// bounded working set and a mapped reader can verify chunk checksums in
// parallel.
//
// Format v1 (still loadable; save_snapshot can still emit it):
//   3 VOTES        u64 S, u64 total, offsets u64[S+1], users u32[total],
//                  times f64[total] — one monolithic body
//   2 STORIES      u64 front_count, u64 upcoming_count, then the same
//                  columns as v2, stories ordered front page first
//
// Readers reject files with a version newer than kSnapshotVersion
// ("unsupported version"), truncated files, bad magic, and checksum
// mismatches with distinct messages (see snapshot_format.h).

#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <string_view>

#include "src/data/corpus.h"
#include "src/data/snapshot_format.h"

namespace digg::data {

/// Bounded size target for one vote chunk's columns (voters + times).
inline constexpr std::size_t kDefaultVoteChunkBytes = std::size_t{8} << 20;

/// Streams a v2 corpus snapshot to disk with a bounded working set: the
/// network goes out up front, vote columns leave RAM chunk by chunk as
/// stories finish, and only the per-story metadata (O(stories), not
/// O(votes)) accumulates until finish(). This is what lets million-user
/// generation write a corpus it could never hold in memory.
///
/// Protocol: write_network() once, add_votes() once per story in file
/// order, add_story() once per story in the same order (interleaved with
/// add_votes or batched at the end — streamed generation only knows final
/// phases once every story has run), write_top_users() once, finish().
class SnapshotWriter {
 public:
  explicit SnapshotWriter(const std::filesystem::path& path,
                          std::size_t chunk_target_bytes =
                              kDefaultVoteChunkBytes);

  void write_network(const graph::Digraph& network);
  /// Records which generative model produced the vote records (MODELINFO
  /// section). Call at most once, any time before finish(); omitting it
  /// leaves a file that loads as the legacy two-mechanism model.
  void write_model_id(std::string_view model_id);
  /// One story's vote columns, appended to the current chunk (flushed to
  /// disk when it reaches the chunk target).
  void add_votes(std::span<const UserId> voters,
                 std::span<const platform::Minutes> times);
  /// One story's metadata (vote spans of the view are ignored — counts
  /// live in the offsets column fed by add_votes).
  void add_story(const Story& story);
  void write_top_users(std::span<const UserId> top_users);
  /// Flushes the last chunk, writes STORIES + VOTES_INDEX + table, and
  /// seals the file. Throws std::logic_error if the add_votes/add_story
  /// call counts disagree.
  void finish();

  [[nodiscard]] std::uint64_t total_votes() const { return offsets_.back(); }
  [[nodiscard]] std::size_t story_count() const {
    return offsets_.size() - 1;
  }

 private:
  void flush_chunk();

  snapfmt::SectionFileWriter out_;
  std::size_t chunk_target_bytes_;
  bool network_written_ = false;
  bool top_users_written_ = false;
  bool model_written_ = false;

  // O(stories) metadata accumulators, written in finish().
  std::vector<StoryId> ids_;
  std::vector<UserId> submitters_;
  std::vector<double> submitted_at_, quality_, promoted_at_;
  std::vector<std::uint8_t> phases_, has_promoted_;
  std::vector<std::uint64_t> offsets_{0};
  struct ChunkRef {
    std::uint64_t first_story = 0;
    std::uint64_t first_vote = 0;
  };
  std::vector<ChunkRef> chunk_table_;

  // The in-flight chunk (bounded by chunk_target_bytes_).
  snapfmt::ByteBuffer chunk_users_, chunk_times_;
  std::uint64_t chunk_first_story_ = 0;
  std::uint64_t chunk_first_vote_ = 0;
};

/// Writes `corpus` as a binary snapshot at `path` (parent directories are
/// created). `version` selects the on-disk layout (v2 default; v1 kept for
/// compatibility with old readers). Throws std::runtime_error on I/O
/// failure.
void save_snapshot(const Corpus& corpus, const std::filesystem::path& path,
                   std::uint32_t version = kSnapshotVersion,
                   std::size_t chunk_target_bytes = kDefaultVoteChunkBytes);

/// Loads a snapshot written by save_snapshot (either version). Verifies
/// magic, version, and every checksum, then validates the corpus (see
/// corpus.h) before returning. The corpus owns all its columns. Throws
/// std::runtime_error on I/O, format, or integrity errors.
[[nodiscard]] Corpus load_snapshot(const std::filesystem::path& path);

/// Memory-maps a v2 snapshot and binds the corpus zero-copy into the
/// mapping: story views, vote columns, and (on 64-bit little-endian
/// hosts) the network CSR all borrow file-backed spans, so load time is
/// metadata parsing plus checksum scans — O(ms), independent of how much
/// vote data the file holds. Vote-chunk checksums are verified in
/// parallel; structural invariants (offset monotonicity, section
/// cross-consistency, CSR shape) are checked, but the per-story O(V log V)
/// content validation of load_snapshot is skipped — the per-section
/// checksums already vouch for the bytes, and the file carries the same
/// invariants save_snapshot enforced when writing. v1 files are routed
/// through the eager loader (they predate per-section checksums and
/// alignment). The returned corpus keeps the mapping alive via
/// Corpus::backing; copies share it.
[[nodiscard]] Corpus load_snapshot_mmap(const std::filesystem::path& path);

}  // namespace digg::data
