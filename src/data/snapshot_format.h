#pragma once
// The DIGGSNAP container format, shared by every binary artifact the repo
// persists: corpus snapshots (snapshot.h) and stream-engine checkpoints
// (src/stream/checkpoint.h). One container discipline — magic, version,
// section table, FNV-1a checksums — means every new artifact gets
// versioning, truncation detection, and integrity checking for free, and
// the malformed-file error taxonomy stays identical across artifact kinds.
//
// Version 2 layout (all integers little-endian; written on little-endian
// hosts). The table moved to the end of the file so sections can be
// streamed to disk as they are produced, every section body starts on an
// 8-byte boundary so memory-mapped readers can bind typed column spans
// directly into the file, and each section carries its own checksum so a
// mapped reader can verify sections lazily on first open:
//   header   24 bytes  "DIGGSNAP" + u32 version + u32 count
//                      + u64 table_offset
//   payload  section bodies, each padded to an 8-byte-aligned offset
//   table    count * {u32 type, u32 flags, u64 offset, u64 size,
//                     u64 checksum}   at table_offset (8-byte aligned)
//   checksum u64       FNV-1a over header bytes then table bytes
//                      (section bodies are covered per-entry)
//
// Version 1 layout (still readable; `write_section_file` can still emit it
// for compatibility tests):
//   magic    8 bytes  "DIGGSNAP"
//   version  u32      1
//   count    u32      number of section-table entries
//   table    count * {u32 type, u32 flags, u64 offset, u64 size}
//   payload  section bodies at their table offsets
//   checksum u64      FNV-1a over 8-byte LE words of every preceding byte
//                     (final partial word zero-padded)
//
// Section-type registry (ids are global across artifact kinds so a reader
// handed the wrong artifact fails with "missing section", not garbage):
//    1 NETWORK       corpus fan graph          (snapshot.cpp)
//    2 STORIES       corpus story metadata     (snapshot.cpp)
//    3 VOTES         corpus vote columns, one body      (v1 snapshots)
//    4 TOPUSERS      corpus top-user ranking   (snapshot.cpp)
//    5 VOTES_INDEX   chunked vote offsets + chunk table (v2 snapshots)
//    6 VOTES_USERS   one voter-column chunk (repeated; i-th entry = chunk i)
//    7 VOTES_TIMES   one time-column chunk  (repeated; i-th entry = chunk i)
//    8 MODELINFO     generative model id       (snapshot.cpp)
//   16 STREAM_META   stream checkpoint header  (src/stream/checkpoint.cpp)
//   17 STREAM_STATE  stream per-story progress (src/stream/checkpoint.cpp)
//   18 SERVE_STORIES live-ingest story identities + bounded vote prefixes
//                    (src/stream/checkpoint.cpp; present in live-mode
//                    checkpoints only)
// Unknown types are ignored by readers (forward-compatible extensions);
// claim a fresh id here before writing a new section kind. A type may
// repeat (chunked sections); `find`/`open` return the first entry and
// `entries` returns all of them in table order.
//
// Versioning policy: the version bumps whenever a reader of the old code
// could misread a new file (section layout or meaning changes). Adding a
// *new* section type does not bump it.

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace digg::data {

inline constexpr std::uint32_t kSnapshotVersion = 2;

namespace snapfmt {

enum SectionType : std::uint32_t {
  kNetwork = 1,
  kStories = 2,
  kVotes = 3,
  kTopUsers = 4,
  kVotesIndex = 5,
  kVotesUsers = 6,
  kVotesTimes = 7,
  kModelInfo = 8,
  kStreamMeta = 16,
  kStreamState = 17,
  kServeStories = 18,
};

struct SectionEntry {
  std::uint32_t type = 0;
  std::uint32_t flags = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;  // per-section FNV-1a (v2 files only)
};
inline constexpr std::size_t kEntryBytes = 24;    // v1 on-disk entry
inline constexpr std::size_t kHeaderBytes = 16;   // v1: magic+version+count
inline constexpr std::size_t kEntryBytesV2 = 32;  // + u64 checksum
inline constexpr std::size_t kHeaderBytesV2 = 24;  // + u64 table_offset

/// FNV-1a over 8-byte little-endian words, final partial word zero-padded.
/// Word-at-a-time keeps the multiply chain 8x shorter than the classic
/// byte-wise form — checksumming is on both the save and load hot paths.
/// `seed` chains buffers: for buffers whose sizes are multiples of 8,
/// fnv1a(b, fnv1a(a)) == fnv1a(a ++ b).
inline constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;
[[nodiscard]] std::uint64_t fnv1a(const char* data, std::size_t size,
                                  std::uint64_t seed = kFnvBasis);

/// Append-only byte sink for section bodies.
class ByteBuffer {
 public:
  void raw(const void* p, std::size_t n) {
    const std::size_t at = buf_.size();
    buf_.resize(at + n);
    std::memcpy(buf_.data() + at, p, n);
  }
  template <typename T>
  void pod(T v) {
    raw(&v, sizeof(T));
  }
  template <typename T>
  void column(const std::vector<T>& v) {
    raw(v.data(), v.size() * sizeof(T));
  }
  template <typename T>
  void column(std::span<const T> v) {
    raw(v.data(), v.size() * sizeof(T));
  }
  /// Zero-pad so the next write lands on an 8-byte boundary relative to
  /// the body start. Keeps u64/f64 columns alignable in mapped sections.
  void pad8() {
    static constexpr char kZeros[8] = {};
    if (buf_.size() % 8 != 0) raw(kZeros, 8 - buf_.size() % 8);
  }
  [[nodiscard]] const std::vector<char>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<char> buf_;
};

/// Bounds-checked cursor over a byte range; throws the shared "truncated
/// file (section overruns payload)" error on overrun.
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size) : data_(data), size_(size) {}

  void seek(std::size_t pos) { pos_ = pos; }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }

  template <typename T>
  T pod() {
    T v{};
    read_into(&v, sizeof(T));
    return v;
  }
  void read_into(void* dst, std::size_t bytes) {
    // Compare against the remainder: `pos_ + bytes` can wrap to a small
    // value for hostile section sizes near SIZE_MAX and pass the check.
    if (pos_ > size_ || bytes > size_ - pos_)
      throw std::runtime_error("truncated file (section overruns payload)");
    std::memcpy(dst, data_ + pos_, bytes);
    pos_ += bytes;
  }
  /// Skip forward so the cursor sits on an 8-byte boundary (v2 sections
  /// zero-pad between columns of different widths).
  void align8() {
    if (pos_ % 8 != 0) {
      char pad[8];
      read_into(pad, 8 - pos_ % 8);
    }
  }
  /// Borrow `bytes` bytes in place (no copy); the span aliases the
  /// underlying buffer, so it is only valid while that buffer lives.
  [[nodiscard]] std::span<const char> borrow(std::size_t bytes) {
    if (pos_ > size_ || bytes > size_ - pos_)
      throw std::runtime_error("truncated file (section overruns payload)");
    const std::span<const char> s(data_ + pos_, bytes);
    pos_ += bytes;
    return s;
  }
  template <typename T>
  std::vector<T> column(std::size_t count) {
    std::vector<T> v(count);
    if (count > 0) read_into(v.data(), count * sizeof(T));
    return v;
  }
  /// u64 column widened to size_t. On little-endian hosts where size_t is
  /// exactly 64 bits the vector's memory layout matches the on-disk column
  /// and the whole column is one bulk read; elsewhere a portable
  /// per-element widening loop runs instead.
  template <typename SizeT = std::size_t>
  std::vector<SizeT> u64_column(std::size_t count) {
    static_assert(std::is_same_v<SizeT, std::size_t>,
                  "u64_column always yields size_t; the template parameter "
                  "only defers the layout checks below");
    std::vector<SizeT> v(count);
    if constexpr (sizeof(SizeT) == sizeof(std::uint64_t) &&
                  std::endian::native == std::endian::little) {
      static_assert(alignof(SizeT) == alignof(std::uint64_t) &&
                        std::is_trivially_copyable_v<SizeT>,
                    "bulk read requires the on-disk column layout");
      if (count > 0) read_into(v.data(), count * sizeof(std::uint64_t));
    } else {
      for (std::size_t i = 0; i < count; ++i)
        v[i] = static_cast<SizeT>(pod<std::uint64_t>());
    }
    return v;
  }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// One section to be written: a claimed type id plus its encoded body.
struct Section {
  std::uint32_t type = 0;
  ByteBuffer body;
};

/// Streams a v2 container to disk section by section: sections are written
/// (and checksummed) as they are added, the table and trailing checksum
/// land in `finish()`. Working set is one section body at a time — this is
/// what lets million-user corpus generation write votes in bounded RAM.
class SectionFileWriter {
 public:
  /// Opens the file (parent directories are created) and reserves the
  /// header. Throws std::runtime_error on I/O failure.
  explicit SectionFileWriter(const std::filesystem::path& path);
  SectionFileWriter(const SectionFileWriter&) = delete;
  SectionFileWriter& operator=(const SectionFileWriter&) = delete;
  ~SectionFileWriter();

  /// Appends one section body (types may repeat — chunked sections).
  void add(std::uint32_t type, std::span<const char> body);
  void add(std::uint32_t type, const ByteBuffer& body) {
    add(type, std::span<const char>(body.bytes()));
  }

  [[nodiscard]] std::size_t section_count() const { return table_.size(); }
  /// File size so far (header + padded section bodies).
  [[nodiscard]] std::uint64_t bytes_written() const { return offset_; }

  /// Writes table + checksums and patches the header; the file is invalid
  /// until this succeeds. Throws std::runtime_error on I/O failure.
  void finish();

 private:
  void put(const void* p, std::size_t n);
  void pad_to8();

  std::filesystem::path path_;
  std::ofstream out_;
  std::vector<SectionEntry> table_;
  std::uint64_t offset_ = kHeaderBytesV2;
  bool finished_ = false;
};

/// Assembles and writes a whole container in one call. `version` selects
/// the on-disk layout (v2 default; v1 kept for compatibility tests and
/// old-reader interop). Throws std::runtime_error on I/O failure.
void write_section_file(const std::filesystem::path& path,
                        std::span<const Section> sections,
                        std::uint32_t version = kSnapshotVersion);

/// A validated, fully-read container file. `bytes` owns the payload; table
/// offsets index into it. All checksums are verified eagerly (v1: whole
/// file; v2: header/table plus every section).
struct SectionFile {
  std::vector<char> bytes;
  std::vector<SectionEntry> table;
  std::uint32_t version = 0;

  /// The first entry for `type`; throws "<path>: missing section N" if
  /// absent.
  [[nodiscard]] const SectionEntry& find(std::uint32_t type) const;
  /// All entries of `type`, in table order (chunked sections repeat types).
  [[nodiscard]] std::vector<const SectionEntry*> entries(
      std::uint32_t type) const;
  /// A reader over `type`'s body (first entry), positioned at its start.
  [[nodiscard]] ByteReader open(std::uint32_t type) const;
  [[nodiscard]] ByteReader open(const SectionEntry& e) const;

  std::string context;  // "<path>: " prefix for error messages
};

/// Reads the whole file and verifies magic, version, section-table bounds,
/// and checksums — with the distinct error messages the malformed-file
/// tests rely on. Section *contents* are the caller's to parse and
/// validate.
[[nodiscard]] SectionFile read_section_file(const std::filesystem::path& path);

/// The container version of `path` (reads only the fixed header; throws
/// the same truncation/magic errors as the full readers).
[[nodiscard]] std::uint32_t peek_version(const std::filesystem::path& path);

/// A memory-mapped v2 container. Header and table are validated eagerly
/// (magic, version, bounds, header/table checksum); each section's own
/// checksum is verified lazily on the first `open`/`view` of its entry, so
/// opening a multi-gigabyte snapshot costs milliseconds and sections that
/// are never touched are never read off disk. Section views are zero-copy
/// spans into the mapping and stay valid for the lifetime of this object.
/// Lazy verification is thread-safe: concurrent first opens may both
/// checksum the section, but the verified flag is sticky.
class MmapSectionFile {
 public:
  explicit MmapSectionFile(const std::filesystem::path& path);
  MmapSectionFile(const MmapSectionFile&) = delete;
  MmapSectionFile& operator=(const MmapSectionFile&) = delete;
  ~MmapSectionFile();

  [[nodiscard]] const std::vector<SectionEntry>& table() const {
    return table_;
  }
  [[nodiscard]] const SectionEntry& find(std::uint32_t type) const;
  [[nodiscard]] std::vector<const SectionEntry*> entries(
      std::uint32_t type) const;

  /// Zero-copy body view; verifies the entry's checksum on first use.
  /// `e` must be a reference into `table()`.
  [[nodiscard]] std::span<const char> view(const SectionEntry& e) const;
  [[nodiscard]] std::span<const char> view(std::uint32_t type) const {
    return view(find(type));
  }
  /// A bounds-checked reader over a (checksum-verified) section body.
  [[nodiscard]] ByteReader open(const SectionEntry& e) const {
    const std::span<const char> s = view(e);
    return ByteReader(s.data(), s.size());
  }
  [[nodiscard]] ByteReader open(std::uint32_t type) const {
    return open(find(type));
  }

  [[nodiscard]] std::size_t size_bytes() const { return size_; }
  [[nodiscard]] const std::string& context() const { return context_; }

 private:
  const char* data_ = nullptr;  // whole-file mapping
  std::size_t size_ = 0;
  std::vector<SectionEntry> table_;
  // One sticky "checksum verified" flag per table entry.
  std::unique_ptr<std::atomic<std::uint8_t>[]> verified_;
  std::string context_;  // "<path>: " prefix for error messages
};

}  // namespace snapfmt
}  // namespace digg::data
