#pragma once
// The DIGGSNAP container format, shared by every binary artifact the repo
// persists: corpus snapshots (snapshot.h) and stream-engine checkpoints
// (src/stream/checkpoint.h). One container discipline — magic, version,
// section table, word-wise FNV-1a checksum — means every new artifact gets
// versioning, truncation detection, and integrity checking for free, and
// the malformed-file error taxonomy stays identical across artifact kinds.
//
// File layout (all integers little-endian; written on little-endian hosts):
//   magic    8 bytes  "DIGGSNAP"
//   version  u32      kSnapshotVersion (readers reject newer files)
//   count    u32      number of section-table entries
//   table    count * {u32 type, u32 flags, u64 offset, u64 size}
//   payload  section bodies at their table offsets
//   checksum u64      FNV-1a over 8-byte LE words of every preceding byte
//                     (final partial word zero-padded)
//
// Section-type registry (ids are global across artifact kinds so a reader
// handed the wrong artifact fails with "missing section", not garbage):
//    1 NETWORK       corpus fan graph          (snapshot.cpp)
//    2 STORIES       corpus story metadata     (snapshot.cpp)
//    3 VOTES         corpus vote columns       (snapshot.cpp)
//    4 TOPUSERS      corpus top-user ranking   (snapshot.cpp)
//   16 STREAM_META   stream checkpoint header  (src/stream/checkpoint.cpp)
//   17 STREAM_STATE  stream per-story progress (src/stream/checkpoint.cpp)
// Unknown types are ignored by readers (forward-compatible extensions);
// claim a fresh id here before writing a new section kind.
//
// Versioning policy: the version bumps whenever a reader of the old code
// could misread a new file (section layout or meaning changes). Adding a
// *new* section type does not bump it.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <span>
#include <stdexcept>
#include <vector>

namespace digg::data {

inline constexpr std::uint32_t kSnapshotVersion = 1;

namespace snapfmt {

enum SectionType : std::uint32_t {
  kNetwork = 1,
  kStories = 2,
  kVotes = 3,
  kTopUsers = 4,
  kStreamMeta = 16,
  kStreamState = 17,
};

struct SectionEntry {
  std::uint32_t type = 0;
  std::uint32_t flags = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
};
inline constexpr std::size_t kEntryBytes = 24;
inline constexpr std::size_t kHeaderBytes = 16;  // magic + version + count

/// FNV-1a over 8-byte little-endian words, final partial word zero-padded.
/// Word-at-a-time keeps the multiply chain 8x shorter than the classic
/// byte-wise form — checksumming is on both the save and load hot paths.
[[nodiscard]] std::uint64_t fnv1a(const char* data, std::size_t size);

/// Append-only byte sink for section bodies.
class ByteBuffer {
 public:
  void raw(const void* p, std::size_t n) {
    const std::size_t at = buf_.size();
    buf_.resize(at + n);
    std::memcpy(buf_.data() + at, p, n);
  }
  template <typename T>
  void pod(T v) {
    raw(&v, sizeof(T));
  }
  template <typename T>
  void column(const std::vector<T>& v) {
    raw(v.data(), v.size() * sizeof(T));
  }
  [[nodiscard]] const std::vector<char>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<char> buf_;
};

/// Bounds-checked cursor over a byte range; throws the shared "truncated
/// file (section overruns payload)" error on overrun.
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size) : data_(data), size_(size) {}

  void seek(std::size_t pos) { pos_ = pos; }

  template <typename T>
  T pod() {
    T v{};
    read_into(&v, sizeof(T));
    return v;
  }
  void read_into(void* dst, std::size_t bytes) {
    if (pos_ + bytes > size_)
      throw std::runtime_error("truncated file (section overruns payload)");
    std::memcpy(dst, data_ + pos_, bytes);
    pos_ += bytes;
  }
  template <typename T>
  std::vector<T> column(std::size_t count) {
    std::vector<T> v(count);
    if (count > 0) read_into(v.data(), count * sizeof(T));
    return v;
  }
  std::vector<std::size_t> u64_column(std::size_t count) {
    std::vector<std::size_t> v(count);
    for (std::size_t i = 0; i < count; ++i)
      v[i] = static_cast<std::size_t>(pod<std::uint64_t>());
    return v;
  }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// One section to be written: a claimed type id plus its encoded body.
struct Section {
  std::uint32_t type = 0;
  ByteBuffer body;
};

/// Assembles header + table + payloads + checksum and writes the file
/// (parent directories are created). Throws std::runtime_error on I/O
/// failure.
void write_section_file(const std::filesystem::path& path,
                        std::span<const Section> sections);

/// A validated, fully-read container file. `bytes` owns the payload; table
/// offsets index into it.
struct SectionFile {
  std::vector<char> bytes;
  std::vector<SectionEntry> table;

  /// The entry for `type`; throws "<path>: missing section N" if absent.
  [[nodiscard]] const SectionEntry& find(std::uint32_t type) const;
  /// A reader positioned at the start of `type`'s body and bounded to it.
  [[nodiscard]] ByteReader open(std::uint32_t type) const;

  std::string context;  // "<path>: " prefix for error messages
};

/// Reads the whole file and verifies magic, version, section-table bounds,
/// and checksum — with the distinct error messages the malformed-file tests
/// rely on. Section *contents* are the caller's to parse and validate.
[[nodiscard]] SectionFile read_section_file(const std::filesystem::path& path);

}  // namespace snapfmt
}  // namespace digg::data
