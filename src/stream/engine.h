#pragma once
// The streaming vote-ingestion engine. Replays an EventStream (event.h) and
// maintains, per story, O(1)-amortized incremental state per arriving vote:
//
//   - fan-union visibility: a platform::VisibilitySet (hybrid small-sets,
//     hybrid_set.h — sorted arrays promoting to word-packed bitmaps) served
//     from a byte-accounted LRU pool per shard — the same rebuild-on-miss
//     discipline platform.h uses for live visibility. A missing set is
//     rebuilt by replaying the story's first `applied` votes, and `applied`
//     never exceeds the checkpoint horizon (at most 21 votes with the
//     paper's checkpoints), so eviction costs a bounded replay. Because a
//     set now costs bytes proportional to its cardinality instead of
//     O(num_users), the pool accounts real resident bytes per slot and
//     evicts least-recently-used sets only when the shard's byte share is
//     actually exceeded;
//   - running in-network vote count (cascade membership): a vote is
//     in-network iff the visibility set can_see() the voter when the vote
//     arrives — identical to the batch exposure test in core/cascade.cpp;
//   - checkpoint captures: influence at the Fig. 3(a) checkpoints and
//     in-network counts at the v6/v10/v20 checkpoints are recorded the
//     moment the checkpoint vote arrives, which is also when the online
//     hooks fire: the paper's (v10, fans1) early prediction at vote 10 and
//     the June-2006 43-vote promotion rule.
//
// Once a story passes the horizon (all checkpoints recorded), its heavy
// state is released and every further vote is a single counter increment —
// the amortized-O(1) core of the design. The per-vote work below the
// horizon is O(fan-degree of the voter), exactly the batch pipeline's cost,
// paid once per vote instead of once per whole-corpus recomputation.
//
// Replay order: the global (time, story slot, vote index) order is never
// materialised. run_until first runs a serial counting merge over the
// per-story time columns (a min-heap of story heads, seeded from the
// current per-story progress — valid because progress always describes an
// exact global prefix) to find how many of the next events belong to each
// story, then applies each story's slice of votes in vote order. Per-story
// state only depends on that story's own prefix, so applying story-major
// inside a shard yields the same outcomes as strict global interleaving
// while touching each vote column once, sequentially — the access pattern
// mmapped corpora want.
//
// Parallelism: stories are hashed onto a FIXED number of shards (independent
// of the thread count) and shards run on the runtime pool via parallel_for,
// whose chunk layout is also thread-count invariant. A story belongs to
// exactly one shard, shards share no mutable state, and results merge by
// story slot — so outputs are bit-identical for any DIGG_THREADS, the same
// determinism contract as src/runtime.
//
// Equivalence contract (proven by tests/stream_test.cpp): after a full
// replay, per-story cascade/influence checkpoint values, fans1, final votes
// and the interestingness label are bit-identical to the batch pipeline
// (core::cascade_profile / core::influence_profile / core::extract_features)
// on the same corpus.
//
// Checkpoint/restore: engine state serializes through the shared DIGGSNAP
// section mechanism (data/snapshot_format.h) — see checkpoint.h. A restored
// engine resumes mid-stream and reaches a final state bit-identical to an
// uninterrupted run.
//
// Live mode (src/serve): constructed over a network alone, the engine has
// no EventStream — stories arrive through live_submit and votes through
// live_vote, in arrival order. Per-story state is identical to replay mode;
// the only extra cost is a bounded prefix buffer per story (the first
// `horizon` voters and times), which is exactly what LRU rebuilds and the
// Bayes exposure statistic need — votes past the horizon keep the bare
// counter-bump cost. Checkpoints carry the prefix buffers in an extra
// section so a restored live engine resumes with full rebuild capability.

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <vector>

#include "src/core/features.h"
#include "src/core/predictor.h"
#include "src/data/snapshot_format.h"
#include "src/digg/friends_interface.h"
#include "src/stream/bayes.h"
#include "src/stream/event.h"

namespace digg::stream {

struct StreamParams {
  /// In-network (cascade) checkpoints, counted in votes after the
  /// submitter's digg — the paper's v6/v10/v20. Strictly ascending.
  std::vector<std::uint32_t> cascade_checkpoints = {6, 10, 20};
  /// Influence checkpoints in total votes including the submitter's digg —
  /// Fig. 3(a)'s at-submission / after-10 / after-20 are {1, 11, 21}.
  /// Strictly ascending, all >= 1.
  std::vector<std::uint32_t> influence_checkpoints = {1, 11, 21};
  /// Interestingness label threshold (§5.1): final votes > threshold.
  std::size_t interesting_threshold = core::kInterestingnessThreshold;
  /// Online promotion rule: record the arrival time of this many total
  /// votes (June 2006: 43). 0 disables the hook.
  std::uint32_t promotion_threshold = 43;
  /// Total byte budget for resident visibility sets, split across shards.
  /// Smaller budgets trade memory for bounded rebuild replays on miss.
  std::size_t vis_budget_bytes = 512ull << 20;
  /// When set (and trained on FeatureSet::kPaper), the engine predicts
  /// interestingness online the moment the v10 checkpoint records — the
  /// §5.2 decision, taken at vote 10 instead of after the fact. The
  /// predictor must outlive the engine.
  const core::InterestingnessPredictor* predictor = nullptr;
  /// Online Bayesian rate-model fit (bayes.h): when enabled, the engine
  /// accumulates watcher-exposure per vote below the fit point (O(1) per
  /// vote — influence() is a counter read) and, the instant vote `fit_at`
  /// lands, fits per-channel rates from the first-k timings and predicts
  /// the final vote count — the model-based rival to the C4.5 hook above.
  /// Requires fit_at >= 1 and fit_at <= the last cascade checkpoint (the
  /// in-network classification window).
  BayesFitParams bayes;
};

/// Everything the engine knows about one story. Checkpoint vectors align
/// with the params' checkpoint lists; values for checkpoints the story has
/// not reached saturate over the votes seen so far, matching the batch
/// profiles' saturation semantics.
struct StoryOutcome {
  platform::StoryId id = 0;
  platform::UserId submitter = 0;
  std::vector<std::size_t> cascade;    // in-network count per checkpoint
  std::vector<std::size_t> influence;  // influence per checkpoint
  std::size_t fans1 = 0;
  std::size_t final_votes = 0;  // votes applied so far (total at stream end)
  bool interesting = false;     // final_votes > interesting_threshold
  /// Online §5.2 verdict at the v10 checkpoint (unset if the story never
  /// reached 10 votes, or no paper-feature predictor was supplied).
  std::optional<bool> predicted_interesting;
  /// Online Bayesian verdict at the fit point (unset if the story never
  /// reached bayes.fit_at votes, or the fit is disabled). The expected
  /// final vote count backs the verdict and feeds calibration plots.
  std::optional<bool> bayes_interesting;
  double bayes_expected_final = 0.0;  // meaningful iff bayes_interesting set
  /// Arrival time of the promotion_threshold-th vote (unset if not reached).
  std::optional<platform::Minutes> promoted_time;
};

struct StreamResult {
  std::vector<StoryOutcome> stories;  // by slot (stream story order)
  std::uint64_t events_applied = 0;
};

/// Converts a full-replay result into the batch pipeline's feature rows
/// (requires the default paper checkpoints, which carry v6/v10/v20 and
/// influence-after-10). Bit-identical to core::extract_features on the same
/// stories — the bridge the equivalence tests and fig4/fig5 reuse go through.
[[nodiscard]] std::vector<core::StoryFeatures> to_story_features(
    const StreamResult& result, const StreamParams& params = {});

class StreamEngine {
 public:
  /// `stream`, `network`, and params.predictor must outlive the engine.
  /// Validates the stream (per-story vote columns non-decreasing in time,
  /// event total matching the columns, submitters in graph range) and the
  /// checkpoint lists; throws std::invalid_argument on violations.
  StreamEngine(const EventStream& stream, const graph::Digraph& network,
               StreamParams params = {});

  /// Live-ingest mode: an engine over `network` with no replay stream.
  /// Starts empty; stories and votes arrive through live_submit/live_vote
  /// (the src/serve ingest path). run_until/run_all are unavailable.
  explicit StreamEngine(const graph::Digraph& network,
                        StreamParams params = {});

  [[nodiscard]] bool live() const noexcept { return stream_ == nullptr; }
  /// Stories known so far (replay: the stream's story table; live: stories
  /// submitted so far). Story slots are always [0, story_count()).
  [[nodiscard]] std::uint32_t story_count() const noexcept {
    return static_cast<std::uint32_t>(progress_.size());
  }

  /// Registers a live story and applies the submitter's own digg (vote 0)
  /// at `time`; returns the story's slot. Live mode only; single caller at
  /// a time (the serve coordinator). Throws std::invalid_argument for a
  /// submitter outside the graph.
  std::uint32_t live_submit(platform::StoryId id, platform::UserId submitter,
                            platform::Minutes time);
  /// Applies one live vote. Vote times within a story must be
  /// non-decreasing (the serve front-end's per-story arrival order). Safe
  /// to call concurrently for stories in DIFFERENT shards (slot %
  /// kShardCount) — the serve drain cycle's parallelism contract; two
  /// concurrent calls into one shard race on its visibility pool.
  void live_vote(std::uint32_t slot, platform::UserId voter,
                 platform::Minutes time);
  /// Folds a drained batch into events_applied(). live_vote deliberately
  /// never touches the global counter (so shards can apply in parallel);
  /// the single drain coordinator calls this once per batch instead.
  void note_events_applied(std::uint64_t n) noexcept { events_applied_ += n; }

  /// Applies every event with ordinal < event_limit that has not been
  /// applied yet. Monotonic: a limit at or below events_applied() is a
  /// no-op (the stream cannot rewind). Replay mode only.
  void run_until(std::uint64_t event_limit);
  void run_all() { run_until(total_events()); }

  [[nodiscard]] std::uint64_t events_applied() const noexcept {
    return events_applied_;
  }
  /// Replay: the stream's cached event total. Live: events applied so far
  /// (the stream has no end).
  [[nodiscard]] std::uint64_t total_events() const noexcept {
    return stream_ ? stream_->total_events() : events_applied_;
  }

  /// Snapshot of every story's state as of events_applied(). Callable
  /// mid-stream (outcomes then describe the prefix seen so far) and does
  /// not disturb resumability. Non-const because unreached influence
  /// checkpoints may rebuild evicted visibility sets to read them.
  [[nodiscard]] StreamResult result();

  /// One story's outcome as of the votes applied so far — the online query
  /// path (result() is this, over every slot). Same rebuild caveat as
  /// result(); not safe concurrently with live_vote on the same shard.
  /// Throws std::invalid_argument for an unknown slot.
  [[nodiscard]] StoryOutcome query_story(std::uint32_t slot);

  /// Serializes engine progress as a DIGGSNAP checkpoint at `path`.
  void save_checkpoint(const std::filesystem::path& path) const;
  /// The checkpoint payload as in-memory sections (save_checkpoint is this
  /// plus write_section_file). Lets the serve layer serialize on the
  /// coordinator thread and hand the bytes to a background writer so disk
  /// latency never blocks ingest.
  [[nodiscard]] std::vector<data::snapfmt::Section> checkpoint_sections()
      const;
  /// Replaces engine progress with a checkpoint written by save_checkpoint
  /// against the SAME stream and params. Verifies container integrity, the
  /// stream fingerprint, config equality, and per-story prefix consistency;
  /// throws std::runtime_error with a distinct message per violation.
  void restore_checkpoint(const std::filesystem::path& path);

  /// FNV-1a fingerprint of the stream (stories, vote columns) and network
  /// shape; checkpoints embed it so a restore against different data fails.
  /// Live engines have no stream at construction, so their fingerprint
  /// covers the network shape alone (plus a live-mode tag) — a live
  /// checkpoint still refuses to restore over a different graph.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }
  /// Resident bytes of visibility pools + fixed per-story state — the sum
  /// of vis_pool_bytes() and the progress/checkpoint columns. O(stories),
  /// never O(events): the stream itself is not materialised.
  [[nodiscard]] std::size_t state_bytes() const;
  /// Resident bytes of the pooled visibility sets alone (`stream.
  /// vis_pool_bytes` gauge). Kept separate from state_bytes() so the
  /// variable LRU-pool cost is visible next to the fixed per-story state
  /// instead of being conflated with it.
  [[nodiscard]] std::size_t vis_pool_bytes() const;

  /// Fixed shard fan-out; also the parallel width cap of one engine run.
  static constexpr std::uint32_t kShardCount = 64;

 private:
  static constexpr std::uint32_t kUnrecorded = 0xffffffffu;

  struct PoolSlot {
    platform::VisibilitySet set;
    std::uint32_t story = kUnrecorded;
    std::uint64_t last_used = 0;
    std::size_t bytes = 0;  // last-accounted size_bytes() of `set`
  };
  /// Byte-accounted LRU pool of visibility sets for one shard's stories —
  /// the platform.h visibility-cache idiom, scoped to a shard so pools
  /// need no locking. `bytes` sums the per-slot accounting; slot sizes are
  /// refreshed on every touch, so between touches the tally can lag a
  /// growing set by one vote's worth of fans — a soft budget, never a
  /// correctness input (eviction only changes what is resident).
  struct VisPool {
    std::vector<PoolSlot> slots;
    std::size_t budget = 0;  // byte share of StreamParams::vis_budget_bytes
    std::size_t bytes = 0;   // accounted bytes across bound slots
    std::uint64_t clock = 0;
  };
  /// One shard owns the stories with slot % kShardCount == its index; its
  /// only state is the visibility pool (per-story progress lives in the
  /// slot-indexed columns), so shards cost nothing per event.
  /// `pending_pred` holds story slots whose v10 checkpoint landed but whose
  /// §5.2 prediction has not been scored yet: record_checkpoints enqueues,
  /// flush_predictions scores the batch through the branch-free batched
  /// C4.5 evaluator (predictor.h predict_batch). Always empty between
  /// run_until/live_vote calls, so checkpoints never see it.
  struct Shard {
    VisPool pool;
    std::vector<std::uint32_t> pending_pred;
  };
  struct Progress {
    std::uint64_t applied = 0;
    std::uint32_t innetwork = 0;  // running in-network count (to horizon)
    std::uint32_t fans1 = 0;
    std::uint8_t flags = 0;  // kHasPrediction | ... | kBayesYes
    platform::Minutes promoted_time = 0.0;
    float bayes_estimate = 0.0f;  // expected final votes (kHasBayes set)
  };
  static constexpr std::uint8_t kHasPrediction = 1;
  static constexpr std::uint8_t kPredictedYes = 2;
  static constexpr std::uint8_t kPromoted = 4;
  static constexpr std::uint8_t kHasBayes = 8;
  static constexpr std::uint8_t kBayesYes = 16;

  /// One live-mode story: identity plus the bounded vote prefix. Only the
  /// first `horizon` voters/times are kept — exactly what LRU rebuilds
  /// (acquire_vis replays `applied` < horizon votes) and the Bayes exposure
  /// gap (indices below fit_at <= horizon-1) can ever read — so live
  /// per-story memory is O(horizon), not O(votes).
  struct LiveStory {
    platform::StoryId id = 0;
    platform::UserId submitter = 0;
    platform::Minutes last_time = 0.0;  // latest vote time (order check)
    std::vector<platform::UserId> prefix_voters;
    std::vector<platform::Minutes> prefix_times;
  };

  /// Mode-splitting accessors: replay mode reads the stream's columns, live
  /// mode the bounded prefix buffers. Every consumer indexes below the
  /// horizon, which both modes can serve.
  [[nodiscard]] platform::StoryId story_id(std::uint32_t slot) const {
    return stream_ ? stream_->stories[slot].id : live_stories_[slot].id;
  }
  [[nodiscard]] platform::UserId story_submitter(std::uint32_t slot) const {
    return stream_ ? stream_->stories[slot].submitter
                   : live_stories_[slot].submitter;
  }
  [[nodiscard]] platform::Minutes early_vote_time(std::uint32_t slot,
                                                  std::size_t k) const {
    return stream_ ? stream_->stories[slot].times()[k]
                   : live_stories_[slot].prefix_times[k];
  }
  [[nodiscard]] std::span<const platform::UserId> voters_prefix(
      std::uint32_t slot) const {
    return stream_ ? stream_->stories[slot].voters()
                   : std::span<const platform::UserId>(
                         live_stories_[slot].prefix_voters);
  }

  void apply_event(const VoteEvent& ev, Shard& shard);
  /// The counting merge: starting from the per-story cursors in `cursor`
  /// (which must describe an exact global prefix), advances them through
  /// the next `take` events of the (time, slot, index) order and returns
  /// the final cursors — i.e. each story's vote count within the extended
  /// prefix. O(take · log stories) serial, no event materialisation.
  [[nodiscard]] std::vector<std::uint64_t> merge_prefix_counts(
      std::vector<std::uint64_t> cursor, std::uint64_t take) const;
  platform::VisibilitySet& acquire_vis(Shard& shard, std::uint32_t slot);
  void release_vis(Shard& shard, std::uint32_t slot);
  void record_checkpoints(std::uint32_t slot, Progress& p,
                          const platform::VisibilitySet& vis,
                          platform::Minutes now, Shard& shard);
  /// Scores every slot queued in shard.pending_pred through
  /// predict_batch and folds the verdicts into the progress flags. The
  /// inputs (v10 from cascade_rec_, fans1 from progress_) are final the
  /// moment the v10 checkpoint records, and predictions are independent
  /// per story, so deferring to a batch is unobservable — run_until
  /// flushes per shard pass, live_vote per vote (query-after-vote keeps
  /// its semantics).
  void flush_predictions(Shard& shard);

  /// Shared tail of both constructors: checkpoint validation, horizon,
  /// prediction arming, shard/pool layout.
  void init_config();

  const EventStream* stream_;  // nullptr in live mode
  const graph::Digraph* network_;
  StreamParams params_;
  std::uint64_t horizon_ = 0;       // total votes after which state retires
  std::uint32_t max_cascade_ = 0;   // largest cascade checkpoint
  std::size_t v10_index_ = static_cast<std::size_t>(-1);  // cp == 10 slot
  bool predictor_armed_ = false;  // paper-feature predictor + v10 checkpoint
  std::uint64_t fingerprint_ = 0;
  std::uint64_t events_applied_ = 0;

  std::vector<Shard> shards_;
  std::vector<Progress> progress_;          // by story slot
  std::vector<std::uint32_t> cascade_rec_;   // slot * |cc| + j, kUnrecorded
  std::vector<std::uint32_t> influence_rec_; // slot * |ic| + j, kUnrecorded
  std::vector<std::uint32_t> pool_slot_of_;  // story slot -> pool slot
  /// Per-story watcher-exposure accumulator (watcher-minutes over the
  /// below-fit prefix); sized only when params_.bayes.enabled.
  std::vector<double> bayes_exposure_;
  std::vector<LiveStory> live_stories_;  // live mode only, by slot
};

}  // namespace digg::stream
