#include "src/stream/source.h"

#include <algorithm>

#include "src/obs/trace.h"

namespace digg::stream {

EventStream build_event_stream(std::span<const platform::StoryView> stories) {
  obs::Span span("build_event_stream", "stream");
  EventStream out;
  out.stories.assign(stories.begin(), stories.end());

  std::size_t total = 0;
  for (const platform::StoryView& s : stories) total += s.vote_count();
  out.events.reserve(total);
  for (std::uint32_t slot = 0; slot < out.stories.size(); ++slot) {
    const auto voters = out.stories[slot].voters();
    const auto times = out.stories[slot].times();
    for (std::uint32_t k = 0; k < voters.size(); ++k)
      out.events.push_back({times[k], slot, k, voters[k], 0});
  }
  // stable_sort on time alone would also work (per-story events are emitted
  // in vote order), but the explicit (time, slot, index) key documents the
  // total order and keeps it independent of the sort algorithm.
  std::sort(out.events.begin(), out.events.end(),
            [](const VoteEvent& a, const VoteEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.story_slot != b.story_slot)
                return a.story_slot < b.story_slot;
              return a.vote_index < b.vote_index;
            });
  for (std::size_t i = 0; i < out.events.size(); ++i)
    out.events[i].ordinal = i;
  return out;
}

EventStream build_event_stream(const data::Corpus& corpus) {
  std::vector<platform::StoryView> stories;
  stories.reserve(corpus.story_count());
  stories.insert(stories.end(), corpus.front_page.begin(),
                 corpus.front_page.end());
  stories.insert(stories.end(), corpus.upcoming.begin(),
                 corpus.upcoming.end());
  return build_event_stream(stories);
}

}  // namespace digg::stream
