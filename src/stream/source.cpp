#include "src/stream/source.h"

#include "src/obs/trace.h"

namespace digg::stream {

EventStream build_event_stream(std::span<const platform::StoryView> stories) {
  obs::Span span("build_event_stream", "stream");
  // O(stories): the global (time, slot, index) order is never materialised —
  // the engine merges the per-story time columns on the fly, so building a
  // stream over a memory-mapped million-user corpus is just the story table.
  EventStream out;
  out.stories.assign(stories.begin(), stories.end());
  for (const platform::StoryView& s : out.stories) out.total += s.vote_count();
  return out;
}

EventStream build_event_stream(const data::Corpus& corpus) {
  std::vector<platform::StoryView> stories;
  stories.reserve(corpus.story_count());
  stories.insert(stories.end(), corpus.front_page.begin(),
                 corpus.front_page.end());
  stories.insert(stories.end(), corpus.upcoming.begin(),
                 corpus.upcoming.end());
  return build_event_stream(stories);
}

}  // namespace digg::stream
