#pragma once
// Stream-engine checkpoints: the DIGGSNAP sections that make a replay
// killable and resumable with bit-identical results. StreamEngine::
// save_checkpoint / restore_checkpoint (engine.h) are implemented in
// checkpoint.cpp against this format; this header documents the payloads
// and offers a cheap inspection helper.
//
// A checkpoint is a DIGGSNAP container (data/snapshot_format.h) with two
// sections:
//
//   STREAM_META (16) — everything needed to refuse a mismatched restore:
//     u32  checkpoint version (kStreamCheckpointVersion)
//     u32  predictor armed (0/1 — online-prediction hook active)
//     u64  stream fingerprint (stories, vote columns, graph shape; live
//          engines fingerprint the graph shape + a live tag)
//     u64  total events        u64  events applied
//     u64  story count         u64  interesting threshold
//     u32  promotion threshold
//     u32  bayes fit enabled (0/1)     [v2+; v1 reads as disabled]
//     u32  bayes fit_at                [v2+]
//     u32  live mode (0/1)             [v3+; older reads as replay]
//     u32  cascade checkpoint count,   then that many u32 checkpoints
//     u32  influence checkpoint count, then that many u32 checkpoints
//
//   STREAM_STATE (17) — per-story progress columns, story-slot order:
//     u64[S]      votes applied
//     u32[S]      running in-network count
//     u8[S]       flags (prediction made / predicted yes / promoted /
//                 bayes fit made / bayes yes)
//     f64[S]      promotion time (valid when the promoted flag is set)
//     u32[S*C]    recorded cascade values  (0xffffffff = not yet reached)
//     u32[S*I]    recorded influence values (same sentinel)
//     f64[S]      bayes watcher-exposure accumulator  [iff bayes enabled:
//     f32[S]      bayes expected-final estimate        exposure grows below
//                 the fit point, so kill/resume bit-identity needs it]
//
//   SERVE_STORIES (18) — live-mode checkpoints only (v3+). A live engine
//   has no replay stream to re-derive story identity or rebuild prefixes
//   from, so the checkpoint carries them (still O(stories * horizon), not
//   O(votes) — the prefixes are bounded):
//     u32[S]      story ids          u32[S]  submitters
//     u32[S]      prefix length (min(applied, horizon))
//     pad to 8    f64[S]  latest vote time per story (ordering watermark)
//     u32[sum]    concatenated prefix voter columns
//     pad to 8    f64[sum] concatenated prefix time columns
//
// Deliberately NOT serialized: visibility sets (rebuilt on demand by
// replaying each story's applied prefix — bounded by the horizon) and
// per-shard cursors (recomputed from events-applied, since shard event
// lists are ascending ordinals). The checkpoint is therefore small —
// O(stories), not O(votes or graph) — and restore cannot resurrect stale
// derived state: everything derivable is re-derived.
//
// Restore-time validation (each with a distinct error): container magic /
// version / checksum (snapshot_format.cpp), checkpoint version, stream
// fingerprint, engine config equality, column sizes, and per-story
// consistency — the applied column must be exactly the per-story event
// counts of the stream's first events-applied events, records present iff
// their checkpoint was reached, flags consistent with progress.

#include <cstdint>
#include <filesystem>

namespace digg::stream {

// v2: online Bayes-fit hook — meta gains the bayes config, state gains the
// exposure/estimate columns when the hook is enabled. v1 files restore into
// bayes-disabled engines unchanged.
// v3: live-ingest mode — meta gains the live flag, live checkpoints gain
// the SERVE_STORIES section. v1/v2 files restore as replay checkpoints
// unchanged.
inline constexpr std::uint32_t kStreamCheckpointVersion = 3;

/// Cheap peek at a checkpoint's STREAM_META section (full container
/// integrity is still verified). Lets tools report progress or pick the
/// right corpus without constructing an engine.
struct CheckpointInfo {
  std::uint32_t version = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t total_events = 0;
  std::uint64_t events_applied = 0;
  std::uint64_t story_count = 0;
  bool live = false;  // live-ingest checkpoint (v3+)
};

[[nodiscard]] CheckpointInfo read_checkpoint_info(
    const std::filesystem::path& path);

}  // namespace digg::stream
