#include "src/stream/engine.h"

#include <algorithm>
#include <chrono>
#include <queue>
#include <stdexcept>
#include <string>

#include "src/data/snapshot_format.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"
#include "src/obs/trace.h"
#include "src/obs/watchdog.h"
#include "src/runtime/parallel.h"

namespace digg::stream {
namespace {

// Folds one memory block into a running fingerprint. Chained (rather than
// hashing one flat copy of everything) so the stream is fingerprinted
// without materialising a second copy of the vote columns.
std::uint64_t mix(std::uint64_t h, const void* data, std::size_t bytes) {
  const std::uint64_t block =
      data::snapfmt::fnv1a(static_cast<const char*>(data), bytes);
  return (h ^ block) * 1099511628211ull;
}

std::uint64_t stream_fingerprint(const EventStream& stream,
                                 const graph::Digraph& network) {
  std::uint64_t h = 14695981039346656037ull;
  const std::uint64_t shape[3] = {network.node_count(), network.edge_count(),
                                  stream.stories.size()};
  h = mix(h, shape, sizeof(shape));
  // (live-mode engines fingerprint the network shape alone — see below)
  for (const platform::StoryView& s : stream.stories) {
    const std::uint64_t meta[3] = {s.id, s.submitter, s.vote_count()};
    h = mix(h, meta, sizeof(meta));
    const auto voters = s.voters();
    const auto times = s.times();
    h = mix(h, voters.data(), voters.size_bytes());
    h = mix(h, times.data(), times.size_bytes());
  }
  return h;
}

// A live engine has no stream at construction: cover the graph shape plus a
// mode tag (so a live checkpoint never restores into a replay engine whose
// stream happens to hash equal — it cannot, but the tag makes it structural).
std::uint64_t live_fingerprint(const graph::Digraph& network) {
  std::uint64_t h = 14695981039346656037ull;
  const std::uint64_t shape[3] = {network.node_count(), network.edge_count(),
                                  0x11fe5e42ull};  // arbitrary live-mode tag
  h = mix(h, shape, sizeof(shape));
  return h;
}

void require_ascending(const std::vector<std::uint32_t>& cps,
                       const char* what) {
  for (std::size_t i = 0; i < cps.size(); ++i) {
    if (cps[i] == 0 || (i > 0 && cps[i] <= cps[i - 1]))
      throw std::invalid_argument(std::string(what) +
                                  " checkpoints must be ascending and >= 1");
  }
}

}  // namespace

void StreamEngine::init_config() {
  require_ascending(params_.cascade_checkpoints, "cascade");
  require_ascending(params_.influence_checkpoints, "influence");

  // The horizon: once a story has this many votes, every checkpoint value
  // has been recorded and its visibility state can retire.
  max_cascade_ = params_.cascade_checkpoints.empty()
                     ? 0
                     : params_.cascade_checkpoints.back();
  const std::uint64_t last_influence = params_.influence_checkpoints.empty()
                                           ? 0
                                           : params_.influence_checkpoints.back();
  horizon_ = std::max<std::uint64_t>(max_cascade_ + 1, last_influence);
  for (std::size_t j = 0; j < params_.cascade_checkpoints.size(); ++j)
    if (params_.cascade_checkpoints[j] == 10) v10_index_ = j;
  predictor_armed_ = params_.predictor != nullptr &&
                     params_.predictor->feature_set() ==
                         core::FeatureSet::kPaper &&
                     v10_index_ != static_cast<std::size_t>(-1);
  if (params_.bayes.enabled) {
    // The fit classifies its first-k votes with the running in-network
    // counter, which only ticks inside the cascade window — and fit_at+1
    // <= max_cascade+1 <= horizon keeps the visibility set live through
    // the fit, so no horizon extension is needed.
    if (params_.bayes.fit_at < 1 || params_.bayes.fit_at > max_cascade_)
      throw std::invalid_argument(
          "bayes.fit_at must be in [1, last cascade checkpoint]");
  }

  // Shard layout: story slot % kShardCount. The layout depends only on the
  // stream, so any thread count walks the same per-shard story sequences.
  shards_.resize(kShardCount);

  // Visibility-pool budget: each shard gets its share of the byte budget
  // and accounts the real resident bytes of its hybrid sets against it —
  // no per-set size estimate, because hybrid sets cost what they hold.
  const std::size_t per_shard =
      std::max<std::size_t>(1, params_.vis_budget_bytes / kShardCount);
  for (std::uint32_t s = 0; s < kShardCount; ++s)
    shards_[s].pool.budget = per_shard;
}

StreamEngine::StreamEngine(const graph::Digraph& network, StreamParams params)
    : stream_(nullptr), network_(&network), params_(std::move(params)) {
  obs::Span span("stream_engine_init", "stream");
  init_config();
  fingerprint_ = live_fingerprint(network);
}

StreamEngine::StreamEngine(const EventStream& stream,
                           const graph::Digraph& network, StreamParams params)
    : stream_(&stream), network_(&network), params_(std::move(params)) {
  obs::Span span("stream_engine_init", "stream");
  init_config();
  const std::size_t story_count = stream_->stories.size();
  if (story_count >= kUnrecorded)
    throw std::invalid_argument("too many stories for the stream engine");

  // Validate the stream against its own story columns: the merge order is
  // only well defined if every story's time column is non-decreasing, and
  // the cached event total must match the columns it summarises. Every
  // downstream guarantee (rebuild-by-replay, checkpoint prefix validation)
  // leans on these invariants, so buying them up front with one O(E) pass
  // is cheaper than defending each consumer separately.
  std::uint64_t total = 0;
  for (std::uint32_t slot = 0; slot < story_count; ++slot) {
    const platform::StoryView& s = stream_->stories[slot];
    const auto times = s.times();
    if (s.voters().size() != times.size())
      throw std::invalid_argument("stream story vote columns disagree");
    for (std::size_t k = 1; k < times.size(); ++k)
      if (times[k] < times[k - 1])
        throw std::invalid_argument("stream events must be time-sorted");
    if (s.submitter >= network.node_count())
      throw std::invalid_argument("stream story submitter out of graph range");
    total += s.vote_count();
  }
  if (total != stream_->total)
    throw std::invalid_argument("stream event total mismatches vote columns");

  fingerprint_ = stream_fingerprint(*stream_, *network_);

  progress_.resize(story_count);
  for (std::uint32_t slot = 0; slot < story_count; ++slot)
    progress_[slot].fans1 = static_cast<std::uint32_t>(
        network.fan_count(stream_->stories[slot].submitter));
  cascade_rec_.assign(story_count * params_.cascade_checkpoints.size(),
                      kUnrecorded);
  influence_rec_.assign(story_count * params_.influence_checkpoints.size(),
                        kUnrecorded);
  pool_slot_of_.assign(story_count, kUnrecorded);
  if (params_.bayes.enabled) bayes_exposure_.assign(story_count, 0.0);
}

std::uint32_t StreamEngine::live_submit(platform::StoryId id,
                                        platform::UserId submitter,
                                        platform::Minutes time) {
  if (!live())
    throw std::logic_error("live_submit on a replay-mode stream engine");
  if (submitter >= network_->node_count())
    throw std::invalid_argument("live story submitter out of graph range");
  if (live_stories_.size() + 1 >= kUnrecorded)
    throw std::invalid_argument("too many stories for the stream engine");
  const auto slot = static_cast<std::uint32_t>(live_stories_.size());
  LiveStory ls;
  ls.id = id;
  ls.submitter = submitter;
  live_stories_.push_back(std::move(ls));
  Progress p;
  p.fans1 = static_cast<std::uint32_t>(network_->fan_count(submitter));
  progress_.push_back(p);
  cascade_rec_.insert(cascade_rec_.end(), params_.cascade_checkpoints.size(),
                      kUnrecorded);
  influence_rec_.insert(influence_rec_.end(),
                        params_.influence_checkpoints.size(), kUnrecorded);
  pool_slot_of_.push_back(kUnrecorded);
  if (params_.bayes.enabled) bayes_exposure_.push_back(0.0);
  // Vote 0 is the submitter's own digg — the same convention every corpus
  // column and the batch pipeline use (types.h: voters.front()==submitter).
  live_vote(slot, submitter, time);
  return slot;
}

void StreamEngine::live_vote(std::uint32_t slot, platform::UserId voter,
                             platform::Minutes time) {
  if (!live())
    throw std::logic_error("live_vote on a replay-mode stream engine");
  if (slot >= live_stories_.size())
    throw std::invalid_argument("live vote for an unknown story slot");
  if (voter >= network_->node_count())
    throw std::invalid_argument("live voter out of graph range");
  LiveStory& ls = live_stories_[slot];
  Progress& p = progress_[slot];
  if (p.applied > 0 && time < ls.last_time)
    throw std::invalid_argument("live vote times must be non-decreasing");
  const auto k = static_cast<std::uint32_t>(p.applied);
  if (k < horizon_) {
    // Grow the bounded prefix BEFORE applying: apply_event's rebuild path
    // replays strictly fewer than `applied` votes and its Bayes gap reads
    // index k-1, both satisfied once this vote is buffered.
    ls.prefix_voters.push_back(voter);
    ls.prefix_times.push_back(time);
  }
  ls.last_time = time;
  Shard& shard = shards_[slot % kShardCount];
  apply_event({time, slot, k, voter}, shard);
  // Live queries may follow immediately (query-after-vote is the serve
  // reply contract), so the prediction batch is this one vote.
  flush_predictions(shard);
}

platform::VisibilitySet& StreamEngine::acquire_vis(Shard& shard,
                                                   std::uint32_t slot) {
  VisPool& pool = shard.pool;
  std::uint32_t ps = pool_slot_of_[slot];
  if (ps != kUnrecorded) {
    PoolSlot& sl = pool.slots[ps];
    sl.last_used = ++pool.clock;
    // Refresh the accounting: the set grows between touches as votes land.
    const std::size_t now_bytes = sl.set.size_bytes();
    pool.bytes += now_bytes - sl.bytes;
    sl.bytes = now_bytes;
    return sl.set;
  }
  // Over budget: evict least-recently-used bound slots until the share is
  // honoured again. The requested story always becomes resident afterwards,
  // so a 1-byte budget degenerates to rebuild-per-touch, never deadlock.
  // Pools are a few dozen slots, so linear scans beat maintaining a heap.
  while (pool.bytes >= pool.budget) {
    std::uint32_t victim = kUnrecorded;
    for (std::uint32_t i = 0; i < pool.slots.size(); ++i) {
      if (pool.slots[i].story == kUnrecorded) continue;
      if (victim == kUnrecorded ||
          pool.slots[i].last_used < pool.slots[victim].last_used)
        victim = i;
    }
    if (victim == kUnrecorded) break;
    PoolSlot& ev = pool.slots[victim];
    const std::uint32_t evicted_story = ev.story;
    pool_slot_of_[ev.story] = kUnrecorded;
    ev.story = kUnrecorded;
    ev.last_used = 0;
    pool.bytes -= ev.bytes;
    ev.bytes = 0;
    ev.set.shed();  // return the memory, not just the binding
    obs::Registry::global().counter("stream.vis_evictions").inc();
    obs::record_event(obs::EventKind::kLruEvict, evicted_story % kShardCount,
                      evicted_story);
  }
  // Reuse any unbound slot before growing the pool.
  ps = kUnrecorded;
  for (std::uint32_t i = 0; i < pool.slots.size(); ++i) {
    if (pool.slots[i].story == kUnrecorded) {
      ps = i;
      break;
    }
  }
  if (ps == kUnrecorded) {
    ps = static_cast<std::uint32_t>(pool.slots.size());
    pool.slots.emplace_back();
  }
  PoolSlot& sl = pool.slots[ps];
  sl.story = slot;
  sl.last_used = ++pool.clock;
  pool_slot_of_[slot] = ps;
  // Rebuild by replaying the story's applied prefix — bounded by the
  // horizon, so a miss costs at most ~20 add_voter calls.
  sl.set.rebind(*network_);
  const std::uint64_t applied = progress_[slot].applied;
  // `applied` < horizon whenever a set is (re)built, so the live-mode
  // bounded prefix always covers the replayed range.
  const auto voters = voters_prefix(slot);
  for (std::uint64_t k = 0; k < applied; ++k) sl.set.add_voter(voters[k]);
  sl.bytes = sl.set.size_bytes();
  pool.bytes += sl.bytes;
  if (applied > 0) obs::Registry::global().counter("stream.vis_rebuilds").inc();
  return sl.set;
}

void StreamEngine::release_vis(Shard& shard, std::uint32_t slot) {
  const std::uint32_t ps = pool_slot_of_[slot];
  if (ps == kUnrecorded) return;
  PoolSlot& sl = shard.pool.slots[ps];
  sl.story = kUnrecorded;
  sl.last_used = 0;
  shard.pool.bytes -= sl.bytes;
  sl.bytes = 0;
  sl.set.shed();  // past-horizon sets are dead weight; free them now
  pool_slot_of_[slot] = kUnrecorded;
}

void StreamEngine::record_checkpoints(std::uint32_t slot, Progress& p,
                                      const platform::VisibilitySet& vis,
                                      platform::Minutes now, Shard& shard) {
  const auto& ic = params_.influence_checkpoints;
  for (std::size_t j = 0; j < ic.size(); ++j)
    if (ic[j] == p.applied) {
      influence_rec_[slot * ic.size() + j] =
          static_cast<std::uint32_t>(vis.influence());
      obs::record_event(obs::EventKind::kCheckpointRecorded,
                        slot % kShardCount, slot, p.applied);
    }
  const auto& cc = params_.cascade_checkpoints;
  for (std::size_t j = 0; j < cc.size(); ++j) {
    if (static_cast<std::uint64_t>(cc[j]) + 1 != p.applied) continue;
    cascade_rec_[slot * cc.size() + j] = p.innetwork;
    if (j == v10_index_ && predictor_armed_) {
      // The §5.2 decision inputs (v10, fans1) are both final the instant
      // vote 10 lands; the scoring itself is deferred to the shard's next
      // flush_predictions so many stories share one batched tree descent.
      shard.pending_pred.push_back(slot);
    }
  }
  if (params_.bayes.enabled &&
      p.applied == static_cast<std::uint64_t>(params_.bayes.fit_at) + 1) {
    // Vote fit_at just landed: every sufficient statistic is final, so fit
    // the rate model and integrate it forward — once per story, bounded by
    // the integration step count, off the per-vote path.
    BayesEvidence evidence;
    evidence.in_network_votes = p.innetwork;
    evidence.out_network_votes = params_.bayes.fit_at - p.innetwork;
    evidence.exposure_watcher_minutes = bayes_exposure_[slot];
    evidence.elapsed_minutes = now - early_vote_time(slot, 0);
    evidence.audience = static_cast<double>(vis.influence());
    evidence.votes = params_.bayes.fit_at + 1;
    evidence.population = static_cast<double>(network_->node_count());
    const BayesFit fit = fit_rates(params_.bayes, evidence);
    const double expected =
        expected_final_votes(params_.bayes, evidence, fit);
    p.bayes_estimate = static_cast<float>(expected);
    p.flags |= kHasBayes;
    if (expected > static_cast<double>(params_.interesting_threshold))
      p.flags |= kBayesYes;
    obs::Registry::global().counter("stream.bayes_fits").inc();
  }
}

void StreamEngine::flush_predictions(Shard& shard) {
  if (shard.pending_pred.empty()) return;
  const std::size_t n = shard.pending_pred.size();
  const std::size_t cc_size = params_.cascade_checkpoints.size();
  std::vector<core::StoryFeatures> feats(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t slot = shard.pending_pred[i];
    core::StoryFeatures& f = feats[i];
    f.story = story_id(slot);
    f.submitter = story_submitter(slot);
    // v10 comes from the recorded checkpoint column, NOT p.innetwork —
    // the running count keeps ticking toward the v20 checkpoint while the
    // prediction waits in the queue.
    f.v10 = cascade_rec_[slot * cc_size + v10_index_];
    f.fans1 = progress_[slot].fans1;
  }
  std::vector<std::uint8_t> yes(n);
  params_.predictor->predict_batch(feats.data(), n, yes.data());
  for (std::size_t i = 0; i < n; ++i) {
    Progress& p = progress_[shard.pending_pred[i]];
    p.flags |= kHasPrediction;
    if (yes[i]) p.flags |= kPredictedYes;
  }
  shard.pending_pred.clear();
}

void StreamEngine::apply_event(const VoteEvent& ev, Shard& shard) {
  Progress& p = progress_[ev.story_slot];
  const std::uint64_t next = p.applied + 1;
  if (p.applied < horizon_) {
    platform::VisibilitySet& vis = acquire_vis(shard, ev.story_slot);
    // In-network test before the vote is applied: can the voter currently
    // see the story through the Friends interface? Identical to the batch
    // exposure test (core/cascade.cpp), which checks membership in the
    // fan union of the preceding voters.
    if (ev.vote_index >= 1 && ev.vote_index <= max_cascade_ &&
        vis.can_see(ev.voter))
      ++p.innetwork;
    // Bayes sufficient statistic: watcher exposure over the inter-vote gap,
    // with the influence the union had BEFORE this voter joins. One counter
    // read and one multiply per below-fit vote — the O(1) discipline.
    if (params_.bayes.enabled && ev.vote_index >= 1 &&
        ev.vote_index <= params_.bayes.fit_at) {
      bayes_exposure_[ev.story_slot] +=
          static_cast<double>(vis.influence()) *
          (ev.time - early_vote_time(ev.story_slot, ev.vote_index - 1));
    }
    vis.add_voter(ev.voter);
    p.applied = next;
    record_checkpoints(ev.story_slot, p, vis, ev.time, shard);
    if (next >= horizon_) {
      release_vis(shard, ev.story_slot);
      obs::Registry::global().counter("stream.stories_retired").inc();
      obs::record_event(obs::EventKind::kStoryRetired,
                        ev.story_slot % kShardCount, ev.story_slot, next);
    }
  } else {
    // Past the horizon every vote is a bare counter bump — the O(1) tail.
    p.applied = next;
  }
  if (params_.promotion_threshold != 0 &&
      next == params_.promotion_threshold) {
    p.flags |= kPromoted;
    p.promoted_time = ev.time;
  }
}

std::vector<std::uint64_t> StreamEngine::merge_prefix_counts(
    std::vector<std::uint64_t> cursor, std::uint64_t take) const {
  // Min-heap of story heads keyed by (next vote time, slot); popping one
  // head and consuming a run of its votes that still precede every other
  // head reproduces the global (time, slot, index) order without ever
  // materialising it. Ties in time break toward the lower slot, matching
  // the documented total order.
  struct Head {
    platform::Minutes time;
    std::uint32_t slot;
  };
  const auto later = [](const Head& a, const Head& b) {
    return a.time > b.time || (a.time == b.time && a.slot > b.slot);
  };
  std::priority_queue<Head, std::vector<Head>, decltype(later)> heap(later);
  for (std::uint32_t slot = 0; slot < stream_->stories.size(); ++slot) {
    const auto times = stream_->stories[slot].times();
    if (cursor[slot] < times.size())
      heap.push({times[cursor[slot]], slot});
  }
  while (take > 0 && !heap.empty()) {
    const Head head = heap.top();
    heap.pop();
    const auto times = stream_->stories[head.slot].times();
    std::uint64_t k = cursor[head.slot];
    if (heap.empty()) {
      // Only one story left: the rest of its column is the rest of the
      // stream.
      k += std::min<std::uint64_t>(take, times.size() - k);
    } else {
      const Head next = heap.top();
      while (take > k - cursor[head.slot] && k < times.size() &&
             (times[k] < next.time ||
              (times[k] == next.time && head.slot < next.slot)))
        ++k;
    }
    take -= k - cursor[head.slot];
    cursor[head.slot] = k;
    if (k < times.size()) heap.push({times[k], head.slot});
  }
  return cursor;
}

void StreamEngine::run_until(std::uint64_t event_limit) {
  if (live())
    throw std::logic_error(
        "run_until on a live-mode stream engine (use live_vote)");
  event_limit = std::min<std::uint64_t>(event_limit, total_events());
  if (event_limit <= events_applied_) return;
  obs::Span span("stream_run", "stream");
  obs::Counter& votes = obs::Registry::global().counter("stream.votes_ingested");
  obs::Histogram& ingest_story_us =
      obs::Registry::global().histogram("stream.ingest_story_us");
  // Replay liveness: a shard that goes 30s without finishing a story is
  // stuck (a healthy story is microseconds). The watchdog dumps the flight
  // recorder, whose per-shard events identify the wedged slot.
  obs::WatchdogTask watchdog("stream.run_until", 30'000);

  // Serial counting merge: how many of the next events belong to each
  // story. Seeding the cursors from progress_ is sound because progress_
  // always describes an exact global prefix (run_until applies exact
  // prefixes; restore_checkpoint verifies the same invariant).
  std::vector<std::uint64_t> cursor(progress_.size());
  for (std::size_t slot = 0; slot < progress_.size(); ++slot)
    cursor[slot] = progress_[slot].applied;
  const std::vector<std::uint64_t> target =
      merge_prefix_counts(std::move(cursor), event_limit - events_applied_);

  // Parallel apply, story-major inside each shard: per-story state depends
  // only on that story's own vote prefix, so outcomes are identical to
  // strict global interleaving, and each vote column is walked once,
  // sequentially — the access pattern mmapped corpora reward.
  runtime::parallel_for(
      shards_.size(),
      [&](std::size_t s) {
        Shard& shard = shards_[s];
        std::uint64_t done = 0;
        for (std::uint32_t slot = static_cast<std::uint32_t>(s);
             slot < stream_->stories.size(); slot += kShardCount) {
          Progress& p = progress_[slot];
          if (p.applied >= target[slot]) continue;
          const platform::StoryView& sv = stream_->stories[slot];
          const auto voters = sv.voters();
          const auto times = sv.times();
          const auto story_start = std::chrono::steady_clock::now();
          while (p.applied < target[slot]) {
            const auto k = static_cast<std::uint32_t>(p.applied);
            apply_event({times[k], slot, k, voters[k]}, shard);
            // Sampled (first vote per shard pass, then every 1024th): the
            // flight recorder wants recent context, not every vote.
            if ((done & 1023) == 0)
              obs::record_event(obs::EventKind::kVoteApplied,
                                static_cast<std::uint32_t>(s), slot,
                                p.applied);
            ++done;
          }
          ingest_story_us.observe(std::chrono::duration<double, std::micro>(
                                      std::chrono::steady_clock::now() -
                                      story_start)
                                      .count());
          watchdog.beat();
        }
        // One batched tree descent for every v10 checkpoint this shard
        // pass crossed. Shard-local queue, slot-indexed outputs: no
        // cross-shard state, so the thread-count invariance holds.
        flush_predictions(shard);
        if (done > 0) votes.inc(done);
      },
      {.grain = 1});
  events_applied_ = event_limit;
  obs::Registry::global().gauge("stream.state_bytes").set(
      static_cast<double>(state_bytes()));
  obs::Registry::global().gauge("stream.vis_pool_bytes").set(
      static_cast<double>(vis_pool_bytes()));
}

StoryOutcome StreamEngine::query_story(std::uint32_t slot) {
  if (slot >= progress_.size())
    throw std::invalid_argument("query for an unknown story slot");
  const auto& cc = params_.cascade_checkpoints;
  const auto& ic = params_.influence_checkpoints;
  const Progress& p = progress_[slot];
  StoryOutcome o;
  o.id = story_id(slot);
  o.submitter = story_submitter(slot);
  o.fans1 = p.fans1;
  o.final_votes = p.applied;
  o.interesting = p.applied > params_.interesting_threshold;
  // Unreached checkpoints saturate over the votes seen so far, matching
  // the batch profiles. An unrecorded cascade checkpoint's count is just
  // the running counter (all applied votes are inside its window); an
  // unrecorded influence checkpoint needs the live set, rebuilt on demand.
  o.cascade.resize(cc.size());
  for (std::size_t j = 0; j < cc.size(); ++j) {
    const std::uint32_t rec = cascade_rec_[slot * cc.size() + j];
    o.cascade[j] = rec != kUnrecorded ? rec : p.innetwork;
  }
  o.influence.resize(ic.size());
  for (std::size_t j = 0; j < ic.size(); ++j) {
    const std::uint32_t rec = influence_rec_[slot * ic.size() + j];
    o.influence[j] =
        rec != kUnrecorded
            ? rec
            : acquire_vis(shards_[slot % kShardCount], slot).influence();
  }
  if (p.flags & kHasPrediction)
    o.predicted_interesting = (p.flags & kPredictedYes) != 0;
  if (p.flags & kHasBayes) {
    o.bayes_interesting = (p.flags & kBayesYes) != 0;
    o.bayes_expected_final = p.bayes_estimate;
  }
  if (p.flags & kPromoted) o.promoted_time = p.promoted_time;
  return o;
}

StreamResult StreamEngine::result() {
  obs::Span span("stream_result", "stream");
  const auto query_start = std::chrono::steady_clock::now();
  obs::record_event(obs::EventKind::kQuery, 0, events_applied_);
  StreamResult out;
  out.events_applied = events_applied_;
  out.stories.reserve(progress_.size());
  for (std::uint32_t slot = 0; slot < progress_.size(); ++slot)
    out.stories.push_back(query_story(slot));
  obs::Registry::global()
      .histogram("stream.query_us")
      .observe(std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - query_start)
                   .count());
  return out;
}

std::size_t StreamEngine::state_bytes() const {
  std::size_t bytes = progress_.capacity() * sizeof(Progress) +
                      cascade_rec_.capacity() * sizeof(std::uint32_t) +
                      influence_rec_.capacity() * sizeof(std::uint32_t) +
                      pool_slot_of_.capacity() * sizeof(std::uint32_t) +
                      bayes_exposure_.capacity() * sizeof(double) +
                      live_stories_.capacity() * sizeof(LiveStory);
  for (const LiveStory& ls : live_stories_)
    bytes += ls.prefix_voters.capacity() * sizeof(platform::UserId) +
             ls.prefix_times.capacity() * sizeof(platform::Minutes);
  return bytes + vis_pool_bytes();
}

std::size_t StreamEngine::vis_pool_bytes() const {
  std::size_t bytes = 0;
  for (const Shard& shard : shards_)
    for (const PoolSlot& sl : shard.pool.slots) bytes += sl.set.size_bytes();
  return bytes;
}

std::vector<core::StoryFeatures> to_story_features(const StreamResult& result,
                                                   const StreamParams& params) {
  auto index_of = [](const std::vector<std::uint32_t>& cps,
                     std::uint32_t cp) -> std::size_t {
    const auto it = std::find(cps.begin(), cps.end(), cp);
    if (it == cps.end())
      throw std::invalid_argument(
          "to_story_features needs the paper checkpoints (6/10/20 cascade, "
          "11 influence)");
    return static_cast<std::size_t>(it - cps.begin());
  };
  const std::size_t j6 = index_of(params.cascade_checkpoints, 6);
  const std::size_t j10 = index_of(params.cascade_checkpoints, 10);
  const std::size_t j20 = index_of(params.cascade_checkpoints, 20);
  const std::size_t j11 = index_of(params.influence_checkpoints, 11);

  std::vector<core::StoryFeatures> rows;
  rows.reserve(result.stories.size());
  for (const StoryOutcome& o : result.stories) {
    core::StoryFeatures f;
    f.story = o.id;
    f.submitter = o.submitter;
    f.v6 = o.cascade[j6];
    f.v10 = o.cascade[j10];
    f.v20 = o.cascade[j20];
    f.fans1 = o.fans1;
    f.influence10 = o.influence[j11];
    f.final_votes = o.final_votes;
    f.interesting = o.interesting;
    rows.push_back(f);
  }
  return rows;
}

}  // namespace digg::stream
