#include "src/stream/checkpoint.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/data/snapshot_format.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"
#include "src/obs/trace.h"
#include "src/stream/engine.h"

namespace digg::stream {

namespace snapfmt = data::snapfmt;

namespace {

double elapsed_us(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Meta {
  std::uint32_t version = 0;
  bool predictor_armed = false;
  std::uint64_t fingerprint = 0;
  std::uint64_t total_events = 0;
  std::uint64_t events_applied = 0;
  std::uint64_t story_count = 0;
  std::uint64_t interesting_threshold = 0;
  std::uint32_t promotion_threshold = 0;
  bool bayes_enabled = false;  // v1 files read as disabled
  std::uint32_t bayes_fit_at = 0;
  std::vector<std::uint32_t> cascade_cps;
  std::vector<std::uint32_t> influence_cps;
};

Meta read_meta(const snapfmt::SectionFile& file) {
  snapfmt::ByteReader r = file.open(snapfmt::kStreamMeta);
  Meta m;
  m.version = r.pod<std::uint32_t>();
  if (m.version > kStreamCheckpointVersion)
    throw std::runtime_error(file.context +
                             "unsupported stream checkpoint version " +
                             std::to_string(m.version));
  m.predictor_armed = r.pod<std::uint32_t>() != 0;
  m.fingerprint = r.pod<std::uint64_t>();
  m.total_events = r.pod<std::uint64_t>();
  m.events_applied = r.pod<std::uint64_t>();
  m.story_count = r.pod<std::uint64_t>();
  m.interesting_threshold = r.pod<std::uint64_t>();
  m.promotion_threshold = r.pod<std::uint32_t>();
  if (m.version >= 2) {
    m.bayes_enabled = r.pod<std::uint32_t>() != 0;
    m.bayes_fit_at = r.pod<std::uint32_t>();
  }
  // Bound the list lengths before allocating: a corrupt count must fail
  // cleanly, not attempt a multi-gigabyte vector.
  const auto checked_count = [&](const char* what) {
    const std::uint32_t n = r.pod<std::uint32_t>();
    if (n > 4096)
      throw std::runtime_error(file.context + "implausible " + what +
                               " checkpoint list length");
    return n;
  };
  m.cascade_cps = r.column<std::uint32_t>(checked_count("cascade"));
  m.influence_cps = r.column<std::uint32_t>(checked_count("influence"));
  return m;
}

}  // namespace

CheckpointInfo read_checkpoint_info(const std::filesystem::path& path) {
  const snapfmt::SectionFile file = snapfmt::read_section_file(path);
  const Meta m = read_meta(file);
  return {m.version, m.fingerprint, m.total_events, m.events_applied,
          m.story_count};
}

void StreamEngine::save_checkpoint(const std::filesystem::path& path) const {
  obs::Span span("stream_checkpoint_save", "stream");
  const auto t0 = std::chrono::steady_clock::now();

  const std::uint64_t story_count = progress_.size();
  snapfmt::Section sections[2];

  sections[0].type = snapfmt::kStreamMeta;
  snapfmt::ByteBuffer& meta = sections[0].body;
  meta.pod<std::uint32_t>(kStreamCheckpointVersion);
  meta.pod<std::uint32_t>(predictor_armed_ ? 1 : 0);
  meta.pod<std::uint64_t>(fingerprint_);
  meta.pod<std::uint64_t>(total_events());
  meta.pod<std::uint64_t>(events_applied_);
  meta.pod<std::uint64_t>(story_count);
  meta.pod<std::uint64_t>(params_.interesting_threshold);
  meta.pod<std::uint32_t>(params_.promotion_threshold);
  meta.pod<std::uint32_t>(params_.bayes.enabled ? 1 : 0);
  meta.pod<std::uint32_t>(params_.bayes.fit_at);
  meta.pod<std::uint32_t>(
      static_cast<std::uint32_t>(params_.cascade_checkpoints.size()));
  meta.column(params_.cascade_checkpoints);
  meta.pod<std::uint32_t>(
      static_cast<std::uint32_t>(params_.influence_checkpoints.size()));
  meta.column(params_.influence_checkpoints);

  sections[1].type = snapfmt::kStreamState;
  snapfmt::ByteBuffer& state = sections[1].body;
  std::vector<std::uint64_t> applied(story_count);
  std::vector<std::uint32_t> innetwork(story_count);
  std::vector<std::uint8_t> flags(story_count);
  std::vector<double> promoted(story_count, 0.0);
  for (std::uint64_t slot = 0; slot < story_count; ++slot) {
    applied[slot] = progress_[slot].applied;
    innetwork[slot] = progress_[slot].innetwork;
    flags[slot] = progress_[slot].flags;
    promoted[slot] = progress_[slot].promoted_time;
  }
  state.column(applied);
  state.column(innetwork);
  state.column(flags);
  state.column(promoted);
  state.column(cascade_rec_);
  state.column(influence_rec_);
  if (params_.bayes.enabled) {
    // Exposure accumulates below the fit point, so kill/resume
    // bit-identity needs the accumulator; the estimate column spares a
    // restored engine re-deriving fits that already fired.
    state.column(bayes_exposure_);
    std::vector<float> estimates(story_count, 0.0f);
    for (std::uint64_t slot = 0; slot < story_count; ++slot)
      estimates[slot] = progress_[slot].bayes_estimate;
    state.column(estimates);
  }

  snapfmt::write_section_file(path, sections);
  obs::record_event(obs::EventKind::kCheckpointSave, 0, events_applied_);
  obs::Registry::global()
      .histogram("stream.checkpoint_save_us")
      .observe(elapsed_us(t0));
}

void StreamEngine::restore_checkpoint(const std::filesystem::path& path) {
  obs::Span span("stream_checkpoint_restore", "stream");
  const auto t0 = std::chrono::steady_clock::now();

  const snapfmt::SectionFile file = snapfmt::read_section_file(path);
  const std::string& ctx = file.context;
  const Meta m = read_meta(file);

  // Refuse anything that is not this exact stream + engine configuration.
  if (m.fingerprint != fingerprint_)
    throw std::runtime_error(ctx + "checkpoint stream fingerprint mismatch");
  if (m.story_count != progress_.size() || m.total_events != total_events())
    throw std::runtime_error(ctx + "checkpoint stream shape mismatch");
  if (m.events_applied > m.total_events)
    throw std::runtime_error(ctx + "checkpoint events-applied out of range");
  if (m.cascade_cps != params_.cascade_checkpoints ||
      m.influence_cps != params_.influence_checkpoints ||
      m.interesting_threshold != params_.interesting_threshold ||
      m.promotion_threshold != params_.promotion_threshold ||
      m.predictor_armed != predictor_armed_ ||
      m.bayes_enabled != params_.bayes.enabled ||
      (m.bayes_enabled && m.bayes_fit_at != params_.bayes.fit_at))
    throw std::runtime_error(ctx + "checkpoint engine config mismatch");

  const std::size_t story_count = progress_.size();
  snapfmt::ByteReader r = file.open(snapfmt::kStreamState);
  std::vector<std::uint64_t> applied;
  std::vector<std::uint32_t> innetwork;
  std::vector<std::uint8_t> flags;
  std::vector<double> promoted;
  std::vector<std::uint32_t> cascade_rec;
  std::vector<std::uint32_t> influence_rec;
  std::vector<double> bayes_exposure;
  std::vector<float> bayes_estimates;
  try {
    applied = r.column<std::uint64_t>(story_count);
    innetwork = r.column<std::uint32_t>(story_count);
    flags = r.column<std::uint8_t>(story_count);
    promoted = r.column<double>(story_count);
    cascade_rec = r.column<std::uint32_t>(story_count * m.cascade_cps.size());
    influence_rec =
        r.column<std::uint32_t>(story_count * m.influence_cps.size());
    if (m.bayes_enabled) {
      bayes_exposure = r.column<double>(story_count);
      bayes_estimates = r.column<float>(story_count);
    }
  } catch (const std::runtime_error& err) {
    throw std::runtime_error(ctx + err.what());
  }

  // Per-story consistency: the applied column must describe exactly the
  // first events-applied events of the stream, and every derived field must
  // agree with that prefix. This catches checkpoints that passed the
  // container checksum but describe an impossible engine state. The
  // expected prefix is recomputed with the same counting merge run_until
  // uses, from zeroed cursors.
  const std::vector<std::uint64_t> expect = merge_prefix_counts(
      std::vector<std::uint64_t>(story_count, 0), m.events_applied);
  for (std::size_t slot = 0; slot < story_count; ++slot) {
    if (applied[slot] != expect[slot])
      throw std::runtime_error(ctx +
                               "checkpoint progress is not a stream prefix");
    if (innetwork[slot] > applied[slot])
      throw std::runtime_error(ctx + "checkpoint in-network count impossible");
    if ((flags[slot] & ~(kHasPrediction | kPredictedYes | kPromoted |
                         kHasBayes | kBayesYes)) != 0)
      throw std::runtime_error(ctx + "checkpoint story flags invalid");
    const bool should_promote = params_.promotion_threshold != 0 &&
                                applied[slot] >= params_.promotion_threshold;
    if (((flags[slot] & kPromoted) != 0) != should_promote)
      throw std::runtime_error(ctx +
                               "checkpoint promotion flag inconsistent");
    const bool should_predict =
        predictor_armed_ &&
        applied[slot] >
            static_cast<std::uint64_t>(
                params_.cascade_checkpoints[v10_index_]);
    if (((flags[slot] & kHasPrediction) != 0) != should_predict)
      throw std::runtime_error(ctx +
                               "checkpoint prediction flag inconsistent");
    const bool should_bayes =
        m.bayes_enabled &&
        applied[slot] > static_cast<std::uint64_t>(m.bayes_fit_at);
    if (((flags[slot] & kHasBayes) != 0) != should_bayes)
      throw std::runtime_error(ctx + "checkpoint bayes flag inconsistent");
    if (m.bayes_enabled && bayes_exposure[slot] < 0.0)
      throw std::runtime_error(ctx + "checkpoint bayes exposure negative");
    for (std::size_t j = 0; j < m.cascade_cps.size(); ++j) {
      const bool reached =
          applied[slot] > static_cast<std::uint64_t>(m.cascade_cps[j]);
      const bool recorded =
          cascade_rec[slot * m.cascade_cps.size() + j] != kUnrecorded;
      if (reached != recorded)
        throw std::runtime_error(
            ctx + "checkpoint cascade records inconsistent with progress");
    }
    for (std::size_t j = 0; j < m.influence_cps.size(); ++j) {
      const bool reached =
          applied[slot] >= static_cast<std::uint64_t>(m.influence_cps[j]);
      const bool recorded =
          influence_rec[slot * m.influence_cps.size() + j] != kUnrecorded;
      if (reached != recorded)
        throw std::runtime_error(
            ctx + "checkpoint influence records inconsistent with progress");
    }
  }

  // Commit. Visibility pools are dropped — they rebuild lazily from the
  // restored prefixes, so no stale derived state can survive a restore;
  // replay cursors need no recompute because the per-story progress IS the
  // cursor state the counting merge resumes from.
  for (std::size_t slot = 0; slot < story_count; ++slot) {
    progress_[slot].applied = applied[slot];
    progress_[slot].innetwork = innetwork[slot];
    progress_[slot].flags = flags[slot];
    progress_[slot].promoted_time = promoted[slot];
    progress_[slot].bayes_estimate =
        m.bayes_enabled ? bayes_estimates[slot] : 0.0f;
  }
  if (m.bayes_enabled) bayes_exposure_ = std::move(bayes_exposure);
  cascade_rec_ = std::move(cascade_rec);
  influence_rec_ = std::move(influence_rec);
  events_applied_ = m.events_applied;
  for (Shard& shard : shards_) {
    shard.pool.slots.clear();
    shard.pool.clock = 0;
    shard.pool.bytes = 0;
  }
  std::fill(pool_slot_of_.begin(), pool_slot_of_.end(), kUnrecorded);

  obs::record_event(obs::EventKind::kCheckpointRestore, 0, events_applied_);
  obs::Registry::global()
      .histogram("stream.checkpoint_restore_us")
      .observe(elapsed_us(t0));
}

}  // namespace digg::stream
