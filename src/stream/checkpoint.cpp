#include "src/stream/checkpoint.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/data/snapshot_format.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"
#include "src/obs/trace.h"
#include "src/stream/engine.h"

namespace digg::stream {

namespace snapfmt = data::snapfmt;

namespace {

double elapsed_us(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Meta {
  std::uint32_t version = 0;
  bool predictor_armed = false;
  std::uint64_t fingerprint = 0;
  std::uint64_t total_events = 0;
  std::uint64_t events_applied = 0;
  std::uint64_t story_count = 0;
  std::uint64_t interesting_threshold = 0;
  std::uint32_t promotion_threshold = 0;
  bool bayes_enabled = false;  // v1 files read as disabled
  std::uint32_t bayes_fit_at = 0;
  bool live = false;  // v1/v2 files read as replay checkpoints
  std::vector<std::uint32_t> cascade_cps;
  std::vector<std::uint32_t> influence_cps;
};

Meta read_meta(const snapfmt::SectionFile& file) {
  snapfmt::ByteReader r = file.open(snapfmt::kStreamMeta);
  Meta m;
  m.version = r.pod<std::uint32_t>();
  if (m.version > kStreamCheckpointVersion)
    throw std::runtime_error(file.context +
                             "unsupported stream checkpoint version " +
                             std::to_string(m.version));
  m.predictor_armed = r.pod<std::uint32_t>() != 0;
  m.fingerprint = r.pod<std::uint64_t>();
  m.total_events = r.pod<std::uint64_t>();
  m.events_applied = r.pod<std::uint64_t>();
  m.story_count = r.pod<std::uint64_t>();
  m.interesting_threshold = r.pod<std::uint64_t>();
  m.promotion_threshold = r.pod<std::uint32_t>();
  if (m.version >= 2) {
    m.bayes_enabled = r.pod<std::uint32_t>() != 0;
    m.bayes_fit_at = r.pod<std::uint32_t>();
  }
  if (m.version >= 3) m.live = r.pod<std::uint32_t>() != 0;
  // Bound the list lengths before allocating: a corrupt count must fail
  // cleanly, not attempt a multi-gigabyte vector.
  const auto checked_count = [&](const char* what) {
    const std::uint32_t n = r.pod<std::uint32_t>();
    if (n > 4096)
      throw std::runtime_error(file.context + "implausible " + what +
                               " checkpoint list length");
    return n;
  };
  m.cascade_cps = r.column<std::uint32_t>(checked_count("cascade"));
  m.influence_cps = r.column<std::uint32_t>(checked_count("influence"));
  return m;
}

}  // namespace

CheckpointInfo read_checkpoint_info(const std::filesystem::path& path) {
  const snapfmt::SectionFile file = snapfmt::read_section_file(path);
  const Meta m = read_meta(file);
  return {m.version,        m.fingerprint, m.total_events,
          m.events_applied, m.story_count, m.live};
}

std::vector<snapfmt::Section> StreamEngine::checkpoint_sections() const {
  const std::uint64_t story_count = progress_.size();
  std::vector<snapfmt::Section> sections(live() ? 3 : 2);

  sections[0].type = snapfmt::kStreamMeta;
  snapfmt::ByteBuffer& meta = sections[0].body;
  meta.pod<std::uint32_t>(kStreamCheckpointVersion);
  meta.pod<std::uint32_t>(predictor_armed_ ? 1 : 0);
  meta.pod<std::uint64_t>(fingerprint_);
  meta.pod<std::uint64_t>(total_events());
  meta.pod<std::uint64_t>(events_applied_);
  meta.pod<std::uint64_t>(story_count);
  meta.pod<std::uint64_t>(params_.interesting_threshold);
  meta.pod<std::uint32_t>(params_.promotion_threshold);
  meta.pod<std::uint32_t>(params_.bayes.enabled ? 1 : 0);
  meta.pod<std::uint32_t>(params_.bayes.fit_at);
  meta.pod<std::uint32_t>(live() ? 1 : 0);
  meta.pod<std::uint32_t>(
      static_cast<std::uint32_t>(params_.cascade_checkpoints.size()));
  meta.column(params_.cascade_checkpoints);
  meta.pod<std::uint32_t>(
      static_cast<std::uint32_t>(params_.influence_checkpoints.size()));
  meta.column(params_.influence_checkpoints);

  sections[1].type = snapfmt::kStreamState;
  snapfmt::ByteBuffer& state = sections[1].body;
  std::vector<std::uint64_t> applied(story_count);
  std::vector<std::uint32_t> innetwork(story_count);
  std::vector<std::uint8_t> flags(story_count);
  std::vector<double> promoted(story_count, 0.0);
  for (std::uint64_t slot = 0; slot < story_count; ++slot) {
    applied[slot] = progress_[slot].applied;
    innetwork[slot] = progress_[slot].innetwork;
    flags[slot] = progress_[slot].flags;
    promoted[slot] = progress_[slot].promoted_time;
  }
  state.column(applied);
  state.column(innetwork);
  state.column(flags);
  state.column(promoted);
  state.column(cascade_rec_);
  state.column(influence_rec_);
  if (params_.bayes.enabled) {
    // Exposure accumulates below the fit point, so kill/resume
    // bit-identity needs the accumulator; the estimate column spares a
    // restored engine re-deriving fits that already fired.
    state.column(bayes_exposure_);
    std::vector<float> estimates(story_count, 0.0f);
    for (std::uint64_t slot = 0; slot < story_count; ++slot)
      estimates[slot] = progress_[slot].bayes_estimate;
    state.column(estimates);
  }

  if (live()) {
    sections[2].type = snapfmt::kServeStories;
    snapfmt::ByteBuffer& live_body = sections[2].body;
    std::vector<std::uint32_t> ids(story_count), submitters(story_count),
        prefix_len(story_count);
    std::vector<double> last_time(story_count);
    for (std::uint64_t slot = 0; slot < story_count; ++slot) {
      const LiveStory& ls = live_stories_[slot];
      ids[slot] = ls.id;
      submitters[slot] = ls.submitter;
      prefix_len[slot] = static_cast<std::uint32_t>(ls.prefix_voters.size());
      last_time[slot] = ls.last_time;
    }
    live_body.column(ids);
    live_body.column(submitters);
    live_body.column(prefix_len);
    live_body.pad8();
    live_body.column(last_time);
    for (const LiveStory& ls : live_stories_) live_body.column(ls.prefix_voters);
    live_body.pad8();
    for (const LiveStory& ls : live_stories_) live_body.column(ls.prefix_times);
  }

  return sections;
}

void StreamEngine::save_checkpoint(const std::filesystem::path& path) const {
  obs::Span span("stream_checkpoint_save", "stream");
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<snapfmt::Section> sections = checkpoint_sections();
  snapfmt::write_section_file(path, sections);
  obs::record_event(obs::EventKind::kCheckpointSave, 0, events_applied_);
  obs::Registry::global()
      .histogram("stream.checkpoint_save_us")
      .observe(elapsed_us(t0));
}

void StreamEngine::restore_checkpoint(const std::filesystem::path& path) {
  obs::Span span("stream_checkpoint_restore", "stream");
  const auto t0 = std::chrono::steady_clock::now();

  const snapfmt::SectionFile file = snapfmt::read_section_file(path);
  const std::string& ctx = file.context;
  const Meta m = read_meta(file);

  // Refuse anything that is not this exact stream + engine configuration.
  if (m.live != live())
    throw std::runtime_error(ctx + "checkpoint engine mode mismatch");
  if (m.fingerprint != fingerprint_)
    throw std::runtime_error(ctx + "checkpoint stream fingerprint mismatch");
  if (!m.live &&
      (m.story_count != progress_.size() || m.total_events != total_events()))
    throw std::runtime_error(ctx + "checkpoint stream shape mismatch");
  // A live restore rebuilds the whole story table; requiring a fresh engine
  // keeps the commit step below all-or-nothing simple (the serve layer
  // restores into a just-constructed engine anyway).
  if (m.live && story_count() != 0)
    throw std::runtime_error(ctx +
                             "live checkpoint restore needs a fresh engine");
  if (m.events_applied > m.total_events)
    throw std::runtime_error(ctx + "checkpoint events-applied out of range");
  if (m.cascade_cps != params_.cascade_checkpoints ||
      m.influence_cps != params_.influence_checkpoints ||
      m.interesting_threshold != params_.interesting_threshold ||
      m.promotion_threshold != params_.promotion_threshold ||
      m.predictor_armed != predictor_armed_ ||
      m.bayes_enabled != params_.bayes.enabled ||
      (m.bayes_enabled && m.bayes_fit_at != params_.bayes.fit_at))
    throw std::runtime_error(ctx + "checkpoint engine config mismatch");

  const std::size_t story_count =
      m.live ? static_cast<std::size_t>(m.story_count) : progress_.size();
  snapfmt::ByteReader r = file.open(snapfmt::kStreamState);
  std::vector<std::uint64_t> applied;
  std::vector<std::uint32_t> innetwork;
  std::vector<std::uint8_t> flags;
  std::vector<double> promoted;
  std::vector<std::uint32_t> cascade_rec;
  std::vector<std::uint32_t> influence_rec;
  std::vector<double> bayes_exposure;
  std::vector<float> bayes_estimates;
  std::vector<std::uint32_t> live_ids, live_submitters, live_prefix_len;
  std::vector<double> live_last_time, live_times_flat;
  std::vector<std::uint32_t> live_voters_flat;
  try {
    applied = r.column<std::uint64_t>(story_count);
    innetwork = r.column<std::uint32_t>(story_count);
    flags = r.column<std::uint8_t>(story_count);
    promoted = r.column<double>(story_count);
    cascade_rec = r.column<std::uint32_t>(story_count * m.cascade_cps.size());
    influence_rec =
        r.column<std::uint32_t>(story_count * m.influence_cps.size());
    if (m.bayes_enabled) {
      bayes_exposure = r.column<double>(story_count);
      bayes_estimates = r.column<float>(story_count);
    }
    if (m.live) {
      snapfmt::ByteReader lr = file.open(snapfmt::kServeStories);
      live_ids = lr.column<std::uint32_t>(story_count);
      live_submitters = lr.column<std::uint32_t>(story_count);
      live_prefix_len = lr.column<std::uint32_t>(story_count);
      std::uint64_t total_prefix = 0;
      for (const std::uint32_t n : live_prefix_len) {
        if (n > horizon_)
          throw std::runtime_error("checkpoint live prefix exceeds horizon");
        total_prefix += n;
      }
      lr.align8();
      live_last_time = lr.column<double>(story_count);
      live_voters_flat = lr.column<std::uint32_t>(total_prefix);
      lr.align8();
      live_times_flat = lr.column<double>(total_prefix);
    }
  } catch (const std::runtime_error& err) {
    throw std::runtime_error(ctx + err.what());
  }

  // Per-story consistency: the applied column must describe exactly the
  // first events-applied events of the stream, and every derived field must
  // agree with that prefix. This catches checkpoints that passed the
  // container checksum but describe an impossible engine state. Replay mode
  // recomputes the expected prefix with the same counting merge run_until
  // uses, from zeroed cursors; live mode has no stream to merge, so the
  // check degrades to the per-story sum matching the global counter (plus
  // the prefix-shape checks below).
  std::vector<std::uint64_t> expect;
  if (m.live) {
    std::uint64_t sum = 0;
    for (const std::uint64_t a : applied) sum += a;
    if (sum != m.events_applied)
      throw std::runtime_error(ctx +
                               "checkpoint progress is not a stream prefix");
  } else {
    expect = merge_prefix_counts(std::vector<std::uint64_t>(story_count, 0),
                                 m.events_applied);
  }
  for (std::size_t slot = 0; slot < story_count; ++slot) {
    if (!m.live && applied[slot] != expect[slot])
      throw std::runtime_error(ctx +
                               "checkpoint progress is not a stream prefix");
    if (m.live) {
      if (live_submitters[slot] >= network_->node_count())
        throw std::runtime_error(ctx +
                                 "checkpoint live submitter out of range");
      const std::uint64_t want_prefix =
          std::min<std::uint64_t>(applied[slot], horizon_);
      if (live_prefix_len[slot] != want_prefix)
        throw std::runtime_error(ctx +
                                 "checkpoint live prefix length mismatch");
      if (applied[slot] == 0)
        throw std::runtime_error(ctx + "checkpoint live story has no votes");
    }
    if (innetwork[slot] > applied[slot])
      throw std::runtime_error(ctx + "checkpoint in-network count impossible");
    if ((flags[slot] & ~(kHasPrediction | kPredictedYes | kPromoted |
                         kHasBayes | kBayesYes)) != 0)
      throw std::runtime_error(ctx + "checkpoint story flags invalid");
    const bool should_promote = params_.promotion_threshold != 0 &&
                                applied[slot] >= params_.promotion_threshold;
    if (((flags[slot] & kPromoted) != 0) != should_promote)
      throw std::runtime_error(ctx +
                               "checkpoint promotion flag inconsistent");
    const bool should_predict =
        predictor_armed_ &&
        applied[slot] >
            static_cast<std::uint64_t>(
                params_.cascade_checkpoints[v10_index_]);
    if (((flags[slot] & kHasPrediction) != 0) != should_predict)
      throw std::runtime_error(ctx +
                               "checkpoint prediction flag inconsistent");
    const bool should_bayes =
        m.bayes_enabled &&
        applied[slot] > static_cast<std::uint64_t>(m.bayes_fit_at);
    if (((flags[slot] & kHasBayes) != 0) != should_bayes)
      throw std::runtime_error(ctx + "checkpoint bayes flag inconsistent");
    if (m.bayes_enabled && bayes_exposure[slot] < 0.0)
      throw std::runtime_error(ctx + "checkpoint bayes exposure negative");
    for (std::size_t j = 0; j < m.cascade_cps.size(); ++j) {
      const bool reached =
          applied[slot] > static_cast<std::uint64_t>(m.cascade_cps[j]);
      const bool recorded =
          cascade_rec[slot * m.cascade_cps.size() + j] != kUnrecorded;
      if (reached != recorded)
        throw std::runtime_error(
            ctx + "checkpoint cascade records inconsistent with progress");
    }
    for (std::size_t j = 0; j < m.influence_cps.size(); ++j) {
      const bool reached =
          applied[slot] >= static_cast<std::uint64_t>(m.influence_cps[j]);
      const bool recorded =
          influence_rec[slot * m.influence_cps.size() + j] != kUnrecorded;
      if (reached != recorded)
        throw std::runtime_error(
            ctx + "checkpoint influence records inconsistent with progress");
    }
  }

  // Live prefix columns: the bounded prefixes must themselves be valid
  // replay material — voters in graph range, times non-decreasing, vote 0
  // the submitter's own digg, and the per-story watermark at or past the
  // buffered tail. An LRU rebuild replays exactly these columns, so a
  // corrupt prefix would otherwise surface as undefined visibility state.
  if (m.live) {
    std::size_t off = 0;
    for (std::size_t slot = 0; slot < story_count; ++slot) {
      const std::uint32_t n = live_prefix_len[slot];
      for (std::uint32_t i = 0; i < n; ++i) {
        if (live_voters_flat[off + i] >= network_->node_count())
          throw std::runtime_error(ctx + "checkpoint live voter out of range");
        if (i > 0 && live_times_flat[off + i] < live_times_flat[off + i - 1])
          throw std::runtime_error(ctx +
                                   "checkpoint live prefix times unsorted");
      }
      if (n > 0) {
        if (live_voters_flat[off] != live_submitters[slot])
          throw std::runtime_error(
              ctx + "checkpoint live vote 0 is not the submitter");
        if (live_last_time[slot] < live_times_flat[off + n - 1])
          throw std::runtime_error(
              ctx + "checkpoint live time watermark behind prefix");
      }
      off += n;
    }
  }

  // Commit. Visibility pools are dropped — they rebuild lazily from the
  // restored prefixes, so no stale derived state can survive a restore;
  // replay cursors need no recompute because the per-story progress IS the
  // cursor state the counting merge resumes from. Live mode builds the
  // story table itself (the engine was verified fresh above).
  if (m.live) {
    progress_.resize(story_count);
    pool_slot_of_.assign(story_count, kUnrecorded);
    live_stories_.resize(story_count);
    std::size_t off = 0;
    for (std::size_t slot = 0; slot < story_count; ++slot) {
      LiveStory& ls = live_stories_[slot];
      ls.id = live_ids[slot];
      ls.submitter = live_submitters[slot];
      ls.last_time = live_last_time[slot];
      const std::uint32_t n = live_prefix_len[slot];
      ls.prefix_voters.assign(live_voters_flat.begin() + off,
                              live_voters_flat.begin() + off + n);
      ls.prefix_times.assign(live_times_flat.begin() + off,
                             live_times_flat.begin() + off + n);
      off += n;
      // fans1 is derivable, so it is re-derived, not trusted from disk.
      progress_[slot].fans1 =
          static_cast<std::uint32_t>(network_->fan_count(ls.submitter));
    }
  }
  for (std::size_t slot = 0; slot < story_count; ++slot) {
    progress_[slot].applied = applied[slot];
    progress_[slot].innetwork = innetwork[slot];
    progress_[slot].flags = flags[slot];
    progress_[slot].promoted_time = promoted[slot];
    progress_[slot].bayes_estimate =
        m.bayes_enabled ? bayes_estimates[slot] : 0.0f;
  }
  if (m.bayes_enabled) bayes_exposure_ = std::move(bayes_exposure);
  cascade_rec_ = std::move(cascade_rec);
  influence_rec_ = std::move(influence_rec);
  events_applied_ = m.events_applied;
  for (Shard& shard : shards_) {
    shard.pool.slots.clear();
    shard.pool.clock = 0;
    shard.pool.bytes = 0;
  }
  std::fill(pool_slot_of_.begin(), pool_slot_of_.end(), kUnrecorded);

  obs::record_event(obs::EventKind::kCheckpointRestore, 0, events_applied_);
  obs::Registry::global()
      .histogram("stream.checkpoint_restore_us")
      .observe(elapsed_us(t0));
}

}  // namespace digg::stream
