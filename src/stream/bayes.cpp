#include "src/stream/bayes.h"

#include <algorithm>
#include <cmath>

namespace digg::stream {

BayesFit fit_rates(const BayesFitParams& params,
                   const BayesEvidence& evidence) {
  BayesFit fit;
  fit.r_fan = (params.fan_prior_votes + evidence.in_network_votes) /
              (params.fan_prior_exposure + evidence.exposure_watcher_minutes);
  fit.r_disc = (params.disc_prior_votes + evidence.out_network_votes) /
               (params.disc_prior_minutes + evidence.elapsed_minutes);
  // The story's own audience-per-vote ratio is the cleanest local estimate
  // of how much fresh audience each additional voter recruits — it already
  // reflects the realised fan overlap of this cascade.
  fit.audience_per_vote =
      evidence.votes > 0
          ? std::min(params.max_audience_per_vote,
                     evidence.audience / static_cast<double>(evidence.votes))
          : 0.0;
  return fit;
}

double expected_final_votes(const BayesFitParams& params,
                            const BayesEvidence& evidence,
                            const BayesFit& fit) {
  double n = evidence.votes;
  double audience = evidence.audience;
  const double h = std::max(1.0, params.step_minutes);
  bool promoted = params.promotion_threshold != 0 &&
                  n >= static_cast<double>(params.promotion_threshold);
  double promoted_at = promoted ? evidence.elapsed_minutes : 0.0;
  for (double t = evidence.elapsed_minutes; t < params.horizon_minutes;
       t += h) {
    double disc_visibility;
    if (promoted) {
      disc_visibility = params.front_page_gain *
                        std::pow(0.5, (t - promoted_at) /
                                          params.novelty_half_life);
    } else {
      disc_visibility = std::exp(-t / params.upcoming_decay_minutes);
    }
    const double fan_visibility =
        params.fan_decay_minutes > 0
            ? std::exp(-t / params.fan_decay_minutes)
            : 1.0;
    double dn = fit.r_fan * fan_visibility * audience * h +
                fit.r_disc * disc_visibility * h;
    // Finite-population (logistic) damping: the susceptible pool drains as
    // the story saturates, so supercritical fits level off at the user
    // count instead of integrating to astronomically many votes.
    if (evidence.population > 0) {
      dn *= std::max(0.0, 1.0 - n / evidence.population);
      if (n + dn > evidence.population) dn = evidence.population - n;
    }
    n += dn;
    audience += fit.audience_per_vote * dn;
    if (!promoted && params.promotion_threshold != 0 &&
        n >= static_cast<double>(params.promotion_threshold)) {
      promoted = true;
      promoted_at = t;
    }
  }
  return n;
}

}  // namespace digg::stream
