#pragma once
// The vote-event vocabulary of the streaming engine. A corpus (or any other
// set of stories) is flattened into ONE time-ordered stream of vote events —
// the paper's own framing: Hogg & Lerman (arXiv:1202.0031) and Lerman
// (cs/0612046) both model Digg activity as a time-ordered arrival process,
// and every §4–§5 quantity (influence, in-network cascades, the (v10, fans1)
// feature pair) is a function of a vote-arrival prefix.
//
// Ordering contract: events are sorted by (time, story slot, vote index).
// Vote times within one story are non-decreasing (corpus invariant), so this
// order applies every story's votes in recorded vote order — the engine's
// incremental state is therefore a prefix of exactly the columns the batch
// pipeline scans, which is what makes batch/stream bit-identity provable.
// `ordinal` is the event's position in the global order; checkpoints address
// stream positions with it.

#include <cstdint>
#include <span>
#include <vector>

#include "src/digg/types.h"

namespace digg::stream {

struct VoteEvent {
  platform::Minutes time = 0.0;
  std::uint32_t story_slot = 0;  // index into EventStream::stories
  std::uint32_t vote_index = 0;  // 0 = the submitter's own digg
  platform::UserId voter = 0;
  std::uint64_t ordinal = 0;     // position in the global time order
};

/// A replayable stream: the story table (slot-indexed views into storage
/// owned by the caller — keep the corpus alive) plus the merged event order.
struct EventStream {
  std::vector<platform::StoryView> stories;  // slot -> story
  std::vector<VoteEvent> events;             // time-ordered, ordinal == index

  [[nodiscard]] std::uint64_t total_events() const noexcept {
    return events.size();
  }
};

}  // namespace digg::stream
