#pragma once
// The vote-event vocabulary of the streaming engine. A corpus (or any other
// set of stories) is replayed as ONE time-ordered stream of vote events —
// the paper's own framing: Hogg & Lerman (arXiv:1202.0031) and Lerman
// (cs/0612046) both model Digg activity as a time-ordered arrival process,
// and every §4–§5 quantity (influence, in-network cascades, the (v10, fans1)
// feature pair) is a function of a vote-arrival prefix.
//
// Ordering contract: the global order is (time, story slot, vote index).
// Vote times within one story are non-decreasing (corpus invariant), so this
// order applies every story's votes in recorded vote order — the engine's
// incremental state is therefore a prefix of exactly the columns the batch
// pipeline scans, which is what makes batch/stream bit-identity provable.
//
// The stream is NOT materialised: an EventStream is just the story table
// (slot-indexed views into storage owned by the caller) plus the cached
// event total. The engine derives the global order incrementally by merging
// the per-story time columns (each already sorted), so replaying a
// memory-mapped million-user corpus costs no O(total votes) event copy —
// the columns are read in place from wherever the views point, including a
// load_snapshot_mmap mapping.

#include <cstdint>
#include <vector>

#include "src/digg/types.h"

namespace digg::stream {

/// One vote in the global order, synthesised on the fly from the columns
/// during the merge (never stored).
struct VoteEvent {
  platform::Minutes time = 0.0;
  std::uint32_t story_slot = 0;  // index into EventStream::stories
  std::uint32_t vote_index = 0;  // 0 = the submitter's own digg
  platform::UserId voter = 0;
};

/// A replayable stream: the story table plus the event total. Views alias
/// storage owned by the caller — keep the corpus (and any mmap backing it)
/// alive while the stream is in use.
struct EventStream {
  std::vector<platform::StoryView> stories;  // slot -> story
  std::uint64_t total = 0;                   // sum of story vote counts

  [[nodiscard]] std::uint64_t total_events() const noexcept { return total; }
};

}  // namespace digg::stream
