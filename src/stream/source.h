#pragma once
// Event-stream construction: assembles the story table the engine merges
// into the single time-ordered event order of event.h. O(stories) — the
// event order itself stays implicit in the per-story time columns. Sources
// exist for the corpus (replay of scraped/synthetic/mmapped data) and for
// any explicit story list, so a synthetic generator run can be streamed
// without materialising a Corpus first.

#include <span>

#include "src/data/corpus.h"
#include "src/stream/event.h"

namespace digg::stream {

/// Streams every story in the corpus, front page first then upcoming (the
/// same slot order the corpus snapshot uses). Story views alias the corpus
/// vote store: the corpus must outlive the returned stream.
[[nodiscard]] EventStream build_event_stream(const data::Corpus& corpus);

/// Streams an explicit story list; slot i is stories[i]. The backing vote
/// columns must outlive the returned stream.
[[nodiscard]] EventStream build_event_stream(
    std::span<const platform::StoryView> stories);

}  // namespace digg::stream
