#pragma once
// Online Bayesian model fitting, after Hogg & Lerman, "Stochastic Models of
// User-Contributory Web Sites" (arXiv:1004.5354): estimate a story's
// per-channel vote rates from its first k vote *timings*, then integrate
// the fitted rate model forward to predict the final vote count — a
// second, model-based early predictor racing the paper's §5.2 (v10, fans1)
// C4.5 tree inside the stream engine.
//
// The fit is conjugate (Gamma-Poisson) per channel, so it is exact and
// O(1) given two sufficient statistics the engine accumulates per vote:
//
//   fan channel      votes arrive at rate  r_fan · audience(t), where
//                    audience(t) is the fan-union influence the engine
//                    already maintains. Sufficient statistic: watcher
//                    exposure  Σ influence(t_{k-1}) · (t_k − t_{k-1})
//                    (watcher-minutes), accumulated vote by vote BEFORE
//                    each voter joins the union.
//   discovery        votes arrive at rate  r_disc (per minute) while the
//                    story is in the upcoming queue. Sufficient statistic:
//                    elapsed time.
//
// With Gamma(α, β) priors the posterior means are
//   r_fan  = (α_fan  + in-network votes) / (β_fan  + exposure)
//   r_disc = (α_disc + out-of-network votes) / (β_disc + elapsed)
// and the forward prediction is a mean-field integration of
//   dN = r_fan · A dt + r_disc · decay(t) dt,     A ← A + g · dN
// where g (audience recruited per vote) is estimated from the story's own
// A/N at fit time, discovery visibility decays with queue age, and
// crossing the promotion threshold switches discovery to the front-page
// channel (a traffic multiplier with novelty half-life decay).
//
// Everything here is pure arithmetic on plain structs — the engine owns
// the accumulation discipline (see engine.h) and this header owns the
// model, so the fit is unit-testable without a stream.

#include <cstdint>

namespace digg::stream {

struct BayesFitParams {
  /// Master switch; disabled engines carry zero per-vote overhead.
  bool enabled = false;
  /// Fit from the timings of the first `fit_at` votes after the
  /// submitter's digg — 10 matches the §5.2 decision point, so the race
  /// against the C4.5 tree is apples-to-apples. Must be covered by the
  /// engine's cascade window (fit_at <= last cascade checkpoint).
  std::uint32_t fit_at = 10;

  /// Gamma prior on the fan-channel rate (votes per watcher-minute):
  /// shape `fan_prior_votes`, rate `fan_prior_exposure`. The prior mean
  /// ~5e-4 votes/watcher-minute regularises stories whose first votes
  /// arrive before any fan exposure accumulates.
  double fan_prior_votes = 1.0;
  double fan_prior_exposure = 2000.0;
  /// Gamma prior on the discovery rate (votes per minute). Prior mean
  /// ~1 vote / 400 minutes — a dull story's background trickle.
  double disc_prior_votes = 1.0;
  double disc_prior_minutes = 400.0;

  /// Upcoming-queue visibility decay for the forward integration (same
  /// mechanism as the generative models: newer submissions push the story
  /// off the browsed pages).
  double upcoming_decay_minutes = 240.0;
  /// Fan-channel attention decay: fans act on a friend's digg within a
  /// recency window (both generative models implement this), so the fan
  /// rate fades with story age instead of compounding forever.
  double fan_decay_minutes = 2880.0;
  /// Discovery-rate multiplier on promotion (front-page traffic dwarfs the
  /// queue's) and the Wu–Huberman novelty half-life it decays with.
  double front_page_gain = 12.0;
  double novelty_half_life = 1440.0;
  /// Votes needed to promote in the forward model (June 2006: 43; 0 means
  /// the integration never promotes).
  std::uint32_t promotion_threshold = 43;
  /// Mean-field integration step and horizon (minutes).
  double step_minutes = 30.0;
  double horizon_minutes = 4.0 * 24.0 * 60.0;
  /// Cap on the audience recruited per vote (fans of a mega-hub's voters
  /// overlap heavily; unbounded g makes the integration supercritical).
  double max_audience_per_vote = 60.0;
};

/// The sufficient statistics at the fit point, as the engine hands them
/// over: everything is O(1) state the engine already tracks.
struct BayesEvidence {
  std::uint32_t in_network_votes = 0;   // of the first fit_at votes
  std::uint32_t out_network_votes = 0;  // fit_at - in_network_votes
  double exposure_watcher_minutes = 0;  // Σ influence · dt over the prefix
  double elapsed_minutes = 0;           // time of vote fit_at since submission
  double audience = 0;                  // fan-union influence after vote fit_at
  std::uint32_t votes = 0;              // total votes so far (fit_at + 1)
  /// Platform user count: the forward integration's saturation bound (a
  /// story cannot collect more votes than there are users, and the fan
  /// cascade slows as the susceptible pool drains). 0 = unbounded.
  double population = 0;
};

/// Posterior rates + the audience-recruitment estimate.
struct BayesFit {
  double r_fan = 0;   // votes per watcher-minute (posterior mean)
  double r_disc = 0;  // votes per minute (posterior mean)
  double audience_per_vote = 0;  // g: audience recruited per vote
};

/// The conjugate posterior-mean fit. Pure; never throws.
[[nodiscard]] BayesFit fit_rates(const BayesFitParams& params,
                                 const BayesEvidence& evidence);

/// Mean-field forward integration of the fitted rates from the fit point
/// to the horizon; returns the expected final vote count (>= evidence
/// votes). Pure; never throws.
[[nodiscard]] double expected_final_votes(const BayesFitParams& params,
                                          const BayesEvidence& evidence,
                                          const BayesFit& fit);

}  // namespace digg::stream
