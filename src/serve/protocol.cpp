#include "src/serve/protocol.h"

#include <cstring>

namespace digg::serve {
namespace {

// Little-endian wire helpers. The repo only targets little-endian hosts
// (the DIGGSNAP reader static_asserts as much), so these are memcpys that
// the compiler folds into plain loads/stores.

template <typename T>
void put(std::vector<char>& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = out.size();
  out.resize(n + sizeof(T));
  std::memcpy(out.data() + n, &v, sizeof(T));
}

class BodyReader {
 public:
  BodyReader(const char* data, std::size_t n) : data_(data), size_(n) {}

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (size_ - off_ < sizeof(T))
      throw ProtocolError("serve frame body truncated");
    T v;
    std::memcpy(&v, data_ + off_, sizeof(T));
    off_ += sizeof(T);
    return v;
  }

  void finish(const char* what) const {
    if (off_ != size_)
      throw ProtocolError(std::string("serve frame body oversized for ") +
                          what);
  }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t off_ = 0;
};

struct Encoder {
  std::vector<char>& out;
  std::size_t len_at;  // offset of the u32 length placeholder

  explicit Encoder(std::vector<char>& o, MsgType type) : out(o) {
    len_at = out.size();
    put<std::uint32_t>(out, 0);  // patched in the destructor
    put<std::uint8_t>(out, static_cast<std::uint8_t>(type));
  }
  ~Encoder() {
    const auto body = static_cast<std::uint32_t>(out.size() - len_at - 4);
    std::memcpy(out.data() + len_at, &body, sizeof(body));
  }
};

}  // namespace

void encode(const Message& msg, std::vector<char>& out) {
  std::visit(
      [&out](const auto& m) {
        using M = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<M, VoteMsg>) {
          Encoder e(out, MsgType::kVote);
          put(out, m.story_id);
          put(out, m.voter);
          put(out, m.time);
        } else if constexpr (std::is_same_v<M, SubmitMsg>) {
          Encoder e(out, MsgType::kSubmit);
          put(out, m.story_id);
          put(out, m.submitter);
          put(out, m.time);
        } else if constexpr (std::is_same_v<M, QueryStateMsg>) {
          Encoder e(out, MsgType::kQueryState);
          put(out, m.story_id);
        } else if constexpr (std::is_same_v<M, QueryPredictMsg>) {
          Encoder e(out, MsgType::kQueryPredict);
          put(out, m.story_id);
        } else if constexpr (std::is_same_v<M, SyncMsg>) {
          Encoder e(out, MsgType::kSync);
          put(out, m.token);
        } else if constexpr (std::is_same_v<M, StateReplyMsg>) {
          Encoder e(out, MsgType::kStateReply);
          put(out, m.story_id);
          put(out, m.found);
          put(out, m.votes);
          put(out, m.fans1);
          put(out, static_cast<std::uint32_t>(m.cascade.size()));
          for (const auto v : m.cascade) put(out, v);
          put(out, m.promoted);
          put(out, m.promoted_time);
        } else if constexpr (std::is_same_v<M, PredictReplyMsg>) {
          Encoder e(out, MsgType::kPredictReply);
          put(out, m.story_id);
          put(out, m.found);
          put(out, m.has_c45);
          put(out, m.c45_yes);
          put(out, m.has_bayes);
          put(out, m.bayes_yes);
          put(out, m.bayes_expected_final);
        } else if constexpr (std::is_same_v<M, SyncReplyMsg>) {
          Encoder e(out, MsgType::kSyncReply);
          put(out, m.token);
        } else if constexpr (std::is_same_v<M, ErrorMsg>) {
          Encoder e(out, MsgType::kError);
          put(out, static_cast<std::uint8_t>(m.code));
          put(out, m.detail);
        }
      },
      msg);
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  if (poisoned_) throw ProtocolError("serve decoder poisoned");
  // Compact the consumed prefix before growing; keeps the buffer bounded by
  // one partial frame plus whatever the last read appended.
  if (off_ > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

bool FrameDecoder::next(Message& out) {
  if (poisoned_) throw ProtocolError("serve decoder poisoned");
  if (buf_.size() - off_ < 4) return false;
  std::uint32_t body_len;
  std::memcpy(&body_len, buf_.data() + off_, sizeof(body_len));
  if (body_len == 0 || body_len > kMaxFrameBytes) {
    poisoned_ = true;
    throw ProtocolError("serve frame length out of range: " +
                        std::to_string(body_len));
  }
  if (buf_.size() - off_ < 4 + static_cast<std::size_t>(body_len))
    return false;
  const char* body = buf_.data() + off_ + 4;
  // Consume the frame up front: a throw below must not leave the decoder
  // pointing at the bad frame (it is poisoned anyway, but keep invariants).
  off_ += 4 + static_cast<std::size_t>(body_len);

  try {
    BodyReader r(body + 1, body_len - 1);
    switch (static_cast<MsgType>(static_cast<std::uint8_t>(body[0]))) {
      case MsgType::kVote: {
        VoteMsg m;
        m.story_id = r.pod<std::uint32_t>();
        m.voter = r.pod<std::uint32_t>();
        m.time = r.pod<double>();
        r.finish("vote");
        out = m;
        return true;
      }
      case MsgType::kSubmit: {
        SubmitMsg m;
        m.story_id = r.pod<std::uint32_t>();
        m.submitter = r.pod<std::uint32_t>();
        m.time = r.pod<double>();
        r.finish("submit");
        out = m;
        return true;
      }
      case MsgType::kQueryState: {
        QueryStateMsg m;
        m.story_id = r.pod<std::uint32_t>();
        r.finish("query_state");
        out = m;
        return true;
      }
      case MsgType::kQueryPredict: {
        QueryPredictMsg m;
        m.story_id = r.pod<std::uint32_t>();
        r.finish("query_predict");
        out = m;
        return true;
      }
      case MsgType::kSync: {
        SyncMsg m;
        m.token = r.pod<std::uint32_t>();
        r.finish("sync");
        out = m;
        return true;
      }
      case MsgType::kStateReply: {
        StateReplyMsg m;
        m.story_id = r.pod<std::uint32_t>();
        m.found = r.pod<std::uint8_t>();
        m.votes = r.pod<std::uint64_t>();
        m.fans1 = r.pod<std::uint32_t>();
        const auto count = r.pod<std::uint32_t>();
        if (count > kMaxFrameBytes / sizeof(std::uint32_t))
          throw ProtocolError("state reply cascade count out of range");
        m.cascade.resize(count);
        for (auto& v : m.cascade) v = r.pod<std::uint32_t>();
        m.promoted = r.pod<std::uint8_t>();
        m.promoted_time = r.pod<double>();
        r.finish("state_reply");
        out = m;
        return true;
      }
      case MsgType::kPredictReply: {
        PredictReplyMsg m;
        m.story_id = r.pod<std::uint32_t>();
        m.found = r.pod<std::uint8_t>();
        m.has_c45 = r.pod<std::uint8_t>();
        m.c45_yes = r.pod<std::uint8_t>();
        m.has_bayes = r.pod<std::uint8_t>();
        m.bayes_yes = r.pod<std::uint8_t>();
        m.bayes_expected_final = r.pod<double>();
        r.finish("predict_reply");
        out = m;
        return true;
      }
      case MsgType::kSyncReply: {
        SyncReplyMsg m;
        m.token = r.pod<std::uint32_t>();
        r.finish("sync_reply");
        out = m;
        return true;
      }
      case MsgType::kError: {
        ErrorMsg m;
        m.code = static_cast<ErrorCode>(r.pod<std::uint8_t>());
        m.detail = r.pod<std::uint32_t>();
        r.finish("error");
        out = m;
        return true;
      }
    }
    throw ProtocolError("unknown serve message type " +
                        std::to_string(static_cast<unsigned>(
                            static_cast<std::uint8_t>(body[0]))));
  } catch (...) {
    poisoned_ = true;
    throw;
  }
}

}  // namespace digg::serve
