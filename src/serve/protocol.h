#pragma once
// The serve wire protocol: length-prefixed binary frames on a loopback TCP
// stream. Chosen over a text protocol for the same reason the snapshot
// format is binary — the ingest path is the hot path, and a vote frame is
// 21 bytes (4-byte length + 1-byte type + two u32 ids + f64 minutes), so
// millions of votes per second cost tens of MB/s of loopback bandwidth,
// not hundreds.
//
// Frame layout (all integers little-endian, like DIGGSNAP):
//   u32  body length (1 .. kMaxFrameBytes)
//   u8   message type (MsgType)
//   ...  type-specific payload (fixed layout per type; kStateReply carries
//        one variable u32 column, length-prefixed)
//
// Client -> server:
//   kVote          u32 story_id  u32 voter      f64 time_minutes
//   kSubmit        u32 story_id  u32 submitter  f64 time_minutes
//   kQueryState    u32 story_id
//   kQueryPredict  u32 story_id
//   kSync          u32 token
// Server -> client:
//   kStateReply    u32 story_id  u8 found  u64 votes  u32 fans1
//                  u32 cascade_count  u32[cascade_count] cascade values
//                  u8 promoted  f64 promoted_time
//   kPredictReply  u32 story_id  u8 found  u8 has_c45  u8 c45_yes
//                  u8 has_bayes  u8 bayes_yes  f64 bayes_expected_final
//   kSyncReply     u32 token
//   kError         u8 code (ErrorCode)  u32 detail (e.g. the story id)
//
// Ordering/answer contract: the server answers queries and syncs only after
// every event it accepted BEFORE them (across all connections) has been
// applied — a sync is therefore a write barrier: send votes, sync, then
// query, and the reply reflects all of them.
//
// Malformed input (length 0 or beyond kMaxFrameBytes, unknown type, body
// size disagreeing with the type) throws ProtocolError from the decoder;
// the server answers kError{kBadFrame} and closes the connection. The
// fuzz-style table test in tests/serve_test.cpp drives exactly this decoder
// with truncated/oversized/garbage frames under ASan.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <variant>
#include <vector>

namespace digg::serve {

/// Largest legal frame body. Big enough for any reply (a state reply with
/// dozens of checkpoint columns), small enough that a hostile length field
/// cannot make the decoder buffer gigabytes.
inline constexpr std::uint32_t kMaxFrameBytes = 1024;

enum class MsgType : std::uint8_t {
  kVote = 1,
  kSubmit = 2,
  kQueryState = 3,
  kQueryPredict = 4,
  kSync = 5,
  kStateReply = 16,
  kPredictReply = 17,
  kSyncReply = 18,
  kError = 19,
};

enum class ErrorCode : std::uint8_t {
  kUnknownStory = 1,   // vote/query for a story id never submitted
  kDuplicateStory = 2, // submit for a story id already submitted
  kBadFrame = 3,       // malformed frame (connection is closed after this)
  kStopping = 4,       // event arrived while the server drains
};

struct VoteMsg {
  std::uint32_t story_id = 0;
  std::uint32_t voter = 0;
  double time = 0.0;
};
struct SubmitMsg {
  std::uint32_t story_id = 0;
  std::uint32_t submitter = 0;
  double time = 0.0;
};
struct QueryStateMsg {
  std::uint32_t story_id = 0;
};
struct QueryPredictMsg {
  std::uint32_t story_id = 0;
};
struct SyncMsg {
  std::uint32_t token = 0;
};
struct StateReplyMsg {
  std::uint32_t story_id = 0;
  std::uint8_t found = 0;
  std::uint64_t votes = 0;
  std::uint32_t fans1 = 0;
  std::vector<std::uint32_t> cascade;  // per cascade checkpoint, saturating
  std::uint8_t promoted = 0;
  double promoted_time = 0.0;
};
struct PredictReplyMsg {
  std::uint32_t story_id = 0;
  std::uint8_t found = 0;
  std::uint8_t has_c45 = 0;   // C4.5 hook fired (story passed v10, armed)
  std::uint8_t c45_yes = 0;
  std::uint8_t has_bayes = 0; // Bayes fit fired (story passed fit_at)
  std::uint8_t bayes_yes = 0;
  double bayes_expected_final = 0.0;
};
struct SyncReplyMsg {
  std::uint32_t token = 0;
};
struct ErrorMsg {
  ErrorCode code = ErrorCode::kBadFrame;
  std::uint32_t detail = 0;
};

using Message =
    std::variant<VoteMsg, SubmitMsg, QueryStateMsg, QueryPredictMsg, SyncMsg,
                 StateReplyMsg, PredictReplyMsg, SyncReplyMsg, ErrorMsg>;

struct ProtocolError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Appends one encoded frame for `msg` to `out`.
void encode(const Message& msg, std::vector<char>& out);

/// Incremental frame decoder over a byte stream. feed() bytes as they
/// arrive; next() yields complete messages until it returns false (more
/// bytes needed). Throws ProtocolError on malformed input; the decoder is
/// then poisoned (every further call throws) — close the connection.
class FrameDecoder {
 public:
  void feed(const char* data, std::size_t n);
  [[nodiscard]] bool next(Message& out);
  /// Bytes buffered but not yet decoded (tests + drain bookkeeping).
  [[nodiscard]] std::size_t pending_bytes() const { return buf_.size() - off_; }

 private:
  std::vector<char> buf_;
  std::size_t off_ = 0;  // consumed prefix of buf_
  bool poisoned_ = false;
};

}  // namespace digg::serve
