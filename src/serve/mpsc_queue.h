#pragma once
// Bounded lock-free multi-producer / single-consumer ring queue — the
// hand-off between the serve front-end (producer: one per accepting thread,
// today a single epoll thread, but the queue does not assume that) and the
// drain coordinator (the one consumer per ring). One ring per engine shard
// keeps the hand-off contention-free across shards and preserves per-story
// FIFO: a story maps to exactly one shard, so its events traverse one ring
// in arrival order.
//
// The design is the classic bounded-sequence ring (Vyukov): each cell
// carries a sequence counter that encodes, relative to the ring lap, whether
// the cell is free for the producer or full for the consumer. Producers
// claim cells with one CAS on the tail; the consumer advances the head with
// plain stores (single consumer — no CAS needed on the pop side). Both
// sides are wait-free in the common case and never block: a full ring fails
// try_push (the caller's backpressure policy decides what to do), an empty
// ring returns zero from pop_batch.
//
// Memory ordering: the producer's release store to the cell sequence
// publishes the value; the consumer's acquire load of the same sequence
// synchronizes-with it, so the value read happens-after the write (the
// property tests/serve_test.cpp verifies under TSan).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <type_traits>

namespace digg::serve {

template <typename T>
class MpscQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "ring cells are published by memcpy semantics");

 public:
  /// Capacity is rounded up to a power of two (index masking beats modulo
  /// on the per-event path). Throws std::invalid_argument on zero.
  explicit MpscQueue(std::size_t capacity) {
    if (capacity == 0) throw std::invalid_argument("MpscQueue capacity 0");
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Multi-producer push; false when the ring is full (never blocks).
  bool try_push(const T& v) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        // The cell is free for lap `pos`; claim it.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        return false;  // full: the consumer has not freed this lap's cell
      } else {
        pos = tail_.load(std::memory_order_relaxed);  // lost the race
      }
    }
    Cell& cell = cells_[pos & mask_];
    cell.value = v;
    cell.seq.store(pos + 1, std::memory_order_release);  // publish
    return true;
  }

  /// Single-consumer batch pop: moves up to `max` values into `out`,
  /// returns the count. Only ONE thread may ever call this.
  std::size_t pop_batch(T* out, std::size_t max) {
    std::size_t n = 0;
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    while (n < max) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      if (static_cast<std::int64_t>(seq) -
              static_cast<std::int64_t>(pos + 1) <
          0)
        break;  // empty: this cell's value has not been published yet
      out[n++] = cell.value;
      // Free the cell for the producers' next lap.
      cell.seq.store(pos + mask_ + 1, std::memory_order_release);
      ++pos;
    }
    if (n > 0) head_.store(pos, std::memory_order_relaxed);
    return n;
  }

  /// Racy size estimate for queue-depth gauges (never for control flow).
  [[nodiscard]] std::size_t size_approx() const {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  struct alignas(64) Cell {  // one cache line per cell: no false sharing
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  // Producers contend on tail_, the consumer owns head_ — separate lines.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::atomic<std::uint64_t> head_{0};
};

}  // namespace digg::serve
