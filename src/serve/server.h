#pragma once
// The live vote-ingest server: a long-lived service wrapping a live-mode
// StreamEngine (stream/engine.h) behind the loopback binary protocol
// (protocol.h). Three threads:
//
//   front-end (epoll)  — accepts connections on 127.0.0.1, decodes frames,
//     validates story ids (it owns the id->slot map, so lookups are
//     lock-free), stamps each accepted event with a global sequence number
//     and hands it off: submits onto one dedicated ring (its FIFO order IS
//     slot-assignment order), votes onto one lock-free MPSC ring per engine
//     shard (mpsc_queue.h), queries/syncs onto a small mutex-guarded deque.
//     Replies travel back through per-connection outboxes; an eventfd wakes
//     the front-end to flush them.
//
//   coordinator        — the single ring consumer and the ONLY engine
//     mutator. Each drain cycle pops submits (applied serially: slot order
//     is push order), pops every vote ring, and applies votes. Throughput
//     mode applies each shard's FIFO batch via parallel_for — sound because
//     live_vote is shard-exclusive and cross-story order within a shard
//     does not affect per-story state; only cross-shard interleaving is
//     relaxed. Determinism mode instead applies strictly in sequence-number
//     order (deferring past any gap), so a run's engine state — and its
//     checkpoints — are bit-identical to any other arrival-equivalent run.
//     Queries and syncs popped in cycle k are answered at the end of cycle
//     k+1: every event enqueued before the control item was enqueued is in
//     its ring before cycle k+1's pops begin, so the reply reflects all of
//     them (the protocol.h barrier contract).
//
//   checkpoint writer  — when checkpoint_ms is set, the coordinator
//     serializes engine state between applies (checkpoint_sections(), pure
//     in-memory) and hands the sections here; the writer does the disk I/O
//     (tmp + rename, so the file on disk is always a complete checkpoint)
//     off the hot path. Latest-wins: a slow disk drops intermediate
//     checkpoints instead of stalling ingest.
//
// Graceful drain (request_stop, SIGTERM-safe): the front-end performs one
// final read pass so every byte a client sent before the stop is decoded
// and enqueued, the coordinator drains all queues and answers every pending
// control item, writes a final synchronous checkpoint, and only then do the
// connections close — proven by the kill/resume e2e test, which restores
// the drain checkpoint and matches an uninterrupted run bit for bit.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "src/data/snapshot_format.h"
#include "src/graph/digraph.h"
#include "src/serve/mpsc_queue.h"
#include "src/stream/engine.h"

namespace digg::serve {

struct ServeParams {
  /// Engine configuration (checkpoints, predictor hooks, vis budget).
  stream::StreamParams stream;
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (start() returns it).
  std::uint16_t port = 0;
  /// Determinism mode: apply events in strict global sequence order, so
  /// engine state and checkpoints are reproducible bit for bit. Throughput
  /// mode (default) relaxes ONLY cross-shard interleaving — per-story
  /// outcomes are identical either way; the bits of a mid-stream checkpoint
  /// may differ in event-global counters' interleaving history.
  bool determinism = false;
  /// Background checkpoint cadence in milliseconds; 0 disables periodic
  /// checkpoints (the drain checkpoint still happens when a path is set).
  std::uint32_t checkpoint_ms = 0;
  /// Checkpoint target; required when checkpoint_ms > 0. Written atomically
  /// (tmp + rename). Also the final drain checkpoint's destination.
  std::filesystem::path checkpoint_path;
  /// Per-ring capacity (rounded up to a power of two). A full ring makes
  /// the front-end yield-retry (counted in serve.backpressure).
  std::size_t ring_capacity = 1 << 13;
};

/// See the file comment for the thread architecture. Lifecycle:
/// construct -> [restore_checkpoint] -> start -> ... -> request_stop ->
/// wait. engine() is safe before start() and after wait() — never while
/// the server is running.
class Server {
 public:
  /// The network must outlive the server. Throws std::invalid_argument on
  /// inconsistent params (checkpoint cadence without a path).
  Server(const graph::Digraph& network, ServeParams params);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Restores a drain/periodic checkpoint into the (fresh) engine before
  /// serving. Pre-start only; throws std::logic_error once running.
  void restore_checkpoint(const std::filesystem::path& path);

  /// Binds, spawns the threads, returns the bound port. Throws
  /// std::runtime_error on socket failures, std::logic_error if restarted.
  std::uint16_t start();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Initiates graceful drain. Async-signal-safe (an atomic store plus an
  /// eventfd write) — callable straight from a SIGTERM handler.
  void request_stop() noexcept;

  /// Joins the threads (drain must have been requested; wait() does not
  /// itself stop the server). Idempotent.
  void wait();

  /// The underlying live engine — inspect results after wait() (or seed
  /// state before start()). Not synchronized with a running server.
  [[nodiscard]] stream::StreamEngine& engine() noexcept { return engine_; }

  [[nodiscard]] const ServeParams& params() const noexcept { return params_; }

 private:
  // Ring payloads (trivially copyable by MpscQueue contract). stamp_ns is
  // nonzero on sampled events only (every 256th) and feeds serve.ingest_us.
  struct VoteEntry {
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t voter;
    double time;
    std::uint64_t stamp_ns;
  };
  struct SubmitEntry {
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t id;
    std::uint32_t submitter;
    double time;
    std::uint64_t stamp_ns;
  };

  /// Per-connection reply buffer: the coordinator appends encoded replies
  /// under the mutex and rings the eventfd; the front-end swaps the bytes
  /// out and writes them to the socket. shared_ptr because a control item
  /// can outlive its connection (the flush just goes nowhere then).
  struct Outbox {
    std::mutex m;
    std::vector<char> buf;
  };

  struct ControlItem {
    enum class Kind : std::uint8_t { kQueryState, kQueryPredict, kSync };
    Kind kind = Kind::kSync;
    std::uint32_t slot = 0;   // queries: resolved by the front-end
    std::uint32_t token = 0;  // syncs
    std::shared_ptr<Outbox> out;
  };

  void frontend_main();
  void coordinator_main();
  void writer_main();

  void answer(const ControlItem& item);
  void write_checkpoint_file(std::vector<data::snapfmt::Section> sections);

  const graph::Digraph* network_;
  ServeParams params_;
  stream::StreamEngine engine_;

  std::unique_ptr<MpscQueue<SubmitEntry>> submit_q_;
  std::vector<std::unique_ptr<MpscQueue<VoteEntry>>> vote_q_;  // per shard
  std::mutex control_mu_;
  std::deque<ControlItem> control_q_;

  // Drain handshake: stop_ -> front-end final read pass -> ingest_done_ ->
  // coordinator drains and answers -> coordinator_done_ -> front-end final
  // flush, connections close.
  std::atomic<bool> stop_{false};
  std::atomic<bool> ingest_done_{false};
  std::atomic<bool> coordinator_done_{false};
  std::atomic<bool> running_{false};
  bool started_ = false;

  int listen_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: coordinator replies + stop requests
  std::uint16_t port_ = 0;

  // Checkpoint hand-off (latest wins).
  std::mutex ckpt_mu_;
  std::condition_variable ckpt_cv_;
  std::optional<std::vector<data::snapfmt::Section>> ckpt_pending_;
  bool ckpt_exit_ = false;

  std::thread frontend_;
  std::thread coordinator_;
  std::thread writer_;
};

}  // namespace digg::serve
