#include "src/serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/runtime/parallel.h"
#include "src/serve/protocol.h"

namespace digg::serve {
namespace {

constexpr std::uint32_t kShards = stream::StreamEngine::kShardCount;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Story id -> slot, owned (and only touched) by the front-end thread.
/// Dense direct-map for small ids — the common case, ids are often near-
/// consecutive — with an unordered_map overflow for sparse ones.
class IdMap {
 public:
  static constexpr std::uint32_t kDenseLimit = 1u << 22;

  /// Returns the slot + 1, or 0 when absent (slots fit comfortably).
  std::uint32_t lookup(std::uint32_t id) const {
    if (id < dense_.size()) return dense_[id];
    const auto it = overflow_.find(id);
    return it == overflow_.end() ? 0 : it->second;
  }

  void insert(std::uint32_t id, std::uint32_t slot) {
    if (id < kDenseLimit) {
      if (id >= dense_.size()) dense_.resize(std::max<std::size_t>(id + 1, 1024), 0);
      dense_[id] = slot + 1;
    } else {
      overflow_[id] = slot + 1;
    }
  }

 private:
  std::vector<std::uint32_t> dense_;
  std::unordered_map<std::uint32_t, std::uint32_t> overflow_;
};

}  // namespace

Server::Server(const graph::Digraph& network, ServeParams params)
    : network_(&network),
      params_(std::move(params)),
      engine_(network, params_.stream) {
  if (params_.checkpoint_ms > 0 && params_.checkpoint_path.empty())
    throw std::invalid_argument(
        "serve: checkpoint_ms set without a checkpoint_path");
  submit_q_ = std::make_unique<MpscQueue<SubmitEntry>>(params_.ring_capacity);
  vote_q_.reserve(kShards);
  for (std::uint32_t s = 0; s < kShards; ++s)
    vote_q_.push_back(
        std::make_unique<MpscQueue<VoteEntry>>(params_.ring_capacity));
}

Server::~Server() {
  if (running()) {
    request_stop();
    wait();
  }
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::restore_checkpoint(const std::filesystem::path& path) {
  if (started_)
    throw std::logic_error("serve: restore_checkpoint after start");
  engine_.restore_checkpoint(path);
}

std::uint16_t Server::start() {
  if (started_) throw std::logic_error("serve: server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(params_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
    throw std::runtime_error("serve: bind 127.0.0.1:" +
                             std::to_string(params_.port) + " failed: " +
                             std::strerror(errno));
  if (::listen(listen_fd_, 128) < 0)
    throw std::runtime_error("serve: listen() failed");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    throw std::runtime_error("serve: getsockname() failed");
  port_ = ntohs(addr.sin_port);

  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) throw std::runtime_error("serve: eventfd() failed");

  started_ = true;
  running_.store(true, std::memory_order_release);
  frontend_ = std::thread([this] { frontend_main(); });
  coordinator_ = std::thread([this] { coordinator_main(); });
  writer_ = std::thread([this] { writer_main(); });

  obs::log_info("serve", "listening",
                {{"port", static_cast<unsigned>(port_)},
                 {"determinism", params_.determinism},
                 {"checkpoint_ms", params_.checkpoint_ms}});
  return port_;
}

void Server::request_stop() noexcept {
  stop_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto r = ::write(wake_fd_, &one, sizeof(one));
  }
}

void Server::wait() {
  if (frontend_.joinable()) frontend_.join();
  if (coordinator_.joinable()) coordinator_.join();
  if (writer_.joinable()) writer_.join();
  running_.store(false, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Front-end: epoll loop, frame decode, validation, ring hand-off.

void Server::frontend_main() {
  auto& registry = obs::Registry::global();
  auto& conn_gauge = registry.gauge("serve.connections");
  auto& votes_in = registry.counter("serve.votes");
  auto& submits_in = registry.counter("serve.submits");
  auto& backpressure = registry.counter("serve.backpressure");
  auto& bad_frames = registry.counter("serve.bad_frames");

  struct Conn {
    int fd = -1;
    FrameDecoder decoder;
    std::shared_ptr<Outbox> outbox = std::make_shared<Outbox>();
    std::vector<char> wbuf;  // unsent reply bytes (partial writes)
    std::size_t woff = 0;
    bool want_write = false;
  };
  std::unordered_map<int, Conn> conns;

  const int ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) {
    obs::log_error("serve", "epoll_create1 failed");
    return;
  }
  auto ep_add = [&](int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    ::epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev);
  };
  auto ep_mod = [&](int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    ::epoll_ctl(ep, EPOLL_CTL_MOD, fd, &ev);
  };
  ep_add(listen_fd_, EPOLLIN);
  ep_add(wake_fd_, EPOLLIN);

  // Rebuild the id map from restored engine state: a restored live engine
  // already holds stories whose ids must keep resolving (and whose slots
  // the next submit must not collide with).
  IdMap ids;
  std::uint32_t next_slot = engine_.story_count();
  for (std::uint32_t slot = 0; slot < next_slot; ++slot)
    ids.insert(engine_.query_story(slot).id, slot);

  std::uint64_t next_seq = 0;
  std::uint64_t votes_seen = 0;

  auto close_conn = [&](int fd) {
    ::epoll_ctl(ep, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns.erase(fd);
    conn_gauge.set(static_cast<double>(conns.size()));
  };

  // Writes as much of conn's pending reply bytes as the socket accepts;
  // arms EPOLLOUT for the remainder. Returns false when the socket died.
  auto flush_conn = [&](Conn& c) -> bool {
    {
      std::lock_guard lock(c.outbox->m);
      if (!c.outbox->buf.empty()) {
        c.wbuf.insert(c.wbuf.end(), c.outbox->buf.begin(), c.outbox->buf.end());
        c.outbox->buf.clear();
      }
    }
    while (c.woff < c.wbuf.size()) {
      const auto w =
          ::write(c.fd, c.wbuf.data() + c.woff, c.wbuf.size() - c.woff);
      if (w > 0) {
        c.woff += static_cast<std::size_t>(w);
        continue;
      }
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!c.want_write) {
          c.want_write = true;
          ep_mod(c.fd, EPOLLIN | EPOLLOUT);
        }
        return true;
      }
      return false;  // peer gone
    }
    c.wbuf.clear();
    c.woff = 0;
    if (c.want_write) {
      c.want_write = false;
      ep_mod(c.fd, EPOLLIN);
    }
    return true;
  };

  auto send_error = [&](Conn& c, ErrorCode code, std::uint32_t detail) {
    encode(ErrorMsg{code, detail}, c.wbuf);
    return flush_conn(c);
  };

  // Hands one decoded message to its queue. Returns false when the
  // connection must close (protocol misuse).
  auto handle = [&](Conn& c, const Message& msg) -> bool {
    if (const auto* v = std::get_if<VoteMsg>(&msg)) {
      const auto mapped = ids.lookup(v->story_id);
      if (mapped == 0) return send_error(c, ErrorCode::kUnknownStory, v->story_id);
      VoteEntry e{};
      e.seq = next_seq++;
      e.slot = mapped - 1;
      e.voter = v->voter;
      e.time = v->time;
      e.stamp_ns = ((votes_seen++ & 0xff) == 0) ? now_ns() : 0;
      auto& ring = *vote_q_[e.slot % kShards];
      while (!ring.try_push(e)) {
        backpressure.inc();
        std::this_thread::yield();
      }
      votes_in.inc();
      return true;
    }
    if (const auto* s = std::get_if<SubmitMsg>(&msg)) {
      if (ids.lookup(s->story_id) != 0)
        return send_error(c, ErrorCode::kDuplicateStory, s->story_id);
      SubmitEntry e{};
      e.seq = next_seq++;
      e.slot = next_slot++;
      e.id = s->story_id;
      e.submitter = s->submitter;
      e.time = s->time;
      e.stamp_ns = 0;
      ids.insert(s->story_id, e.slot);
      while (!submit_q_->try_push(e)) {
        backpressure.inc();
        std::this_thread::yield();
      }
      submits_in.inc();
      return true;
    }
    ControlItem item;
    if (const auto* q = std::get_if<QueryStateMsg>(&msg)) {
      const auto mapped = ids.lookup(q->story_id);
      if (mapped == 0) return send_error(c, ErrorCode::kUnknownStory, q->story_id);
      item.kind = ControlItem::Kind::kQueryState;
      item.slot = mapped - 1;
    } else if (const auto* q2 = std::get_if<QueryPredictMsg>(&msg)) {
      const auto mapped = ids.lookup(q2->story_id);
      if (mapped == 0)
        return send_error(c, ErrorCode::kUnknownStory, q2->story_id);
      item.kind = ControlItem::Kind::kQueryPredict;
      item.slot = mapped - 1;
    } else if (const auto* y = std::get_if<SyncMsg>(&msg)) {
      item.kind = ControlItem::Kind::kSync;
      item.token = y->token;
    } else {
      // A client sent a server->client message type: protocol misuse.
      bad_frames.inc();
      send_error(c, ErrorCode::kBadFrame, 0);
      return false;
    }
    item.out = c.outbox;
    {
      std::lock_guard lock(control_mu_);
      control_q_.push_back(std::move(item));
    }
    return true;
  };

  std::vector<char> rbuf(256 << 10);

  // Reads everything currently available on the connection and dispatches
  // the complete frames. Returns false when the connection closed (EOF,
  // error, or protocol violation).
  auto read_conn = [&](Conn& c) -> bool {
    for (;;) {
      const auto n = ::read(c.fd, rbuf.data(), rbuf.size());
      if (n > 0) {
        try {
          c.decoder.feed(rbuf.data(), static_cast<std::size_t>(n));
          Message msg;
          while (c.decoder.next(msg))
            if (!handle(c, msg)) return false;
        } catch (const ProtocolError&) {
          bad_frames.inc();
          send_error(c, ErrorCode::kBadFrame, 0);
          return false;
        }
        if (static_cast<std::size_t>(n) < rbuf.size()) return true;
        continue;  // buffer filled exactly: more may be waiting
      }
      if (n == 0) return false;  // EOF
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
  };

  auto accept_all = [&] {
    for (;;) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;
      if (stop_.load(std::memory_order_acquire)) {
        // Draining: refuse the session but tell the client why.
        std::vector<char> frame;
        encode(ErrorMsg{ErrorCode::kStopping, 0}, frame);
        [[maybe_unused]] const auto w = ::write(fd, frame.data(), frame.size());
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      Conn c;
      c.fd = fd;
      conns.emplace(fd, std::move(c));
      ep_add(fd, EPOLLIN);
      conn_gauge.set(static_cast<double>(conns.size()));
    }
  };

  auto drain_wake = [&] {
    std::uint64_t tmp;
    while (::read(wake_fd_, &tmp, sizeof(tmp)) > 0) {
    }
  };

  auto flush_all = [&] {
    std::vector<int> dead;
    for (auto& [fd, c] : conns)
      if (!flush_conn(c)) dead.push_back(fd);
    for (const int fd : dead) close_conn(fd);
  };

  std::array<epoll_event, 64> evs;
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(ep, evs.data(), static_cast<int>(evs.size()),
                               100);
    std::vector<int> dead;
    for (int i = 0; i < n; ++i) {
      const int fd = evs[i].data.fd;
      if (fd == listen_fd_) {
        accept_all();
        continue;
      }
      if (fd == wake_fd_) {
        drain_wake();
        continue;
      }
      const auto it = conns.find(fd);
      if (it == conns.end()) continue;
      bool alive = true;
      if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
        // Half-closed peers may still have bytes queued: read them first.
        alive = read_conn(it->second) && false;
      } else {
        if (evs[i].events & EPOLLIN) alive = read_conn(it->second);
        if (alive && (evs[i].events & EPOLLOUT)) alive = flush_conn(it->second);
      }
      if (!alive) dead.push_back(fd);
    }
    for (const int fd : dead) close_conn(fd);
    flush_all();
  }

  // Drain phase 1: one final read pass so every byte clients managed to
  // send before the stop is decoded and enqueued.
  {
    std::vector<int> dead;
    for (auto& [fd, c] : conns)
      if (!read_conn(c)) dead.push_back(fd);
    for (const int fd : dead) close_conn(fd);
  }
  ingest_done_.store(true, std::memory_order_release);

  // Drain phase 2: keep flushing replies until the coordinator has applied
  // everything and answered every pending query/sync.
  while (!coordinator_done_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(ep, evs.data(), static_cast<int>(evs.size()),
                               20);
    for (int i = 0; i < n; ++i)
      if (evs[i].data.fd == wake_fd_) drain_wake();
    flush_all();
  }
  flush_all();

  for (auto& [fd, c] : conns) ::close(fd);
  conns.clear();
  conn_gauge.set(0.0);
  ::close(ep);
  ::close(listen_fd_);
  listen_fd_ = -1;
  obs::log_info("serve", "front-end drained");
}

// ---------------------------------------------------------------------------
// Coordinator: the single consumer / engine mutator.

void Server::coordinator_main() {
  auto& registry = obs::Registry::global();
  auto& ingest_us = registry.histogram("serve.ingest_us");
  auto& depth_gauge = registry.gauge("serve.queue_depth");

  constexpr std::size_t kBatch = 512;
  std::vector<SubmitEntry> submits;
  std::array<std::vector<VoteEntry>, kShards> shard_pending;

  // Determinism mode: the strict global order is reconstructed from the
  // front-end's sequence numbers; any gap (an event claimed but popped from
  // another ring in a later cycle) defers the tail to the next cycle.
  struct SeqEvent {
    std::uint64_t seq = 0;
    bool is_submit = false;
    SubmitEntry submit{};
    VoteEntry vote{};
  };
  std::vector<SeqEvent> seq_pending;
  std::uint64_t next_seq = 0;

  std::vector<ControlItem> carried;  // popped last cycle, answered this one
  std::vector<ControlItem> fresh;

  auto last_ckpt = std::chrono::steady_clock::now();

  auto wake_frontend = [this] {
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto r = ::write(wake_fd_, &one, sizeof(one));
  };

  for (;;) {
    // --- Pop everything currently queued. -------------------------------
    submits.clear();
    {
      SubmitEntry buf[kBatch];
      for (;;) {
        const auto n = submit_q_->pop_batch(buf, kBatch);
        submits.insert(submits.end(), buf, buf + n);
        if (n < kBatch) break;
      }
    }
    std::size_t popped_votes = 0;
    {
      VoteEntry buf[kBatch];
      for (std::uint32_t s = 0; s < kShards; ++s) {
        for (;;) {
          const auto n = vote_q_[s]->pop_batch(buf, kBatch);
          shard_pending[s].insert(shard_pending[s].end(), buf, buf + n);
          popped_votes += n;
          if (n < kBatch) break;
        }
      }
    }
    fresh.clear();
    {
      std::lock_guard lock(control_mu_);
      fresh.insert(fresh.end(), control_q_.begin(), control_q_.end());
      control_q_.clear();
    }

    // --- Apply. ----------------------------------------------------------
    std::uint64_t applied = 0;
    if (params_.determinism) {
      for (const auto& e : submits)
        seq_pending.push_back({e.seq, true, e, {}});
      for (auto& pending : shard_pending) {
        for (const auto& v : pending)
          seq_pending.push_back({v.seq, false, {}, v});
        pending.clear();
      }
      std::sort(seq_pending.begin(), seq_pending.end(),
                [](const SeqEvent& a, const SeqEvent& b) {
                  return a.seq < b.seq;
                });
      std::size_t i = 0;
      while (i < seq_pending.size() && seq_pending[i].seq == next_seq) {
        const auto& e = seq_pending[i];
        if (e.is_submit) {
          engine_.live_submit(e.submit.id, e.submit.submitter, e.submit.time);
        } else {
          engine_.live_vote(e.vote.slot, e.vote.voter, e.vote.time);
          if (e.vote.stamp_ns != 0)
            ingest_us.observe(
                static_cast<double>(now_ns() - e.vote.stamp_ns) / 1e3);
        }
        ++next_seq;
        ++i;
        ++applied;
      }
      seq_pending.erase(seq_pending.begin(),
                        seq_pending.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      // Submits first, serially, in ring order — which is slot-assignment
      // order, so the engine's slots match the front-end's.
      for (const auto& e : submits) {
        engine_.live_submit(e.id, e.submitter, e.time);
        ++applied;
      }
      // Votes per shard in FIFO order, shards in parallel (live_vote's
      // shard-exclusivity contract). A vote whose submit has not been
      // applied yet (slot beyond the current story table) stays pending —
      // its submit is at most one cycle behind.
      std::array<std::uint64_t, kShards> done{};
      const std::uint32_t known = engine_.story_count();
      runtime::parallel_for(
          kShards,
          [&](std::size_t s) {
            auto& pending = shard_pending[s];
            if (pending.empty()) return;
            std::size_t kept = 0;
            for (const auto& e : pending) {
              if (e.slot >= known) {
                pending[kept++] = e;
                continue;
              }
              engine_.live_vote(e.slot, e.voter, e.time);
              if (e.stamp_ns != 0)
                ingest_us.observe(
                    static_cast<double>(now_ns() - e.stamp_ns) / 1e3);
              ++done[s];
            }
            pending.resize(kept);
          },
          {.grain = 1});
      for (const auto d : done) applied += d;
    }
    if (applied > 0) engine_.note_events_applied(applied);

    // --- Answer controls popped LAST cycle (see protocol.h barrier). -----
    for (const auto& item : carried) answer(item);
    const bool answered = !carried.empty();
    carried = std::move(fresh);
    fresh.clear();
    if (answered) wake_frontend();

    {
      std::size_t depth = submit_q_->size_approx();
      for (const auto& q : vote_q_) depth += q->size_approx();
      depth_gauge.set(static_cast<double>(depth));
    }

    // --- Periodic checkpoint hand-off. -----------------------------------
    if (params_.checkpoint_ms > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_ckpt >= std::chrono::milliseconds(params_.checkpoint_ms)) {
        last_ckpt = now;
        auto sections = engine_.checkpoint_sections();
        {
          std::lock_guard lock(ckpt_mu_);
          ckpt_pending_ = std::move(sections);  // latest wins
        }
        ckpt_cv_.notify_one();
      }
    }

    const bool idle =
        submits.empty() && popped_votes == 0 && !answered && carried.empty();

    if (ingest_done_.load(std::memory_order_acquire)) {
      const bool votes_drained =
          std::all_of(shard_pending.begin(), shard_pending.end(),
                      [](const auto& v) { return v.empty(); });
      if (idle && votes_drained && seq_pending.empty()) break;
      continue;  // drain as fast as possible
    }
    if (idle)
      std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  // Final synchronous checkpoint: the durable artifact of a graceful drain.
  if (!params_.checkpoint_path.empty()) {
    try {
      write_checkpoint_file(engine_.checkpoint_sections());
    } catch (const std::exception& e) {
      obs::log_error("serve", "final checkpoint failed", {{"error", e.what()}});
    }
  }
  {
    std::lock_guard lock(ckpt_mu_);
    ckpt_exit_ = true;
  }
  ckpt_cv_.notify_all();
  coordinator_done_.store(true, std::memory_order_release);
  wake_frontend();
  obs::log_info("serve", "coordinator drained",
                {{"events", engine_.events_applied()},
                 {"stories", engine_.story_count()}});
}

void Server::answer(const ControlItem& item) {
  auto& registry = obs::Registry::global();
  auto& query_us = registry.histogram("serve.query_us");

  std::vector<char> frame;
  switch (item.kind) {
    case ControlItem::Kind::kSync:
      encode(SyncReplyMsg{item.token}, frame);
      break;
    case ControlItem::Kind::kQueryState: {
      const auto t0 = now_ns();
      StateReplyMsg reply;
      if (item.slot < engine_.story_count()) {
        auto outcome = engine_.query_story(item.slot);
        reply.story_id = outcome.id;
        reply.found = 1;
        reply.votes = outcome.final_votes;
        reply.fans1 = static_cast<std::uint32_t>(outcome.fans1);
        reply.cascade.reserve(outcome.cascade.size());
        for (const auto c : outcome.cascade)
          reply.cascade.push_back(static_cast<std::uint32_t>(c));
        reply.promoted = outcome.promoted_time.has_value() ? 1 : 0;
        reply.promoted_time = outcome.promoted_time.value_or(0.0);
      }
      query_us.observe(static_cast<double>(now_ns() - t0) / 1e3);
      encode(reply, frame);
      break;
    }
    case ControlItem::Kind::kQueryPredict: {
      const auto t0 = now_ns();
      PredictReplyMsg reply;
      if (item.slot < engine_.story_count()) {
        auto outcome = engine_.query_story(item.slot);
        reply.story_id = outcome.id;
        reply.found = 1;
        reply.has_c45 = outcome.predicted_interesting.has_value() ? 1 : 0;
        reply.c45_yes = outcome.predicted_interesting.value_or(false) ? 1 : 0;
        reply.has_bayes = outcome.bayes_interesting.has_value() ? 1 : 0;
        reply.bayes_yes = outcome.bayes_interesting.value_or(false) ? 1 : 0;
        reply.bayes_expected_final = outcome.bayes_expected_final;
      }
      query_us.observe(static_cast<double>(now_ns() - t0) / 1e3);
      encode(reply, frame);
      break;
    }
  }
  std::lock_guard lock(item.out->m);
  item.out->buf.insert(item.out->buf.end(), frame.begin(), frame.end());
}

// ---------------------------------------------------------------------------
// Checkpoint writer.

void Server::write_checkpoint_file(
    std::vector<data::snapfmt::Section> sections) {
  auto tmp = params_.checkpoint_path;
  tmp += ".tmp";
  data::snapfmt::write_section_file(tmp, sections);
  std::filesystem::rename(tmp, params_.checkpoint_path);
  obs::Registry::global().counter("serve.checkpoints").inc();
}

void Server::writer_main() {
  std::unique_lock lock(ckpt_mu_);
  for (;;) {
    ckpt_cv_.wait(lock,
                  [this] { return ckpt_pending_.has_value() || ckpt_exit_; });
    if (ckpt_pending_.has_value()) {
      auto sections = std::move(*ckpt_pending_);
      ckpt_pending_.reset();
      lock.unlock();
      try {
        write_checkpoint_file(std::move(sections));
      } catch (const std::exception& e) {
        obs::log_error("serve", "background checkpoint failed",
                       {{"error", e.what()}});
      }
      lock.lock();
      continue;  // a newer checkpoint may have landed while writing
    }
    if (ckpt_exit_) return;
  }
}

}  // namespace digg::serve
