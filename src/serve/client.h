#pragma once
// Minimal blocking client helpers for the serve protocol — shared by the
// load driver (examples/serve_load.cpp), the ingest bench
// (bench/perf_serve.cpp), and the e2e tests. Deliberately synchronous:
// clients pre-encode frames and push them in large writes; the server side
// owns all the non-blocking machinery.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/serve/protocol.h"

namespace digg::serve {

/// Connects to 127.0.0.1:port with TCP_NODELAY; returns -1 on failure.
inline int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Blocking full write; false when the peer dies first.
inline bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const auto w = ::write(fd, data + off, n - off);
    if (w <= 0) return false;
    off += static_cast<std::size_t>(w);
  }
  return true;
}

/// Blocking-reads frames until `want` messages have arrived. Any kError
/// frame or protocol violation fails the call with `error` set. Appends to
/// `out` (so barrier-then-query phases can share one decoder).
inline bool read_messages(int fd, FrameDecoder& decoder,
                          std::vector<Message>& out, std::size_t want,
                          std::string& error) {
  char buf[64 << 10];
  while (out.size() < want) {
    bool progressed = false;
    try {
      Message msg;
      while (out.size() < want && decoder.next(msg)) {
        if (const auto* e = std::get_if<ErrorMsg>(&msg)) {
          error = "server error code=" +
                  std::to_string(static_cast<unsigned>(e->code)) +
                  " detail=" + std::to_string(e->detail);
          return false;
        }
        out.push_back(msg);
        progressed = true;
      }
    } catch (const ProtocolError& e) {
      error = e.what();
      return false;
    }
    if (out.size() >= want || progressed) continue;
    const auto n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      error = "connection closed mid-reply";
      return false;
    }
    decoder.feed(buf, static_cast<std::size_t>(n));
  }
  return true;
}

/// Sends a sync barrier and blocks for its reply. Events written before
/// this call are guaranteed applied once it returns (protocol.h contract).
inline bool sync_barrier(int fd, FrameDecoder& decoder, std::uint32_t token,
                         std::string& error) {
  std::vector<char> frame;
  encode(SyncMsg{token}, frame);
  if (!write_all(fd, frame.data(), frame.size())) {
    error = "sync write failed";
    return false;
  }
  std::vector<Message> replies;
  if (!read_messages(fd, decoder, replies, 1, error)) return false;
  const auto* r = std::get_if<SyncReplyMsg>(&replies[0]);
  if (r == nullptr || r->token != token) {
    error = "bad sync reply";
    return false;
  }
  return true;
}

}  // namespace digg::serve
