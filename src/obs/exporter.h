#pragma once
// Live telemetry exporter: a background thread serving the metrics registry
// over a minimal HTTP endpoint in Prometheus text exposition format
// (version 0.0.4), plus periodic delta-computed rate gauges. Opt-in — no
// thread, no socket, no cost unless started.
//
//   DIGG_METRICS_PORT=<port>   start at first instrument creation, bound to
//                              127.0.0.1:<port> (0 = kernel-assigned)
//
// Every scrape renders a fresh Registry::global() snapshot: counters as
// `digg_<name>_total`, gauges as `digg_<name>`, histograms as the standard
// `_bucket{le="..."}` / `_sum` / `_count` triple with *cumulative* bucket
// counts (the registry stores per-bucket counts; the renderer accumulates).
// Dotted registry names sanitize to underscores.
//
// Rate gauges: once per tick (default 1s) the exporter diffs every counter
// against its previous value and publishes `<counter>.rate` gauges into the
// registry (votes/s, evictions/s...). Rates describe the last whole tick —
// an idle window reads 0. Registry gauges are never read back into
// computation, so the zero-perturbation contract holds with the exporter
// running.
//
// The server is deliberately minimal: serial accept loop, one response per
// connection, any request path answered with the full exposition document.
// It exists for scraping and smoke tests, not as a general HTTP stack.

#include <cstdint>
#include <string>
#include <string_view>

#include "src/obs/metrics.h"

namespace digg::obs {

/// Starts the exporter on 127.0.0.1:`port` (0 = ephemeral). Returns the
/// bound port, or 0 on failure (logged at error). Idempotent while running:
/// returns the already-bound port. `tick_ms` is the rate-gauge cadence.
std::uint16_t start_exporter(std::uint16_t port, unsigned tick_ms = 1000);

/// Stops and joins the exporter thread. Safe when not running.
void stop_exporter();

[[nodiscard]] bool exporter_running() noexcept;
/// Bound port while running, else 0.
[[nodiscard]] std::uint16_t exporter_port() noexcept;

/// Starts from DIGG_METRICS_PORT when set; called at first instrument
/// creation (metrics.cpp) so env opt-in needs no code change.
void maybe_start_exporter_from_env();

/// `name` mangled to a valid Prometheus metric name: every character
/// outside [a-zA-Z0-9_:] becomes '_', with a leading '_' prepended if the
/// first character is a digit. No "digg_" prefix — the renderer adds it.
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// Label-value escaping per the exposition format: backslash, double quote
/// and newline escape to \\, \" and \n.
[[nodiscard]] std::string prometheus_label_escape(std::string_view value);

/// Renders the full exposition document for a snapshot (the unit under
/// test; the HTTP thread serves exactly this string).
[[nodiscard]] std::string render_prometheus(const MetricsSnapshot& snap);

}  // namespace digg::obs
