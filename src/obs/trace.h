#pragma once
// RAII trace spans exported as Chrome tracing JSON (chrome://tracing /
// Perfetto "traceEvents" format). Tracing is off by default: a disabled Span
// costs one relaxed atomic load and records nothing. Enable with
// DIGG_TRACE=<path> (the trace is written at process exit) or
// programmatically with trace_start()/trace_stop().
//
// Spans nest naturally: each records a complete ("ph":"X") event with its
// start timestamp, duration, and the recording thread's stable small-integer
// tid, so the viewer reconstructs the per-thread nesting from timestamps.
//
// Zero-perturbation contract: span timing is recorded, never read back —
// numeric results are bit-identical with tracing on or off, and the
// runtime's determinism tests pass with DIGG_TRACE set.
//
// Span names/categories must be pointers with static storage duration
// (string literals): events keep the pointer, not a copy.

#include <cstdint>
#include <string>

namespace digg::obs {

/// True when spans are being recorded. First call resolves DIGG_TRACE.
[[nodiscard]] bool trace_enabled() noexcept;

/// Starts recording to `path` (overrides any DIGG_TRACE target). Events
/// recorded before this call are discarded.
void trace_start(const std::string& path);

/// Stops recording and writes the JSON file. Safe to call when tracing is
/// off (no-op). Also runs at process exit when tracing is active.
void trace_stop();

/// Number of events currently buffered (test hook).
[[nodiscard]] std::size_t trace_event_count();

class Span {
 public:
  /// `name` and `cat` must outlive the trace (use string literals).
  explicit Span(const char* name, const char* cat = "digg") noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* cat_;
  double start_us_ = 0.0;
  bool active_;
};

}  // namespace digg::obs
