#include "src/obs/recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/obs/metrics.h"

namespace digg::obs {

namespace {

// ---------------------------------------------------------------- storage

struct Slot {
  std::atomic<std::uint64_t> seq{0};  // 2k+2 once ordinal k is stable
  std::atomic<std::uint64_t> t_us{0};
  std::atomic<std::uint64_t> a{0};
  std::atomic<std::uint64_t> b{0};
  std::atomic<std::uint32_t> kind{0};
  std::atomic<std::uint32_t> dom{0};
};

struct Ring {
  explicit Ring(std::size_t cap) : slots(cap) {}
  std::vector<Slot> slots;
  std::atomic<std::uint64_t> head{0};  // events ever recorded on this ring
};

// Fixed lock-free ring table: registration is one fetch_add + release
// store, readable from signal handlers without locks. Rings leak by design
// — a crashed or exited thread's last events must stay dumpable.
constexpr std::size_t kMaxRings = 512;
std::atomic<Ring*> g_rings[kMaxRings];
std::atomic<std::size_t> g_ring_count{0};

std::atomic<int> g_enabled{-1};  // -1 unset, 0 off, 1 on

const std::chrono::steady_clock::time_point g_epoch =
    std::chrono::steady_clock::now();

std::uint64_t now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - g_epoch)
          .count());
}

std::size_t resolve_capacity() {
  const char* env = std::getenv("DIGG_RECORDER_EVENTS");
  long v = 256;
  if (env && *env != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) v = parsed;
  }
  if (v < 16) v = 16;
  if (v > 65536) v = 65536;
  return static_cast<std::size_t>(v);
}

std::size_t ring_capacity() {
  static const std::size_t cap = resolve_capacity();
  return cap;
}

Ring* acquire_ring() {
  const std::size_t i = g_ring_count.fetch_add(1, std::memory_order_relaxed);
  if (i >= kMaxRings) return nullptr;  // beyond the table: stop recording
  auto* ring = new Ring(ring_capacity());
  g_rings[i].store(ring, std::memory_order_release);
  return ring;
}

thread_local Ring* tl_ring = nullptr;

// One decoded event, plus the validated read that produced it.
struct DecodedEvent {
  std::uint64_t ordinal;
  std::uint64_t t_us;
  std::uint64_t a;
  std::uint64_t b;
  std::uint32_t kind;
  std::uint32_t dom;
};

/// Seqlock read of ordinal `k` from `ring`. False = torn or overwritten.
bool read_slot(const Ring& ring, std::uint64_t k, DecodedEvent& out) noexcept {
  const Slot& s = ring.slots[k % ring.slots.size()];
  const std::uint64_t want = 2 * k + 2;
  if (s.seq.load(std::memory_order_acquire) != want) return false;
  out.ordinal = k;
  out.t_us = s.t_us.load(std::memory_order_relaxed);
  out.a = s.a.load(std::memory_order_relaxed);
  out.b = s.b.load(std::memory_order_relaxed);
  out.kind = s.kind.load(std::memory_order_relaxed);
  out.dom = s.dom.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  return s.seq.load(std::memory_order_relaxed) == want;
}

// ------------------------------------------- signal-safe text formatting

/// Appends decimal `v` to `p` (caller guarantees space); returns new end.
char* append_dec(char* p, std::uint64_t v) noexcept {
  char tmp[20];
  int n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) *p++ = tmp[--n];
  return p;
}

char* append_str(char* p, const char* s) noexcept {
  while (*s != '\0') *p++ = *s++;
  return p;
}

void write_all(int fd, const char* data, std::size_t len) noexcept {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) return;  // best effort: a full pipe must not hang a handler
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// Formats one event line into `buf` (must hold >= 192 bytes); returns its
/// length. Shared by the in-memory dump and the signal-handler dump so the
/// two outputs are line-for-line identical.
std::size_t format_event_line(char* buf, std::size_t ring_index,
                              const DecodedEvent& e) noexcept {
  char* p = buf;
  p = append_str(p, "ring=");
  p = append_dec(p, ring_index);
  p = append_str(p, " seq=");
  p = append_dec(p, e.ordinal);
  p = append_str(p, " t_us=");
  p = append_dec(p, e.t_us);
  p = append_str(p, " kind=");
  p = append_str(p, event_kind_name(static_cast<EventKind>(e.kind)));
  p = append_str(p, " dom=");
  p = append_dec(p, e.dom);
  p = append_str(p, " a=");
  p = append_dec(p, e.a);
  p = append_str(p, " b=");
  p = append_dec(p, e.b);
  *p++ = '\n';
  return static_cast<std::size_t>(p - buf);
}

/// Walks every ring's surviving ordinals oldest-first and calls
/// emit(line, len) per validated event. Lock-free and allocation-free.
template <typename Emit>
void for_each_event_line(Emit&& emit) noexcept {
  const std::size_t count =
      std::min(g_ring_count.load(std::memory_order_acquire), kMaxRings);
  for (std::size_t r = 0; r < count; ++r) {
    const Ring* ring = g_rings[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t n =
        std::min<std::uint64_t>(head, ring->slots.size());
    for (std::uint64_t k = head - n; k < head; ++k) {
      DecodedEvent e;
      if (!read_slot(*ring, k, e)) continue;  // torn: overwritten mid-read
      char line[192];
      emit(line, format_event_line(line, r, e));
    }
  }
}

// -------------------------------------------------------- crash handlers

char g_crash_path[1024];
std::atomic<bool> g_handlers_installed{false};

const char* signal_name(int sig) noexcept {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGUSR2: return "SIGUSR2";
    case 0: return "none";
  }
  return "?";
}

void crash_signal_handler(int sig) {
  const int fd =
      ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    write_crash_report(fd, sig);
    ::close(fd);
  }
  if (sig == SIGUSR2) return;  // live dump: keep running
  // Fatal path: SA_RESETHAND already restored the default disposition, so
  // re-raising terminates with the original signal semantics (core dumps,
  // wait status). _exit is the backstop if raise somehow returns.
  ::raise(sig);
  ::_exit(128 + sig);
}

}  // namespace

const char* event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kMark: return "mark";
    case EventKind::kVoteApplied: return "vote_applied";
    case EventKind::kChunkScheduled: return "chunk_scheduled";
    case EventKind::kJobStart: return "job_start";
    case EventKind::kCheckpointRecorded: return "checkpoint_recorded";
    case EventKind::kCheckpointSave: return "checkpoint_save";
    case EventKind::kCheckpointRestore: return "checkpoint_restore";
    case EventKind::kLruEvict: return "lru_evict";
    case EventKind::kStoryRetired: return "story_retired";
    case EventKind::kQuery: return "query";
  }
  return "?";
}

bool recorder_enabled() noexcept {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v == -1) {
    const char* env = std::getenv("DIGG_RECORDER");
    const bool off =
        env != nullptr && (std::strcmp(env, "off") == 0 ||
                           std::strcmp(env, "0") == 0);
    v = off ? 0 : 1;
    // Benign race: every loser computes the same env-derived value.
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void set_recorder_enabled(bool on) noexcept {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::size_t recorder_ring_capacity() noexcept { return ring_capacity(); }

std::size_t recorder_ring_count() noexcept {
  return std::min(g_ring_count.load(std::memory_order_acquire), kMaxRings);
}

void record_event(EventKind kind, std::uint32_t dom, std::uint64_t a,
                  std::uint64_t b) noexcept {
  if (!recorder_enabled()) return;
  Ring* ring = tl_ring;
  if (ring == nullptr) {
    ring = acquire_ring();
    if (ring == nullptr) return;
    tl_ring = ring;
  }
  const std::uint64_t k = ring->head.load(std::memory_order_relaxed);
  Slot& s = ring->slots[k % ring->slots.size()];
  s.seq.store(2 * k + 1, std::memory_order_relaxed);  // mark in progress
  s.t_us.store(now_us(), std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.kind.store(static_cast<std::uint32_t>(kind), std::memory_order_relaxed);
  s.dom.store(dom, std::memory_order_relaxed);
  s.seq.store(2 * k + 2, std::memory_order_release);
  ring->head.store(k + 1, std::memory_order_release);
}

std::string dump_recorder() {
  std::string out;
  for_each_event_line(
      [&out](const char* line, std::size_t len) { out.append(line, len); });
  return out;
}

void write_crash_report(int fd, int signal) noexcept {
  {
    char buf[96];
    char* p = buf;
    p = append_str(p, "=== digg crash report ===\nsignal=");
    p = append_dec(p, static_cast<std::uint64_t>(signal < 0 ? 0 : signal));
    p = append_str(p, " name=");
    p = append_str(p, signal_name(signal));
    p = append_str(p, "\n--- flight recorder ---\n");
    write_all(fd, buf, static_cast<std::size_t>(p - buf));
  }
  for_each_event_line(
      [fd](const char* line, std::size_t len) { write_all(fd, line, len); });
  write_all(fd, "--- metrics ---\n", 16);
  // Best effort past this line: try_snapshot never blocks, but rendering
  // allocates — fine for SIGUSR2 and for the watchdog, accepted-risk when
  // the process is already dying of SIGSEGV/SIGABRT.
  MetricsSnapshot snap;
  bool got = false;
  for (int attempt = 0; attempt < 3 && !got; ++attempt)
    got = Registry::global().try_snapshot(snap);
  if (got) {
    const std::string json = render_metrics_json(snap);
    write_all(fd, json.data(), json.size());
    write_all(fd, "\n", 1);
  } else {
    write_all(fd, "metrics=unavailable\n", 20);
  }
}

void install_crash_handlers(const std::string& path) {
  std::snprintf(g_crash_path, sizeof(g_crash_path), "%s", path.c_str());
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = crash_signal_handler;
  sigemptyset(&sa.sa_mask);
  // Fatal signals reset to the default disposition before the handler runs,
  // so a second fault inside the handler kills the process instead of
  // recursing, and the post-report re-raise terminates normally.
  sa.sa_flags = SA_RESETHAND;
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
  sa.sa_flags = 0;  // SIGUSR2 stays installed: dump-and-continue
  ::sigaction(SIGUSR2, &sa, nullptr);
  g_handlers_installed.store(true, std::memory_order_release);
}

bool crash_handlers_installed() noexcept {
  return g_handlers_installed.load(std::memory_order_acquire);
}

const char* crash_report_path() noexcept {
  return crash_handlers_installed() ? g_crash_path : "";
}

}  // namespace digg::obs
