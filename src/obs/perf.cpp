#include "src/obs/perf.h"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "src/obs/metrics.h"

namespace digg::obs {

namespace {

int perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                    unsigned long flags) noexcept {
  return static_cast<int>(
      ::syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags));
}

int open_counter(std::uint64_t config, int group_fd) noexcept {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;  // the leader gates the group
  attr.exclude_kernel = 1;  // user-space only: allowed at paranoid <= 2
  attr.exclude_hv = 1;
  attr.inherit = 1;  // count worker threads spawned inside the region
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID;
  // pid=0, cpu=-1: this process, any CPU.
  return perf_event_open(&attr, 0, -1, group_fd, 0);
}

}  // namespace

bool perf_counters_supported() noexcept {
  static const bool supported = [] {
    const int fd = open_counter(PERF_COUNT_HW_CPU_CYCLES, -1);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return supported;
}

PerfCounters::PerfCounters() {
  leader_fd_ = open_counter(PERF_COUNT_HW_CPU_CYCLES, -1);
  if (leader_fd_ < 0) return;  // no PMU: the whole group is invalid
  // Members are individually best-effort; a failed one stays -1 and its
  // reading is 0.
  fds_[0] = open_counter(PERF_COUNT_HW_INSTRUCTIONS, leader_fd_);
  fds_[1] = open_counter(PERF_COUNT_HW_CACHE_REFERENCES, leader_fd_);
  fds_[2] = open_counter(PERF_COUNT_HW_CACHE_MISSES, leader_fd_);
}

PerfCounters::~PerfCounters() {
  for (const int fd : fds_)
    if (fd >= 0) ::close(fd);
  if (leader_fd_ >= 0) ::close(leader_fd_);
}

void PerfCounters::start() noexcept {
  if (leader_fd_ < 0) return;
  ::ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ::ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfReading PerfCounters::stop() noexcept {
  PerfReading out;
  if (leader_fd_ < 0) return out;
  ::ioctl(leader_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  // PERF_FORMAT_GROUP | PERF_FORMAT_ID layout:
  //   u64 nr; { u64 value; u64 id; } values[nr];
  // in group-open order: cycles, then whichever members opened.
  std::uint64_t buf[1 + 2 * 4] = {};
  const ssize_t n = ::read(leader_fd_, buf, sizeof(buf));
  if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return out;
  const std::uint64_t nr = buf[0];
  std::uint64_t values[4] = {};  // cycles, instructions, cache refs, misses
  // Opened counter j reads at buf[1 + 2*j]; a member that never opened has
  // no entry, so walk fds_ and advance j only past counters that exist.
  values[0] = buf[1];  // leader (cycles) is always j = 0
  std::uint64_t j = 1;
  for (std::size_t m = 0; m < 3; ++m) {
    if (fds_[m] < 0) continue;  // never opened: value stays 0
    if (j < nr) values[m + 1] = buf[1 + 2 * j];
    ++j;
  }
  out.cycles = values[0];
  out.instructions = values[1];
  out.cache_references = values[2];
  out.cache_misses = values[3];
  out.valid = true;
  return out;
}

PerfSpan::PerfSpan(const char* prefix) noexcept
    : prefix_(prefix), span_(prefix, "perf") {
  counters_.start();
}

PerfSpan::~PerfSpan() {
  const PerfReading r = counters_.stop();
  if (!r.valid || r.cycles == 0) return;
  Registry::global().gauge(std::string(prefix_) + "_ipc").set(r.ipc());
  if (r.cache_references != 0) {
    Registry::global()
        .gauge(std::string(prefix_) + "_cache_miss_pct")
        .set(r.cache_miss_pct());
  }
}

}  // namespace digg::obs
