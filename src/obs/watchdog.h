#pragma once
// Liveness watchdog: long-running work registers a WatchdogTask with a
// deadline and heartbeats it from its inner loop; a background thread scans
// the registered tasks and, when one misses its deadline, increments
// `obs.watchdog_stalls`, logs a warning naming the task, and dumps the
// flight recorder — so a wedged shard or deadlocked pool job leaves
// evidence instead of a silent hang. Opt-in:
//
//   DIGG_WATCHDOG_MS=<interval>   start at first instrument creation,
//                                 scanning every <interval> ms
//
// The stall dump goes to `<DIGG_CRASH_REPORT>.stall` when crash handlers
// are installed, else to stderr, using the same report writer as the crash
// path (recorder.h), with signal=0.
//
// Cost model: with the watchdog not running, beat() is a single relaxed
// load. With it running, beat() adds one clock read and one relaxed store —
// still fine inside per-story loops. A stalled task is reported once per
// stall: the reported flag rearms only after a fresh beat brings the task
// back under its deadline.

#include <cstdint>

namespace digg::obs {

/// RAII heartbeat handle for one unit of long-running work (a pool job, a
/// streaming replay). Registration and deregistration take a mutex;
/// beat() never does. The `name` pointer must outlive the task (string
/// literals are the intended use).
class WatchdogTask {
 public:
  WatchdogTask(const char* name, std::uint64_t deadline_ms);
  ~WatchdogTask();
  WatchdogTask(const WatchdogTask&) = delete;
  WatchdogTask& operator=(const WatchdogTask&) = delete;

  /// Marks the task alive now. Safe from any thread working on the task.
  void beat() noexcept;

  struct Rec;  // opaque; defined by the scanner (watchdog.cpp)

 private:
  Rec* rec_;
};

/// Starts the scanner thread (idempotent). `interval_ms` is clamped to
/// >= 10. Returns true when running.
bool start_watchdog(unsigned interval_ms);
/// Stops and joins the scanner. Safe when not running.
void stop_watchdog();
[[nodiscard]] bool watchdog_running() noexcept;

/// Starts from DIGG_WATCHDOG_MS when set; called at first instrument
/// creation (metrics.cpp).
void maybe_start_watchdog_from_env();

}  // namespace digg::obs
