#include "src/obs/watchdog.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"

namespace digg::obs {

struct WatchdogTask::Rec {
  const char* name;
  std::uint64_t deadline_us;
  std::atomic<std::uint64_t> last_beat_us;
  std::atomic<bool> reported{false};
};

namespace {

struct WatchdogState {
  std::mutex mutex;  // guards tasks; beat() never takes it
  std::vector<WatchdogTask::Rec*> tasks;
  std::thread thread;
  std::atomic<bool> running{false};
  std::atomic<bool> stop{false};
};

// Leaked for the same atexit-ordering reason as the registry: a WatchdogTask
// destructor may run after main()'s statics are gone.
WatchdogState* state() {
  static WatchdogState* s = new WatchdogState();
  return s;
}

std::uint64_t now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void dump_stall_report() {
  const char* crash_path = crash_report_path();
  if (*crash_path != '\0') {
    const std::string path = std::string(crash_path) + ".stall";
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      write_crash_report(fd, 0);
      ::close(fd);
      return;
    }
  }
  write_crash_report(STDERR_FILENO, 0);
}

void scan_once() {
  WatchdogState* s = state();
  const std::uint64_t now = now_us();
  std::vector<const char*> stalled;
  {
    std::lock_guard<std::mutex> lock(s->mutex);
    for (WatchdogTask::Rec* rec : s->tasks) {
      const std::uint64_t beat =
          rec->last_beat_us.load(std::memory_order_relaxed);
      const std::uint64_t age = now > beat ? now - beat : 0;
      if (age > rec->deadline_us) {
        // Report each stall once; a fresh beat below rearms.
        if (!rec->reported.exchange(true, std::memory_order_relaxed))
          stalled.push_back(rec->name);
      } else {
        rec->reported.store(false, std::memory_order_relaxed);
      }
    }
  }
  if (stalled.empty()) return;
  static Counter& stalls = Registry::global().counter("obs.watchdog_stalls");
  for (const char* name : stalled) {
    stalls.inc();
    log_warn("obs", "watchdog: task missed its heartbeat deadline",
             {{"task", name}});
  }
  dump_stall_report();
}

void watchdog_loop(unsigned interval_ms) {
  WatchdogState* s = state();
  while (!s->stop.load(std::memory_order_acquire)) {
    scan_once();
    // Sleep in short steps so stop_watchdog() joins promptly even with a
    // long scan interval.
    unsigned slept = 0;
    while (slept < interval_ms && !s->stop.load(std::memory_order_acquire)) {
      const unsigned step = std::min(interval_ms - slept, 50u);
      std::this_thread::sleep_for(std::chrono::milliseconds(step));
      slept += step;
    }
  }
}

void stop_watchdog_at_exit() { stop_watchdog(); }

}  // namespace

WatchdogTask::WatchdogTask(const char* name, std::uint64_t deadline_ms)
    : rec_(new Rec{name, deadline_ms * 1000, {now_us()}, {}}) {
  WatchdogState* s = state();
  std::lock_guard<std::mutex> lock(s->mutex);
  s->tasks.push_back(rec_);
}

WatchdogTask::~WatchdogTask() {
  WatchdogState* s = state();
  {
    std::lock_guard<std::mutex> lock(s->mutex);
    std::erase(s->tasks, rec_);
  }
  delete rec_;
}

void WatchdogTask::beat() noexcept {
  // One relaxed load when the watchdog is off — cheap enough for per-story
  // and per-chunk loops to call unconditionally.
  if (!state()->running.load(std::memory_order_relaxed)) return;
  rec_->last_beat_us.store(now_us(), std::memory_order_relaxed);
}

bool start_watchdog(unsigned interval_ms) {
  WatchdogState* s = state();
  if (s->running.load(std::memory_order_acquire)) return true;
  if (interval_ms < 10) interval_ms = 10;
  s->stop.store(false, std::memory_order_release);
  s->thread = std::thread(watchdog_loop, interval_ms);
  s->running.store(true, std::memory_order_release);
  static const bool atexit_registered = [] {
    std::atexit(stop_watchdog_at_exit);
    return true;
  }();
  (void)atexit_registered;
  log_info("obs", "watchdog running",
           {{"interval_ms", std::to_string(interval_ms)}});
  return true;
}

void stop_watchdog() {
  WatchdogState* s = state();
  if (!s->running.load(std::memory_order_acquire)) return;
  s->stop.store(true, std::memory_order_release);
  if (s->thread.joinable()) s->thread.join();
  s->running.store(false, std::memory_order_release);
}

bool watchdog_running() noexcept {
  return state()->running.load(std::memory_order_acquire);
}

void maybe_start_watchdog_from_env() {
  static const bool started = [] {
    const char* env = std::getenv("DIGG_WATCHDOG_MS");
    if (!env || *env == '\0') return false;
    const long ms = std::strtol(env, nullptr, 10);
    if (ms <= 0) {
      log_warn("obs", "DIGG_WATCHDOG_MS must be positive; watchdog disabled",
               {{"value", env}});
      return false;
    }
    return start_watchdog(static_cast<unsigned>(ms));
  }();
  (void)started;
}

}  // namespace digg::obs
