#include "src/obs/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace digg::obs {

namespace {

// Leaked singletons: the logger must stay usable from atexit handlers and
// destructors of other statics, so nothing here has a destructor to race.
struct LogState {
  std::mutex mutex;
  std::FILE* out = nullptr;  // resolved on first use
  std::function<void(std::string_view)> sink;
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
};

LogState& state() {
  static LogState* s = new LogState();
  return *s;
}

constexpr int kLevelUnset = -1;

std::atomic<int> g_level{kLevelUnset};

LogLevel resolve_env_level() {
  const char* env = std::getenv("DIGG_LOG_LEVEL");
  if (!env || *env == '\0') return LogLevel::kInfo;
  return parse_log_level(env, LogLevel::kInfo);
}

std::FILE* resolve_out() {
  const char* path = std::getenv("DIGG_LOG_FILE");
  if (path && *path != '\0') {
    std::string error;
    if (std::FILE* f = open_log_file(path, &error)) return f;
    std::fprintf(stderr, "%s\n", error.c_str());
  }
  return stderr;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

bool needs_quoting(std::string_view v) {
  if (v.empty()) return true;
  for (char c : v) {
    if (c == ' ' || c == '=' || c == '"' || c == '\t') return true;
  }
  return false;
}

void append_string_value(std::string& out, std::string_view v) {
  if (!needs_quoting(v)) {
    out.append(v);
    return;
  }
  out.push_back('"');
  for (char c : v) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
}

void append_field_value(std::string& out, const Field& f) {
  char buf[32];
  switch (f.kind) {
    case Field::Kind::kInt:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(f.i));
      out.append(buf);
      break;
    case Field::Kind::kUint:
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(f.u));
      out.append(buf);
      break;
    case Field::Kind::kDouble:
      std::snprintf(buf, sizeof(buf), "%g", f.d);
      out.append(buf);
      break;
    case Field::Kind::kBool:
      out.append(f.b ? "true" : "false");
      break;
    case Field::Kind::kString:
      append_string_value(out, f.s);
      break;
  }
}

}  // namespace

LogLevel parse_log_level(std::string_view name, LogLevel fallback) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return fallback;
}

LogLevel log_level() noexcept {
  int v = g_level.load(std::memory_order_relaxed);
  if (v == kLevelUnset) {
    v = static_cast<int>(resolve_env_level());
    // Benign race: every loser computes the same env-derived value.
    g_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

std::string format_log_line(LogLevel level, std::string_view component,
                            std::string_view message,
                            std::initializer_list<Field> fields) {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    state().start)
          .count();
  std::string line;
  line.reserve(64 + message.size());
  char buf[32];
  std::snprintf(buf, sizeof(buf), "t=%.3f", elapsed);
  line.append(buf);
  line.append(" level=");
  line.append(level_name(level));
  line.append(" comp=");
  append_string_value(line, component);
  line.append(" msg=");
  append_string_value(line, message);
  for (const Field& f : fields) {
    line.push_back(' ');
    line.append(f.key);
    line.push_back('=');
    append_field_value(line, f);
  }
  return line;
}

void log(LogLevel level, std::string_view component, std::string_view message,
         std::initializer_list<Field> fields) {
  if (!log_enabled(level) || level == LogLevel::kOff) return;
  std::string line = format_log_line(level, component, message, fields);
  line.push_back('\n');
  LogState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.sink) {
    s.sink(line);
    return;
  }
  if (!s.out) s.out = resolve_out();
  std::fwrite(line.data(), 1, line.size(), s.out);
  std::fflush(s.out);
}

void set_log_sink(std::function<void(std::string_view)> sink) {
  LogState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.sink = std::move(sink);
}

std::FILE* open_log_file(const char* path, std::string* error) {
  if (std::FILE* f = std::fopen(path, "a")) return f;
  if (error != nullptr) {
    *error = "obs: cannot open DIGG_LOG_FILE=";
    error->append(path);
    error->append(", logging to stderr");
  }
  return nullptr;
}

}  // namespace digg::obs
