#pragma once
// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms, all lock-free on the hot path (plain atomics) and snapshotable
// to JSON. Instrumented layers fetch their instruments once (function-local
// static references are the common idiom) and update them unconditionally —
// an update is one or two relaxed atomic ops, cheap enough to leave on.
//
// Zero-perturbation contract: metrics record what a run did; nothing reads
// them back into computation, so numeric results are bit-identical with the
// registry populated or untouched.
//
// DIGG_METRICS=<path>: when set, the registry writes its JSON snapshot to
// <path> at process exit (registered the first time any instrument is
// created).

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace digg::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t by = 1) noexcept {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], with
/// one implicit overflow bucket above the last bound. Tracks count and sum
/// (sum via CAS so the class only needs C++11 atomics). Bounds are fixed at
/// construction — latency histograms use default_latency_bounds_us().
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// histogram_quantile() over the live buckets — p50/p95/p99 helpers for
  /// gauges and reports. q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

 private:
  std::vector<double> bounds_;                    // ascending
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// 1us..~8.4s in powers of 2 — the default latency bucket layout.
[[nodiscard]] const std::vector<double>& default_latency_bounds_us();

/// Percentile estimate from bucketed counts, Prometheus histogram_quantile
/// style: find the bucket where the cumulative count crosses q * total and
/// interpolate linearly inside it (the first bucket interpolates from 0, the
/// overflow bucket clamps to the last finite bound — a log-bucketed histogram
/// cannot resolve beyond it). `counts` has bounds.size() + 1 entries, the
/// layout Histogram::bucket_counts() returns. Returns 0 when empty.
[[nodiscard]] double histogram_quantile(const std::vector<double>& bounds,
                                        const std::vector<std::uint64_t>& counts,
                                        double q);

/// Point-in-time copy of every instrument — the iteration surface shared by
/// the JSON snapshot, the Prometheus exporter (exporter.h), and the crash
/// reporter (recorder.h). Plain values, no atomics: safe to hand across
/// threads.
struct MetricsSnapshot {
  struct Hist {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1, overflow last
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // sorted
  std::vector<std::pair<std::string, double>> gauges;           // sorted
  std::vector<Hist> histograms;                                 // sorted
};

/// Renders a snapshot as the DIGG_METRICS JSON document. Latency histograms
/// (*_us / *_ms) additionally contribute a derived `<name>_p99` gauge so the
/// bench gate can gate tail latency, not just means.
[[nodiscard]] std::string render_metrics_json(const MetricsSnapshot& snap);

/// Named-instrument registry. Instruments are created on first request and
/// live for the process (references stay valid); requesting an existing name
/// returns the same instrument. Names are dotted paths ("runtime.chunks").
class Registry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// Empty bounds = default_latency_bounds_us(). Bounds are fixed by the
  /// first registration; later callers get the existing histogram.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::vector<double> bounds = {});

  /// Copies every instrument's current value. One lock acquisition; the
  /// result is independent of the registry afterwards.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Lock-avoiding variant for the crash-report path: fails (returns false)
  /// instead of blocking when another thread holds the registry lock — a
  /// signal handler must never wait on a mutex its own thread may hold.
  [[nodiscard]] bool try_snapshot(MetricsSnapshot& out) const;

  /// JSON snapshot of every instrument:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{"count":..,
  /// "sum":..,"buckets":[[bound,count],...,["+inf",count]]}}}.
  /// Keys are sorted, so snapshots diff cleanly. Latency histograms also
  /// emit a derived `<name>_p99` gauge (see render_metrics_json).
  [[nodiscard]] std::string to_json() const;

  /// Zeroes nothing — drops every instrument (references die). Test hook;
  /// do not call with instrumented code running on other threads.
  void reset_for_test();

  /// The process-wide registry all instrumented layers use.
  [[nodiscard]] static Registry& global();

  ~Registry();

 private:
  Registry() = default;
  struct Impl;
  Impl* impl();
  const Impl* impl() const;
  mutable Impl* impl_ = nullptr;
};

/// Writes `{"bench":name,"seed":seed,"wall_ms":wall_ms,"metrics":<snapshot>}`
/// to `path` — the BENCH_<name>.json format shared by bench/common.h and
/// perf_micro. Returns false (and logs at error) when the file cannot be
/// written.
bool write_bench_report(const std::string& path, std::string_view name,
                        std::uint64_t seed, double wall_ms);

/// Probes `path` for writability (open-for-append) and emits a log_warn
/// naming `env_name` when it is not — output env vars (DIGG_METRICS,
/// DIGG_CRASH_REPORT, DIGG_LOG_FILE) must fail loudly at startup, not
/// silently drop their output at exit. Returns true when writable.
bool warn_if_unwritable(const char* env_name, const char* path);

}  // namespace digg::obs
