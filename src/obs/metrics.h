#pragma once
// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms, all lock-free on the hot path (plain atomics) and snapshotable
// to JSON. Instrumented layers fetch their instruments once (function-local
// static references are the common idiom) and update them unconditionally —
// an update is one or two relaxed atomic ops, cheap enough to leave on.
//
// Zero-perturbation contract: metrics record what a run did; nothing reads
// them back into computation, so numeric results are bit-identical with the
// registry populated or untouched.
//
// DIGG_METRICS=<path>: when set, the registry writes its JSON snapshot to
// <path> at process exit (registered the first time any instrument is
// created).

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace digg::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t by = 1) noexcept {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], with
/// one implicit overflow bucket above the last bound. Tracks count and sum
/// (sum via CAS so the class only needs C++11 atomics). Bounds are fixed at
/// construction — latency histograms use default_latency_bounds_us().
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;                    // ascending
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// 1us..~8.4s in powers of 2 — the default latency bucket layout.
[[nodiscard]] const std::vector<double>& default_latency_bounds_us();

/// Named-instrument registry. Instruments are created on first request and
/// live for the process (references stay valid); requesting an existing name
/// returns the same instrument. Names are dotted paths ("runtime.chunks").
class Registry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// Empty bounds = default_latency_bounds_us(). Bounds are fixed by the
  /// first registration; later callers get the existing histogram.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::vector<double> bounds = {});

  /// JSON snapshot of every instrument:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{"count":..,
  /// "sum":..,"buckets":[[bound,count],...,["+inf",count]]}}}.
  /// Keys are sorted, so snapshots diff cleanly.
  [[nodiscard]] std::string to_json() const;

  /// Zeroes nothing — drops every instrument (references die). Test hook;
  /// do not call with instrumented code running on other threads.
  void reset_for_test();

  /// The process-wide registry all instrumented layers use.
  [[nodiscard]] static Registry& global();

  ~Registry();

 private:
  Registry() = default;
  struct Impl;
  Impl* impl();
  const Impl* impl() const;
  mutable Impl* impl_ = nullptr;
};

/// Writes `{"bench":name,"seed":seed,"wall_ms":wall_ms,"metrics":<snapshot>}`
/// to `path` — the BENCH_<name>.json format shared by bench/common.h and
/// perf_micro. Returns false (and logs at error) when the file cannot be
/// written.
bool write_bench_report(const std::string& path, std::string_view name,
                        std::uint64_t seed, double wall_ms);

}  // namespace digg::obs
