#pragma once
// Hardware-counter profiling via perf_event_open(2): cycles, instructions,
// and cache references/misses counted over a code region, surfaced as
// derived IPC and cache-miss-rate gauges. Strictly best-effort — the PMU may
// be absent (containers, VMs without vPMU) or forbidden
// (kernel.perf_event_paranoid); every failure degrades to an invalid
// reading, never an error. Counters are opened with exclude_kernel +
// exclude_hv so they work at perf_event_paranoid <= 2 (the common default)
// without privileges.
//
// Fallback rules (see DESIGN.md "Telemetry v2"):
//   - the cycles leader failing to open invalidates the whole group;
//   - a member (instructions, cache refs/misses) failing to open is dropped
//     individually — IPC may be valid while miss rate is not;
//   - readings where a needed counter is 0 make the derived value 0 rather
//     than dividing by it.
//
// Zero-perturbation contract: counting is observation-only; results are
// bit-identical with counters on, off, or unsupported.

#include <cstdint>

#include "src/obs/trace.h"

namespace digg::obs {

/// One counter-group reading. `valid` means the group leader (cycles) was
/// counting; member counters that failed to open read 0.
struct PerfReading {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  bool valid = false;

  /// Instructions per cycle; 0 when invalid or cycles == 0.
  [[nodiscard]] double ipc() const noexcept {
    if (!valid || cycles == 0) return 0.0;
    return static_cast<double>(instructions) / static_cast<double>(cycles);
  }
  /// Cache misses as a percentage of references; 0 when unavailable.
  [[nodiscard]] double cache_miss_pct() const noexcept {
    if (!valid || cache_references == 0) return 0.0;
    return 100.0 * static_cast<double>(cache_misses) /
           static_cast<double>(cache_references);
  }
};

/// True when this process can open a user-space cycles counter (probed once
/// and cached). False means every PerfCounters will read invalid.
[[nodiscard]] bool perf_counters_supported() noexcept;

/// A perf_event counter group for the calling process (all threads it
/// spawns inherit the count). start()/stop() bracket the measured region;
/// stop() returns the reading and the group can be restarted. All methods
/// degrade to no-ops with an invalid reading when the PMU is unavailable.
class PerfCounters {
 public:
  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  void start() noexcept;
  [[nodiscard]] PerfReading stop() noexcept;
  /// True when the group leader opened (readings can be valid).
  [[nodiscard]] bool usable() const noexcept { return leader_fd_ >= 0; }

 private:
  int leader_fd_ = -1;      // cycles
  int fds_[3] = {-1, -1, -1};  // instructions, cache refs, cache misses
};

/// RAII profiled region: a trace span (Chrome tracing, when enabled) with a
/// counter group attached. On destruction, when the reading is valid, it
/// publishes `<prefix>_ipc` and (when cache counters opened)
/// `<prefix>_cache_miss_pct` gauges to the global registry. Nothing is
/// published when the PMU is unavailable, so hardware-dependent gauges
/// simply vanish from snapshots instead of reporting zeros.
class PerfSpan {
 public:
  /// `prefix` must outlive the span (string literals). It names both the
  /// trace span and the published gauges.
  explicit PerfSpan(const char* prefix) noexcept;
  ~PerfSpan();
  PerfSpan(const PerfSpan&) = delete;
  PerfSpan& operator=(const PerfSpan&) = delete;

 private:
  const char* prefix_;
  Span span_;
  PerfCounters counters_;
};

}  // namespace digg::obs
