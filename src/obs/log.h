#pragma once
// Leveled structured logger: key=value lines on stderr (or a file), safe to
// call from any thread. The level is resolved once from DIGG_LOG_LEVEL
// (trace|debug|info|warn|error|off, default info) and can be overridden
// programmatically; DIGG_LOG_FILE redirects output to a path.
//
// Zero-perturbation contract (shared with metrics.h and trace.h): logging
// never feeds back into computation — a run produces bit-identical numeric
// results at any log level, including `off`.
//
// Library internals log at debug so default runs stay quiet; example and
// bench binaries log progress at info so DIGG_LOG_LEVEL=error silences them
// uniformly.

#include <cstdint>
#include <cstdio>
#include <functional>
#include <initializer_list>
#include <string>
#include <string_view>

namespace digg::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Parses a level name ("trace".."error", "off"); unknown names fall back to
/// `fallback`. Case-sensitive, matching the documented spellings.
[[nodiscard]] LogLevel parse_log_level(std::string_view name,
                                       LogLevel fallback = LogLevel::kInfo);

/// Current threshold: messages below it are dropped. Resolution order:
/// programmatic override, DIGG_LOG_LEVEL, default info.
[[nodiscard]] LogLevel log_level() noexcept;

/// Overrides the threshold for subsequent calls (tests, embedding apps).
void set_log_level(LogLevel level) noexcept;

/// True when a message at `level` would be emitted — guard expensive field
/// computation with this.
[[nodiscard]] inline bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

/// One key=value pair. Values render as: integers/unsigned/doubles/bools
/// bare, strings quoted when they contain spaces, '=' or '"' (inner quotes
/// escaped as \").
struct Field {
  enum class Kind { kInt, kUint, kDouble, kBool, kString };

  Field(std::string_view k, long long v)
      : key(k), kind(Kind::kInt), i(v) {}
  Field(std::string_view k, long v)
      : key(k), kind(Kind::kInt), i(v) {}
  Field(std::string_view k, int v)
      : key(k), kind(Kind::kInt), i(v) {}
  Field(std::string_view k, unsigned long long v)
      : key(k), kind(Kind::kUint), u(v) {}
  Field(std::string_view k, unsigned long v)
      : key(k), kind(Kind::kUint), u(v) {}
  Field(std::string_view k, unsigned v)
      : key(k), kind(Kind::kUint), u(v) {}
  Field(std::string_view k, double v)
      : key(k), kind(Kind::kDouble), d(v) {}
  Field(std::string_view k, bool v)
      : key(k), kind(Kind::kBool), b(v) {}
  Field(std::string_view k, std::string_view v)
      : key(k), kind(Kind::kString), s(v) {}
  Field(std::string_view k, const char* v)
      : key(k), kind(Kind::kString), s(v) {}

  std::string_view key;
  Kind kind;
  std::int64_t i = 0;
  std::uint64_t u = 0;
  double d = 0.0;
  bool b = false;
  std::string_view s;
};

/// Emits one line: `t=<sec since start> level=<lvl> comp=<component>
/// msg=<message> key=value ...`. Drops the call when `level` is below the
/// threshold. Thread-safe (one mutex around the write).
void log(LogLevel level, std::string_view component, std::string_view message,
         std::initializer_list<Field> fields = {});

inline void log_debug(std::string_view component, std::string_view message,
                      std::initializer_list<Field> fields = {}) {
  log(LogLevel::kDebug, component, message, fields);
}
inline void log_info(std::string_view component, std::string_view message,
                     std::initializer_list<Field> fields = {}) {
  log(LogLevel::kInfo, component, message, fields);
}
inline void log_warn(std::string_view component, std::string_view message,
                     std::initializer_list<Field> fields = {}) {
  log(LogLevel::kWarn, component, message, fields);
}
inline void log_error(std::string_view component, std::string_view message,
                      std::initializer_list<Field> fields = {}) {
  log(LogLevel::kError, component, message, fields);
}

/// Formats the line exactly as log() would write it (minus the trailing
/// newline) without emitting it — the formatting unit under test.
[[nodiscard]] std::string format_log_line(LogLevel level,
                                          std::string_view component,
                                          std::string_view message,
                                          std::initializer_list<Field> fields);

/// Redirects emitted lines (newline included) to `sink` instead of
/// stderr/DIGG_LOG_FILE; pass nullptr to restore the default. Test hook.
void set_log_sink(std::function<void(std::string_view)> sink);

/// Opens a DIGG_LOG_FILE target for append. Returns nullptr on failure and,
/// when `error` is non-null, fills it with the warning line the logger
/// prints in that case — the unit under test for the "unwritable log path
/// falls back to stderr, loudly" contract.
[[nodiscard]] std::FILE* open_log_file(const char* path,
                                       std::string* error = nullptr);

}  // namespace digg::obs
