#pragma once
// Flight recorder: per-thread lock-free ring buffers of recent structured
// events (votes applied, chunks scheduled, checkpoints, LRU evictions...),
// kept cheap enough to leave on in production — recording is a handful of
// relaxed atomic stores into a thread-owned slot, no locks, no allocation
// after the ring exists. The value is post-mortem: when something crashes,
// stalls, or is sent SIGUSR2, the dump shows what every thread was doing in
// the moments before, per shard, alongside a metrics snapshot.
//
// Memory model (seqlock slots, single writer per ring):
//   - each thread that records owns exactly one ring (acquired lazily,
//     registered in a fixed lock-free table, never freed — a dead thread's
//     recent events stay dumpable);
//   - a slot's fields are all relaxed atomics; the writer brackets a write
//     with seq = 2k+1 (in progress) ... payload ... seq = 2k+2 (release),
//     where k is the event ordinal, then publishes head = k+1 (release);
//   - a reader (dump, watchdog, signal handler — any thread) walks ordinals
//     [head-N, head), accepts a slot only when seq reads 2k+2 before AND
//     after the payload loads, and skips torn slots. No reader ever blocks
//     a writer; a dump racing live writers loses only the events being
//     overwritten mid-read.
//
// Zero-perturbation contract (shared with the rest of src/obs): recorded
// events are never read back into computation; numeric results are
// bit-identical with the recorder enabled (the default) or off.
//
// Crash reports: install_crash_handlers(path) arms SIGSEGV/SIGABRT/SIGUSR2.
// SIGUSR2 writes the report and the process continues (the live-inspection
// path); the fatal signals write the report, restore the default disposition
// and re-raise. The ring dump in the handler is async-signal-safe (atomics,
// stack buffers, write(2)); the appended metrics snapshot is best-effort —
// it try-locks the registry and allocates, which is safe for SIGUSR2 and
// accepted-risk for a process that is already crashing. DIGG_CRASH_REPORT=
// <path> installs the handlers automatically at first instrument creation.

#include <cstddef>
#include <cstdint>
#include <string>

namespace digg::obs {

enum class EventKind : std::uint32_t {
  kMark = 0,            // free-form marker (tests, apps); a/b caller-defined
  kVoteApplied,         // dom=shard, a=story slot, b=votes applied so far
  kChunkScheduled,      // dom=pool thread count, a=chunk index, b=chunk count
  kJobStart,            // a=chunk count, b=lanes
  kCheckpointRecorded,  // dom=shard, a=story slot, b=votes applied
  kCheckpointSave,      // a=events applied
  kCheckpointRestore,   // a=events applied
  kLruEvict,            // dom=shard, a=story slot
  kStoryRetired,        // dom=shard, a=story slot
  kQuery,               // a=events applied
};

/// Stable lowercase name ("vote_applied") used by dumps; "?" for unknown.
[[nodiscard]] const char* event_kind_name(EventKind kind) noexcept;

/// Records one event into the calling thread's ring. Wait-free after the
/// first call on a thread (which allocates and registers the ring). `dom`
/// is the event's domain — stream shard, pool lane — so dumps group by it.
void record_event(EventKind kind, std::uint32_t dom = 0, std::uint64_t a = 0,
                  std::uint64_t b = 0) noexcept;

/// Default on; DIGG_RECORDER=off|0 disables at startup, and tests can
/// toggle. Disabled recording is one relaxed load.
[[nodiscard]] bool recorder_enabled() noexcept;
void set_recorder_enabled(bool on) noexcept;

/// Events retained per thread ring (DIGG_RECORDER_EVENTS, default 256,
/// clamped to [16, 65536], fixed once the first ring exists).
[[nodiscard]] std::size_t recorder_ring_capacity() noexcept;
/// Rings registered so far (threads that have recorded at least once).
[[nodiscard]] std::size_t recorder_ring_count() noexcept;

/// Human-readable dump of every ring's surviving events, oldest to newest
/// within a ring: `ring=<r> seq=<k> t_us=<t> kind=<name> dom=<d> a=<a>
/// b=<b>` lines. Torn slots (overwritten mid-read) are skipped.
[[nodiscard]] std::string dump_recorder();

/// The signal-handler dump: ring events (async-signal-safe) plus the
/// best-effort metrics snapshot, written to `fd`. `signal` 0 means "not a
/// signal" (watchdog stall dumps reuse this writer).
void write_crash_report(int fd, int signal) noexcept;

/// Arms SIGSEGV/SIGABRT/SIGUSR2 to write a crash report to `path`.
/// Idempotent; the path is copied into static storage (signal handlers
/// cannot touch heap state). Repeated calls update the path.
void install_crash_handlers(const std::string& path);
[[nodiscard]] bool crash_handlers_installed() noexcept;
/// The installed crash-report path ("" when handlers are not installed).
/// The watchdog writes stall dumps beside it (`<path>.stall`).
[[nodiscard]] const char* crash_report_path() noexcept;

}  // namespace digg::obs
