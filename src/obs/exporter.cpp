#include "src/obs/exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>

#include "src/obs/log.h"

namespace digg::obs {

namespace {

struct ExporterState {
  std::thread thread;
  int listen_fd = -1;
  std::atomic<bool> running{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint16_t> port{0};
};

// Leaked: the exporter thread may outlive main()'s statics until the atexit
// stop hook joins it, and the state must stay valid for that hook.
ExporterState* state() {
  static ExporterState* s = new ExporterState();
  return s;
}

void append_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out.append(buf);
}

void append_uint(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out.append(buf);
}

// Diffs every counter against its previous value and publishes
// `<counter>.rate` gauges (events/second over the last tick). The ".rate"
// suffix is deliberate: it sanitizes to `_rate` for Prometheus but matches
// none of bench_check.py's gated suffixes, so instantaneous rates never trip
// the regression gate.
void publish_rate_gauges(std::map<std::string, std::uint64_t>& prev,
                         std::chrono::steady_clock::time_point& prev_t) {
  const MetricsSnapshot snap = Registry::global().snapshot();
  const auto now = std::chrono::steady_clock::now();
  const double dt = std::chrono::duration<double>(now - prev_t).count();
  if (dt <= 0.0) return;
  for (const auto& [name, value] : snap.counters) {
    const auto it = prev.find(name);
    const std::uint64_t before = it == prev.end() ? 0 : it->second;
    const std::uint64_t delta = value >= before ? value - before : 0;
    Registry::global()
        .gauge(name + ".rate")
        .set(static_cast<double>(delta) / dt);
    prev[name] = value;
  }
  prev_t = now;
}

void serve_one(int fd, const std::string& body) {
  // Read whatever request bytes arrived (we answer every path identically),
  // then write one HTTP/1.1 response and close. Serial, blocking, minimal.
  char req[1024];
  (void)::read(fd, req, sizeof(req));
  std::string resp = "HTTP/1.1 200 OK\r\n";
  resp.append(
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n");
  resp.append("Content-Length: ");
  append_uint(resp, body.size());
  resp.append("\r\nConnection: close\r\n\r\n");
  resp.append(body);
  std::size_t off = 0;
  while (off < resp.size()) {
    const ssize_t n = ::write(fd, resp.data() + off, resp.size() - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
}

void exporter_loop(unsigned tick_ms) {
  ExporterState* s = state();
  std::map<std::string, std::uint64_t> prev_counters;
  auto prev_t = std::chrono::steady_clock::now();
  auto next_tick = prev_t + std::chrono::milliseconds(tick_ms);
  while (!s->stop.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = s->listen_fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 200);
    if (rc > 0 && (pfd.revents & POLLIN) != 0) {
      const int fd = ::accept(s->listen_fd, nullptr, nullptr);
      if (fd >= 0) {
        serve_one(fd, render_prometheus(Registry::global().snapshot()));
        ::close(fd);
      }
    }
    if (std::chrono::steady_clock::now() >= next_tick) {
      publish_rate_gauges(prev_counters, prev_t);
      next_tick += std::chrono::milliseconds(tick_ms);
    }
  }
}

void stop_exporter_at_exit() { stop_exporter(); }

}  // namespace

std::uint16_t start_exporter(std::uint16_t port, unsigned tick_ms) {
  ExporterState* s = state();
  if (s->running.load(std::memory_order_acquire))
    return s->port.load(std::memory_order_acquire);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    log_error("obs", "exporter socket() failed",
              {{"errno", std::to_string(errno)}});
    return 0;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    log_error("obs", "exporter bind/listen failed",
              {{"port", std::to_string(port)},
               {"errno", std::to_string(errno)}});
    ::close(fd);
    return 0;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return 0;
  }
  const std::uint16_t bound_port = ntohs(bound.sin_port);

  s->listen_fd = fd;
  s->stop.store(false, std::memory_order_release);
  s->port.store(bound_port, std::memory_order_release);
  s->thread = std::thread(exporter_loop, tick_ms == 0 ? 1000 : tick_ms);
  s->running.store(true, std::memory_order_release);
  static const bool atexit_registered = [] {
    std::atexit(stop_exporter_at_exit);
    return true;
  }();
  (void)atexit_registered;
  log_info("obs", "metrics exporter listening",
           {{"port", std::to_string(bound_port)}});
  // CI smokes bind port 0 (ephemeral) and parse this exact line to find the
  // endpoint — keep the format in sync with scripts/ci.sh.
  std::printf("DIGG_METRICS_PORT_BOUND=%u\n", bound_port);
  std::fflush(stdout);
  return bound_port;
}

void stop_exporter() {
  ExporterState* s = state();
  if (!s->running.load(std::memory_order_acquire)) return;
  s->stop.store(true, std::memory_order_release);
  if (s->thread.joinable()) s->thread.join();
  if (s->listen_fd >= 0) ::close(s->listen_fd);
  s->listen_fd = -1;
  s->port.store(0, std::memory_order_release);
  s->running.store(false, std::memory_order_release);
}

bool exporter_running() noexcept {
  return state()->running.load(std::memory_order_acquire);
}

std::uint16_t exporter_port() noexcept {
  return state()->port.load(std::memory_order_acquire);
}

void maybe_start_exporter_from_env() {
  static const bool started = [] {
    const char* env = std::getenv("DIGG_METRICS_PORT");
    if (!env || *env == '\0') return false;
    const long port = std::strtol(env, nullptr, 10);
    if (port < 0 || port > 65535) {
      log_warn("obs", "DIGG_METRICS_PORT out of range; exporter disabled",
               {{"value", env}});
      return false;
    }
    return start_exporter(static_cast<std::uint16_t>(port)) != 0;
  }();
  (void)started;
}

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name.front() >= '0' && name.front() <= '9')
    out.push_back('_');
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prometheus_label_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out.append("\\\\"); break;
      case '"': out.append("\\\""); break;
      case '\n': out.append("\\n"); break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : snap.counters) {
    const std::string pn = "digg_" + prometheus_name(name) + "_total";
    out.append("# TYPE ").append(pn).append(" counter\n");
    out.append(pn).push_back(' ');
    append_uint(out, value);
    out.push_back('\n');
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string pn = "digg_" + prometheus_name(name);
    out.append("# TYPE ").append(pn).append(" gauge\n");
    out.append(pn).push_back(' ');
    append_number(out, value);
    out.push_back('\n');
  }
  for (const MetricsSnapshot::Hist& h : snap.histograms) {
    const std::string pn = "digg_" + prometheus_name(h.name);
    out.append("# TYPE ").append(pn).append(" histogram\n");
    // The registry stores per-bucket counts; the exposition format wants
    // cumulative counts per le bound.
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cum += h.counts[i];
      out.append(pn).append("_bucket{le=\"");
      if (i < h.bounds.size()) {
        append_number(out, h.bounds[i]);
      } else {
        out.append("+Inf");
      }
      out.append("\"} ");
      append_uint(out, cum);
      out.push_back('\n');
    }
    out.append(pn).append("_sum ");
    append_number(out, h.sum);
    out.push_back('\n');
    out.append(pn).append("_count ");
    append_uint(out, h.count);
    out.push_back('\n');
  }
  return out;
}

}  // namespace digg::obs
