#include "src/obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "src/obs/log.h"

namespace digg::obs {

namespace {

struct TraceEvent {
  const char* name;
  const char* cat;
  double ts_us;
  double dur_us;
  unsigned tid;
};

// Leaked singleton: spans may fire from worker threads while atexit
// handlers run on the main thread, so the buffer must never be destroyed.
struct TraceState {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::string path;
  std::chrono::steady_clock::time_point epoch;
  unsigned next_tid = 0;
};

TraceState& state() {
  static TraceState* s = new TraceState();
  return *s;
}

// -1 = uninitialized (env not read yet), 0 = off, 1 = recording.
std::atomic<int> g_tracing{-1};

unsigned thread_tid() {
  thread_local unsigned tid = [] {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.next_tid++;
  }();
  return tid;
}

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - state().epoch)
      .count();
}

void init_from_env() {
  const char* path = std::getenv("DIGG_TRACE");
  if (!path || *path == '\0') {
    int expected = -1;
    g_tracing.compare_exchange_strong(expected, 0,
                                      std::memory_order_relaxed);
    return;
  }
  TraceState& s = state();
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.path = path;
    s.epoch = std::chrono::steady_clock::now();
  }
  std::atexit(trace_stop);
  int expected = -1;
  g_tracing.compare_exchange_strong(expected, 1, std::memory_order_relaxed);
}

}  // namespace

bool trace_enabled() noexcept {
  int v = g_tracing.load(std::memory_order_acquire);
  if (v == -1) {
    init_from_env();
    v = g_tracing.load(std::memory_order_acquire);
  }
  return v == 1;
}

void trace_start(const std::string& path) {
  TraceState& s = state();
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.events.clear();
    s.path = path;
    s.epoch = std::chrono::steady_clock::now();
  }
  g_tracing.store(1, std::memory_order_release);
}

void trace_stop() {
  // Only one stop writes; subsequent calls (e.g. atexit after an explicit
  // trace_stop) see tracing already off and return.
  int expected = 1;
  if (!g_tracing.compare_exchange_strong(expected, 0,
                                         std::memory_order_acq_rel))
    return;
  TraceState& s = state();
  std::vector<TraceEvent> events;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    events.swap(s.events);
    path = s.path;
  }
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    log_error("obs", "cannot write trace file", {{"path", path}});
    return;
  }
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::fprintf(f,
                 "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                 "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u}%s\n",
                 e.name, e.cat, e.ts_us, e.dur_us, e.tid,
                 i + 1 < events.size() ? "," : "");
  }
  std::fputs("]}\n", f);
  std::fclose(f);
  log_debug("obs", "trace written",
            {{"path", path}, {"events", events.size()}});
}

std::size_t trace_event_count() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.events.size();
}

Span::Span(const char* name, const char* cat) noexcept
    : name_(name), cat_(cat), active_(trace_enabled()) {
  if (active_) start_us_ = now_us();
}

Span::~Span() {
  if (!active_ || !trace_enabled()) return;
  const double end_us = now_us();
  TraceState& s = state();
  const unsigned tid = thread_tid();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.events.push_back({name_, cat_, start_us_, end_us - start_us_, tid});
}

}  // namespace digg::obs
