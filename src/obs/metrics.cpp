#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "src/obs/log.h"

namespace digg::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::observe(double v) noexcept {
  // lower_bound: first bound >= v, so bucket i counts v <= bounds[i] as
  // documented (upper_bound would push an exact-bound hit one bucket up).
  const std::size_t idx =
      static_cast<std::size_t>(std::lower_bound(bounds_.begin(), bounds_.end(), v) -
                               bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.load(std::memory_order_relaxed));
  return out;
}

const std::vector<double>& default_latency_bounds_us() {
  static const std::vector<double>* bounds = [] {
    auto* v = new std::vector<double>();
    for (double b = 1.0; b <= 8.5e6; b *= 2.0) v->push_back(b);
    return v;
  }();
  return *bounds;
}

struct Registry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

namespace {

void dump_metrics_at_exit() {
  const char* path = std::getenv("DIGG_METRICS");
  if (!path || *path == '\0') return;
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "obs: cannot write DIGG_METRICS=%s\n", path);
    return;
  }
  const std::string json = Registry::global().to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

void register_env_dump_once() {
  static const bool registered = [] {
    if (const char* path = std::getenv("DIGG_METRICS");
        path && *path != '\0') {
      std::atexit(dump_metrics_at_exit);
    }
    return true;
  }();
  (void)registered;
}

void append_json_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out.append(buf);
}

void append_json_uint(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out.append(buf);
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

Registry::Impl* Registry::impl() {
  if (!impl_) impl_ = new Impl();
  return impl_;
}

const Registry::Impl* Registry::impl() const {
  if (!impl_) impl_ = new Impl();
  return impl_;
}

Registry::~Registry() { delete impl_; }

Counter& Registry::counter(std::string_view name) {
  register_env_dump_once();
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mutex);
  auto it = im->counters.find(name);
  if (it == im->counters.end()) {
    it = im->counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  register_env_dump_once();
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mutex);
  auto it = im->gauges.find(name);
  if (it == im->gauges.end()) {
    it = im->gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  register_env_dump_once();
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mutex);
  auto it = im->histograms.find(name);
  if (it == im->histograms.end()) {
    if (bounds.empty()) bounds = default_latency_bounds_us();
    it = im->histograms
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

std::string Registry::to_json() const {
  const Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mutex);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : im->counters) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    append_json_uint(out, c->value());
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, g] : im->gauges) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    append_json_number(out, g->value());
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, h] : im->histograms) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.append(":{\"count\":");
    append_json_uint(out, h->count());
    out.append(",\"sum\":");
    append_json_number(out, h->sum());
    out.append(",\"buckets\":[");
    const std::vector<double>& bounds = h->bounds();
    const std::vector<std::uint64_t> counts = h->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out.push_back(',');
      out.push_back('[');
      if (i < bounds.size()) {
        append_json_number(out, bounds[i]);
      } else {
        out.append("\"+inf\"");
      }
      out.push_back(',');
      append_json_uint(out, counts[i]);
      out.append("]");
    }
    out.append("]}");
  }
  out.append("}}");
  return out;
}

void Registry::reset_for_test() {
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mutex);
  im->counters.clear();
  im->gauges.clear();
  im->histograms.clear();
}

Registry& Registry::global() {
  // Leaked so instruments outlive every other static and atexit handler.
  static Registry* g = new Registry();
  return *g;
}

bool write_bench_report(const std::string& path, std::string_view name,
                        std::uint64_t seed, double wall_ms) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    log_error("obs", "cannot write bench report", {{"path", path}});
    return false;
  }
  std::string out = "{\"bench\":";
  append_json_string(out, name);
  out.append(",\"seed\":");
  append_json_uint(out, seed);
  out.append(",\"wall_ms\":");
  append_json_number(out, wall_ms);
  out.append(",\"metrics\":");
  out.append(Registry::global().to_json());
  out.append("}\n");
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace digg::obs
