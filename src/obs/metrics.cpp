#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "src/obs/exporter.h"
#include "src/obs/log.h"
#include "src/obs/recorder.h"
#include "src/obs/watchdog.h"

namespace digg::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::observe(double v) noexcept {
  // lower_bound: first bound >= v, so bucket i counts v <= bounds[i] as
  // documented (upper_bound would push an exact-bound hit one bucket up).
  const std::size_t idx =
      static_cast<std::size_t>(std::lower_bound(bounds_.begin(), bounds_.end(), v) -
                               bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.load(std::memory_order_relaxed));
  return out;
}

double Histogram::quantile(double q) const {
  return histogram_quantile(bounds_, bucket_counts(), q);
}

double histogram_quantile(const std::vector<double>& bounds,
                          const std::vector<std::uint64_t>& counts, double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0 || counts.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = static_cast<double>(cum + counts[i]);
    if (next >= rank) {
      // Overflow bucket: a log-bucketed histogram cannot resolve beyond its
      // last finite bound, so clamp there instead of inventing a value.
      if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double into = rank - static_cast<double>(cum);
      return lower + (upper - lower) * into / static_cast<double>(counts[i]);
    }
    cum += counts[i];
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

const std::vector<double>& default_latency_bounds_us() {
  static const std::vector<double>* bounds = [] {
    auto* v = new std::vector<double>();
    for (double b = 1.0; b <= 8.5e6; b *= 2.0) v->push_back(b);
    return v;
  }();
  return *bounds;
}

struct Registry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;

  /// Caller holds `mutex`. Maps iterate sorted, so the snapshot's
  /// sorted-sections contract falls out for free.
  MetricsSnapshot snapshot_locked() const {
    MetricsSnapshot snap;
    snap.counters.reserve(counters.size());
    for (const auto& [name, c] : counters)
      snap.counters.emplace_back(name, c->value());
    snap.gauges.reserve(gauges.size());
    for (const auto& [name, g] : gauges)
      snap.gauges.emplace_back(name, g->value());
    snap.histograms.reserve(histograms.size());
    for (const auto& [name, h] : histograms) {
      MetricsSnapshot::Hist hist;
      hist.name = name;
      hist.bounds = h->bounds();
      hist.counts = h->bucket_counts();
      hist.count = h->count();
      hist.sum = h->sum();
      snap.histograms.push_back(std::move(hist));
    }
    return snap;
  }
};

namespace {

void dump_metrics_at_exit() {
  const char* path = std::getenv("DIGG_METRICS");
  if (!path || *path == '\0') return;
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "obs: cannot write DIGG_METRICS=%s\n", path);
    return;
  }
  const std::string json = Registry::global().to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

// One-shot wiring of every env-activated telemetry surface, run the first
// time any instrument is created (i.e. before any instrumented code can
// produce data worth observing): the DIGG_METRICS exit dump, the
// DIGG_CRASH_REPORT signal handlers, the DIGG_METRICS_PORT exporter, and
// the DIGG_WATCHDOG_MS stall watchdog. Unwritable output paths warn here,
// at startup, instead of silently dropping output at exit.
void env_init_once() {
  static const bool initialized = [] {
    if (const char* path = std::getenv("DIGG_METRICS");
        path && *path != '\0') {
      warn_if_unwritable("DIGG_METRICS", path);
      std::atexit(dump_metrics_at_exit);
    }
    if (const char* path = std::getenv("DIGG_CRASH_REPORT");
        path && *path != '\0') {
      if (warn_if_unwritable("DIGG_CRASH_REPORT", path))
        install_crash_handlers(path);
    }
    maybe_start_exporter_from_env();
    maybe_start_watchdog_from_env();
    return true;
  }();
  (void)initialized;
}

void append_json_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out.append(buf);
}

void append_json_uint(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out.append(buf);
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
}

bool is_latency_name(std::string_view name) {
  return name.ends_with("_us") || name.ends_with("_ms");
}

}  // namespace

Registry::Impl* Registry::impl() {
  if (!impl_) impl_ = new Impl();
  return impl_;
}

const Registry::Impl* Registry::impl() const {
  if (!impl_) impl_ = new Impl();
  return impl_;
}

Registry::~Registry() { delete impl_; }

Counter& Registry::counter(std::string_view name) {
  env_init_once();
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mutex);
  auto it = im->counters.find(name);
  if (it == im->counters.end()) {
    it = im->counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  env_init_once();
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mutex);
  auto it = im->gauges.find(name);
  if (it == im->gauges.end()) {
    it = im->gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  env_init_once();
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mutex);
  auto it = im->histograms.find(name);
  if (it == im->histograms.end()) {
    if (bounds.empty()) bounds = default_latency_bounds_us();
    it = im->histograms
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  const Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mutex);
  return im->snapshot_locked();
}

bool Registry::try_snapshot(MetricsSnapshot& out) const {
  const Impl* im = impl();
  std::unique_lock<std::mutex> lock(im->mutex, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  out = im->snapshot_locked();
  return true;
}

std::string render_metrics_json(const MetricsSnapshot& snap) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    append_json_uint(out, value);
  }
  // Gauges merge the registry's gauges with the derived tail-latency gauges
  // (`<hist>_p99` for *_us / *_ms histograms with data) through one sorted
  // map, so the sorted-keys contract holds for the combined section and a
  // real gauge always wins a name collision.
  std::map<std::string_view, double> gauges;
  std::vector<std::string> derived_names;  // keep string_views alive
  derived_names.reserve(snap.histograms.size());
  for (const MetricsSnapshot::Hist& h : snap.histograms) {
    if (h.count == 0 || !is_latency_name(h.name)) continue;
    derived_names.push_back(h.name + "_p99");
    gauges.emplace(derived_names.back(),
                   histogram_quantile(h.bounds, h.counts, 0.99));
  }
  for (const auto& [name, value] : snap.gauges)
    gauges.insert_or_assign(name, value);
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    append_json_number(out, value);
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const MetricsSnapshot::Hist& h : snap.histograms) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, h.name);
    out.append(":{\"count\":");
    append_json_uint(out, h.count);
    out.append(",\"sum\":");
    append_json_number(out, h.sum);
    out.append(",\"buckets\":[");
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out.push_back(',');
      out.push_back('[');
      if (i < h.bounds.size()) {
        append_json_number(out, h.bounds[i]);
      } else {
        out.append("\"+inf\"");
      }
      out.push_back(',');
      append_json_uint(out, h.counts[i]);
      out.append("]");
    }
    out.append("]}");
  }
  out.append("}}");
  return out;
}

std::string Registry::to_json() const { return render_metrics_json(snapshot()); }

void Registry::reset_for_test() {
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mutex);
  im->counters.clear();
  im->gauges.clear();
  im->histograms.clear();
}

Registry& Registry::global() {
  // Leaked so instruments outlive every other static and atexit handler.
  static Registry* g = new Registry();
  return *g;
}

bool write_bench_report(const std::string& path, std::string_view name,
                        std::uint64_t seed, double wall_ms) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    log_error("obs", "cannot write bench report", {{"path", path}});
    return false;
  }
  std::string out = "{\"bench\":";
  append_json_string(out, name);
  out.append(",\"seed\":");
  append_json_uint(out, seed);
  out.append(",\"wall_ms\":");
  append_json_number(out, wall_ms);
  out.append(",\"metrics\":");
  out.append(Registry::global().to_json());
  out.append("}\n");
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  return true;
}

bool warn_if_unwritable(const char* env_name, const char* path) {
  if (!path || *path == '\0') return false;
  // Probe with open-for-append: proves the path is creatable/writable
  // without truncating anything that already exists.
  if (std::FILE* f = std::fopen(path, "a")) {
    std::fclose(f);
    return true;
  }
  log_warn("obs", "output path is not writable; its output will be dropped",
           {{"env", env_name}, {"path", path}});
  return false;
}

}  // namespace digg::obs
