#pragma once
// Digg's front-page promotion algorithms. The real algorithm was secret and
// changed regularly (§3); the paper's dataset pins one hard observable: no
// front-page story had fewer than 43 votes and no upcoming story had more
// than 42. We provide three policies:
//
//  - VoteCountPolicy:   the June-2006 era behaviour the dataset exhibits —
//                       promote at a vote-count threshold reached within the
//                       upcoming lifetime.
//  - VoteRatePolicy:    threshold + minimum recent voting rate ("the rate at
//                       which it receives them", §3).
//  - DiversityPolicy:   the September-2006 change — votes are discounted by
//                       "digging diversity", i.e. votes from fans of prior
//                       voters count less.

#include <memory>
#include <string>

#include "src/digg/types.h"

namespace digg::platform {

/// Decision interface consulted after every vote on an upcoming story.
class PromotionPolicy {
 public:
  virtual ~PromotionPolicy() = default;

  /// True if the story should be promoted now. `network` is the fan graph
  /// (needed by diversity-aware policies).
  [[nodiscard]] virtual bool should_promote(const Story& story,
                                            const graph::Digraph& network,
                                            Minutes now) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Promote once vote_count >= threshold, provided the story is still within
/// its promotion window (24h per §3).
class VoteCountPolicy final : public PromotionPolicy {
 public:
  explicit VoteCountPolicy(std::size_t threshold = 43,
                           Minutes window = kMinutesPerDay);

  [[nodiscard]] bool should_promote(const Story& story,
                                    const graph::Digraph& network,
                                    Minutes now) const override;
  [[nodiscard]] std::string name() const override { return "vote-count"; }
  [[nodiscard]] std::size_t threshold() const noexcept { return threshold_; }

 private:
  std::size_t threshold_;
  Minutes window_;
};

/// Promote once vote_count >= threshold AND the last `rate_votes` votes
/// arrived within `rate_window` minutes.
class VoteRatePolicy final : public PromotionPolicy {
 public:
  VoteRatePolicy(std::size_t threshold = 43, std::size_t rate_votes = 10,
                 Minutes rate_window = 4.0 * kMinutesPerHour,
                 Minutes window = kMinutesPerDay);

  [[nodiscard]] bool should_promote(const Story& story,
                                    const graph::Digraph& network,
                                    Minutes now) const override;
  [[nodiscard]] std::string name() const override { return "vote-rate"; }

 private:
  std::size_t threshold_;
  std::size_t rate_votes_;
  Minutes rate_window_;
  Minutes window_;
};

/// The September-2006 "unique digging diversity" variant: each vote is
/// weighted by how independent the voter is of prior voters — a vote from a
/// fan of any previous voter counts `fan_vote_weight` (< 1), an independent
/// vote counts 1. Promote when the weighted sum reaches the threshold.
class DiversityPolicy final : public PromotionPolicy {
 public:
  explicit DiversityPolicy(double weighted_threshold = 43.0,
                           double fan_vote_weight = 0.4,
                           Minutes window = kMinutesPerDay);

  [[nodiscard]] bool should_promote(const Story& story,
                                    const graph::Digraph& network,
                                    Minutes now) const override;
  [[nodiscard]] std::string name() const override { return "diversity"; }

  /// The diversity-weighted vote mass of the story's current votes.
  [[nodiscard]] double weighted_votes(const Story& story,
                                      const graph::Digraph& network) const;

 private:
  double weighted_threshold_;
  double fan_vote_weight_;
  Minutes window_;
};

/// Factory helpers.
[[nodiscard]] std::unique_ptr<PromotionPolicy> make_june2006_policy();
[[nodiscard]] std::unique_ptr<PromotionPolicy> make_september2006_policy();

}  // namespace digg::platform
