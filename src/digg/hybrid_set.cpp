#include "src/digg/hybrid_set.h"

#include <algorithm>

namespace digg::platform {

void HybridSet::reset(std::size_t universe) {
  universe_ = universe;
  main_.clear();
  tail_.clear();
  dead_.clear();
  if (bitmap_) {
    // Only the words a previous story dirtied need zeroing; an empty bitmap
    // left over from a shed()/fresh instance costs nothing.
    if (bit_count_ > 0) std::fill(words_.begin(), words_.end(), 0ull);
    bit_count_ = 0;
    bitmap_ = false;
  }
}

void HybridSet::grow_universe(std::size_t need) {
  if (need <= universe_) return;
  universe_ = need;
  if (bitmap_) words_.resize((universe_ + 63) / 64, 0ull);
}

bool HybridSet::insert(std::uint32_t id) {
  if (id >= universe_) grow_universe(static_cast<std::size_t>(id) + 1);
  if (bitmap_) {
    std::uint64_t& word = words_[id >> 6];
    const std::uint64_t bit = 1ull << (id & 63);
    if (word & bit) return false;
    word |= bit;
    ++bit_count_;
    return true;
  }
  if (detail::unsorted_contains(tail_, id)) return false;
  std::size_t pos = 0;
  if (detail::gallop_contains(main_, id, pos)) {
    // Present in main_ unless tombstoned; a tombstoned id resurrects by
    // cancelling its pending erase.
    for (std::size_t i = 0; i < dead_.size(); ++i) {
      if (dead_[i] == id) {
        dead_[i] = dead_.back();
        dead_.pop_back();
        return true;
      }
    }
    return false;
  }
  tail_.push_back(id);
  if (tail_.size() >= kStageCap) {
    flush();
    if (main_.size() >= promote_threshold(universe_)) promote();
  }
  return true;
}

bool HybridSet::erase(std::uint32_t id) {
  if (id >= universe_) return false;
  if (bitmap_) {
    std::uint64_t& word = words_[id >> 6];
    const std::uint64_t bit = 1ull << (id & 63);
    if ((word & bit) == 0) return false;
    word &= ~bit;
    --bit_count_;
    return true;
  }
  for (std::size_t i = 0; i < tail_.size(); ++i) {
    if (tail_[i] == id) {
      tail_[i] = tail_.back();
      tail_.pop_back();
      return true;
    }
  }
  std::size_t pos = 0;
  if (!detail::gallop_contains(main_, id, pos)) return false;
  if (detail::unsorted_contains(dead_, id)) return false;  // already erased
  dead_.push_back(id);
  if (dead_.size() >= kStageCap) flush();
  return true;
}

bool HybridSet::contains(std::uint32_t id) const noexcept {
  if (id >= universe_) return false;
  if (bitmap_) return (words_[id >> 6] >> (id & 63)) & 1u;
  if (detail::unsorted_contains(tail_, id)) return true;
  std::size_t pos = 0;
  return detail::gallop_contains(main_, id, pos) &&
         !detail::unsorted_contains(dead_, id);
}

void HybridSet::flush() {
  if (tail_.empty() && dead_.empty()) return;
  std::sort(tail_.begin(), tail_.end());
  std::sort(dead_.begin(), dead_.end());
  scratch_.clear();
  scratch_.reserve(main_.size() + tail_.size());
  // One pass: merge main_ (minus dead_) with tail_. The three runs are
  // sorted and mutually disjoint by the staging invariants.
  std::size_t i = 0, j = 0, d = 0;
  while (i < main_.size() || j < tail_.size()) {
    if (d < dead_.size() && i < main_.size() && main_[i] == dead_[d]) {
      ++i;
      ++d;
      continue;
    }
    if (j >= tail_.size() ||
        (i < main_.size() && main_[i] < tail_[j])) {
      scratch_.push_back(main_[i++]);
    } else {
      scratch_.push_back(tail_[j++]);
    }
  }
  main_.swap(scratch_);
  tail_.clear();
  dead_.clear();
}

void HybridSet::promote() {
  flush();
  words_.assign((universe_ + 63) / 64, 0ull);
  // main_ is sorted and unique, so the word-run union kernel sets every
  // bit exactly once and its newly-set count is the cardinality.
  bit_count_ =
      simd::kernels().bitmap_set_u32(words_.data(), main_.data(), main_.size());
  bitmap_ = true;
  main_.clear();
  tail_.clear();
  dead_.clear();
}

std::vector<std::uint32_t> HybridSet::to_vector() const {
  std::vector<std::uint32_t> out;
  out.reserve(size());
  if (bitmap_) {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        out.push_back(static_cast<std::uint32_t>(w * 64 + bit));
        word &= word - 1;
      }
    }
    return out;
  }
  for (const std::uint32_t id : main_) {
    if (!detail::unsorted_contains(dead_, id)) out.push_back(id);
  }
  std::vector<std::uint32_t> tail_sorted = tail_;
  std::sort(tail_sorted.begin(), tail_sorted.end());
  std::vector<std::uint32_t> merged;
  merged.reserve(out.size() + tail_sorted.size());
  std::merge(out.begin(), out.end(), tail_sorted.begin(), tail_sorted.end(),
             std::back_inserter(merged));
  return merged;
}

void HybridSet::shed() noexcept {
  std::vector<std::uint32_t>().swap(main_);
  std::vector<std::uint32_t>().swap(tail_);
  std::vector<std::uint32_t>().swap(dead_);
  std::vector<std::uint32_t>().swap(scratch_);
  std::vector<std::uint32_t>().swap(scratch_pos_);
  std::vector<std::uint64_t>().swap(words_);
  bit_count_ = 0;
  bitmap_ = false;
}

}  // namespace digg::platform
