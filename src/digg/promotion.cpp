#include "src/digg/promotion.h"

#include "src/digg/hybrid_set.h"

namespace digg::platform {

VoteCountPolicy::VoteCountPolicy(std::size_t threshold, Minutes window)
    : threshold_(threshold), window_(window) {}

bool VoteCountPolicy::should_promote(const Story& story,
                                     const graph::Digraph& /*network*/,
                                     Minutes now) const {
  if (now - story.submitted_at > window_) return false;
  return story.vote_count() >= threshold_;
}

VoteRatePolicy::VoteRatePolicy(std::size_t threshold, std::size_t rate_votes,
                               Minutes rate_window, Minutes window)
    : threshold_(threshold),
      rate_votes_(rate_votes),
      rate_window_(rate_window),
      window_(window) {}

bool VoteRatePolicy::should_promote(const Story& story,
                                    const graph::Digraph& /*network*/,
                                    Minutes now) const {
  if (now - story.submitted_at > window_) return false;
  if (story.vote_count() < threshold_) return false;
  if (story.vote_count() < rate_votes_) return false;
  const Minutes window_start = story.times[story.vote_count() - rate_votes_];
  return story.times.back() - window_start <= rate_window_;
}

DiversityPolicy::DiversityPolicy(double weighted_threshold,
                                 double fan_vote_weight, Minutes window)
    : weighted_threshold_(weighted_threshold),
      fan_vote_weight_(fan_vote_weight),
      window_(window) {}

double DiversityPolicy::weighted_votes(const Story& story,
                                       const graph::Digraph& network) const {
  // A vote is "in-network" if the voter is a fan of any prior voter
  // (including the submitter). visible = users who follow some prior voter.
  // Hybrid scratch set reused across calls: each vote merges one sorted fan
  // span and membership is a galloping search (or a bit probe once big), so
  // the per-vote promotion check stays cheap.
  thread_local HybridSet watchers_of_prior;
  watchers_of_prior.reset(network.node_count());
  double mass = 0.0;
  for (std::size_t i = 0; i < story.voters.size(); ++i) {
    const UserId voter = story.voters[i];
    if (i == 0) {
      mass += 1.0;  // submitter's own digg counts fully
    } else {
      mass += watchers_of_prior.contains(voter) ? fan_vote_weight_ : 1.0;
    }
    if (voter < network.node_count())
      watchers_of_prior.union_span(network.fans(voter));
  }
  return mass;
}

bool DiversityPolicy::should_promote(const Story& story,
                                     const graph::Digraph& network,
                                     Minutes now) const {
  if (now - story.submitted_at > window_) return false;
  return weighted_votes(story, network) >= weighted_threshold_;
}

std::unique_ptr<PromotionPolicy> make_june2006_policy() {
  return std::make_unique<VoteCountPolicy>();
}

std::unique_ptr<PromotionPolicy> make_september2006_policy() {
  return std::make_unique<DiversityPolicy>();
}

}  // namespace digg::platform
