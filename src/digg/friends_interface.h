#pragma once
// The Friends interface (§3): a user's fans can see the stories the user
// submitted or dugg. A story's *influence* (§4.1) is the number of users who
// can see it through this interface — the union of fans of the submitter and
// of everyone who has voted so far.
//
// VisibilitySet supports incremental updates (add one voter at a time) so
// the vote-dynamics simulation stays O(sum of fan degrees) per story. The
// watcher and voter sets are hybrid small-sets (hybrid_set.h): a sorted
// uint32 array while small — the common case, since analysis sets live
// inside the 21-vote checkpoint horizon — promoting to a word-packed bitmap
// past the size threshold. Unioning a voter's fans is a branch-light merge
// of the sorted CSR fan span, membership a galloping binary search, and a
// set costs bytes proportional to its cardinality (capped by the bitmap)
// instead of O(num_users) dense stamps, which is what lets per-story sets
// pool ~100x more densely in the streaming engine.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/digg/hybrid_set.h"
#include "src/digg/types.h"
#include "src/stats/rng.h"

namespace digg::platform {

/// Incrementally maintained set of users who can see a story through the
/// Friends interface. Voters themselves are excluded (they already saw it).
/// Holds a reference to `network`: the graph must outlive the set.
class VisibilitySet {
 public:
  /// Unbound set; call rebind() before use. Exists so scratch instances can
  /// live in thread_local storage and outlast any one graph.
  VisibilitySet() = default;
  explicit VisibilitySet(const graph::Digraph& network) { rebind(network); }

  /// Points the set at `network` and empties it. Buffers are kept and
  /// grown, never shrunk, so a scratch instance reused across stories
  /// allocates only on the largest graph it has seen.
  void rebind(const graph::Digraph& network) {
    network_ = &network;
    watchers_.reset(network.node_count());
    voters_.reset(network.node_count());
    watcher_pool_.clear();
  }

  /// Empties the set, keeping the bound network and key universe.
  void reset() noexcept {
    watchers_.reset(watchers_.universe());
    voters_.reset(voters_.universe());
    watcher_pool_.clear();
  }

  /// Records a vote: `voter` stops being a watcher (they have acted) and all
  /// of the voter's fans become watchers.
  void add_voter(UserId voter);

  /// Users who can currently see the story but have not voted.
  [[nodiscard]] std::size_t influence() const noexcept {
    return watchers_.size();
  }
  [[nodiscard]] bool can_see(UserId user) const noexcept {
    return watchers_.contains(user);
  }
  [[nodiscard]] bool has_voted(UserId user) const noexcept {
    return voters_.contains(user);
  }
  [[nodiscard]] std::size_t voter_count() const noexcept {
    return voters_.size();
  }

  /// Uniform-ish random current watcher in O(1) expected time (rejection
  /// sampling over an insertion pool with lazy deletion). Returns nullopt if
  /// there are no watchers. Used by the vote simulator's fan channel.
  [[nodiscard]] std::optional<UserId> sample_watcher(stats::Rng& rng) const;

  /// Append-only log of users in the order they first became watchers.
  /// Entries may be stale (the user has since voted); each user appears at
  /// most once. The vote simulator consumes this incrementally to drive its
  /// one-shot exposure model.
  [[nodiscard]] const std::vector<UserId>& exposure_log() const noexcept {
    return watcher_pool_;
  }

  /// Resident bytes of the hybrid sets + pool (LRU byte accounting).
  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return watchers_.size_bytes() + voters_.size_bytes() +
           watcher_pool_.capacity() * sizeof(UserId);
  }

  /// Releases every heap buffer and empties the set. Rebind before reuse.
  /// Byte-budgeted pools call this on evict/retire so the memory actually
  /// returns instead of lingering as capacity.
  void shed() noexcept {
    watchers_.shed();
    voters_.shed();
    std::vector<UserId>().swap(watcher_pool_);
  }

 private:
  const graph::Digraph* network_ = nullptr;
  HybridSet watchers_;
  HybridSet voters_;
  std::vector<UserId> watcher_pool_;  // insertion log; may contain stale ids
};

/// Influence of a story after its first `votes_counted` votes (including the
/// submitter's digg as the first): number of non-voting users who could see
/// it through the Friends interface. This is the quantity of Fig. 3(a).
/// Uses a thread-local scratch VisibilitySet — O(1) setup per story.
[[nodiscard]] std::size_t story_influence(const StoryView& story,
                                          const graph::Digraph& network,
                                          std::size_t votes_counted);

/// Friends-interface activity summary ("stories my friends submitted /
/// dugg in the preceding 48 hours", §3): ids of stories visible to `user`
/// among `stories` given vote records up to time `now`.
struct FriendsActivity {
  std::vector<StoryId> submitted_by_friends;
  std::vector<StoryId> dugg_by_friends;
};
[[nodiscard]] FriendsActivity friends_activity(
    UserId user, std::span<const Story> stories,
    const graph::Digraph& network, Minutes now,
    Minutes lookback = 48.0 * kMinutesPerHour);

}  // namespace digg::platform
