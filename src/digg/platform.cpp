#include "src/digg/platform.h"

#include <stdexcept>

#include "src/digg/story.h"

namespace digg::platform {

Platform::Platform(graph::Digraph network, std::vector<UserProfile> users,
                   std::unique_ptr<PromotionPolicy> policy,
                   QueueParams queue_params)
    : network_(std::move(network)),
      users_(std::move(users)),
      policy_(std::move(policy)),
      queue_params_(queue_params) {
  if (!policy_) throw std::invalid_argument("Platform: null promotion policy");
  if (users_.size() != network_.node_count())
    throw std::invalid_argument(
        "Platform: user population and network size mismatch");
}

StoryId Platform::submit(UserId submitter, double quality, Minutes now) {
  if (submitter >= users_.size())
    throw std::out_of_range("Platform::submit: unknown user");
  const auto id = static_cast<StoryId>(stories_.size());
  stories_.push_back(make_story(id, submitter, now, quality));
  visibility_.emplace_back(network_);
  visibility_.back().add_voter(submitter);
  upcoming_.push_front(id);
  return id;
}

bool Platform::vote(StoryId story_id, UserId user, Minutes now) {
  if (story_id >= stories_.size())
    throw std::out_of_range("Platform::vote: unknown story");
  if (user >= users_.size())
    throw std::out_of_range("Platform::vote: unknown user");
  Story& s = stories_[story_id];
  if (s.phase == StoryPhase::kExpired)
    throw std::logic_error("Platform::vote: story expired");
  add_vote(s, user, now);
  visibility_[story_id].add_voter(user);

  if (s.phase == StoryPhase::kUpcoming &&
      policy_->should_promote(s, network_, now)) {
    s.phase = StoryPhase::kFrontPage;
    s.promoted_at = now;
    upcoming_.remove(story_id);
    front_page_.push_front(story_id);
    return true;
  }
  return false;
}

void Platform::expire_stale(Minutes now) {
  // Collect first: Listing::remove invalidates iteration order.
  std::vector<StoryId> stale;
  for (StoryId id : upcoming_.items()) {
    const Story& s = stories_[id];
    if (now - s.submitted_at > queue_params_.upcoming_lifetime)
      stale.push_back(id);
  }
  for (StoryId id : stale) {
    stories_[id].phase = StoryPhase::kExpired;
    upcoming_.remove(id);
  }
}

const Story& Platform::story(StoryId id) const {
  if (id >= stories_.size())
    throw std::out_of_range("Platform::story: unknown story");
  return stories_[id];
}

const VisibilitySet& Platform::visibility(StoryId id) const {
  if (id >= visibility_.size())
    throw std::out_of_range("Platform::visibility: unknown story");
  return visibility_[id];
}

}  // namespace digg::platform
