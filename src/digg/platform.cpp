#include "src/digg/platform.h"

#include <algorithm>
#include <stdexcept>

#include "src/digg/story.h"

namespace digg::platform {

Platform::Platform(graph::Digraph network, std::vector<UserProfile> users,
                   std::unique_ptr<PromotionPolicy> policy,
                   QueueParams queue_params)
    : network_(std::move(network)),
      users_(std::move(users)),
      policy_(std::move(policy)),
      queue_params_(queue_params) {
  if (!policy_) throw std::invalid_argument("Platform: null promotion policy");
  if (users_.size() != network_.node_count())
    throw std::invalid_argument(
        "Platform: user population and network size mismatch");
  // Budget slots by the hybrid set's worst case — two word-packed bitmaps
  // (1 bit per user each) plus slack for the sorted arrays and watcher pool.
  // Reserve up front so slot addresses (and thus visibility() references)
  // never move.
  const std::size_t per_slot =
      std::max<std::size_t>(1, users_.size()) / 4 + 4096;
  vis_capacity_ = std::clamp<std::size_t>(kVisCacheBudgetBytes / per_slot, 8,
                                          4096);
  vis_slots_.reserve(vis_capacity_);
}

StoryId Platform::submit(UserId submitter, double quality, Minutes now) {
  if (submitter >= users_.size())
    throw std::out_of_range("Platform::submit: unknown user");
  const auto id = static_cast<StoryId>(stories_.size());
  stories_.push_back(make_story(id, submitter, now, quality));
  vis_slot_of_.push_back(kNoSlot);  // set materialises lazily on first use
  upcoming_.push_front(id);
  return id;
}

bool Platform::vote(StoryId story_id, UserId user, Minutes now) {
  if (story_id >= stories_.size())
    throw std::out_of_range("Platform::vote: unknown story");
  if (user >= users_.size())
    throw std::out_of_range("Platform::vote: unknown user");
  Story& s = stories_[story_id];
  if (s.phase == StoryPhase::kExpired)
    throw std::logic_error("Platform::vote: story expired");
  // Fetch the slot *before* appending the vote: a cache miss replays the
  // current vote column, after which the incremental add_voter below brings
  // the set to the post-vote state exactly once.
  VisibilitySet& vis = visibility_slot(story_id);
  add_vote(s, user, now);
  vis.add_voter(user);

  if (s.phase == StoryPhase::kUpcoming &&
      policy_->should_promote(s, network_, now)) {
    s.phase = StoryPhase::kFrontPage;
    s.promoted_at = now;
    upcoming_.remove(story_id);
    front_page_.push_front(story_id);
    return true;
  }
  return false;
}

void Platform::expire_stale(Minutes now) {
  // Collect first: Listing::remove invalidates iteration order.
  std::vector<StoryId> stale;
  for (StoryId id : upcoming_.items()) {
    const Story& s = stories_[id];
    if (now - s.submitted_at > queue_params_.upcoming_lifetime)
      stale.push_back(id);
  }
  for (StoryId id : stale) {
    stories_[id].phase = StoryPhase::kExpired;
    upcoming_.remove(id);
  }
}

void Platform::release_votes(StoryId id) {
  if (id >= stories_.size())
    throw std::out_of_range("Platform::release_votes: unknown story");
  Story& s = stories_[id];
  s.voters = {};
  s.times = {};
  const std::uint32_t slot = vis_slot_of_[id];
  if (slot != kNoSlot) {
    vis_slot_of_[id] = kNoSlot;
    VisSlot& vs = vis_slots_[slot];
    // Keep vs.story = id: the eviction path indexes vis_slot_of_ by it, and
    // re-clearing this story's (already empty) entry there is harmless.
    vs.last_used = 0;  // first in line for reuse
    vs.set.shed();
  }
}

const Story& Platform::story(StoryId id) const {
  if (id >= stories_.size())
    throw std::out_of_range("Platform::story: unknown story");
  return stories_[id];
}

const VisibilitySet& Platform::visibility(StoryId id) const {
  if (id >= stories_.size())
    throw std::out_of_range("Platform::visibility: unknown story");
  return visibility_slot(id);
}

VisibilitySet& Platform::visibility_slot(StoryId id) const {
  std::uint32_t slot = vis_slot_of_[id];
  if (slot == kNoSlot) {
    if (vis_slots_.size() < vis_capacity_) {
      slot = static_cast<std::uint32_t>(vis_slots_.size());
      vis_slots_.emplace_back();
    } else {
      // Evict the least recently used slot. Linear scan: capacity is a few
      // hundred slots and misses are rare once the working set is resident.
      slot = 0;
      for (std::uint32_t i = 1; i < vis_slots_.size(); ++i) {
        if (vis_slots_[i].last_used < vis_slots_[slot].last_used) slot = i;
      }
      vis_slot_of_[vis_slots_[slot].story] = kNoSlot;
    }
    VisSlot& vs = vis_slots_[slot];
    vs.story = id;
    vis_slot_of_[id] = slot;
    vs.set.rebind(network_);
    // Deterministic rebuild: replaying the vote column in order reproduces
    // the exact watcher pool / exposure log the evicted set had.
    for (UserId voter : stories_[id].voters) vs.set.add_voter(voter);
  }
  VisSlot& vs = vis_slots_[slot];
  vs.last_used = ++vis_clock_;
  return vs.set;
}

}  // namespace digg::platform
