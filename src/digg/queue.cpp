#include "src/digg/queue.h"

#include <algorithm>

namespace digg::platform {

void Listing::push_front(StoryId id) { items_.insert(items_.begin(), id); }

void Listing::remove(StoryId id) {
  items_.erase(std::remove(items_.begin(), items_.end(), id), items_.end());
}

bool Listing::contains(StoryId id) const {
  return std::find(items_.begin(), items_.end(), id) != items_.end();
}

std::vector<StoryId> Listing::page(std::size_t page_index) const {
  const std::size_t begin = page_index * kStoriesPerPage;
  if (begin >= items_.size()) return {};
  const std::size_t end = std::min(begin + kStoriesPerPage, items_.size());
  return {items_.begin() + static_cast<std::ptrdiff_t>(begin),
          items_.begin() + static_cast<std::ptrdiff_t>(end)};
}

std::vector<StoryId> Listing::first_pages(std::size_t pages) const {
  const std::size_t end = std::min(pages * kStoriesPerPage, items_.size());
  return {items_.begin(), items_.begin() + static_cast<std::ptrdiff_t>(end)};
}

std::size_t Listing::position(StoryId id) const {
  const auto it = std::find(items_.begin(), items_.end(), id);
  return it == items_.end() ? npos
                            : static_cast<std::size_t>(it - items_.begin());
}

}  // namespace digg::platform
