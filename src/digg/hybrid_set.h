#pragma once
// Hybrid small-set over uint32 keys in a bounded universe — the successor to
// the dense epoch-stamp representation this repo used for *per-story* state.
// A dense stamp array costs O(universe) bytes per set no matter how small the
// set is; with 120k users that is ~480 KB for a visibility set that typically
// holds a few hundred watchers, which is exactly where the streaming engine's
// memory went. The hybrid keeps two representations and promotes one way:
//
//   - ARRAY mode (the common case): a sorted unique uint32 vector `main_`
//     plus two small unsorted staging buffers — `tail_` for pending inserts
//     and `dead_` for pending erases (tombstones). Staging keeps single
//     inserts/erases O(log n + kStageCap) amortized instead of an O(n)
//     memmove each, and is folded into `main_` (flush) before any bulk op.
//     Membership is a galloping binary search; bulk union with a sorted span
//     (a CSR fan list) is a set-difference candidate pass (SIMD-dispatched,
//     src/simd — vectorized block compare for dense segments, galloping for
//     skewed size ratios) followed by one backward in-place merge — a set
//     already saturated with the span costs only the lookups, no rewrite.
//   - BITMAP mode: a word-packed bitmap of universe bits plus a size
//     counter. Entered once size() crosses promote_threshold(universe) — the
//     point where the sorted array would outweigh the bitmap
//     (4*size >= universe/8) — and left only by reset()/shed(). All ops
//     become O(1) word probes; a span union is O(|span|).
//
// Both modes implement exact set semantics, so every query result is
// independent of the representation — figure outputs cannot depend on when a
// set promoted. Determinism contract: iteration-order-sensitive callers
// (VisibilitySet's exposure log) only observe union_span's on_new callback,
// which fires in span order in both modes.
//
// Keys may exceed the declared universe (vote columns can reference users
// outside the fan graph); insert grows the universe on demand, like the
// dense set's implicit resize.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "src/simd/dispatch.h"

namespace digg::platform {

class HybridSet {
 public:
  /// Staging-buffer capacity: small enough that linear scans stay in one or
  /// two cache lines, large enough to amortize the flush memmove.
  static constexpr std::size_t kStageCap = 64;

  HybridSet() = default;
  explicit HybridSet(std::size_t universe) { reset(universe); }

  /// Array mode is kept while 4*size < universe/8, i.e. while the sorted
  /// array is strictly smaller than the bitmap would be. The kStageCap floor
  /// keeps tiny universes from promoting before staging even fills.
  [[nodiscard]] static std::size_t promote_threshold(
      std::size_t universe) noexcept {
    return universe / 32 > kStageCap ? universe / 32 : kStageCap;
  }

  /// Empties the set and (re)declares the key universe [0, universe).
  /// Allocated buffers are kept for reuse — a thread_local scratch instance
  /// replayed across thousands of stories allocates only on the largest
  /// universe it has seen. Representation returns to array mode.
  void reset(std::size_t universe);

  /// Inserts `id`, growing the universe if needed. Returns true if the id
  /// was not already present.
  bool insert(std::uint32_t id);

  /// Removes `id` if present; returns true if it was.
  bool erase(std::uint32_t id);

  [[nodiscard]] bool contains(std::uint32_t id) const noexcept;

  /// Unions a strictly-increasing span of ids (a CSR adjacency row) into the
  /// set. For each id not already present, `accept(id)` decides whether it
  /// joins; `on_new(id)` fires for each id actually inserted, in span order.
  /// accept/on_new must not touch this set.
  template <class Accept, class OnNew>
  void union_span(std::span<const std::uint32_t> ids, Accept&& accept,
                  OnNew&& on_new);

  void union_span(std::span<const std::uint32_t> ids) {
    union_span(
        ids, [](std::uint32_t) { return true; }, [](std::uint32_t) {});
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return bitmap_ ? bit_count_ : main_.size() + tail_.size() - dead_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] bool is_bitmap() const noexcept { return bitmap_; }
  [[nodiscard]] std::size_t universe() const noexcept { return universe_; }

  /// Sorted contents (test/diagnostic helper; O(size) in bitmap mode plus a
  /// scan of the words).
  [[nodiscard]] std::vector<std::uint32_t> to_vector() const;

  /// Resident heap bytes across both representations (LRU byte accounting).
  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return (main_.capacity() + tail_.capacity() + dead_.capacity() +
            scratch_.capacity() + scratch_pos_.capacity()) *
               sizeof(std::uint32_t) +
           words_.capacity() * sizeof(std::uint64_t);
  }

  /// Releases every heap buffer and empties the set (universe is kept). Used
  /// by byte-budgeted pools when a set retires or is evicted, so the memory
  /// actually returns instead of lingering as capacity.
  void shed() noexcept;

 private:
  /// Folds the staging buffers into main_ (array mode only). After flush,
  /// main_ alone is the set.
  void flush();
  /// Array -> bitmap conversion (flushes first). One-way until reset/shed.
  void promote();
  void grow_universe(std::size_t need);

  std::size_t universe_ = 0;
  bool bitmap_ = false;
  std::vector<std::uint32_t> main_;     // sorted, unique
  std::vector<std::uint32_t> tail_;     // pending inserts, not in main_
  std::vector<std::uint32_t> dead_;     // pending erases, subset of main_
  std::vector<std::uint32_t> scratch_;      // flush/union merge area
  std::vector<std::uint32_t> scratch_pos_;  // union candidates' main_ LBs
  std::vector<std::uint64_t> words_;        // bitmap-mode storage
  std::size_t bit_count_ = 0;           // bitmap-mode cardinality
};

namespace detail {

/// Galloping lower-bound membership probe over a sorted unique array,
/// starting at `pos`: double the step until the key is bracketed, then
/// binary-search the bracket. `pos` advances to the key's lower bound, so a
/// caller walking an ascending query sequence (a sorted fan span) pays
/// O(log gap) per query instead of O(log n). Returns presence.
inline bool gallop_contains(const std::vector<std::uint32_t>& sorted,
                            std::uint32_t key, std::size_t& pos) noexcept {
  const std::size_t n = sorted.size();
  if (pos >= n || sorted[pos] >= key) {
    // Already at or past the bracket; fall through to the final check.
  } else {
    std::size_t step = 1;
    std::size_t lo = pos;
    while (lo + step < n && sorted[lo + step] < key) {
      lo += step;
      step <<= 1;
    }
    std::size_t hi = lo + step < n ? lo + step : n;
    ++lo;  // sorted[lo - 1] < key already established
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (sorted[mid] < key)
        lo = mid + 1;
      else
        hi = mid;
    }
    pos = lo;
  }
  return pos < n && sorted[pos] == key;
}

inline bool unsorted_contains(const std::vector<std::uint32_t>& v,
                              std::uint32_t key) noexcept {
  for (const std::uint32_t x : v)
    if (x == key) return true;
  return false;
}

}  // namespace detail

template <class Accept, class OnNew>
void HybridSet::union_span(std::span<const std::uint32_t> ids, Accept&& accept,
                           OnNew&& on_new) {
#ifndef NDEBUG
  for (std::size_t i = 1; i < ids.size(); ++i)
    assert(ids[i - 1] < ids[i] && "union_span: span must strictly increase");
#endif
  if (ids.empty()) return;
  if (!ids.empty() && ids.back() >= universe_)
    grow_universe(static_cast<std::size_t>(ids.back()) + 1);

  // Both modes run the same two-phase shape: a SIMD candidate pass finds
  // the span ids not already present (in span order — the kernel contract),
  // then a scalar pass runs accept/on_new over the candidates and commits
  // the survivors. Splitting membership from the callbacks is unobservable
  // because accept/on_new may not touch this set, and it is what lets the
  // membership side vectorize at all.
  const simd::KernelTable& kt = simd::kernels();

  if (bitmap_) {
    scratch_.resize(ids.size() + simd::kPackSlack);
    const std::size_t n_cand = kt.bitmap_missing_u32(
        words_.data(), ids.data(), ids.size(), scratch_.data());
    std::size_t n_acc = 0;
    for (std::size_t i = 0; i < n_cand; ++i) {
      const std::uint32_t id = scratch_[i];
      if (!accept(id)) continue;
      scratch_[n_acc++] = id;  // compact in place; reads stay ahead of writes
      on_new(id);
    }
    bit_count_ += kt.bitmap_set_u32(words_.data(), scratch_.data(), n_acc);
    return;
  }

  // Array mode. Canonicalize, then set-subtract the span against main_ to
  // stage only the genuinely new ids: a saturated set pays the lookups and
  // never rewrites. The kernel also reports each candidate's lower bound
  // in main_ (it walks there to answer membership anyway), which the
  // commit below consumes.
  flush();
  scratch_.resize(ids.size() + simd::kPackSlack);
  scratch_pos_.resize(ids.size() + simd::kPackSlack);
  const std::size_t n_cand =
      kt.set_diff_u32(ids.data(), ids.size(), main_.data(), main_.size(),
                      scratch_.data(), scratch_pos_.data());
  for (std::size_t i = 0; i < n_cand; ++i) {
    const std::uint32_t id = scratch_[i];
    if (!accept(id)) continue;
    scratch_pos_[tail_.size()] = scratch_pos_[i];  // compact alongside tail_
    tail_.push_back(id);
    on_new(id);
  }
  if (tail_.empty()) return;
  if (main_.size() + tail_.size() >= promote_threshold(universe_)) {
    promote();
    return;
  }
  // Backward in-place block merge of the staged run (already sorted:
  // collected in span order). A branchy element-at-a-time merge costs a
  // compare and an unpredictable branch per main_ element; instead slide
  // the block between consecutive insertion points right in one memmove
  // each — every element still moves at most once and only past the first
  // insertion point, but at memcpy speed. The insertion points come from
  // the candidate pass above, so the merge does no searching at all; this
  // loop is where the array-mode union actually spends its time once the
  // membership pass is vectorized.
  const std::size_t old_n = main_.size();
  const std::size_t add_n = tail_.size();
  main_.resize(old_n + add_n);
  std::size_t src_end = old_n;  // main_[0, src_end) not yet placed
  for (std::size_t t = add_n; t > 0; --t) {
    const std::size_t lo = scratch_pos_[t - 1];
    if (src_end > lo)
      std::memmove(main_.data() + lo + t, main_.data() + lo,
                   (src_end - lo) * sizeof(std::uint32_t));
    main_[lo + t - 1] = tail_[t - 1];
    src_end = lo;
  }
  tail_.clear();
}

}  // namespace digg::platform
