#pragma once
// Epoch-stamped dense set over NodeId-like keys. The workhorse behind the
// columnar refactor's hot paths (visibility, cascades, diversity weighting):
// membership is one array load instead of a hash probe, and clearing for the
// next story is a single epoch bump — no O(n) memset, no rehashing — so one
// scratch set is reused across thousands of stories.
//
// Representation: stamps_[id] == epoch_ means "id is in the set". reset()
// increments the epoch, instantly invalidating every stamp. Stamps are
// uint32; on the (astronomically rare) epoch wraparound the array is
// refilled with zero so stale stamps from 2^32 resets ago cannot alias.
// erase() writes stamp 0, which is never a live epoch (epochs start at 1).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace digg::platform {

class DenseStampSet {
 public:
  DenseStampSet() = default;
  explicit DenseStampSet(std::size_t key_capacity) : stamps_(key_capacity, 0) {}

  /// Empties the set in O(1). Existing capacity is kept.
  void reset() noexcept {
    if (++epoch_ == 0) {  // wraparound: stale stamps could alias; wipe them
      std::fill(stamps_.begin(), stamps_.end(), 0u);
      epoch_ = 1;
    }
    size_ = 0;
  }

  /// Grows the key space to at least `key_capacity` (never shrinks).
  void ensure_capacity(std::size_t key_capacity) {
    if (stamps_.size() < key_capacity) stamps_.resize(key_capacity, 0u);
  }

  [[nodiscard]] bool contains(std::uint32_t id) const noexcept {
    return id < stamps_.size() && stamps_[id] == epoch_;
  }

  /// Inserts `id`, growing the key space if needed. Returns true if the id
  /// was not already present.
  bool insert(std::uint32_t id) {
    if (id >= stamps_.size()) stamps_.resize(static_cast<std::size_t>(id) + 1, 0u);
    if (stamps_[id] == epoch_) return false;
    stamps_[id] = epoch_;
    ++size_;
    return true;
  }

  /// Removes `id` if present; returns true if it was.
  bool erase(std::uint32_t id) noexcept {
    if (!contains(id)) return false;
    stamps_[id] = 0;
    --size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t key_capacity() const noexcept {
    return stamps_.size();
  }
  /// Resident bytes of the stamp array (capacity planning for set caches).
  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return stamps_.capacity() * sizeof(std::uint32_t);
  }

 private:
  std::vector<std::uint32_t> stamps_;
  std::uint32_t epoch_ = 1;
  std::size_t size_ = 0;
};

}  // namespace digg::platform
