#pragma once
// User population model. §3 documents extreme activity skew: of 15,000+
// front-page stories by the top 1000 users, the top 3% of those users made
// 35% of the submissions; voting is even more skewed. We model per-user
// activity rates with a Zipf profile over the user ranking and derive the
// reputation / top-user list exactly as Digg did (count of promoted
// submissions).

#include <cstdint>
#include <vector>

#include "src/digg/types.h"
#include "src/stats/rng.h"

namespace digg::platform {

/// Behavioural parameters of one user. Rates are per-day Poisson
/// intensities; probabilities are per-discovery digg propensities.
struct UserProfile {
  /// Expected number of voting sessions per day (front page + friends +
  /// upcoming combined). Heavy-tailed across the population.
  double activity_rate = 1.0;

  /// How the user splits attention across discovery channels. Fractions of
  /// a session spent on each; need not sum to 1 (remainder = idle).
  double front_page_weight = 0.6;
  double friends_interface_weight = 0.3;
  double upcoming_weight = 0.1;

  /// Expected number of story submissions per day.
  double submission_rate = 0.0;
};

struct PopulationParams {
  std::size_t user_count = 20000;
  /// Zipf exponent of the activity-rate profile; ~1 reproduces the quoted
  /// "top 3% make 35%" concentration.
  double activity_zipf_exponent = 1.0;
  /// Mean activity of the median user (sessions/day).
  double base_activity_rate = 0.5;
  /// Fraction of users who submit at all; submission rates are further
  /// Zipf-skewed among them.
  double submitter_fraction = 0.15;
  double base_submission_rate = 0.05;
  /// How strongly heavy users favour the Friends interface (top users are
  /// the heaviest Friends-interface consumers in the paper's account).
  double friends_weight_boost = 0.35;
};

/// Generates the population sorted so that user 0 is the most active (user
/// ids align with preferential-attachment arrival order, making early/
/// well-connected nodes also the most active — the "top users" of §3).
[[nodiscard]] std::vector<UserProfile> generate_population(
    const PopulationParams& params, stats::Rng& rng);

/// Digg's reputation: number of a user's submissions promoted to the front
/// page. Returns per-user counts.
[[nodiscard]] std::vector<std::uint32_t> promoted_submission_counts(
    const std::vector<Story>& stories, std::size_t user_count);

/// User ids ranked by reputation, descending. Ties are broken by the
/// optional `tiebreak` score (e.g. fan count), then by id — Digg's Top
/// Users list ranked lifetime promoted submissions, so a long-lived
/// snapshot never ties the way a short observation window does. The paper's
/// "Top Users list"; rank <= 100 defines the held-out test set of §5.2.
[[nodiscard]] std::vector<UserId> top_user_ranking(
    const std::vector<std::uint32_t>& reputation,
    const std::vector<std::uint32_t>& tiebreak = {});

/// Share of total submissions attributable to the top `fraction` of users by
/// submission count (the "top 3% -> 35%" statistic).
[[nodiscard]] double top_share(const std::vector<std::uint32_t>& per_user_counts,
                               double fraction);

}  // namespace digg::platform
