#include "src/digg/user.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace digg::platform {

std::vector<UserProfile> generate_population(const PopulationParams& params,
                                             stats::Rng& rng) {
  if (params.user_count == 0)
    throw std::invalid_argument("generate_population: user_count == 0");
  std::vector<UserProfile> users(params.user_count);
  const double n = static_cast<double>(params.user_count);
  for (std::size_t rank = 0; rank < params.user_count; ++rank) {
    UserProfile& u = users[rank];
    // Zipf activity: rate ∝ (rank+1)^-s, normalized so the median user has
    // base_activity_rate.
    const double median_rank = n / 2.0;
    const double zipf = std::pow((static_cast<double>(rank) + 1.0) / median_rank,
                                 -params.activity_zipf_exponent);
    u.activity_rate = params.base_activity_rate * zipf;
    // Small multiplicative noise so equal-rank behaviour is not degenerate.
    u.activity_rate *= std::exp(rng.normal(0.0, 0.25));

    // Heavy users lean more on the Friends interface.
    const double heaviness =
        std::min(1.0, u.activity_rate / (params.base_activity_rate * 20.0));
    u.friends_interface_weight =
        0.25 + params.friends_weight_boost * heaviness;
    u.front_page_weight = 0.65 - 0.3 * heaviness;
    u.upcoming_weight = 1.0 - u.friends_interface_weight - u.front_page_weight;

    // Submissions: only a fraction of users submit; heavier users are far
    // more likely to, and submit more.
    const double submit_p =
        params.submitter_fraction * (0.5 + 1.5 * heaviness);
    if (rng.bernoulli(std::min(1.0, submit_p))) {
      u.submission_rate =
          params.base_submission_rate * zipf * std::exp(rng.normal(0.0, 0.5));
    }
  }
  return users;
}

std::vector<std::uint32_t> promoted_submission_counts(
    const std::vector<Story>& stories, std::size_t user_count) {
  std::vector<std::uint32_t> counts(user_count, 0);
  for (const Story& s : stories) {
    if (s.promoted() && s.submitter < user_count) ++counts[s.submitter];
  }
  return counts;
}

std::vector<UserId> top_user_ranking(
    const std::vector<std::uint32_t>& reputation,
    const std::vector<std::uint32_t>& tiebreak) {
  if (!tiebreak.empty() && tiebreak.size() != reputation.size())
    throw std::invalid_argument("top_user_ranking: tiebreak size mismatch");
  std::vector<UserId> order(reputation.size());
  std::iota(order.begin(), order.end(), UserId{0});
  std::stable_sort(order.begin(), order.end(), [&](UserId a, UserId b) {
    if (reputation[a] != reputation[b])
      return reputation[a] > reputation[b];
    if (!tiebreak.empty() && tiebreak[a] != tiebreak[b])
      return tiebreak[a] > tiebreak[b];
    return a < b;
  });
  return order;
}

double top_share(const std::vector<std::uint32_t>& per_user_counts,
                 double fraction) {
  if (fraction <= 0.0 || fraction > 1.0)
    throw std::invalid_argument("top_share: fraction outside (0,1]");
  std::vector<std::uint32_t> sorted = per_user_counts;
  std::sort(sorted.rbegin(), sorted.rend());
  const std::uint64_t total =
      std::accumulate(sorted.begin(), sorted.end(), std::uint64_t{0});
  if (total == 0) return 0.0;
  const auto head = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(sorted.size())));
  const std::uint64_t head_sum =
      std::accumulate(sorted.begin(), sorted.begin() + head, std::uint64_t{0});
  return static_cast<double>(head_sum) / static_cast<double>(total);
}

}  // namespace digg::platform
