#pragma once
// The Digg platform simulator: owns the user population, the fan network,
// all stories, the upcoming/front-page listings, and the promotion policy.
// The vote *dynamics* (who votes when) live in src/dynamics; this class is
// the mechanics — it validates votes, maintains per-story visibility, runs
// the promotion check after every vote, and expires stale submissions.

#include <memory>
#include <vector>

#include "src/digg/friends_interface.h"
#include "src/digg/promotion.h"
#include "src/digg/queue.h"
#include "src/digg/types.h"
#include "src/digg/user.h"

namespace digg::platform {

class Platform {
 public:
  Platform(graph::Digraph network, std::vector<UserProfile> users,
           std::unique_ptr<PromotionPolicy> policy,
           QueueParams queue_params = {});

  /// Submits a story; records the submitter's own digg and places the story
  /// at the top of the upcoming queue.
  StoryId submit(UserId submitter, double quality, Minutes now);

  /// Records a digg. Returns true if this vote triggered promotion.
  /// Throws if the user already voted or the story is expired.
  bool vote(StoryId story, UserId user, Minutes now);

  /// Expires upcoming stories older than the queue lifetime.
  void expire_stale(Minutes now);

  [[nodiscard]] const Story& story(StoryId id) const;
  [[nodiscard]] const std::vector<Story>& stories() const noexcept {
    return stories_;
  }
  [[nodiscard]] const Listing& upcoming() const noexcept { return upcoming_; }
  [[nodiscard]] const Listing& front_page() const noexcept {
    return front_page_;
  }
  [[nodiscard]] const graph::Digraph& network() const noexcept {
    return network_;
  }
  [[nodiscard]] const std::vector<UserProfile>& users() const noexcept {
    return users_;
  }
  [[nodiscard]] const PromotionPolicy& policy() const noexcept {
    return *policy_;
  }
  [[nodiscard]] const QueueParams& queue_params() const noexcept {
    return queue_params_;
  }
  /// Live visibility set of a story (who can see it via the Friends
  /// interface right now).
  [[nodiscard]] const VisibilitySet& visibility(StoryId id) const;

  [[nodiscard]] std::size_t story_count() const noexcept {
    return stories_.size();
  }

 private:
  graph::Digraph network_;
  std::vector<UserProfile> users_;
  std::unique_ptr<PromotionPolicy> policy_;
  QueueParams queue_params_;
  std::vector<Story> stories_;
  std::vector<VisibilitySet> visibility_;  // parallel to stories_
  Listing upcoming_;
  Listing front_page_;
};

}  // namespace digg::platform
