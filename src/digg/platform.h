#pragma once
// The Digg platform simulator: owns the user population, the fan network,
// all stories, the upcoming/front-page listings, and the promotion policy.
// The vote *dynamics* (who votes when) live in src/dynamics; this class is
// the mechanics — it validates votes, maintains per-story visibility, runs
// the promotion check after every vote, and expires stale submissions.
//
// Visibility sets are served from a byte-budgeted LRU cache instead of one
// resident set per story: even the hybrid representation (hybrid_set.h) can
// reach two bitmap-mode sets (~1 bit per network node each) for a
// long-running story, so materialising one per story would still dwarf the
// vote columns on large sites. A missing set is rebuilt deterministically by
// replaying the story's vote column (same insertion order → identical
// watcher pool / exposure log), so eviction is invisible to callers apart
// from the replay cost. References returned by visibility() stay valid until a *different*
// story's set is requested; the dynamics layer already re-fetches per story.

#include <cstdint>
#include <memory>
#include <vector>

#include "src/digg/friends_interface.h"
#include "src/digg/promotion.h"
#include "src/digg/queue.h"
#include "src/digg/types.h"
#include "src/digg/user.h"

namespace digg::platform {

class Platform {
 public:
  Platform(graph::Digraph network, std::vector<UserProfile> users,
           std::unique_ptr<PromotionPolicy> policy,
           QueueParams queue_params = {});

  /// Submits a story; records the submitter's own digg and places the story
  /// at the top of the upcoming queue.
  StoryId submit(UserId submitter, double quality, Minutes now);

  /// Records a digg. Returns true if this vote triggered promotion.
  /// Throws if the user already voted or the story is expired.
  bool vote(StoryId story, UserId user, Minutes now);

  /// Expires upcoming stories older than the queue lifetime.
  void expire_stale(Minutes now);

  /// Frees a finished story's vote columns and visibility cache slot once
  /// the votes have been persisted elsewhere (streamed generation keeps the
  /// working set bounded this way). Metadata — phase, promotion time, vote
  /// count via the persisted copy — is unaffected; the story must not
  /// receive further votes or visibility queries afterwards.
  void release_votes(StoryId id);

  [[nodiscard]] const Story& story(StoryId id) const;
  [[nodiscard]] const std::vector<Story>& stories() const noexcept {
    return stories_;
  }
  [[nodiscard]] const Listing& upcoming() const noexcept { return upcoming_; }
  [[nodiscard]] const Listing& front_page() const noexcept {
    return front_page_;
  }
  [[nodiscard]] const graph::Digraph& network() const noexcept {
    return network_;
  }
  [[nodiscard]] const std::vector<UserProfile>& users() const noexcept {
    return users_;
  }
  [[nodiscard]] const PromotionPolicy& policy() const noexcept {
    return *policy_;
  }
  [[nodiscard]] const QueueParams& queue_params() const noexcept {
    return queue_params_;
  }
  /// Live visibility set of a story (who can see it via the Friends
  /// interface right now). The reference stays valid and current until the
  /// next visibility()/vote() call for a *different* story, which may evict
  /// this story's cache slot.
  [[nodiscard]] const VisibilitySet& visibility(StoryId id) const;

  [[nodiscard]] std::size_t story_count() const noexcept {
    return stories_.size();
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  /// Soft cap on resident visibility-set bytes; the per-slot estimate is
  /// the hybrid set's bitmap-mode worst case, so the slot count adapts to
  /// the network size.
  static constexpr std::size_t kVisCacheBudgetBytes = 512ull << 20;

  struct VisSlot {
    VisibilitySet set;
    StoryId story = kNoSlot;     // which story the slot currently holds
    std::uint64_t last_used = 0;  // LRU clock value
  };

  /// Returns the (mutable) cached set for `id`, rebuilding it from the
  /// story's vote column on a miss and bumping its LRU stamp.
  VisibilitySet& visibility_slot(StoryId id) const;

  graph::Digraph network_;
  std::vector<UserProfile> users_;
  std::unique_ptr<PromotionPolicy> policy_;
  QueueParams queue_params_;
  std::vector<Story> stories_;
  Listing upcoming_;
  Listing front_page_;

  std::size_t vis_capacity_ = 0;             // max slots (from byte budget)
  mutable std::vector<VisSlot> vis_slots_;   // reserved to capacity up front
  mutable std::vector<std::uint32_t> vis_slot_of_;  // story -> slot / kNoSlot
  mutable std::uint64_t vis_clock_ = 0;
};

}  // namespace digg::platform
