#pragma once
// The upcoming stories queue and the front page (§3): new submissions are
// listed reverse-chronologically, 15 to a page; Digg promoted a handful per
// day; upcoming stories expire after ~24h if not promoted. Page position
// matters because browsing users mostly look at the first pages.

#include <cstddef>
#include <vector>

#include "src/digg/types.h"

namespace digg::platform {

inline constexpr std::size_t kStoriesPerPage = 15;

struct QueueParams {
  /// Stories age out of the upcoming queue after this long unpromoted.
  Minutes upcoming_lifetime = kMinutesPerDay;
  /// Number of upcoming pages a typical browsing user ever looks at. With
  /// 1500+ daily submissions (§4) the queue is "unmanageable"; users see
  /// only the newest few pages.
  std::size_t browsed_pages = 3;
};

/// Reverse-chronological listing shared by the upcoming queue and the front
/// page. Stories are referenced by id; the owner stores the Story records.
class Listing {
 public:
  /// Adds a story to the top of the listing.
  void push_front(StoryId id);
  /// Removes a story wherever it is (promotion or expiry). No-op if absent.
  void remove(StoryId id);

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool contains(StoryId id) const;

  /// Stories on the given 0-based page (newest first).
  [[nodiscard]] std::vector<StoryId> page(std::size_t page_index) const;
  /// The newest `pages * kStoriesPerPage` stories.
  [[nodiscard]] std::vector<StoryId> first_pages(std::size_t pages) const;
  /// 0-based position from the top, or npos if absent.
  [[nodiscard]] std::size_t position(StoryId id) const;

  [[nodiscard]] const std::vector<StoryId>& items() const noexcept {
    return items_;
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::vector<StoryId> items_;  // newest first
};

}  // namespace digg::platform
