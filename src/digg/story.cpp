#include "src/digg/story.h"

#include <algorithm>
#include <stdexcept>

namespace digg::platform {

void add_vote(Story& story, UserId user, Minutes time) {
  if (story.voters.empty()) {
    if (user != story.submitter)
      throw std::invalid_argument(
          "add_vote: first vote must be the submitter's digg");
  } else {
    if (time < story.times.back())
      throw std::invalid_argument("add_vote: votes must be chronological");
    if (has_voted(story, user))
      throw std::invalid_argument("add_vote: duplicate voter");
  }
  story.voters.push_back(user);
  story.times.push_back(time);
}

bool has_voted(const StoryView& story, UserId user) {
  const auto column = story.voters();
  return std::find(column.begin(), column.end(), user) != column.end();
}

std::span<const UserId> early_votes(const StoryView& story, std::size_t n) {
  const auto column = story.voters();
  if (column.empty()) return {};
  return column.subspan(1, std::min(n, column.size() - 1));  // skip submitter
}

std::span<const UserId> voters(const StoryView& story) {
  return story.voters();
}

Story make_story(StoryId id, UserId submitter, Minutes submitted_at,
                 double quality) {
  if (quality < 0.0 || quality > 1.0)
    throw std::invalid_argument("make_story: quality outside [0,1]");
  Story s;
  s.id = id;
  s.submitter = submitter;
  s.submitted_at = submitted_at;
  s.quality = quality;
  s.voters.push_back(submitter);
  s.times.push_back(submitted_at);
  return s;
}

}  // namespace digg::platform
