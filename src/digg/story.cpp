#include "src/digg/story.h"

#include <algorithm>
#include <stdexcept>

namespace digg::platform {

void add_vote(Story& story, UserId user, Minutes time) {
  if (story.votes.empty()) {
    if (user != story.submitter)
      throw std::invalid_argument(
          "add_vote: first vote must be the submitter's digg");
  } else {
    if (time < story.votes.back().time)
      throw std::invalid_argument("add_vote: votes must be chronological");
    if (has_voted(story, user))
      throw std::invalid_argument("add_vote: duplicate voter");
  }
  story.votes.push_back(Vote{user, time});
}

bool has_voted(const Story& story, UserId user) {
  return std::any_of(story.votes.begin(), story.votes.end(),
                     [user](const Vote& v) { return v.user == user; });
}

std::span<const Vote> early_votes(const Story& story, std::size_t n) {
  if (story.votes.empty()) return {};
  const std::size_t available = story.votes.size() - 1;  // skip submitter
  return {story.votes.data() + 1, std::min(n, available)};
}

std::vector<UserId> voters(const Story& story) {
  std::vector<UserId> out;
  out.reserve(story.votes.size());
  for (const Vote& v : story.votes) out.push_back(v.user);
  return out;
}

Story make_story(StoryId id, UserId submitter, Minutes submitted_at,
                 double quality) {
  if (quality < 0.0 || quality > 1.0)
    throw std::invalid_argument("make_story: quality outside [0,1]");
  Story s;
  s.id = id;
  s.submitter = submitter;
  s.submitted_at = submitted_at;
  s.quality = quality;
  s.votes.push_back(Vote{submitter, submitted_at});
  return s;
}

}  // namespace digg::platform
