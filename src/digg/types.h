#pragma once
// Core domain types shared by the platform simulator, the vote dynamics, and
// the analysis library. Conventions follow the paper's dataset (§3.1):
// votes are stored in chronological order and the submitter's own digg is
// always the first vote on a story.
//
// Vote records are columnar (structure-of-arrays): a story's voters and vote
// times live in two parallel arrays instead of one vector of {user, time}
// structs. Analysis code overwhelmingly scans one column at a time (voter
// ids against the fan graph, or times against a cutoff), so the split keeps
// the scanned column dense in cache and halves the bytes touched. Two types
// share the layout:
//   - Story      owns its two columns; the platform simulator mutates it.
//   - StoryView  is a non-owning view (spans over columns held elsewhere —
//     a Story, or data::VoteStore's shared arena). The analysis layers
//     consume StoryView only, so a corpus of a thousand stories is two big
//     allocations instead of a thousand small ones.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/graph/digraph.h"

namespace digg::platform {

using UserId = graph::NodeId;
using StoryId = std::uint32_t;

/// Simulation time in minutes since the start of the observation window.
using Minutes = double;

inline constexpr Minutes kMinutesPerHour = 60.0;
inline constexpr Minutes kMinutesPerDay = 24.0 * kMinutesPerHour;

/// Where a story currently lives on the site.
enum class StoryPhase : std::uint8_t {
  kUpcoming,   // visible in the upcoming stories queue
  kFrontPage,  // promoted to the front page
  kExpired,    // aged out of the upcoming queue without promotion
};

/// A story and its complete voting record, stored as two parallel columns.
/// `time` is unknown for scraped data (the paper only has vote order), so
/// analysis code must rely on order, not timestamps.
struct Story {
  StoryId id = 0;
  UserId submitter = 0;
  Minutes submitted_at = 0.0;

  /// Latent interestingness in [0, 1]: the probability scale at which users
  /// who *see* the story choose to digg it. Hidden from analysis code; the
  /// observable proxy is the final vote count.
  double quality = 0.0;

  /// Chronological vote columns; voters.front() is the submitter and
  /// times.front() their digg time. Always the same length.
  std::vector<UserId> voters;
  std::vector<Minutes> times;

  StoryPhase phase = StoryPhase::kUpcoming;
  std::optional<Minutes> promoted_at;

  [[nodiscard]] std::size_t vote_count() const noexcept {
    return voters.size();
  }
  [[nodiscard]] bool promoted() const noexcept {
    return promoted_at.has_value();
  }
  /// Votes cast strictly before `cutoff` (times are chronological).
  [[nodiscard]] std::size_t votes_before(Minutes cutoff) const {
    return static_cast<std::size_t>(
        std::lower_bound(times.begin(), times.end(), cutoff) - times.begin());
  }
};

/// Non-owning columnar view of a story: metadata by value, vote columns as
/// spans into storage owned elsewhere. Implicitly constructible from a
/// Story, so every analysis entry point takes `const StoryView&` and works
/// on platform stories and corpus-resident stories alike. When the view is
/// backed by a data::VoteStore, `store_slot()` identifies its row there so
/// owners can rebind the spans after copying the store.
class StoryView {
 public:
  StoryId id = 0;
  UserId submitter = 0;
  Minutes submitted_at = 0.0;
  double quality = 0.0;
  StoryPhase phase = StoryPhase::kUpcoming;
  std::optional<Minutes> promoted_at;

  /// store_slot() value for views not backed by a VoteStore.
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  StoryView() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): by-design implicit bridge.
  StoryView(const Story& s)
      : id(s.id),
        submitter(s.submitter),
        submitted_at(s.submitted_at),
        quality(s.quality),
        phase(s.phase),
        promoted_at(s.promoted_at),
        voters_(s.voters),
        times_(s.times) {}

  [[nodiscard]] std::span<const UserId> voters() const noexcept {
    return voters_;
  }
  [[nodiscard]] std::span<const Minutes> times() const noexcept {
    return times_;
  }
  [[nodiscard]] std::size_t vote_count() const noexcept {
    return voters_.size();
  }
  [[nodiscard]] bool promoted() const noexcept {
    return promoted_at.has_value();
  }
  /// Votes cast strictly before `cutoff` (times are chronological).
  [[nodiscard]] std::size_t votes_before(Minutes cutoff) const {
    return static_cast<std::size_t>(
        std::lower_bound(times_.begin(), times_.end(), cutoff) -
        times_.begin());
  }

  /// A view of the same story cut to its first min(n, vote_count()) votes,
  /// submitter's digg included — "what the predictor saw at vote n".
  [[nodiscard]] StoryView truncated(std::size_t n) const {
    StoryView out = *this;
    const std::size_t keep = std::min(n, voters_.size());
    out.voters_ = voters_.subspan(0, keep);
    out.times_ = times_.subspan(0, keep);
    return out;
  }

  [[nodiscard]] std::uint32_t store_slot() const noexcept {
    return store_slot_;
  }
  /// Points the view at (possibly relocated) columns. Owners of the backing
  /// storage call this after copies; `slot` tags the row for future rebinds.
  void bind(std::span<const UserId> voters, std::span<const Minutes> times,
            std::uint32_t slot) noexcept {
    voters_ = voters;
    times_ = times;
    store_slot_ = slot;
  }

 private:
  std::span<const UserId> voters_;
  std::span<const Minutes> times_;
  std::uint32_t store_slot_ = kNoSlot;
};

}  // namespace digg::platform
