#pragma once
// Core domain types shared by the platform simulator, the vote dynamics, and
// the analysis library. Conventions follow the paper's dataset (§3.1):
// votes are stored in chronological order and the submitter's own digg is
// always the first vote on a story.

#include <cstdint>
#include <optional>
#include <vector>

#include "src/graph/digraph.h"

namespace digg::platform {

using UserId = graph::NodeId;
using StoryId = std::uint32_t;

/// Simulation time in minutes since the start of the observation window.
using Minutes = double;

inline constexpr Minutes kMinutesPerHour = 60.0;
inline constexpr Minutes kMinutesPerDay = 24.0 * kMinutesPerHour;

/// A single digg. `time` is unknown for scraped data (the paper only has
/// vote order), so analysis code must rely on order, not timestamps.
struct Vote {
  UserId user = 0;
  Minutes time = 0.0;

  friend bool operator==(const Vote&, const Vote&) = default;
};

/// Where a story currently lives on the site.
enum class StoryPhase : std::uint8_t {
  kUpcoming,   // visible in the upcoming stories queue
  kFrontPage,  // promoted to the front page
  kExpired,    // aged out of the upcoming queue without promotion
};

/// A story and its complete voting record.
struct Story {
  StoryId id = 0;
  UserId submitter = 0;
  Minutes submitted_at = 0.0;

  /// Latent interestingness in [0, 1]: the probability scale at which users
  /// who *see* the story choose to digg it. Hidden from analysis code; the
  /// observable proxy is the final vote count.
  double quality = 0.0;

  /// Chronological votes; votes.front() is the submitter's own digg.
  std::vector<Vote> votes;

  StoryPhase phase = StoryPhase::kUpcoming;
  std::optional<Minutes> promoted_at;

  [[nodiscard]] std::size_t vote_count() const noexcept {
    return votes.size();
  }
  [[nodiscard]] bool promoted() const noexcept {
    return promoted_at.has_value();
  }
  /// Votes cast strictly before `cutoff`.
  [[nodiscard]] std::size_t votes_before(Minutes cutoff) const {
    std::size_t n = 0;
    for (const Vote& v : votes) {
      if (v.time < cutoff)
        ++n;
      else
        break;
    }
    return n;
  }
};

}  // namespace digg::platform
