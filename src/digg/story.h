#pragma once
// Story bookkeeping helpers on top of the columnar `Story` record: vote
// insertion with invariant checks, voter-set queries, and the early-vote
// slices the analysis layer consumes ("first N votes not counting the
// submitter", per Fig. 4 and §5.2). Read-only queries take StoryView so
// they run unchanged on platform stories and corpus-resident stories.

#include <span>

#include "src/digg/types.h"

namespace digg::platform {

/// Appends a vote, enforcing chronological order, no duplicate voters, and
/// that the first vote belongs to the submitter. Throws on violations.
void add_vote(Story& story, UserId user, Minutes time);

/// True if `user` has already voted on `story`. O(votes) span scan.
[[nodiscard]] bool has_voted(const StoryView& story, UserId user);

/// Voters of the first `n` votes *after* the submitter's own (paper
/// convention: "within the first (not counting the submitter) six, 10 and
/// 20 votes"). Returns fewer if the story has fewer votes.
[[nodiscard]] std::span<const UserId> early_votes(const StoryView& story,
                                                  std::size_t n);

/// All voters, in vote order (submitter first). Zero-copy column view.
[[nodiscard]] std::span<const UserId> voters(const StoryView& story);

/// Creates a story with the submitter's initial digg recorded.
[[nodiscard]] Story make_story(StoryId id, UserId submitter,
                               Minutes submitted_at, double quality);

}  // namespace digg::platform
