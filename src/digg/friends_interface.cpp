#include "src/digg/friends_interface.h"

#include <algorithm>
#include <stdexcept>

namespace digg::platform {

void VisibilitySet::add_voter(UserId voter) {
  if (!voters_.insert(voter))
    throw std::invalid_argument("VisibilitySet::add_voter: duplicate voter");
  watchers_.erase(voter);
  if (network_ != nullptr && voter < network_->node_count()) {
    // One merge of the sorted fan span per vote. Prior voters never re-enter
    // (the accept filter), and the exposure log records first-time watchers
    // in span order — the same order the per-fan insert loop produced, so
    // downstream vote dynamics are bit-identical.
    watchers_.union_span(
        network_->fans(voter),
        [&](UserId fan) { return !voters_.contains(fan); },
        [&](UserId fan) { watcher_pool_.push_back(fan); });
  }
}

std::optional<UserId> VisibilitySet::sample_watcher(stats::Rng& rng) const {
  if (watchers_.empty()) return std::nullopt;
  // The pool holds every id ever inserted; stale entries (since voted) are
  // rejected. Voters <= insertions, so at least half the story's lifetime
  // pool stays valid in the worst realistic case; cap retries regardless.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto idx = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(watcher_pool_.size()) - 1));
    const UserId candidate = watcher_pool_[idx];
    if (watchers_.contains(candidate)) return candidate;
  }
  // Fall back to the first live pool entry (deterministic but rare; every
  // current watcher appears in the pool, so this always finds one).
  for (UserId candidate : watcher_pool_) {
    if (watchers_.contains(candidate)) return candidate;
  }
  return std::nullopt;  // unreachable: watchers_ is non-empty
}

std::size_t story_influence(const StoryView& story,
                            const graph::Digraph& network,
                            std::size_t votes_counted) {
  thread_local VisibilitySet scratch;
  scratch.rebind(network);
  const auto column = story.voters();
  const std::size_t n = std::min(votes_counted, column.size());
  for (std::size_t i = 0; i < n; ++i) scratch.add_voter(column[i]);
  return scratch.influence();
}

FriendsActivity friends_activity(UserId user, std::span<const Story> stories,
                                 const graph::Digraph& network, Minutes now,
                                 Minutes lookback) {
  FriendsActivity out;
  if (user >= network.node_count()) return out;
  const auto friends = network.friends(user);
  auto is_friend = [&](UserId other) {
    return std::binary_search(friends.begin(), friends.end(), other);
  };
  const Minutes horizon = now - lookback;
  for (const Story& s : stories) {
    if (s.submitted_at <= now && s.submitted_at >= horizon &&
        is_friend(s.submitter)) {
      out.submitted_by_friends.push_back(s.id);
    }
    for (std::size_t i = 1; i < s.voters.size(); ++i) {  // skip submitter digg
      if (s.times[i] > now) break;
      if (s.times[i] >= horizon && is_friend(s.voters[i])) {
        out.dugg_by_friends.push_back(s.id);
        break;  // one appearance per story is enough
      }
    }
  }
  return out;
}

}  // namespace digg::platform
