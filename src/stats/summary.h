#pragma once
// Summary statistics used by the figure reproductions: Fig. 4 plots the
// median and the trimmed spread (all values except the highest and lowest)
// of final votes grouped by in-network vote count.

#include <cstddef>
#include <vector>

namespace digg::stats {

/// Five-number-style summary of a sample. `trimmed_lo`/`trimmed_hi` drop the
/// single highest and lowest observation, matching the error bars of Fig. 4
/// ("median and width of the distribution ... except for the highest and
/// lowest values").
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double q1 = 0.0;
  double q3 = 0.0;
  double trimmed_lo = 0.0;
  double trimmed_hi = 0.0;
};

/// Computes the full summary. Returns a zeroed Summary for an empty sample.
[[nodiscard]] Summary summarize(std::vector<double> values);

/// Quantile by linear interpolation; q in [0,1]. Throws on empty input.
[[nodiscard]] double quantile(std::vector<double> values, double q);

[[nodiscard]] double mean(const std::vector<double>& values);
[[nodiscard]] double stddev(const std::vector<double>& values);

/// Pearson correlation coefficient. Throws if sizes differ or n < 2.
[[nodiscard]] double pearson(const std::vector<double>& x,
                             const std::vector<double>& y);

/// Spearman rank correlation (average ranks on ties).
[[nodiscard]] double spearman(const std::vector<double>& x,
                              const std::vector<double>& y);

/// Ordinary least squares fit y = a + b*x; returns {a, b}. Used to estimate
/// log-log slopes of activity distributions. Throws if n < 2 or x constant.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
[[nodiscard]] LinearFit least_squares(const std::vector<double>& x,
                                      const std::vector<double>& y);

}  // namespace digg::stats
