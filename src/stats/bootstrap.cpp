#include "src/stats/bootstrap.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/runtime/parallel.h"
#include "src/stats/summary.h"

namespace digg::stats {

namespace {

void check_args(std::size_t n, std::size_t resamples, double confidence) {
  if (n == 0) throw std::invalid_argument("bootstrap: empty data");
  if (resamples < 10) throw std::invalid_argument("bootstrap: too few resamples");
  if (confidence <= 0.0 || confidence >= 1.0)
    throw std::invalid_argument("bootstrap: confidence outside (0,1)");
}

Interval percentile_interval(std::vector<double> estimates, double point,
                             double confidence) {
  std::sort(estimates.begin(), estimates.end());
  const double alpha = (1.0 - confidence) / 2.0;
  Interval ci;
  ci.point = point;
  ci.lo = quantile(estimates, alpha);
  ci.hi = quantile(estimates, 1.0 - alpha);
  return ci;
}

}  // namespace

Interval bootstrap_ci(const std::vector<double>& data,
                      const Statistic& statistic, std::size_t resamples,
                      double confidence, Rng& rng) {
  check_args(data.size(), resamples, confidence);
  // One fork keys this call's resampling plan (so repeated calls on the same
  // rng see fresh resamples); resample r then draws from the index-addressed
  // substream base.split(r), which makes the estimates independent of how
  // resamples are scheduled across threads — any thread count produces
  // bit-identical intervals.
  const Rng base = rng.fork();
  const std::size_t n = data.size();
  std::vector<double> estimates = runtime::parallel_map<double>(
      resamples, [&](std::size_t r) {
        Rng sub = base.split(r);
        std::vector<double> resample(n);
        for (double& v : resample) {
          v = data[static_cast<std::size_t>(
              sub.uniform_int(0, static_cast<std::int64_t>(n) - 1))];
        }
        return statistic(resample);
      });
  return percentile_interval(std::move(estimates), statistic(data),
                             confidence);
}

Interval bootstrap_mean_ci(const std::vector<double>& data,
                           std::size_t resamples, double confidence,
                           Rng& rng) {
  return bootstrap_ci(
      data, [](const std::vector<double>& v) { return mean(v); }, resamples,
      confidence, rng);
}

Interval bootstrap_proportion_ci(const std::vector<bool>& outcomes,
                                 std::size_t resamples, double confidence,
                                 Rng& rng) {
  std::vector<double> data;
  data.reserve(outcomes.size());
  for (bool b : outcomes) data.push_back(b ? 1.0 : 0.0);
  return bootstrap_mean_ci(data, resamples, confidence, rng);
}

Interval bootstrap_paired_diff_ci(const PairedSample& sample,
                                  const Statistic& statistic,
                                  std::size_t resamples, double confidence,
                                  Rng& rng) {
  if (sample.a.size() != sample.b.size())
    throw std::invalid_argument("bootstrap_paired_diff_ci: size mismatch");
  check_args(sample.a.size(), resamples, confidence);
  const std::size_t n = sample.a.size();

  auto diff_on = [&](const std::vector<std::size_t>& idx) {
    std::vector<double> a;
    std::vector<double> b;
    for (std::size_t i : idx) {
      if (!std::isnan(sample.a[i])) a.push_back(sample.a[i]);
      if (!std::isnan(sample.b[i])) b.push_back(sample.b[i]);
    }
    const double sa = a.empty() ? 0.0 : statistic(a);
    const double sb = b.empty() ? 0.0 : statistic(b);
    return sa - sb;
  };

  std::vector<std::size_t> identity(n);
  for (std::size_t i = 0; i < n; ++i) identity[i] = i;
  const double point = diff_on(identity);

  const Rng base = rng.fork();
  std::vector<double> estimates = runtime::parallel_map<double>(
      resamples, [&](std::size_t r) {
        Rng sub = base.split(r);
        std::vector<std::size_t> idx(n);
        for (std::size_t& i : idx) {
          i = static_cast<std::size_t>(
              sub.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        }
        return diff_on(idx);
      });
  return percentile_interval(std::move(estimates), point, confidence);
}

}  // namespace digg::stats
