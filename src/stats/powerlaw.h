#pragma once
// Power-law fitting for degree and activity distributions. The paper's §6
// discusses power-law degree distributions and their effect on epidemic
// thresholds; Fig. 2b's activity histograms are approximately power laws.
// We implement the discrete maximum-likelihood estimator (Clauset, Shalizi &
// Newman 2009) with a Kolmogorov–Smirnov goodness measure.

#include <cstdint>
#include <vector>

namespace digg::stats {

struct PowerLawFit {
  double alpha = 0.0;       // estimated exponent
  std::int64_t x_min = 1;   // lower cutoff used for the fit
  double ks_distance = 0.0; // KS distance between data and fitted CDF
  std::size_t n_tail = 0;   // number of observations >= x_min
};

/// Fits alpha by discrete MLE for a fixed x_min:
///   alpha ≈ 1 + n / sum(ln(x_i / (x_min - 0.5)))
/// Throws if no observations are >= x_min.
[[nodiscard]] PowerLawFit fit_power_law(const std::vector<std::int64_t>& data,
                                        std::int64_t x_min);

/// Scans candidate x_min values (every distinct data value) and returns the
/// fit minimizing the KS distance, following Clauset et al.
[[nodiscard]] PowerLawFit fit_power_law_auto(
    const std::vector<std::int64_t>& data);

/// KS distance between the empirical tail CDF (x >= x_min) and the discrete
/// power-law CDF with the given alpha.
[[nodiscard]] double ks_distance(const std::vector<std::int64_t>& data,
                                 double alpha, std::int64_t x_min);

/// Hurwitz zeta ζ(s, q) by direct summation with tail integral correction;
/// s > 1. Used as the discrete power-law normalizer.
[[nodiscard]] double hurwitz_zeta(double s, double q);

}  // namespace digg::stats
