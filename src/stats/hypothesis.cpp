#include "src/stats/hypothesis.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace digg::stats {

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double chi_square_sf(double x, std::size_t dof) {
  if (x <= 0.0) return 1.0;
  if (dof == 0) throw std::invalid_argument("chi_square_sf: dof == 0");
  if (dof == 1) return 2.0 * (1.0 - normal_cdf(std::sqrt(x)));
  if (dof == 2) return std::exp(-x / 2.0);
  // Wilson–Hilferty: (X/k)^(1/3) ~ Normal(1 - 2/(9k), 2/(9k)).
  const double k = static_cast<double>(dof);
  const double z = (std::cbrt(x / k) - (1.0 - 2.0 / (9.0 * k))) /
                   std::sqrt(2.0 / (9.0 * k));
  return 1.0 - normal_cdf(z);
}

TestResult mann_whitney_u(const std::vector<double>& a,
                          const std::vector<double>& b) {
  if (a.empty() || b.empty())
    throw std::invalid_argument("mann_whitney_u: empty sample");
  const std::size_t n1 = a.size();
  const std::size_t n2 = b.size();

  struct Tagged {
    double value;
    bool from_a;
  };
  std::vector<Tagged> all;
  all.reserve(n1 + n2);
  for (double v : a) all.push_back({v, true});
  for (double v : b) all.push_back({v, false});
  std::sort(all.begin(), all.end(),
            [](const Tagged& x, const Tagged& y) { return x.value < y.value; });

  // Average ranks with tie bookkeeping for the variance correction.
  double rank_sum_a = 0.0;
  double tie_term = 0.0;
  std::size_t i = 0;
  const double n = static_cast<double>(n1 + n2);
  while (i < all.size()) {
    std::size_t j = i;
    while (j + 1 < all.size() && all[j + 1].value == all[i].value) ++j;
    const double avg_rank =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    const double t = static_cast<double>(j - i + 1);
    if (t > 1.0) tie_term += t * t * t - t;
    for (std::size_t k = i; k <= j; ++k) {
      if (all[k].from_a) rank_sum_a += avg_rank;
    }
    i = j + 1;
  }

  const double u1 =
      rank_sum_a - static_cast<double>(n1) * (static_cast<double>(n1) + 1.0) /
                       2.0;
  const double mean_u = static_cast<double>(n1) * static_cast<double>(n2) / 2.0;
  const double var_u = static_cast<double>(n1) * static_cast<double>(n2) /
                       12.0 *
                       ((n + 1.0) - tie_term / (n * (n - 1.0)));
  TestResult result;
  result.statistic = u1;
  if (var_u <= 0.0) {
    result.p_value = 1.0;  // all observations identical
    return result;
  }
  const double z = (u1 - mean_u) / std::sqrt(var_u);
  result.p_value = 2.0 * (1.0 - normal_cdf(std::abs(z)));
  return result;
}

TestResult chi_square_2x2(double a, double b, double c, double d) {
  if (a < 0 || b < 0 || c < 0 || d < 0)
    throw std::invalid_argument("chi_square_2x2: negative cell");
  const double n = a + b + c + d;
  if (n <= 0.0) throw std::invalid_argument("chi_square_2x2: empty table");
  const double row1 = a + b;
  const double row2 = c + d;
  const double col1 = a + c;
  const double col2 = b + d;
  if (row1 == 0.0 || row2 == 0.0 || col1 == 0.0 || col2 == 0.0) {
    return TestResult{0.0, 1.0};  // degenerate margin: no association testable
  }
  const double det = std::abs(a * d - b * c);
  const double corrected = std::max(0.0, det - n / 2.0);  // Yates
  TestResult result;
  result.statistic = n * corrected * corrected / (row1 * row2 * col1 * col2);
  result.p_value = chi_square_sf(result.statistic, 1);
  return result;
}

TestResult two_proportion_z(std::size_t successes1, std::size_t n1,
                            std::size_t successes2, std::size_t n2) {
  if (n1 == 0 || n2 == 0)
    throw std::invalid_argument("two_proportion_z: empty group");
  if (successes1 > n1 || successes2 > n2)
    throw std::invalid_argument("two_proportion_z: successes exceed n");
  const double p1 = static_cast<double>(successes1) / static_cast<double>(n1);
  const double p2 = static_cast<double>(successes2) / static_cast<double>(n2);
  const double pooled = static_cast<double>(successes1 + successes2) /
                        static_cast<double>(n1 + n2);
  const double se =
      std::sqrt(pooled * (1.0 - pooled) *
                (1.0 / static_cast<double>(n1) + 1.0 / static_cast<double>(n2)));
  TestResult result;
  if (se == 0.0) {
    result.statistic = 0.0;
    result.p_value = 1.0;
    return result;
  }
  result.statistic = (p1 - p2) / se;
  result.p_value = 2.0 * (1.0 - normal_cdf(std::abs(result.statistic)));
  return result;
}

}  // namespace digg::stats
