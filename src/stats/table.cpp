#include "src/stats/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace digg::stats {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("TextTable::add_row: column count mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << render(); }

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt(std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  return buf;
}

std::string fmt(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(value));
  return buf;
}

std::string fmt_pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

namespace {

std::string bar(double value, double max_value, std::size_t max_width) {
  if (max_value <= 0.0) return "";
  const auto width = static_cast<std::size_t>(
      value / max_value * static_cast<double>(max_width) + 0.5);
  return std::string(width, '#');
}

}  // namespace

std::string render_bars(const std::vector<Bin>& bins, std::size_t max_width) {
  std::uint64_t max_count = 0;
  for (const Bin& b : bins) max_count = std::max(max_count, b.count);
  std::ostringstream os;
  for (const Bin& b : bins) {
    char label[64];
    std::snprintf(label, sizeof label, "[%8.0f, %8.0f)", b.lo, b.hi);
    os << label << ' ';
    char count[16];
    std::snprintf(count, sizeof count, "%6llu",
                  static_cast<unsigned long long>(b.count));
    os << count << ' '
       << bar(static_cast<double>(b.count), static_cast<double>(max_count),
              max_width)
       << '\n';
  }
  return os.str();
}

std::string render_bars(
    const std::vector<std::pair<std::int64_t, std::uint64_t>>& items,
    std::size_t max_width) {
  std::uint64_t max_count = 0;
  for (const auto& [v, c] : items) max_count = std::max(max_count, c);
  std::ostringstream os;
  for (const auto& [v, c] : items) {
    char label[48];
    std::snprintf(label, sizeof label, "%6lld %6llu ",
                  static_cast<long long>(v),
                  static_cast<unsigned long long>(c));
    os << label
       << bar(static_cast<double>(c), static_cast<double>(max_count),
              max_width)
       << '\n';
  }
  return os.str();
}

std::string render_series(const std::vector<double>& times,
                          const std::vector<double>& values,
                          std::size_t max_width) {
  if (times.size() != values.size())
    throw std::invalid_argument("render_series: size mismatch");
  double max_value = 0.0;
  for (double v : values) max_value = std::max(max_value, v);
  std::ostringstream os;
  for (std::size_t i = 0; i < times.size(); ++i) {
    char label[48];
    std::snprintf(label, sizeof label, "t=%7.0f  %8.1f ", times[i], values[i]);
    os << label << bar(values[i], max_value, max_width) << '\n';
  }
  return os.str();
}

}  // namespace digg::stats
