#include "src/stats/timeseries.h"

#include <algorithm>
#include <stdexcept>

namespace digg::stats {

void TimeSeries::append(double time_minutes, double value) {
  if (!times_.empty() && time_minutes < times_.back())
    throw std::invalid_argument("TimeSeries::append: time went backwards");
  times_.push_back(time_minutes);
  values_.push_back(value);
}

double TimeSeries::at(double time_minutes) const {
  if (times_.empty()) throw std::logic_error("TimeSeries::at: empty series");
  if (time_minutes <= times_.front()) return values_.front();
  if (time_minutes >= times_.back()) return values_.back();
  const auto it =
      std::lower_bound(times_.begin(), times_.end(), time_minutes);
  const auto hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double span = times_[hi] - times_[lo];
  if (span <= 0.0) return values_[hi];
  const double frac = (time_minutes - times_[lo]) / span;
  return values_[lo] + frac * (values_[hi] - values_[lo]);
}

TimeSeries TimeSeries::resample(double horizon_minutes,
                                std::size_t points) const {
  if (points < 2) throw std::invalid_argument("TimeSeries::resample: points < 2");
  TimeSeries out;
  for (std::size_t i = 0; i < points; ++i) {
    const double t = horizon_minutes * static_cast<double>(i) /
                     static_cast<double>(points - 1);
    out.append(t, empty() ? 0.0 : at(t));
  }
  return out;
}

std::optional<double> TimeSeries::time_to_reach(double threshold) const {
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (values_[i] >= threshold) {
      if (i == 0 || values_[i] == values_[i - 1]) return times_[i];
      // Interpolate the crossing within the segment.
      const double frac =
          (threshold - values_[i - 1]) / (values_[i] - values_[i - 1]);
      return times_[i - 1] + frac * (times_[i] - times_[i - 1]);
    }
  }
  return std::nullopt;
}

std::optional<double> TimeSeries::half_life(double from_minutes) const {
  if (empty()) return std::nullopt;
  const double v_from = at(from_minutes);
  const double v_final = values_.back();
  if (v_final <= v_from) return std::nullopt;
  const double target = v_from + (v_final - v_from) / 2.0;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] >= from_minutes && values_[i] >= target) {
      return times_[i] - from_minutes;
    }
  }
  return std::nullopt;
}

}  // namespace digg::stats
