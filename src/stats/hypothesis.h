#pragma once
// Hypothesis tests for the reproduced relationships. The paper argues from
// plots; the benches back the same claims with p-values:
//   - Mann–Whitney U: do low-v10 and high-v10 stories draw their final vote
//     counts from the same distribution? (Fig. 4)
//   - chi-square independence: is predicted interestingness independent of
//     the observed class? (Fig. 5's confusion matrix)
//   - two-proportion z-test: our precision vs Digg's promotion precision.

#include <cstddef>
#include <vector>

namespace digg::stats {

struct TestResult {
  double statistic = 0.0;
  double p_value = 1.0;  // two-sided unless noted
};

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double z);

/// Mann–Whitney U test (two-sided, normal approximation with tie
/// correction). Suitable for n1, n2 >= ~8. Throws if either sample is empty.
[[nodiscard]] TestResult mann_whitney_u(const std::vector<double>& a,
                                        const std::vector<double>& b);

/// Chi-square test of independence on a 2x2 contingency table
/// [[a, b], [c, d]] with Yates continuity correction.
[[nodiscard]] TestResult chi_square_2x2(double a, double b, double c,
                                        double d);

/// Two-proportion z-test (two-sided): successes1/n1 vs successes2/n2.
/// Throws if either n is zero.
[[nodiscard]] TestResult two_proportion_z(std::size_t successes1,
                                          std::size_t n1,
                                          std::size_t successes2,
                                          std::size_t n2);

/// Chi-square upper-tail probability for k degrees of freedom (k = 1 or 2
/// supported exactly; other k via the Wilson–Hilferty approximation).
[[nodiscard]] double chi_square_sf(double x, std::size_t dof);

}  // namespace digg::stats
