#include "src/stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace digg::stats {

LinearHistogram::LinearHistogram(double min, double max, std::size_t bin_count)
    : min_(min), max_(max) {
  if (!(max > min)) throw std::invalid_argument("LinearHistogram: max <= min");
  if (bin_count == 0)
    throw std::invalid_argument("LinearHistogram: bin_count == 0");
  counts_.assign(bin_count, 0);
  width_ = (max - min) / static_cast<double>(bin_count);
}

void LinearHistogram::add(double value) {
  auto idx = static_cast<std::int64_t>(std::floor((value - min_) / width_));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void LinearHistogram::add_many(const std::vector<double>& values) {
  for (double v : values) add(v);
}

Bin LinearHistogram::bin(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("LinearHistogram::bin");
  return Bin{min_ + width_ * static_cast<double>(i),
             min_ + width_ * static_cast<double>(i + 1), counts_[i]};
}

std::vector<Bin> LinearHistogram::bins() const {
  std::vector<Bin> out;
  out.reserve(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) out.push_back(bin(i));
  return out;
}

double LinearHistogram::fraction_below(double value) const {
  if (total_ == 0) return 0.0;
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double hi = min_ + width_ * static_cast<double>(i + 1);
    if (hi <= value) {
      below += counts_[i];
    } else {
      // Partial bin: assume uniform density within the bin.
      const double lo = min_ + width_ * static_cast<double>(i);
      if (value > lo) {
        const double frac = (value - lo) / width_;
        below += static_cast<std::uint64_t>(
            frac * static_cast<double>(counts_[i]));
      }
      break;
    }
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

LogHistogram::LogHistogram(double base) : base_(base) {
  if (!(base > 1.0)) throw std::invalid_argument("LogHistogram: base <= 1");
}

void LogHistogram::add(std::uint64_t value) {
  ++total_;
  if (value == 0) {
    ++zeros_;
    return;
  }
  const auto idx = static_cast<std::size_t>(
      std::floor(std::log(static_cast<double>(value)) / std::log(base_)));
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  ++counts_[idx];
}

std::vector<Bin> LogHistogram::bins() const {
  std::vector<Bin> out;
  out.reserve(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out.push_back(Bin{std::pow(base_, static_cast<double>(i)),
                      std::pow(base_, static_cast<double>(i + 1)), counts_[i]});
  }
  return out;
}

std::vector<double> LogHistogram::densities() const {
  std::vector<double> out;
  out.reserve(counts_.size());
  for (const Bin& b : bins()) {
    const double width = b.hi - b.lo;
    out.push_back(static_cast<double>(b.count) / width);
  }
  return out;
}

void FrequencyCounter::add(std::int64_t value) {
  ++counts_[value];
  ++total_;
}

std::uint64_t FrequencyCounter::count(std::int64_t value) const {
  const auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

std::int64_t FrequencyCounter::min_value() const {
  if (counts_.empty()) throw std::logic_error("FrequencyCounter: empty");
  return counts_.begin()->first;
}

std::int64_t FrequencyCounter::max_value() const {
  if (counts_.empty()) throw std::logic_error("FrequencyCounter: empty");
  return counts_.rbegin()->first;
}

std::uint64_t FrequencyCounter::count_at_least(std::int64_t threshold) const {
  std::uint64_t acc = 0;
  for (auto it = counts_.lower_bound(threshold); it != counts_.end(); ++it)
    acc += it->second;
  return acc;
}

std::vector<std::pair<std::int64_t, std::uint64_t>> FrequencyCounter::items()
    const {
  return {counts_.begin(), counts_.end()};
}

}  // namespace digg::stats
