#include "src/stats/summary.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace digg::stats {

namespace {

double sorted_quantile(const std::vector<double>& sorted, double q) {
  const std::size_t n = sorted.size();
  if (n == 1) return sorted.front();
  const double pos = q * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, n - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::vector<double> ranks(const std::vector<double>& values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> out(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg_rank =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[order[k]] = avg_rank;
    i = j + 1;
  }
  return out;
}

}  // namespace

Summary summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.n = values.size();
  s.min = values.front();
  s.max = values.back();
  s.mean = mean(values);
  s.stddev = stddev(values);
  s.median = sorted_quantile(values, 0.5);
  s.q1 = sorted_quantile(values, 0.25);
  s.q3 = sorted_quantile(values, 0.75);
  if (values.size() >= 3) {
    s.trimmed_lo = values[1];
    s.trimmed_hi = values[values.size() - 2];
  } else {
    s.trimmed_lo = s.min;
    s.trimmed_hi = s.max;
  }
  return s;
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::sort(values.begin(), values.end());
  return sorted_quantile(values, q);
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size()) throw std::invalid_argument("pearson: size mismatch");
  if (x.size() < 2) throw std::invalid_argument("pearson: n < 2");
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0)
    throw std::invalid_argument("pearson: zero variance");
  return sxy / std::sqrt(sxx * syy);
}

double spearman(const std::vector<double>& x, const std::vector<double>& y) {
  return pearson(ranks(x), ranks(y));
}

LinearFit least_squares(const std::vector<double>& x,
                        const std::vector<double>& y) {
  if (x.size() != y.size())
    throw std::invalid_argument("least_squares: size mismatch");
  if (x.size() < 2) throw std::invalid_argument("least_squares: n < 2");
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0) throw std::invalid_argument("least_squares: x constant");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace digg::stats
