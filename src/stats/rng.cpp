#include "src/stats/rng.h"

#include <algorithm>
#include <cmath>

namespace digg::stats {

PowerLawSampler::PowerLawSampler(double alpha, std::int64_t k_min,
                                 std::int64_t k_max)
    : alpha_(alpha), k_min_(k_min), k_max_(k_max) {
  if (k_min < 1) throw std::invalid_argument("PowerLawSampler: k_min < 1");
  if (k_max < k_min)
    throw std::invalid_argument("PowerLawSampler: k_max < k_min");
  if (alpha <= 0.0) throw std::invalid_argument("PowerLawSampler: alpha <= 0");
  cdf_.reserve(static_cast<std::size_t>(k_max - k_min + 1));
  double acc = 0.0;
  for (std::int64_t k = k_min; k <= k_max; ++k) {
    acc += std::pow(static_cast<double>(k), -alpha);
    cdf_.push_back(acc);
  }
  for (double& c : cdf_) c /= acc;
}

std::int64_t PowerLawSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<std::int64_t>(it - cdf_.begin());
  return k_min_ + std::min<std::int64_t>(idx, k_max_ - k_min_);
}

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n == 0");
  if (s < 0.0) throw std::invalid_argument("ZipfSampler: s < 0");
  cdf_.reserve(n);
  double acc = 0.0;
  for (std::size_t rank = 1; rank <= n; ++rank) {
    acc += std::pow(static_cast<double>(rank), -s);
    cdf_.push_back(acc);
  }
  for (double& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<std::size_t>(it - cdf_.begin());
  return std::min(idx, cdf_.size() - 1) + 1;
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  if (weights.empty())
    throw std::invalid_argument("DiscreteSampler: empty weights");
  cdf_.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("DiscreteSampler: negative weight");
    acc += w;
    cdf_.push_back(acc);
  }
  if (acc <= 0.0)
    throw std::invalid_argument("DiscreteSampler: all weights zero");
  for (double& c : cdf_) c /= acc;
}

std::size_t DiscreteSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<std::size_t>(it - cdf_.begin());
  return std::min(idx, cdf_.size() - 1);
}

}  // namespace digg::stats
