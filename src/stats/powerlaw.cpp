#include "src/stats/powerlaw.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

namespace digg::stats {

double hurwitz_zeta(double s, double q) {
  if (s <= 1.0) throw std::invalid_argument("hurwitz_zeta: s <= 1");
  if (q <= 0.0) throw std::invalid_argument("hurwitz_zeta: q <= 0");
  // Direct sum for the first terms, then Euler–Maclaurin tail correction.
  constexpr int kDirectTerms = 64;
  double sum = 0.0;
  for (int k = 0; k < kDirectTerms; ++k)
    sum += std::pow(q + static_cast<double>(k), -s);
  const double a = q + static_cast<double>(kDirectTerms);
  // Integral term + half endpoint + first derivative correction.
  sum += std::pow(a, 1.0 - s) / (s - 1.0);
  sum += 0.5 * std::pow(a, -s);
  sum += s / 12.0 * std::pow(a, -s - 1.0);
  return sum;
}

PowerLawFit fit_power_law(const std::vector<std::int64_t>& data,
                          std::int64_t x_min) {
  if (x_min < 1) throw std::invalid_argument("fit_power_law: x_min < 1");
  double log_sum = 0.0;
  std::size_t n = 0;
  for (std::int64_t x : data) {
    if (x >= x_min) {
      log_sum += std::log(static_cast<double>(x) /
                          (static_cast<double>(x_min) - 0.5));
      ++n;
    }
  }
  if (n == 0) throw std::invalid_argument("fit_power_law: no tail data");
  PowerLawFit fit;
  fit.x_min = x_min;
  fit.n_tail = n;
  // Degenerate tail (all observations equal to x_min) gives log_sum == 0.
  fit.alpha = (log_sum > 0.0)
                  ? 1.0 + static_cast<double>(n) / log_sum
                  : std::numeric_limits<double>::infinity();
  if (std::isfinite(fit.alpha))
    fit.ks_distance = ks_distance(data, fit.alpha, x_min);
  return fit;
}

double ks_distance(const std::vector<std::int64_t>& data, double alpha,
                   std::int64_t x_min) {
  std::vector<std::int64_t> tail;
  for (std::int64_t x : data)
    if (x >= x_min) tail.push_back(x);
  if (tail.empty()) throw std::invalid_argument("ks_distance: no tail data");
  std::sort(tail.begin(), tail.end());
  const double z = hurwitz_zeta(alpha, static_cast<double>(x_min));
  const auto n = static_cast<double>(tail.size());
  double max_d = 0.0;
  double model_cdf = 0.0;
  std::size_t i = 0;
  std::int64_t x = x_min;
  const std::int64_t x_max = tail.back();
  while (x <= x_max) {
    model_cdf += std::pow(static_cast<double>(x), -alpha) / z;
    while (i < tail.size() && tail[i] <= x) ++i;
    const double emp_cdf = static_cast<double>(i) / n;
    max_d = std::max(max_d, std::abs(emp_cdf - model_cdf));
    ++x;
  }
  return max_d;
}

PowerLawFit fit_power_law_auto(const std::vector<std::int64_t>& data) {
  if (data.empty())
    throw std::invalid_argument("fit_power_law_auto: empty data");
  std::set<std::int64_t> candidates;
  for (std::int64_t x : data)
    if (x >= 1) candidates.insert(x);
  if (candidates.empty())
    throw std::invalid_argument("fit_power_law_auto: no positive data");
  PowerLawFit best;
  bool have_best = false;
  for (std::int64_t x_min : candidates) {
    // Require a minimum tail size so the KS distance is meaningful.
    std::size_t tail = 0;
    for (std::int64_t x : data)
      if (x >= x_min) ++tail;
    if (tail < 10) break;  // candidates ascend; tails only shrink
    const PowerLawFit fit = fit_power_law(data, x_min);
    if (!std::isfinite(fit.alpha)) continue;
    if (!have_best || fit.ks_distance < best.ks_distance) {
      best = fit;
      have_best = true;
    }
  }
  if (!have_best)
    // Fall back to the smallest candidate if every tail was tiny/degenerate.
    return fit_power_law(data, *candidates.begin());
  return best;
}

}  // namespace digg::stats
