#pragma once
// Nonparametric bootstrap confidence intervals. The paper's §5.2 comparison
// (precision 0.57 vs 0.36 on 48 stories) carries wide sampling error; the
// fig5_roc bench uses these utilities to put intervals on the reproduced
// gap instead of a bare point estimate.

#include <cstddef>
#include <functional>
#include <vector>

#include "src/stats/rng.h"

namespace digg::stats {

struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;  // statistic on the original sample

  [[nodiscard]] bool contains(double v) const noexcept {
    return v >= lo && v <= hi;
  }
};

/// Statistic evaluated on a resampled dataset (vector of doubles).
/// Resampling runs on the parallel runtime (src/runtime), so the statistic
/// is invoked concurrently and must be thread-safe (pure functions are).
using Statistic = std::function<double(const std::vector<double>&)>;

/// Percentile-bootstrap CI of `statistic` over `data`. `confidence` in
/// (0,1), e.g. 0.95. Throws on empty data or bad arguments. Resamples are
/// drawn from index-addressed Rng substreams, so the interval is identical
/// for any DIGG_THREADS setting (see src/runtime/parallel.h).
[[nodiscard]] Interval bootstrap_ci(const std::vector<double>& data,
                                    const Statistic& statistic,
                                    std::size_t resamples, double confidence,
                                    Rng& rng);

/// Convenience: CI of the mean.
[[nodiscard]] Interval bootstrap_mean_ci(const std::vector<double>& data,
                                         std::size_t resamples,
                                         double confidence, Rng& rng);

/// CI of a proportion from Bernoulli observations (0/1 values).
[[nodiscard]] Interval bootstrap_proportion_ci(
    const std::vector<bool>& outcomes, std::size_t resamples,
    double confidence, Rng& rng);

/// Paired difference of two per-item statistics: items are resampled
/// jointly and `statistic` is evaluated on each side; returns the CI of
/// side_a - side_b. Used for "our precision minus Digg's precision" where
/// both are computed over the same held-out stories.
struct PairedSample {
  // Per-item observations. Both vectors must have the same length; entry i
  // describes item i under condition a and b respectively. NaN entries mean
  // "item not counted under this condition" (e.g. a story the classifier
  // did not flag) and are skipped by the statistic.
  std::vector<double> a;
  std::vector<double> b;
};
[[nodiscard]] Interval bootstrap_paired_diff_ci(const PairedSample& sample,
                                                const Statistic& statistic,
                                                std::size_t resamples,
                                                double confidence, Rng& rng);

}  // namespace digg::stats
