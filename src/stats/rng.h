#pragma once
// Seeded random number generation and the heavy-tailed samplers used to
// calibrate the synthetic Digg corpus. Every stochastic component of the
// library takes an explicit Rng so that experiments are reproducible from a
// printed seed.

#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

namespace digg::stats {

/// SplitMix64 finalizer (Steele, Lea & Flood 2014): a bijective avalanche
/// mix of a 64-bit value. Used to derive statistically independent stream
/// keys for Rng::split.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic random source. Thin wrapper over std::mt19937_64 with
/// convenience draws; copyable so simulations can fork independent streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// The seed this stream was created with (printed by benches).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Uniform real in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * unit_(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return unit_(engine_) < p;
  }

  /// Exponential with the given rate (events per unit time). rate > 0.
  double exponential(double rate) {
    if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate <= 0");
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Normal(mean, stddev).
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Lognormal with the given log-mean and log-stddev.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Poisson with the given mean. mean >= 0.
  std::int64_t poisson(double mean) {
    if (mean < 0.0) throw std::invalid_argument("Rng::poisson: mean < 0");
    if (mean == 0.0) return 0;
    return std::poisson_distribution<std::int64_t>(mean)(engine_);
  }

  /// Geometric number of failures before first success; p in (0, 1].
  std::int64_t geometric(double p) {
    if (p <= 0.0 || p > 1.0)
      throw std::invalid_argument("Rng::geometric: p outside (0,1]");
    if (p == 1.0) return 0;
    return std::geometric_distribution<std::int64_t>(p)(engine_);
  }

  /// Fork an independent stream (used to give each story its own stream so
  /// adding stories does not perturb earlier ones). Consumes one draw from
  /// this stream, so successive forks differ.
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  /// Counter-based substream: an independent stream addressed by `index`,
  /// derived from this stream's *seed* (never its current state). Unlike
  /// fork(), split does not consume a draw and does not depend on how many
  /// draws the parent has made — rng.split(i) is the same stream before and
  /// after any amount of parent activity. This is the contract parallel
  /// loops rely on: task i draws from split(i) and the result is identical
  /// for any thread count or execution order. Derivation is two rounds of
  /// splitmix64 over (seed, index), so substreams for different indices are
  /// statistically independent of each other and of the parent.
  [[nodiscard]] Rng split(std::uint64_t index) const {
    return Rng(splitmix64(splitmix64(seed_) ^ splitmix64(index)));
  }

  /// Access the underlying engine for std:: distributions and std::shuffle.
  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

/// Discrete power-law sampler: P(k) ∝ k^(-alpha) for k in [k_min, k_max].
/// Used for fan-count and activity distributions (Fig. 2b is approximately a
/// power law). Sampling is by inverse CDF over the precomputed table.
class PowerLawSampler {
 public:
  PowerLawSampler(double alpha, std::int64_t k_min, std::int64_t k_max);

  [[nodiscard]] std::int64_t sample(Rng& rng) const;
  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] std::int64_t k_min() const noexcept { return k_min_; }
  [[nodiscard]] std::int64_t k_max() const noexcept { return k_max_; }

 private:
  double alpha_;
  std::int64_t k_min_;
  std::int64_t k_max_;
  std::vector<double> cdf_;  // cumulative, normalized to 1 at the back
};

/// Zipf sampler over ranks 1..n with exponent s: P(rank) ∝ rank^(-s).
/// Used to skew activity toward top users (§3: top 3% make 35% of
/// submissions).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Returns a rank in [1, n].
  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t n() const noexcept { return cdf_.size(); }
  [[nodiscard]] double exponent() const noexcept { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;
};

/// Weighted index sampler (roulette wheel) over arbitrary non-negative
/// weights. O(log n) per draw.
class DiscreteSampler {
 public:
  explicit DiscreteSampler(const std::vector<double>& weights);

  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace digg::stats
