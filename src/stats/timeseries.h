#pragma once
// Time series of cumulative vote counts (Fig. 1). Stores (minute, value)
// knots and supports resampling, alignment to promotion time, and estimation
// of the saturation half-life (Wu & Huberman report ~1 day).

#include <cstdint>
#include <optional>
#include <vector>

namespace digg::stats {

/// Monotone cumulative count series sampled at non-decreasing times.
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Appends a sample; time must be >= the last appended time.
  void append(double time_minutes, double value);

  [[nodiscard]] std::size_t size() const noexcept { return times_.size(); }
  [[nodiscard]] bool empty() const noexcept { return times_.empty(); }
  [[nodiscard]] const std::vector<double>& times() const noexcept {
    return times_;
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

  /// Piecewise-linear interpolation; clamps outside the observed range.
  /// Throws if empty.
  [[nodiscard]] double at(double time_minutes) const;

  /// Resamples onto a regular grid [0, horizon] with `points` samples.
  [[nodiscard]] TimeSeries resample(double horizon_minutes,
                                    std::size_t points) const;

  /// Earliest time at which the value reaches `threshold`, if ever.
  [[nodiscard]] std::optional<double> time_to_reach(double threshold) const;

  /// Time (after `from_minutes`) at which the remaining growth halves:
  /// value(t) = v_from + (v_final - v_from)/2. Estimates the novelty-decay
  /// half-life of the post-promotion regime. Returns nullopt if the series
  /// never grows after `from_minutes`.
  [[nodiscard]] std::optional<double> half_life(double from_minutes) const;

 private:
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace digg::stats
