#pragma once
// ASCII rendering helpers shared by every bench binary: aligned tables for
// the paper's quoted statistics and bar charts for its histograms, so the
// reproduced figures are readable directly in terminal output.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/stats/histogram.h"

namespace digg::stats {

/// Column-aligned text table. Cells are strings; numeric formatting is the
/// caller's concern (see `fmt` helpers below).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with a header underline and two-space column gaps.
  [[nodiscard]] std::string render() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting ("%.*f").
[[nodiscard]] std::string fmt(double value, int precision = 2);
[[nodiscard]] std::string fmt(std::int64_t value);
[[nodiscard]] std::string fmt(std::uint64_t value);
/// Percentage with one decimal, e.g. 0.357 -> "35.7%".
[[nodiscard]] std::string fmt_pct(double fraction);

/// Horizontal ASCII bar chart of histogram bins, labeled with bin ranges.
/// `max_width` is the width (in characters) of the longest bar.
[[nodiscard]] std::string render_bars(const std::vector<Bin>& bins,
                                      std::size_t max_width = 50);

/// Bar chart of (value, count) pairs (FrequencyCounter::items()).
[[nodiscard]] std::string render_bars(
    const std::vector<std::pair<std::int64_t, std::uint64_t>>& items,
    std::size_t max_width = 50);

/// Sparkline-style series rendering: one row per sample, value as a bar.
/// Used by the Fig. 1 time-series bench.
[[nodiscard]] std::string render_series(const std::vector<double>& times,
                                        const std::vector<double>& values,
                                        std::size_t max_width = 60);

}  // namespace digg::stats
