#pragma once
// Histograms used throughout the paper's figures: linear binning for the
// vote-count histogram (Fig. 2a), influence and cascade histograms (Fig. 3),
// and logarithmic binning for the user-activity plot (Fig. 2b).

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace digg::stats {

/// One histogram bin: [lo, hi) with a count.
struct Bin {
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t count = 0;
};

/// Fixed-width linear histogram over [min, max). Values outside the range are
/// clamped into the first/last bin so totals are preserved (the paper's
/// histograms include saturated tails).
class LinearHistogram {
 public:
  LinearHistogram(double min, double max, std::size_t bin_count);

  void add(double value);
  void add_many(const std::vector<double>& values);

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_width() const noexcept { return width_; }
  [[nodiscard]] Bin bin(std::size_t i) const;
  [[nodiscard]] std::vector<Bin> bins() const;

  /// Fraction of observations strictly below `value`.
  [[nodiscard]] double fraction_below(double value) const;

 private:
  double min_;
  double max_;
  double width_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counts_;
};

/// Logarithmic histogram over positive integers: bin i covers
/// [base^i, base^(i+1)). Used for heavy-tailed activity distributions where
/// linear bins are useless (Fig. 2b is plotted log-log).
class LogHistogram {
 public:
  explicit LogHistogram(double base = 2.0);

  void add(std::uint64_t value);  // values of 0 are counted in a special bin
  [[nodiscard]] std::uint64_t zeros() const noexcept { return zeros_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::vector<Bin> bins() const;

  /// Per-bin count density (count / bin width) — the quantity whose log-log
  /// slope estimates the power-law exponent.
  [[nodiscard]] std::vector<double> densities() const;

 private:
  double base_;
  std::uint64_t zeros_ = 0;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counts_;  // index = floor(log_base(value))
};

/// Exact integer frequency counter (value -> count), for small-range counts
/// such as cascade sizes 0..30 in Fig. 3b.
class FrequencyCounter {
 public:
  void add(std::int64_t value);
  [[nodiscard]] std::uint64_t count(std::int64_t value) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] bool empty() const noexcept { return total_ == 0; }
  [[nodiscard]] std::int64_t min_value() const;  // throws if empty
  [[nodiscard]] std::int64_t max_value() const;  // throws if empty
  /// Count of observations with value >= threshold.
  [[nodiscard]] std::uint64_t count_at_least(std::int64_t threshold) const;
  /// (value, count) pairs in ascending value order.
  [[nodiscard]] std::vector<std::pair<std::int64_t, std::uint64_t>> items() const;

 private:
  std::map<std::int64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace digg::stats
