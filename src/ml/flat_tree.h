#pragma once
// Branch-free batched evaluation for a trained DecisionTree (c45.h). The
// pointer-chasing walk() costs an unpredictable branch and a dependent load
// per level per row; for the per-vote online hooks (StreamEngine's v10
// prediction, fig7's scoring loop) that walk is the tree's entire cost. A
// FlatTree compiles the node graph into flat parallel arrays:
//
//   attr[n], thresh[n], left[n], right[n], miss[n], klass[n]
//
// with two normalizations that make a fixed-iteration descent exact:
//   - leaves self-loop: left == right == miss == self and thresh == +inf,
//     so a row that reaches its leaf early just idles there;
//   - every row descends exactly depth() steps, so a whole batch stays in
//     lockstep and the SIMD kernel (src/simd kernels.h: c45_leaves) can
//     evaluate 4 rows per step with gathers and blends, no branches.
//
// Missing values (NaN) route to miss[node] — DecisionTree::walk's
// majority-child rule — selected by an ordered-compare mask, so batched
// results are bit-identical to walk() for every row, NaN included
// (property-tested in tests/simd_kernel_test.cpp).
//
// Only trees whose internal nodes are all numeric binary splits compile
// (the paper's feature sets are all-numeric); a tree with nominal multiway
// splits yields valid() == false and callers keep the pointer walk.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/ml/c45.h"

namespace digg::ml {

class FlatTree {
 public:
  FlatTree() = default;
  /// Compiles `tree`. valid() is false when the tree has nominal splits
  /// (or is untrained); the FlatTree is then unusable and callers fall
  /// back to DecisionTree::predict.
  explicit FlatTree(const DecisionTree& tree);

  [[nodiscard]] bool valid() const noexcept { return !attr_.empty(); }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return attr_.size();
  }

  /// Predicted class per row. `rows` is n_rows x stride doubles, row-major;
  /// stride must cover every attribute the tree splits on. Dispatches to
  /// the active SIMD kernel table.
  void predict_classes(const double* rows, std::size_t n_rows,
                       std::size_t stride, std::int32_t* out_klass) const;

 private:
  std::vector<std::int32_t> attr_;
  std::vector<double> thresh_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  std::vector<std::int32_t> miss_;
  std::vector<std::int32_t> klass_;
  std::size_t depth_ = 0;
};

}  // namespace digg::ml
