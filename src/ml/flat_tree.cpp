#include "src/ml/flat_tree.h"

#include <limits>

#include "src/simd/dispatch.h"

namespace digg::ml {

FlatTree::FlatTree(const DecisionTree& tree) {
  const auto& nodes = tree.nodes_;
  if (nodes.empty()) return;
  for (const auto& n : nodes) {
    if (n.leaf) continue;
    if (tree.attributes_[n.attribute].kind != AttributeKind::kNumeric ||
        n.children.size() != 2)
      return;  // nominal multiway split: not compilable, valid() == false
  }
  const std::size_t count = nodes.size();
  attr_.resize(count);
  thresh_.resize(count);
  left_.resize(count);
  right_.resize(count);
  miss_.resize(count);
  klass_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto& n = nodes[i];
    const auto self = static_cast<std::int32_t>(i);
    klass_[i] = static_cast<std::int32_t>(n.klass);
    if (n.leaf) {
      // Self-loop with an always-true compare: a settled row idles here
      // for the remaining descent steps.
      attr_[i] = 0;
      thresh_[i] = std::numeric_limits<double>::infinity();
      left_[i] = right_[i] = miss_[i] = self;
    } else {
      attr_[i] = static_cast<std::int32_t>(n.attribute);
      thresh_[i] = n.threshold;
      left_[i] = static_cast<std::int32_t>(n.children[0]);
      right_[i] = static_cast<std::int32_t>(n.children[1]);
      miss_[i] = static_cast<std::int32_t>(n.children[n.majority_child]);
    }
  }
  depth_ = tree.depth();
}

void FlatTree::predict_classes(const double* rows, std::size_t n_rows,
                               std::size_t stride,
                               std::int32_t* out_klass) const {
  simd::FlatTreeView view;
  view.attr = attr_.data();
  view.thresh = thresh_.data();
  view.left = left_.data();
  view.right = right_.data();
  view.miss = miss_.data();
  view.node_count = attr_.size();
  view.depth = depth_;
  // The kernel writes leaf indices; map to classes in place.
  simd::kernels().c45_leaves(view, rows, n_rows, stride, out_klass);
  for (std::size_t i = 0; i < n_rows; ++i)
    out_klass[i] = klass_[static_cast<std::size_t>(out_klass[i])];
}

}  // namespace digg::ml
