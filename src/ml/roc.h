#pragma once
// Threshold-free evaluation of scoring classifiers: ROC and precision-recall
// curves with AUC. The paper reports a single operating point (the C4.5
// leaf decision); the predictor also exposes class probabilities, so the
// fig5_roc bench sweeps the threshold and reports AUC — a more complete
// picture of how much signal the early votes carry.

#include <cstddef>
#include <vector>

namespace digg::ml {

/// One scored prediction: higher score = more confident positive.
struct Scored {
  double score = 0.0;
  bool positive = false;  // ground truth
};

struct RocPoint {
  double threshold = 0.0;
  double tpr = 0.0;  // recall
  double fpr = 0.0;
  double precision = 0.0;
};

/// Points of the ROC/PR curve, one per distinct score (descending
/// threshold), plus the (0,0) start. Throws if there is not at least one
/// positive and one negative example.
[[nodiscard]] std::vector<RocPoint> roc_curve(std::vector<Scored> scored);

/// Area under the ROC curve via the Mann-Whitney statistic (ties counted
/// half). 0.5 = chance, 1.0 = perfect ranking.
[[nodiscard]] double roc_auc(const std::vector<Scored>& scored);

/// Area under the precision-recall curve (step interpolation).
[[nodiscard]] double pr_auc(std::vector<Scored> scored);

/// Precision at the threshold achieving at least `min_recall`.
[[nodiscard]] double precision_at_recall(std::vector<Scored> scored,
                                         double min_recall);

}  // namespace digg::ml
