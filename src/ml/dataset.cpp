#include "src/ml/dataset.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace digg::ml {

bool is_missing(double value) noexcept { return std::isnan(value); }

Dataset::Dataset(std::vector<Attribute> attributes,
                 std::vector<std::string> class_names)
    : attributes_(std::move(attributes)),
      class_names_(std::move(class_names)) {
  if (attributes_.empty())
    throw std::invalid_argument("Dataset: no attributes");
  if (class_names_.size() < 2)
    throw std::invalid_argument("Dataset: need at least two classes");
  for (const Attribute& a : attributes_) {
    if (a.kind == AttributeKind::kNominal && a.values.size() < 2)
      throw std::invalid_argument("Dataset: nominal attribute '" + a.name +
                                  "' needs at least two values");
  }
}

void Dataset::add(std::vector<double> row, std::size_t label) {
  if (row.size() != attributes_.size())
    throw std::invalid_argument("Dataset::add: row width mismatch");
  if (label >= class_names_.size())
    throw std::out_of_range("Dataset::add: bad label");
  for (std::size_t a = 0; a < row.size(); ++a) {
    if (attributes_[a].kind == AttributeKind::kNominal && !is_missing(row[a])) {
      const auto idx = static_cast<std::size_t>(row[a]);
      if (row[a] < 0.0 || idx >= attributes_[a].values.size() ||
          static_cast<double>(idx) != row[a])
        throw std::invalid_argument("Dataset::add: bad nominal value index");
    }
  }
  rows_.push_back(std::move(row));
  labels_.push_back(label);
}

const Attribute& Dataset::attribute(std::size_t a) const {
  if (a >= attributes_.size())
    throw std::out_of_range("Dataset::attribute: bad index");
  return attributes_[a];
}

const std::vector<double>& Dataset::row(std::size_t i) const {
  if (i >= rows_.size()) throw std::out_of_range("Dataset::row: bad index");
  return rows_[i];
}

double Dataset::value(std::size_t i, std::size_t a) const {
  return row(i).at(a);
}

std::size_t Dataset::label(std::size_t i) const {
  if (i >= labels_.size()) throw std::out_of_range("Dataset::label: bad index");
  return labels_[i];
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(class_names_.size(), 0);
  for (std::size_t l : labels_) ++hist[l];
  return hist;
}

std::size_t Dataset::majority_class() const {
  const std::vector<std::size_t> hist = class_histogram();
  return static_cast<std::size_t>(
      std::max_element(hist.begin(), hist.end()) - hist.begin());
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out(attributes_, class_names_);
  for (std::size_t i : indices) {
    out.add(row(i), label(i));
  }
  return out;
}

}  // namespace digg::ml
