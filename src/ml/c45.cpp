#include "src/ml/c45.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace digg::ml {

double entropy(const std::vector<double>& counts) {
  double total = 0.0;
  for (double c : counts) total += c;
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double c : counts) {
    if (c > 0.0) {
      const double p = c / total;
      h -= p * std::log2(p);
    }
  }
  return h;
}

namespace {

/// Inverse standard-normal CDF (Acklam's rational approximation, |ε|<1.2e-9).
double normal_quantile(double p) {
  if (p <= 0.0 || p >= 1.0)
    throw std::invalid_argument("normal_quantile: p outside (0,1)");
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

/// C4.5's pessimistic error count: the upper CF confidence bound on the true
/// error probability given E errors in N instances, times N. Wilson score
/// interval upper bound (what J48 effectively computes).
double pessimistic_errors(double errors, double n, double cf) {
  if (n <= 0.0) return 0.0;
  const double z = normal_quantile(1.0 - cf);
  const double f = errors / n;
  const double z2 = z * z;
  const double upper =
      (f + z2 / (2.0 * n) +
       z * std::sqrt(f / n - f * f / n + z2 / (4.0 * n * n))) /
      (1.0 + z2 / n);
  return upper * n;
}

struct SplitCandidate {
  bool valid = false;
  std::size_t attribute = 0;
  bool numeric = true;
  double threshold = 0.0;
  double gain = 0.0;
  double gain_ratio = 0.0;
};

}  // namespace

/// Recursive trainer; friend of DecisionTree.
class C45Builder {
 public:
  C45Builder(const Dataset& data, const C45Params& params)
      : data_(data), params_(params) {}

  DecisionTree build() {
    DecisionTree tree;
    tree.attributes_ = data_.attributes();
    tree.class_names_ = {data_.class_names().begin(),
                         data_.class_names().end()};
    std::vector<std::size_t> all(data_.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    build_node(tree, all);
    if (params_.prune) prune(tree, 0);
    compact(tree);
    return tree;
  }

 private:
  const Dataset& data_;
  const C45Params& params_;

  std::vector<double> class_counts(const std::vector<std::size_t>& idx) const {
    std::vector<double> counts(data_.class_count(), 0.0);
    for (std::size_t i : idx) counts[data_.label(i)] += 1.0;
    return counts;
  }

  static std::size_t argmax(const std::vector<double>& v) {
    return static_cast<std::size_t>(
        std::max_element(v.begin(), v.end()) - v.begin());
  }

  SplitCandidate best_numeric_split(const std::vector<std::size_t>& idx,
                                    std::size_t attr, double base_entropy,
                                    double n_known_total) const {
    SplitCandidate best;
    best.attribute = attr;
    best.numeric = true;
    std::vector<std::size_t> known;
    for (std::size_t i : idx)
      if (!is_missing(data_.value(i, attr))) known.push_back(i);
    if (known.size() < 2 * params_.min_instances) return best;
    std::sort(known.begin(), known.end(), [&](std::size_t a, std::size_t b) {
      return data_.value(a, attr) < data_.value(b, attr);
    });

    std::vector<double> left(data_.class_count(), 0.0);
    std::vector<double> right = class_counts(known);
    const double n = static_cast<double>(known.size());
    std::size_t candidate_splits = 0;
    double best_gain = -1.0;
    double best_threshold = 0.0;
    double best_left_n = 0.0;
    for (std::size_t k = 0; k + 1 < known.size(); ++k) {
      const std::size_t label = data_.label(known[k]);
      left[label] += 1.0;
      right[label] -= 1.0;
      const double v = data_.value(known[k], attr);
      const double v_next = data_.value(known[k + 1], attr);
      if (v == v_next) continue;
      ++candidate_splits;
      const double n_left = static_cast<double>(k + 1);
      const double n_right = n - n_left;
      if (n_left < static_cast<double>(params_.min_instances) ||
          n_right < static_cast<double>(params_.min_instances))
        continue;
      const double cond =
          n_left / n * entropy(left) + n_right / n * entropy(right);
      const double gain = base_entropy - cond;
      if (gain > best_gain) {
        best_gain = gain;
        best_threshold = (v + v_next) / 2.0;
        best_left_n = n_left;
      }
    }
    if (best_gain <= 0.0 || candidate_splits == 0) return best;
    // Quinlan's MDL correction for numeric attributes: the gain must pay for
    // choosing among the candidate thresholds.
    const double corrected_gain =
        best_gain -
        std::log2(static_cast<double>(candidate_splits)) / n_known_total;
    if (corrected_gain <= 0.0) return best;
    const std::vector<double> sizes = {best_left_n, n - best_left_n};
    const double split_info = entropy(sizes);
    if (split_info <= 0.0) return best;
    best.valid = true;
    best.threshold = best_threshold;
    best.gain = corrected_gain;
    best.gain_ratio = corrected_gain / split_info;
    return best;
  }

  SplitCandidate best_nominal_split(const std::vector<std::size_t>& idx,
                                    std::size_t attr,
                                    double base_entropy) const {
    SplitCandidate best;
    best.attribute = attr;
    best.numeric = false;
    const std::size_t values = data_.attribute(attr).values.size();
    std::vector<std::vector<double>> counts(
        values, std::vector<double>(data_.class_count(), 0.0));
    std::vector<double> sizes(values, 0.0);
    double n_known = 0.0;
    for (std::size_t i : idx) {
      const double v = data_.value(i, attr);
      if (is_missing(v)) continue;
      const auto vi = static_cast<std::size_t>(v);
      counts[vi][data_.label(i)] += 1.0;
      sizes[vi] += 1.0;
      n_known += 1.0;
    }
    if (n_known < 2.0 * static_cast<double>(params_.min_instances))
      return best;
    std::size_t populated = 0;
    std::size_t big_enough = 0;
    double cond = 0.0;
    for (std::size_t v = 0; v < values; ++v) {
      if (sizes[v] > 0.0) ++populated;
      if (sizes[v] >= static_cast<double>(params_.min_instances))
        ++big_enough;
      if (sizes[v] > 0.0) cond += sizes[v] / n_known * entropy(counts[v]);
    }
    if (populated < 2 || big_enough < 2) return best;
    const double gain = base_entropy - cond;
    if (gain <= 0.0) return best;
    const double split_info = entropy(sizes);
    if (split_info <= 0.0) return best;
    best.valid = true;
    best.gain = gain;
    best.gain_ratio = gain / split_info;
    return best;
  }

  std::size_t make_leaf(DecisionTree& tree,
                        const std::vector<double>& counts) {
    DecisionTree::Node node;
    node.leaf = true;
    node.class_counts = counts;
    node.klass = argmax(counts);
    node.n_total = std::accumulate(counts.begin(), counts.end(), 0.0);
    node.n_wrong = node.n_total - counts[node.klass];
    tree.nodes_.push_back(std::move(node));
    return tree.nodes_.size() - 1;
  }

  std::size_t build_node(DecisionTree& tree,
                         const std::vector<std::size_t>& idx) {
    const std::vector<double> counts = class_counts(idx);
    const double n = std::accumulate(counts.begin(), counts.end(), 0.0);
    const double base = entropy(counts);
    if (idx.size() < 2 * params_.min_instances || base == 0.0)
      return make_leaf(tree, counts);

    // Collect admissible splits and apply Quinlan's average-gain filter.
    std::vector<SplitCandidate> candidates;
    for (std::size_t a = 0; a < data_.attribute_count(); ++a) {
      const SplitCandidate c =
          data_.attribute(a).kind == AttributeKind::kNumeric
              ? best_numeric_split(idx, a, base, n)
              : best_nominal_split(idx, a, base);
      if (c.valid) candidates.push_back(c);
    }
    if (candidates.empty()) return make_leaf(tree, counts);
    double gain_sum = 0.0;
    for (const SplitCandidate& c : candidates) gain_sum += c.gain;
    const double avg_gain =
        gain_sum / static_cast<double>(candidates.size()) - 1e-9;
    const SplitCandidate* best = nullptr;
    for (const SplitCandidate& c : candidates) {
      if (c.gain < avg_gain) continue;
      if (!best || c.gain_ratio > best->gain_ratio) best = &c;
    }
    if (!best) return make_leaf(tree, counts);

    // Partition instances; missing values go to every branch? C4.5 uses
    // fractional weights — we simplify by sending them to the majority
    // branch, which J48's -B behaviour approximates.
    std::vector<std::vector<std::size_t>> parts;
    if (best->numeric) {
      parts.resize(2);
      for (std::size_t i : idx) {
        const double v = data_.value(i, best->attribute);
        if (is_missing(v)) continue;
        parts[v <= best->threshold ? 0 : 1].push_back(i);
      }
    } else {
      parts.resize(data_.attribute(best->attribute).values.size());
      for (std::size_t i : idx) {
        const double v = data_.value(i, best->attribute);
        if (is_missing(v)) continue;
        parts[static_cast<std::size_t>(v)].push_back(i);
      }
    }
    std::size_t majority_part = 0;
    for (std::size_t p = 1; p < parts.size(); ++p)
      if (parts[p].size() > parts[majority_part].size()) majority_part = p;
    for (std::size_t i : idx) {
      if (is_missing(data_.value(i, best->attribute)))
        parts[majority_part].push_back(i);
    }

    DecisionTree::Node node;
    node.leaf = false;
    node.class_counts = counts;
    node.klass = argmax(counts);
    node.n_total = n;
    node.n_wrong = n - counts[node.klass];
    node.attribute = best->attribute;
    node.threshold = best->threshold;
    tree.nodes_.push_back(node);
    const std::size_t self = tree.nodes_.size() - 1;
    std::vector<std::size_t> children;
    children.reserve(parts.size());
    for (const auto& part : parts) {
      if (part.empty()) {
        // Empty branch predicts the parent's majority class.
        children.push_back(make_leaf(tree, counts));
        tree.nodes_.back().n_total = 0.0;
        tree.nodes_.back().n_wrong = 0.0;
      } else {
        children.push_back(build_node(tree, part));
      }
    }
    tree.nodes_[self].children = std::move(children);
    tree.nodes_[self].majority_child = majority_part;
    return self;
  }

  /// Post-order subtree-replacement pruning; returns the pessimistic error
  /// estimate of the (possibly pruned) subtree.
  double prune(DecisionTree& tree, std::size_t node_idx) {
    DecisionTree::Node& node = tree.nodes_[node_idx];
    const double leaf_errors = pessimistic_errors(
        node.n_wrong, node.n_total, params_.confidence_factor);
    if (node.leaf) return leaf_errors;
    double subtree_errors = 0.0;
    for (std::size_t c : node.children) subtree_errors += prune(tree, c);
    if (leaf_errors <= subtree_errors + 0.1) {
      node.leaf = true;
      node.children.clear();
      return leaf_errors;
    }
    return subtree_errors;
  }

  /// Drops orphaned nodes left behind by pruning and renumbers the rest.
  static void compact(DecisionTree& tree) {
    std::vector<std::size_t> remap(tree.nodes_.size(),
                                   std::numeric_limits<std::size_t>::max());
    std::vector<DecisionTree::Node> kept;
    std::vector<std::size_t> stack{0};
    // First pass: discover reachable nodes in DFS preorder.
    std::vector<std::size_t> order;
    while (!stack.empty()) {
      const std::size_t n = stack.back();
      stack.pop_back();
      if (remap[n] != std::numeric_limits<std::size_t>::max()) continue;
      remap[n] = order.size();
      order.push_back(n);
      const auto& children = tree.nodes_[n].children;
      for (auto it = children.rbegin(); it != children.rend(); ++it)
        stack.push_back(*it);
    }
    kept.reserve(order.size());
    for (std::size_t old_idx : order) {
      DecisionTree::Node node = tree.nodes_[old_idx];
      for (std::size_t& c : node.children) c = remap[c];
      kept.push_back(std::move(node));
    }
    tree.nodes_ = std::move(kept);
  }
};

DecisionTree DecisionTree::train(const Dataset& data, const C45Params& params) {
  if (data.empty()) throw std::invalid_argument("DecisionTree: empty dataset");
  if (params.min_instances == 0)
    throw std::invalid_argument("DecisionTree: min_instances == 0");
  if (params.confidence_factor <= 0.0 || params.confidence_factor >= 1.0)
    throw std::invalid_argument("DecisionTree: confidence_factor outside (0,1)");
  return C45Builder(data, params).build();
}

std::size_t DecisionTree::walk(const std::vector<double>& row) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: untrained");
  std::size_t cur = 0;
  while (!nodes_[cur].leaf) {
    const Node& n = nodes_[cur];
    if (n.attribute >= row.size())
      throw std::invalid_argument("DecisionTree::predict: row too short");
    const double v = row[n.attribute];
    std::size_t branch;
    if (is_missing(v)) {
      branch = n.majority_child;
    } else if (attributes_[n.attribute].kind == AttributeKind::kNumeric) {
      branch = v <= n.threshold ? 0 : 1;
    } else {
      branch = static_cast<std::size_t>(v);
      if (branch >= n.children.size())
        throw std::invalid_argument("DecisionTree::predict: bad nominal value");
    }
    cur = n.children[branch];
  }
  return cur;
}

std::size_t DecisionTree::predict(const std::vector<double>& row) const {
  return nodes_[walk(row)].klass;
}

std::vector<double> DecisionTree::predict_proba(
    const std::vector<double>& row) const {
  const Node& leaf = nodes_[walk(row)];
  std::vector<double> proba(leaf.class_counts.size());
  double total = 0.0;
  for (double c : leaf.class_counts) total += c + 1.0;  // Laplace
  for (std::size_t k = 0; k < proba.size(); ++k)
    proba[k] = (leaf.class_counts[k] + 1.0) / total;
  return proba;
}

std::size_t DecisionTree::leaf_count() const {
  std::size_t n = 0;
  for (const Node& node : nodes_)
    if (node.leaf) ++n;
  return n;
}

std::size_t DecisionTree::depth_of(std::size_t node) const {
  const Node& n = nodes_[node];
  if (n.leaf) return 0;
  std::size_t d = 0;
  for (std::size_t c : n.children) d = std::max(d, depth_of(c));
  return d + 1;
}

std::size_t DecisionTree::depth() const {
  return nodes_.empty() ? 0 : depth_of(0);
}

void DecisionTree::render_node(std::size_t node_idx, std::size_t indent,
                               std::string& out) const {
  const Node& n = nodes_[node_idx];
  const std::string pad = [&] {
    std::string p;
    for (std::size_t i = 0; i < indent; ++i) p += "|  ";
    return p;
  }();
  auto leaf_suffix = [&](const Node& leaf) {
    std::string s = ": " + class_names_[leaf.klass] + " (";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.0f", leaf.n_total);
    s += buf;
    if (leaf.n_wrong > 0.0) {
      std::snprintf(buf, sizeof buf, "/%.0f", leaf.n_wrong);
      s += buf;
    }
    s += ")";
    return s;
  };
  if (n.leaf) {
    out += pad + leaf_suffix(n) + "\n";
    return;
  }
  const Attribute& attr = attributes_[n.attribute];
  for (std::size_t b = 0; b < n.children.size(); ++b) {
    std::string condition;
    if (attr.kind == AttributeKind::kNumeric) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%s %s %g", attr.name.c_str(),
                    b == 0 ? "<=" : ">", n.threshold);
      condition = buf;
    } else {
      condition = attr.name + " = " + attr.values[b];
    }
    const Node& child = nodes_[n.children[b]];
    if (child.leaf) {
      out += pad + condition + leaf_suffix(child) + "\n";
    } else {
      out += pad + condition + "\n";
      render_node(n.children[b], indent + 1, out);
    }
  }
}

std::string DecisionTree::render() const {
  if (nodes_.empty()) return "(untrained)\n";
  std::string out;
  render_node(0, 0, out);
  return out;
}

std::vector<std::size_t> DecisionTree::used_attributes() const {
  std::vector<std::size_t> used;
  for (const Node& n : nodes_)
    if (!n.leaf) used.push_back(n.attribute);
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  return used;
}

}  // namespace digg::ml
