#pragma once
// Model evaluation: confusion matrices in the paper's TP/TN/FP/FN notation
// (§5.2, footnote 4) and stratified k-fold cross-validation matching the
// "results of 10-fold validation" quoted for Fig. 5.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/ml/dataset.h"
#include "src/stats/rng.h"

namespace digg::ml {

/// Binary confusion counts. By convention class index `positive` (default 1)
/// is the positive class ("interesting").
struct Confusion {
  std::size_t tp = 0;
  std::size_t tn = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return tp + tn + fp + fn;
  }
  [[nodiscard]] std::size_t correct() const noexcept { return tp + tn; }
  [[nodiscard]] std::size_t errors() const noexcept { return fp + fn; }
  [[nodiscard]] double accuracy() const;
  /// P = TP / (TP + FP); the paper's headline comparison metric.
  [[nodiscard]] double precision() const;
  [[nodiscard]] double recall() const;
  [[nodiscard]] double f1() const;

  void add(bool actual_positive, bool predicted_positive);
  [[nodiscard]] std::string to_string() const;
};

/// A trained model under test: maps an attribute row to a class index.
using Classifier = std::function<std::size_t(const std::vector<double>&)>;

/// Evaluates a classifier on a dataset (binary classes only).
[[nodiscard]] Confusion evaluate(const Classifier& model, const Dataset& data,
                                 std::size_t positive_class = 1);

/// A model factory trains on a fold's training split. Cross-validation runs
/// folds concurrently on the parallel runtime, so the trainer must be
/// thread-safe: train from its arguments (plus captured immutable state or a
/// captured seed) without mutating shared state.
using Trainer = std::function<Classifier(const Dataset&)>;

struct CrossValidationResult {
  Confusion pooled;                 // summed over folds
  std::vector<Confusion> per_fold;  // one entry per fold
  [[nodiscard]] double mean_accuracy() const;
};

/// Stratified k-fold CV: folds preserve class proportions; assignment is
/// shuffled by `rng`. Throws if folds < 2 or any class has < folds members.
[[nodiscard]] CrossValidationResult cross_validate(
    const Trainer& trainer, const Dataset& data, std::size_t folds,
    stats::Rng& rng, std::size_t positive_class = 1);

/// Stratified fold assignment (fold index per instance), exposed for tests.
[[nodiscard]] std::vector<std::size_t> stratified_folds(const Dataset& data,
                                                        std::size_t folds,
                                                        stats::Rng& rng);

}  // namespace digg::ml
