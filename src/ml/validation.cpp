#include "src/ml/validation.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/parallel.h"

namespace digg::ml {

double Confusion::accuracy() const {
  return total() == 0 ? 0.0
                      : static_cast<double>(correct()) /
                            static_cast<double>(total());
}

double Confusion::precision() const {
  const std::size_t denom = tp + fp;
  return denom == 0 ? 0.0
                    : static_cast<double>(tp) / static_cast<double>(denom);
}

double Confusion::recall() const {
  const std::size_t denom = tp + fn;
  return denom == 0 ? 0.0
                    : static_cast<double>(tp) / static_cast<double>(denom);
}

double Confusion::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

void Confusion::add(bool actual_positive, bool predicted_positive) {
  if (actual_positive) {
    predicted_positive ? ++tp : ++fn;
  } else {
    predicted_positive ? ++fp : ++tn;
  }
}

std::string Confusion::to_string() const {
  std::ostringstream os;
  os << "TP=" << tp << " TN=" << tn << " FP=" << fp << " FN=" << fn;
  return os.str();
}

Confusion evaluate(const Classifier& model, const Dataset& data,
                   std::size_t positive_class) {
  if (data.class_count() != 2)
    throw std::invalid_argument("evaluate: binary classes required");
  if (positive_class >= 2)
    throw std::invalid_argument("evaluate: bad positive class");
  Confusion c;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const bool actual = data.label(i) == positive_class;
    const bool predicted = model(data.row(i)) == positive_class;
    c.add(actual, predicted);
  }
  return c;
}

std::vector<std::size_t> stratified_folds(const Dataset& data,
                                          std::size_t folds,
                                          stats::Rng& rng) {
  if (folds < 2) throw std::invalid_argument("stratified_folds: folds < 2");
  std::vector<std::size_t> assignment(data.size(), 0);
  for (std::size_t klass = 0; klass < data.class_count(); ++klass) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < data.size(); ++i)
      if (data.label(i) == klass) members.push_back(i);
    if (!members.empty() && members.size() < folds)
      throw std::invalid_argument(
          "stratified_folds: a class has fewer members than folds");
    std::shuffle(members.begin(), members.end(), rng.engine());
    for (std::size_t j = 0; j < members.size(); ++j)
      assignment[members[j]] = j % folds;
  }
  return assignment;
}

CrossValidationResult cross_validate(const Trainer& trainer,
                                     const Dataset& data, std::size_t folds,
                                     stats::Rng& rng,
                                     std::size_t positive_class) {
  obs::Span cv_span("cross_validate", "ml");
  static obs::Counter& folds_run =
      obs::Registry::global().counter("ml.cv_folds");
  static obs::Histogram& fold_us =
      obs::Registry::global().histogram("ml.cv_fold_us");
  const std::vector<std::size_t> assignment =
      stratified_folds(data, folds, rng);
  // Folds train and evaluate independently on the parallel runtime; results
  // land by fold index and the pooled matrix sums in fold order, so the
  // outcome is identical for any thread count. Per-fold timing is recorded
  // and never read back, so it cannot perturb the result.
  CrossValidationResult result;
  result.per_fold = runtime::parallel_map<Confusion>(
      folds, [&](std::size_t fold) {
        obs::Span fold_span("cv_fold", "ml");
        const auto fold_start = std::chrono::steady_clock::now();
        std::vector<std::size_t> train_idx;
        std::vector<std::size_t> test_idx;
        for (std::size_t i = 0; i < data.size(); ++i) {
          (assignment[i] == fold ? test_idx : train_idx).push_back(i);
        }
        if (train_idx.empty() || test_idx.empty())
          throw std::logic_error("cross_validate: empty fold");
        const Dataset train = data.subset(train_idx);
        const Dataset test = data.subset(test_idx);
        const Classifier model = trainer(train);
        const Confusion c = evaluate(model, test, positive_class);
        fold_us.observe(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - fold_start)
                            .count());
        folds_run.inc();
        return c;
      });
  for (const Confusion& fold_result : result.per_fold) {
    result.pooled.tp += fold_result.tp;
    result.pooled.tn += fold_result.tn;
    result.pooled.fp += fold_result.fp;
    result.pooled.fn += fold_result.fn;
  }
  return result;
}

double CrossValidationResult::mean_accuracy() const {
  if (per_fold.empty()) return 0.0;
  double acc = 0.0;
  for (const Confusion& c : per_fold) acc += c.accuracy();
  return acc / static_cast<double>(per_fold.size());
}

}  // namespace digg::ml
