#include "src/ml/roc.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace digg::ml {

namespace {

struct Counts {
  std::size_t positives = 0;
  std::size_t negatives = 0;
};

Counts count_classes(const std::vector<Scored>& scored) {
  Counts c;
  for (const Scored& s : scored) {
    if (s.positive)
      ++c.positives;
    else
      ++c.negatives;
  }
  if (c.positives == 0 || c.negatives == 0)
    throw std::invalid_argument("roc: need both classes");
  return c;
}

void sort_by_score_desc(std::vector<Scored>& scored) {
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    return a.score > b.score;
  });
}

}  // namespace

std::vector<RocPoint> roc_curve(std::vector<Scored> scored) {
  const Counts totals = count_classes(scored);
  sort_by_score_desc(scored);

  std::vector<RocPoint> curve;
  curve.push_back(RocPoint{std::numeric_limits<double>::infinity(), 0.0, 0.0,
                           1.0});
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t i = 0;
  while (i < scored.size()) {
    const double threshold = scored[i].score;
    // Consume all items tied at this score before emitting a point.
    while (i < scored.size() && scored[i].score == threshold) {
      if (scored[i].positive)
        ++tp;
      else
        ++fp;
      ++i;
    }
    RocPoint p;
    p.threshold = threshold;
    p.tpr = static_cast<double>(tp) / static_cast<double>(totals.positives);
    p.fpr = static_cast<double>(fp) / static_cast<double>(totals.negatives);
    p.precision = (tp + fp) == 0
                      ? 1.0
                      : static_cast<double>(tp) / static_cast<double>(tp + fp);
    curve.push_back(p);
  }
  return curve;
}

double roc_auc(const std::vector<Scored>& scored) {
  const Counts totals = count_classes(scored);
  // Mann-Whitney U: rank-sum of positives, ties get average ranks.
  std::vector<Scored> sorted = scored;
  std::sort(sorted.begin(), sorted.end(),
            [](const Scored& a, const Scored& b) { return a.score < b.score; });
  double rank_sum = 0.0;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1].score == sorted[i].score)
      ++j;
    const double avg_rank =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) {
      if (sorted[k].positive) rank_sum += avg_rank;
    }
    i = j + 1;
  }
  const double np = static_cast<double>(totals.positives);
  const double nn = static_cast<double>(totals.negatives);
  return (rank_sum - np * (np + 1.0) / 2.0) / (np * nn);
}

double pr_auc(std::vector<Scored> scored) {
  const std::vector<RocPoint> curve = roc_curve(std::move(scored));
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double d_recall = curve[i].tpr - curve[i - 1].tpr;
    area += d_recall * curve[i].precision;
  }
  return area;
}

double precision_at_recall(std::vector<Scored> scored, double min_recall) {
  if (min_recall < 0.0 || min_recall > 1.0)
    throw std::invalid_argument("precision_at_recall: bad recall");
  const std::vector<RocPoint> curve = roc_curve(std::move(scored));
  double best = 0.0;
  for (const RocPoint& p : curve) {
    if (p.tpr >= min_recall) best = std::max(best, p.precision);
  }
  return best;
}

}  // namespace digg::ml
