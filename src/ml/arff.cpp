#include "src/ml/arff.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace digg::ml {

namespace {

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
    --end;
  return s.substr(begin, end - begin);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  for (char c : line) {
    if (c == ',') {
      out.push_back(trim(field));
      field.clear();
    } else {
      field += c;
    }
  }
  out.push_back(trim(field));
  return out;
}

}  // namespace

void write_arff(const Dataset& data, const std::string& relation,
                std::ostream& os) {
  os << "@RELATION " << relation << "\n\n";
  for (const Attribute& attr : data.attributes()) {
    os << "@ATTRIBUTE " << attr.name << " ";
    if (attr.kind == AttributeKind::kNumeric) {
      os << "NUMERIC";
    } else {
      os << "{";
      for (std::size_t v = 0; v < attr.values.size(); ++v) {
        if (v) os << ",";
        os << attr.values[v];
      }
      os << "}";
    }
    os << "\n";
  }
  os << "@ATTRIBUTE class {";
  for (std::size_t k = 0; k < data.class_names().size(); ++k) {
    if (k) os << ",";
    os << data.class_names()[k];
  }
  os << "}\n\n@DATA\n";
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t a = 0; a < data.attribute_count(); ++a) {
      const double v = data.value(i, a);
      if (is_missing(v)) {
        os << "?";
      } else if (data.attribute(a).kind == AttributeKind::kNominal) {
        os << data.attribute(a).values[static_cast<std::size_t>(v)];
      } else {
        os << v;
      }
      os << ",";
    }
    os << data.class_names()[data.label(i)] << "\n";
  }
}

void save_arff(const Dataset& data, const std::string& relation,
               const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_arff: cannot write " + path.string());
  write_arff(data, relation, out);
}

Dataset load_arff(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_arff: cannot read " + path.string());

  std::vector<Attribute> attributes;  // includes the trailing class attr
  std::string line;
  bool in_data = false;
  std::vector<std::vector<double>> rows;
  std::vector<std::size_t> labels;

  auto parse_attribute = [&](const std::string& rest) {
    // rest = "<name> NUMERIC" or "<name> {a,b,c}"
    const std::size_t space = rest.find_first_of(" \t");
    if (space == std::string::npos)
      throw std::runtime_error("load_arff: malformed @ATTRIBUTE: " + rest);
    Attribute attr;
    attr.name = trim(rest.substr(0, space));
    const std::string type = trim(rest.substr(space + 1));
    if (lower(type) == "numeric" || lower(type) == "real" ||
        lower(type) == "integer") {
      attr.kind = AttributeKind::kNumeric;
    } else if (!type.empty() && type.front() == '{' && type.back() == '}') {
      attr.kind = AttributeKind::kNominal;
      attr.values = split_csv(type.substr(1, type.size() - 2));
      if (attr.values.empty())
        throw std::runtime_error("load_arff: empty nominal set: " + rest);
    } else {
      throw std::runtime_error("load_arff: unsupported type: " + type);
    }
    attributes.push_back(std::move(attr));
  };

  std::vector<std::string> data_lines;
  while (std::getline(in, line)) {
    const std::string t = trim(line);
    if (t.empty() || t.front() == '%') continue;
    if (!in_data) {
      const std::string lowered = lower(t);
      if (lowered.rfind("@relation", 0) == 0) continue;
      if (lowered.rfind("@attribute", 0) == 0) {
        parse_attribute(trim(t.substr(std::string("@attribute").size())));
        continue;
      }
      if (lowered.rfind("@data", 0) == 0) {
        in_data = true;
        continue;
      }
      throw std::runtime_error("load_arff: unexpected header line: " + t);
    }
    data_lines.push_back(t);
  }
  if (attributes.size() < 2)
    throw std::runtime_error("load_arff: need features plus a class attribute");
  const Attribute klass = attributes.back();
  attributes.pop_back();
  if (klass.kind != AttributeKind::kNominal)
    throw std::runtime_error("load_arff: class attribute must be nominal");

  Dataset data(attributes, klass.values);
  for (const std::string& row_line : data_lines) {
    const std::vector<std::string> fields = split_csv(row_line);
    if (fields.size() != attributes.size() + 1)
      throw std::runtime_error("load_arff: wrong field count: " + row_line);
    std::vector<double> row(attributes.size());
    for (std::size_t a = 0; a < attributes.size(); ++a) {
      const std::string& f = fields[a];
      if (f == "?") {
        row[a] = kMissing;
      } else if (attributes[a].kind == AttributeKind::kNumeric) {
        try {
          row[a] = std::stod(f);
        } catch (const std::exception&) {
          throw std::runtime_error("load_arff: bad numeric value: " + f);
        }
      } else {
        const auto& values = attributes[a].values;
        const auto it = std::find(values.begin(), values.end(), f);
        if (it == values.end())
          throw std::runtime_error("load_arff: unknown nominal value: " + f);
        row[a] = static_cast<double>(it - values.begin());
      }
    }
    const auto it =
        std::find(klass.values.begin(), klass.values.end(), fields.back());
    if (it == klass.values.end())
      throw std::runtime_error("load_arff: unknown class: " + fields.back());
    data.add(std::move(row),
             static_cast<std::size_t>(it - klass.values.begin()));
  }
  return data;
}

}  // namespace digg::ml
