#include "src/ml/baseline.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/ml/c45.h"

namespace digg::ml {

MajorityClassifier MajorityClassifier::train(const Dataset& data) {
  if (data.empty())
    throw std::invalid_argument("MajorityClassifier: empty dataset");
  MajorityClassifier m;
  m.klass_ = data.majority_class();
  return m;
}

std::size_t MajorityClassifier::predict(
    const std::vector<double>& /*row*/) const {
  return klass_;
}

DecisionStump DecisionStump::train(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("DecisionStump: empty dataset");
  DecisionStump stump;
  stump.majority_ = data.majority_class();

  std::vector<double> base_counts(data.class_count(), 0.0);
  for (std::size_t i = 0; i < data.size(); ++i)
    base_counts[data.label(i)] += 1.0;
  const double base_entropy = entropy(base_counts);

  double best_gain = 0.0;
  for (std::size_t a = 0; a < data.attribute_count(); ++a) {
    if (data.attribute(a).kind != AttributeKind::kNumeric) continue;
    std::vector<std::size_t> known;
    for (std::size_t i = 0; i < data.size(); ++i)
      if (!is_missing(data.value(i, a))) known.push_back(i);
    if (known.size() < 2) continue;
    std::sort(known.begin(), known.end(), [&](std::size_t x, std::size_t y) {
      return data.value(x, a) < data.value(y, a);
    });
    std::vector<double> left(data.class_count(), 0.0);
    std::vector<double> right(data.class_count(), 0.0);
    for (std::size_t i : known) right[data.label(i)] += 1.0;
    const double n = static_cast<double>(known.size());
    for (std::size_t k = 0; k + 1 < known.size(); ++k) {
      const std::size_t label = data.label(known[k]);
      left[label] += 1.0;
      right[label] -= 1.0;
      const double v = data.value(known[k], a);
      const double v_next = data.value(known[k + 1], a);
      if (v == v_next) continue;
      const double n_left = static_cast<double>(k + 1);
      const double cond = n_left / n * entropy(left) +
                          (n - n_left) / n * entropy(right);
      const double gain = base_entropy - cond;
      if (gain > best_gain) {
        best_gain = gain;
        stump.attribute_ = a;
        stump.threshold_ = (v + v_next) / 2.0;
        stump.below_class_ = static_cast<std::size_t>(
            std::max_element(left.begin(), left.end()) - left.begin());
        stump.above_class_ = static_cast<std::size_t>(
            std::max_element(right.begin(), right.end()) - right.begin());
        stump.trivial_ = false;
      }
    }
  }
  return stump;
}

std::size_t DecisionStump::predict(const std::vector<double>& row) const {
  if (trivial_) return majority_;
  if (attribute_ >= row.size())
    throw std::invalid_argument("DecisionStump::predict: row too short");
  const double v = row[attribute_];
  if (is_missing(v)) return majority_;
  return v <= threshold_ ? below_class_ : above_class_;
}

namespace {
double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

LogisticRegression LogisticRegression::train(const Dataset& data,
                                             const LogisticParams& params) {
  if (data.empty())
    throw std::invalid_argument("LogisticRegression: empty dataset");
  if (data.class_count() != 2)
    throw std::invalid_argument("LogisticRegression: binary classes required");
  const std::size_t d = data.attribute_count();
  const std::size_t n = data.size();

  LogisticRegression model;
  model.means_.assign(d, 0.0);
  model.scales_.assign(d, 1.0);
  // Standardize (treat missing as the mean, i.e. 0 after centering).
  for (std::size_t a = 0; a < d; ++a) {
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = data.value(i, a);
      if (!is_missing(v)) {
        sum += v;
        ++count;
      }
    }
    model.means_[a] = count ? sum / static_cast<double>(count) : 0.0;
    double var = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = data.value(i, a);
      if (!is_missing(v)) {
        var += (v - model.means_[a]) * (v - model.means_[a]);
      }
    }
    if (count > 1) var /= static_cast<double>(count - 1);
    model.scales_[a] = var > 0.0 ? std::sqrt(var) : 1.0;
  }

  model.weights_.assign(d, 0.0);
  model.bias_ = 0.0;
  std::vector<double> grad(d);
  for (std::size_t epoch = 0; epoch < params.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_bias = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double p = sigmoid(model.linear(data.row(i)));
      const double err = p - static_cast<double>(data.label(i));
      for (std::size_t a = 0; a < d; ++a) {
        const double v = data.value(i, a);
        const double x =
            is_missing(v) ? 0.0 : (v - model.means_[a]) / model.scales_[a];
        grad[a] += err * x;
      }
      grad_bias += err;
    }
    const double scale = params.learning_rate / static_cast<double>(n);
    for (std::size_t a = 0; a < d; ++a) {
      model.weights_[a] -=
          scale * (grad[a] + params.l2 * model.weights_[a]);
    }
    model.bias_ -= scale * grad_bias;
  }
  return model;
}

double LogisticRegression::linear(const std::vector<double>& row) const {
  double z = bias_;
  for (std::size_t a = 0; a < weights_.size(); ++a) {
    const double v = row.at(a);
    const double x = is_missing(v) ? 0.0 : (v - means_[a]) / scales_[a];
    z += weights_[a] * x;
  }
  return z;
}

double LogisticRegression::predict_proba(const std::vector<double>& row) const {
  return sigmoid(linear(row));
}

std::size_t LogisticRegression::predict(const std::vector<double>& row) const {
  return predict_proba(row) >= 0.5 ? 1 : 0;
}

Trainer majority_trainer() {
  return [](const Dataset& data) -> Classifier {
    const MajorityClassifier m = MajorityClassifier::train(data);
    return [m](const std::vector<double>& row) { return m.predict(row); };
  };
}

Trainer stump_trainer() {
  return [](const Dataset& data) -> Classifier {
    const DecisionStump s = DecisionStump::train(data);
    return [s](const std::vector<double>& row) { return s.predict(row); };
  };
}

Trainer logistic_trainer(LogisticParams params) {
  return [params](const Dataset& data) -> Classifier {
    const LogisticRegression m = LogisticRegression::train(data, params);
    return [m](const std::vector<double>& row) { return m.predict(row); };
  };
}

}  // namespace digg::ml
