#pragma once
// Baseline classifiers to contextualize the C4.5 results: majority class,
// a single-threshold decision stump (is the two-attribute tree of Fig. 5
// really better than one cut on v10?), and logistic regression over the same
// features. All expose the same Classifier signature as validation.h.

#include <cstddef>
#include <vector>

#include "src/ml/dataset.h"
#include "src/ml/validation.h"

namespace digg::ml {

/// Predicts the training majority class for every instance.
class MajorityClassifier {
 public:
  static MajorityClassifier train(const Dataset& data);
  [[nodiscard]] std::size_t predict(const std::vector<double>& row) const;
  [[nodiscard]] std::size_t klass() const noexcept { return klass_; }

 private:
  std::size_t klass_ = 0;
};

/// One-level decision tree on the single best numeric attribute (threshold
/// chosen by information gain). Missing values get the majority class.
class DecisionStump {
 public:
  static DecisionStump train(const Dataset& data);
  [[nodiscard]] std::size_t predict(const std::vector<double>& row) const;

  [[nodiscard]] std::size_t attribute() const noexcept { return attribute_; }
  [[nodiscard]] double threshold() const noexcept { return threshold_; }

 private:
  std::size_t attribute_ = 0;
  double threshold_ = 0.0;
  std::size_t below_class_ = 0;
  std::size_t above_class_ = 0;
  std::size_t majority_ = 0;
  bool trivial_ = true;  // no useful split found -> majority everywhere
};

struct LogisticParams {
  double learning_rate = 0.1;
  std::size_t epochs = 2000;
  double l2 = 1e-4;
};

/// Binary logistic regression with feature standardization (mean/stddev
/// learned on the training data) and full-batch gradient descent.
class LogisticRegression {
 public:
  static LogisticRegression train(const Dataset& data,
                                  const LogisticParams& params = {});
  /// Probability of class 1.
  [[nodiscard]] double predict_proba(const std::vector<double>& row) const;
  [[nodiscard]] std::size_t predict(const std::vector<double>& row) const;

  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }

 private:
  std::vector<double> weights_;  // one per attribute
  double bias_ = 0.0;
  std::vector<double> means_;
  std::vector<double> scales_;

  [[nodiscard]] double linear(const std::vector<double>& row) const;
};

/// Adapters to the Trainer signature used by cross_validate.
[[nodiscard]] Trainer majority_trainer();
[[nodiscard]] Trainer stump_trainer();
[[nodiscard]] Trainer logistic_trainer(LogisticParams params = {});

}  // namespace digg::ml
