#pragma once
// Bagged C4.5 ensemble (a random forest without per-split feature
// subsampling — with two attributes, bagging is the only useful source of
// diversity). Extension beyond the paper: does averaging many trees improve
// the early-vote predictor? The fig5 ablation bench reports the comparison.

#include <cstddef>
#include <vector>

#include "src/ml/c45.h"
#include "src/ml/validation.h"
#include "src/stats/rng.h"

namespace digg::ml {

struct ForestParams {
  std::size_t tree_count = 25;
  /// Fraction of the training set drawn (with replacement) per tree.
  double bag_fraction = 1.0;
  C45Params tree;  // per-tree C4.5 settings
};

class Forest {
 public:
  /// Trains `tree_count` trees on bootstrap resamples. Throws on an empty
  /// dataset or zero trees.
  static Forest train(const Dataset& data, const ForestParams& params,
                      stats::Rng& rng);

  /// Majority vote over the trees.
  [[nodiscard]] std::size_t predict(const std::vector<double>& row) const;
  /// Mean of the trees' class-probability estimates.
  [[nodiscard]] std::vector<double> predict_proba(
      const std::vector<double>& row) const;

  [[nodiscard]] std::size_t size() const noexcept { return trees_.size(); }
  [[nodiscard]] const DecisionTree& tree(std::size_t i) const;

 private:
  std::vector<DecisionTree> trees_;
  std::size_t class_count_ = 0;
};

/// Trainer adapter for cross_validate.
[[nodiscard]] Trainer forest_trainer(ForestParams params, std::uint64_t seed);

}  // namespace digg::ml
