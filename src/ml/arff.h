#pragma once
// ARFF (Weka) interoperability. The paper ran Weka's J48; exporting the
// extracted feature dataset as ARFF lets anyone re-run the original tool on
// our data (and importing lets Weka-prepared datasets feed our C4.5).

#include <filesystem>
#include <iosfwd>
#include <string>

#include "src/ml/dataset.h"

namespace digg::ml {

/// Writes the dataset in ARFF format: numeric attributes as NUMERIC,
/// nominal as {v1,v2,...}, the class as the final nominal attribute named
/// "class". Missing values are written as '?'.
void write_arff(const Dataset& data, const std::string& relation,
                std::ostream& os);

/// Convenience: writes to a file. Throws std::runtime_error on I/O failure.
void save_arff(const Dataset& data, const std::string& relation,
               const std::filesystem::path& path);

/// Parses an ARFF file produced by write_arff (or Weka, for the subset of
/// the format we emit: no sparse data, no strings, no dates; '%' comments
/// and blank lines allowed; the LAST attribute is taken as the class).
/// Throws std::runtime_error on malformed input.
[[nodiscard]] Dataset load_arff(const std::filesystem::path& path);

}  // namespace digg::ml
