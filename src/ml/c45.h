#pragma once
// C4.5 decision tree (Quinlan 1993), the learner behind Weka's J48 which the
// paper uses (§5.2, Fig. 5). Implemented features:
//   - gain-ratio split selection over numeric (binary threshold) and nominal
//     (multiway) attributes, with Quinlan's average-gain admissibility rule;
//   - minimum-instances-per-leaf stopping (J48's -M, default 2);
//   - pessimistic (confidence-factor) subtree-replacement pruning, J48's
//     default CF = 0.25;
//   - missing values routed to the majority child at prediction time and
//     skipped during split evaluation;
//   - tree rendering in the style of the paper's Fig. 5:
//       v10 <= 4: yes (130/5)
// The tree is a value type: nodes are stored in a vector, children by index.

#include <cstddef>
#include <string>
#include <vector>

#include "src/ml/dataset.h"

namespace digg::ml {

struct C45Params {
  std::size_t min_instances = 2;  // minimum instances in at least 2 branches
  double confidence_factor = 0.25;
  bool prune = true;
};

class DecisionTree {
 public:
  /// Trains on the dataset. Throws if the dataset is empty.
  static DecisionTree train(const Dataset& data, const C45Params& params = {});

  /// Predicted class index for a row of attribute values.
  [[nodiscard]] std::size_t predict(const std::vector<double>& row) const;

  /// Class probability estimate (Laplace-smoothed leaf frequencies).
  [[nodiscard]] std::vector<double> predict_proba(
      const std::vector<double>& row) const;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t leaf_count() const;
  [[nodiscard]] std::size_t depth() const;

  /// Fig. 5-style rendering, e.g.:
  ///   v10 <= 4
  ///   |  fans1 <= 85: yes (130/5)
  [[nodiscard]] std::string render() const;

  /// Attributes actually used by internal nodes (indices, deduplicated).
  [[nodiscard]] std::vector<std::size_t> used_attributes() const;

 private:
  struct Node {
    bool leaf = true;
    std::size_t klass = 0;          // leaf: predicted class
    double n_total = 0.0;           // training instances reaching this node
    double n_wrong = 0.0;           // of those, misclassified by `klass`
    std::vector<double> class_counts;

    std::size_t attribute = 0;      // internal: split attribute
    double threshold = 0.0;         // numeric split: <= goes left
    std::vector<std::size_t> children;  // numeric: [left, right];
                                        // nominal: one per value
    std::size_t majority_child = 0;     // where missing values route
  };

  std::vector<Node> nodes_;  // nodes_[0] is the root
  std::vector<Attribute> attributes_;
  std::vector<std::string> class_names_;

  [[nodiscard]] std::size_t walk(const std::vector<double>& row) const;
  [[nodiscard]] std::size_t depth_of(std::size_t node) const;
  void render_node(std::size_t node, std::size_t indent,
                   std::string& out) const;

  friend class C45Builder;
  friend class FlatTree;  // flat_tree.h: batched branch-free evaluation
};

/// Shannon entropy (bits) of a class-count vector; 0 for empty counts.
[[nodiscard]] double entropy(const std::vector<double>& counts);

}  // namespace digg::ml
