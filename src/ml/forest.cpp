#include "src/ml/forest.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/parallel.h"

namespace digg::ml {

Forest Forest::train(const Dataset& data, const ForestParams& params,
                     stats::Rng& rng) {
  if (data.empty()) throw std::invalid_argument("Forest: empty dataset");
  if (params.tree_count == 0)
    throw std::invalid_argument("Forest: tree_count == 0");
  if (params.bag_fraction <= 0.0 || params.bag_fraction > 1.0)
    throw std::invalid_argument("Forest: bag_fraction outside (0,1]");

  Forest forest;
  forest.class_count_ = data.class_count();
  const auto bag_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(params.bag_fraction *
                                  static_cast<double>(data.size())));
  // Each tree bags from its own index-addressed substream, so trees train
  // concurrently on the parallel runtime and the forest is identical for
  // any thread count (and still deterministic given the caller's seed).
  obs::Span span("forest_train", "ml");
  static obs::Counter& trees_trained =
      obs::Registry::global().counter("ml.trees_trained");
  const stats::Rng base = rng.fork();
  forest.trees_ = runtime::parallel_map<DecisionTree>(
      params.tree_count, [&](std::size_t t) {
        trees_trained.inc();
        stats::Rng tree_rng = base.split(t);
        std::vector<std::size_t> bag(bag_size);
        for (std::size_t& idx : bag) {
          idx = static_cast<std::size_t>(tree_rng.uniform_int(
              0, static_cast<std::int64_t>(data.size()) - 1));
        }
        return DecisionTree::train(data.subset(bag), params.tree);
      });
  return forest;
}

std::size_t Forest::predict(const std::vector<double>& row) const {
  const std::vector<double> proba = predict_proba(row);
  return static_cast<std::size_t>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

std::vector<double> Forest::predict_proba(
    const std::vector<double>& row) const {
  if (trees_.empty()) throw std::logic_error("Forest: untrained");
  std::vector<double> acc(class_count_, 0.0);
  for (const DecisionTree& tree : trees_) {
    const std::vector<double> p = tree.predict_proba(row);
    for (std::size_t k = 0; k < class_count_; ++k) acc[k] += p[k];
  }
  for (double& v : acc) v /= static_cast<double>(trees_.size());
  return acc;
}

const DecisionTree& Forest::tree(std::size_t i) const {
  if (i >= trees_.size()) throw std::out_of_range("Forest::tree");
  return trees_[i];
}

Trainer forest_trainer(ForestParams params, std::uint64_t seed) {
  return [params, seed](const Dataset& data) -> Classifier {
    stats::Rng rng(seed);
    auto forest = std::make_shared<Forest>(Forest::train(data, params, rng));
    return [forest](const std::vector<double>& row) {
      return forest->predict(row);
    };
  };
}

}  // namespace digg::ml
