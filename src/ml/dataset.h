#pragma once
// Attribute-schema dataset for the learners. The paper trains a C4.5 (J48)
// tree on stories with numeric attributes (v10 = in-network votes within the
// first ten, fans1 = submitter's fan count) and a boolean class
// (interesting: final votes > 520). We keep the container generic — numeric
// and nominal attributes, string class labels — so extended feature sets
// (v6, v20, influence) drop in without new code.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace digg::ml {

enum class AttributeKind : std::uint8_t { kNumeric, kNominal };

struct Attribute {
  std::string name;
  AttributeKind kind = AttributeKind::kNumeric;
  /// Value names for nominal attributes; empty for numeric.
  std::vector<std::string> values;
};

/// Sentinel for a missing attribute value.
inline constexpr double kMissing = std::numeric_limits<double>::quiet_NaN();
[[nodiscard]] bool is_missing(double value) noexcept;

/// Instances are dense rows of doubles: numeric attributes hold their value,
/// nominal attributes hold the index into Attribute::values. The class label
/// is stored separately as an index into class_names().
class Dataset {
 public:
  Dataset(std::vector<Attribute> attributes,
          std::vector<std::string> class_names);

  /// Appends an instance; `row` must have one value per attribute, `label`
  /// must index class_names. Throws on size/range violations.
  void add(std::vector<double> row, std::size_t label);

  [[nodiscard]] std::size_t size() const noexcept { return labels_.size(); }
  [[nodiscard]] bool empty() const noexcept { return labels_.empty(); }
  [[nodiscard]] std::size_t attribute_count() const noexcept {
    return attributes_.size();
  }
  [[nodiscard]] std::size_t class_count() const noexcept {
    return class_names_.size();
  }
  [[nodiscard]] const std::vector<Attribute>& attributes() const noexcept {
    return attributes_;
  }
  [[nodiscard]] const Attribute& attribute(std::size_t a) const;
  [[nodiscard]] const std::vector<std::string>& class_names() const noexcept {
    return class_names_;
  }

  [[nodiscard]] const std::vector<double>& row(std::size_t i) const;
  [[nodiscard]] double value(std::size_t i, std::size_t a) const;
  [[nodiscard]] std::size_t label(std::size_t i) const;

  /// Class frequency counts over all instances.
  [[nodiscard]] std::vector<std::size_t> class_histogram() const;
  /// Majority class index (smallest index wins ties).
  [[nodiscard]] std::size_t majority_class() const;

  /// Subset containing the given instance indices (shares the schema).
  [[nodiscard]] Dataset subset(const std::vector<std::size_t>& indices) const;

 private:
  std::vector<Attribute> attributes_;
  std::vector<std::string> class_names_;
  std::vector<std::vector<double>> rows_;
  std::vector<std::size_t> labels_;
};

}  // namespace digg::ml
