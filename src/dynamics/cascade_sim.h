#pragma once
// Independent-cascade activation spread (§1 calls voting "analogous to a
// diffusion, or spread of, activation on a network"; §6 asks how structure
// affects it, citing Galstyan & Cohen's cascades in modular networks).
//
// Activation moves along *fan* edges: when u activates (diggs), each fan of
// u independently activates with probability p at the next round — exactly
// the Friends-interface exposure mechanism, abstracted from timing.

#include <cstddef>
#include <vector>

#include "src/graph/digraph.h"
#include "src/stats/rng.h"

namespace digg::dynamics {

struct CascadeParams {
  /// Per-exposure activation probability.
  double activation_prob = 0.1;
  /// Maximum rounds (hop depth) to simulate; the cascade usually dies first.
  std::size_t max_rounds = 50;
};

struct CascadeResult {
  /// Total activated nodes, including seeds.
  std::size_t total_activated = 0;
  /// Activated count per round (round 0 = seeds).
  std::vector<std::size_t> per_round;
  /// Activation flags per node.
  std::vector<bool> activated;

  [[nodiscard]] std::size_t depth() const noexcept {
    return per_round.empty() ? 0 : per_round.size() - 1;
  }
};

/// Runs one independent cascade from the given seeds.
[[nodiscard]] CascadeResult independent_cascade(
    const graph::Digraph& g, const std::vector<graph::NodeId>& seeds,
    const CascadeParams& params, stats::Rng& rng);

/// Mean cascade size over `trials` runs from a uniformly random single seed.
[[nodiscard]] double mean_cascade_size(const graph::Digraph& g,
                                       const CascadeParams& params,
                                       std::size_t trials, stats::Rng& rng);

/// Fraction of `trials` single-seed cascades that reach at least
/// `global_fraction` of all nodes — the "global cascade" probability studied
/// on modular vs homogeneous networks.
[[nodiscard]] double global_cascade_probability(const graph::Digraph& g,
                                                const CascadeParams& params,
                                                std::size_t trials,
                                                double global_fraction,
                                                stats::Rng& rng);

}  // namespace digg::dynamics
