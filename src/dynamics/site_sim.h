#pragma once
// Whole-site simulation. The per-story VoteSimulator treats stories as
// independent — fine for reproducing the paper's per-story measurements,
// but real stories *compete*: the front page serves a bounded stream of
// reader attention, and the upcoming queue's first pages hold only the
// newest submissions (§3: 1-2 submissions per minute, 15 per page).
//
// SiteSimulator runs every story on one global clock:
//   - submissions arrive as a Poisson process; submitters are drawn by
//     their submission rates; story traits come from a caller-supplied
//     sampler;
//   - a global *attention budget* of front-page views per step is split
//     across promoted stories proportionally to novelty-decayed appeal —
//     a hot newcomer starves older stories (attention competition);
//   - the upcoming queue's discovery flow goes to the stories currently on
//     its first pages, plus the background channel;
//   - the fan channel works exactly as in VoteSimulator (one-shot engaged
//     exposure).
//
// The ablation_attention bench contrasts this with the independence
// assumption; examples use it to study submission timing.

#include <functional>
#include <memory>
#include <vector>

#include "src/digg/platform.h"
#include "src/dynamics/vote_model.h"
#include "src/stats/rng.h"

namespace digg::dynamics {

/// Draws the latent traits for a new submission by `submitter`.
using TraitsSampler =
    std::function<StoryTraits(UserId submitter, stats::Rng& rng)>;

struct SiteParams {
  /// Story submissions per day, site-wide.
  double submissions_per_day = 300.0;
  /// Total front-page reader attention: expected story *impressions* per
  /// day across all promoted stories. A reader diggs an impressed story
  /// with probability proportional to its general appeal.
  double front_page_impressions_per_day = 40000.0;
  /// Digg probability per impression at general appeal 1.
  double impression_digg_prob = 0.12;
  /// Upcoming first-pages discovery (impressions/day over the newest
  /// `browsed_pages` worth of stories) and background rate per story.
  double upcoming_impressions_per_day = 25000.0;
  double upcoming_background_rate = 25.0;  // per story at appeal 1

  /// Fan channel (identical semantics to VoteModelParams).
  double fan_consider_rate = 1.2;
  double fan_engagement_scale = 0.5;
  double fan_digg_floor = 0.01;
  double fan_digg_community_scale = 0.08;
  double fan_digg_general_scale = 0.04;
  double post_promotion_community_factor = 0.25;

  Minutes novelty_half_life = platform::kMinutesPerDay;
  Minutes step = 1.0;
  Minutes duration = 3.0 * platform::kMinutesPerDay;
};

struct SiteResult {
  std::size_t submissions = 0;
  std::size_t promotions = 0;
  std::size_t total_votes = 0;
  /// Latent traits per story id (aligned with platform story ids).
  std::vector<StoryTraits> traits;
};

class SiteSimulator {
 public:
  SiteSimulator(platform::Platform& platform, SiteParams params,
                TraitsSampler traits, stats::Rng rng);

  /// Runs the whole site for params.duration. Stories and votes accumulate
  /// on the platform; the result summarizes the run.
  SiteResult run();

 private:
  struct StoryState {
    StoryTraits traits;
    std::vector<UserId> pending;  // engaged watchers awaiting consideration
    std::size_t pool_cursor = 0;
    bool closed = false;  // expired, or promoted past the novelty horizon
  };

  platform::Platform* platform_;
  SiteParams params_;
  TraitsSampler traits_sampler_;
  stats::Rng rng_;
  std::vector<StoryState> states_;

  void ingest_watchers(platform::StoryId id);
  void fan_step(platform::StoryId id, Minutes now, double dt_days);
  bool pick_discovery_voter(const platform::VisibilitySet& vis,
                            UserId& out_voter);
};

/// One completed whole-site run: the summary plus the platform holding the
/// final story/vote state for downstream analysis.
struct SiteReplicate {
  SiteResult result;
  std::unique_ptr<platform::Platform> platform;
};

/// Builds a fresh platform for one replicate. Called once per replicate,
/// possibly concurrently — it must be thread-safe (constructing a Platform
/// from shared immutable network/user snapshots is).
using PlatformFactory = std::function<std::unique_ptr<platform::Platform>()>;

/// Monte Carlo ensemble of whole-site runs on the parallel runtime.
/// Replicate i simulates on its own platform with the index-addressed
/// substream base_rng.split(i), so the ensemble is deterministic for any
/// DIGG_THREADS setting and independent of how many draws base_rng has
/// made. `traits` is shared across replicates and must be thread-safe (it
/// only receives the replicate's own rng). Throws std::invalid_argument on
/// a null factory or a factory returning null.
[[nodiscard]] std::vector<SiteReplicate> run_site_replicates(
    const PlatformFactory& make_platform, const SiteParams& params,
    const TraitsSampler& traits, const stats::Rng& base_rng,
    std::size_t replicates);

}  // namespace digg::dynamics
