#include "src/dynamics/stochastic_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace digg::dynamics {

namespace {

std::vector<double> channel_weights(
    const std::vector<platform::UserProfile>& users, double cap,
    double platform::UserProfile::*channel) {
  std::vector<double> weights;
  weights.reserve(users.size());
  for (const platform::UserProfile& u : users)
    weights.push_back(
        std::max(1e-6, std::min(cap, u.activity_rate * (u.*channel))));
  return weights;
}

}  // namespace

StochasticSimulator::StochasticSimulator(platform::Platform& platform,
                                         StochasticModelParams params,
                                         stats::Rng rng)
    : platform_(&platform),
      params_(params),
      rng_(std::move(rng)),
      front_sampler_(channel_weights(platform.users(),
                                     params_.discovery_activity_cap,
                                     &platform::UserProfile::front_page_weight)),
      upcoming_sampler_(
          channel_weights(platform.users(), params_.discovery_activity_cap,
                          &platform::UserProfile::upcoming_weight)) {
  if (params_.step <= 0.0)
    throw std::invalid_argument("StochasticSimulator: step <= 0");
  if (params_.horizon < params_.step)
    throw std::invalid_argument("StochasticSimulator: horizon < step");
  if (params_.session_rate_scale <= 0.0)
    throw std::invalid_argument(
        "StochasticSimulator: session_rate_scale <= 0");
}

bool StochasticSimulator::pick_browser(const stats::DiscreteSampler& sampler,
                                       const platform::VisibilitySet& vis,
                                       stats::Rng& rng, UserId& out_voter) {
  // Rejection-sample a channel browser who has not acted on the story yet.
  // Watchers are excluded too: a fan of a prior voter encounters the story
  // through their Friends page clock, not through queue browsing.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto user = static_cast<UserId>(sampler.sample(rng));
    if (!vis.has_voted(user) && !vis.can_see(user)) {
      out_voter = user;
      return true;
    }
  }
  return false;
}

StoryRun StochasticSimulator::run_story(StoryId id,
                                        const StoryTraits& traits) {
  if (traits.general < 0.0 || traits.general > 1.0 ||
      traits.community < 0.0 || traits.community > 1.0)
    throw std::invalid_argument("run_story: traits outside [0,1]");

  // Model RNG contract (model.h): one substream per story, keyed on its id.
  stats::Rng rng = rng_.split(id);

  StoryRun run;
  run.story = id;
  const Minutes t0 = platform_->story(id).submitted_at;
  run.votes_over_time.append(0.0, 1.0);  // submitter's digg

  const double dt_days = params_.step / platform::kMinutesPerDay;
  const auto fan_digg_p = [&](bool promoted) {
    const double community_scale =
        promoted ? params_.fan_digg_community_scale *
                       params_.post_promotion_community_factor
                 : params_.fan_digg_community_scale;
    return std::min(1.0, params_.fan_digg_floor +
                             community_scale * traits.community +
                             params_.fan_digg_general_scale * traits.general);
  };

  // Per-watcher consideration clocks: when user u becomes a watcher, their
  // next Friends-page visit is Exponential(ω_u · w_friends · scale) away.
  // A min-heap keyed on (fire time, user) resolves the clocks in a
  // deterministic order; a clock that fires after the recency window is
  // dropped — that watcher never sees the story.
  using Clock = std::pair<Minutes, UserId>;  // compares time, then user
  std::priority_queue<Clock, std::vector<Clock>, std::greater<Clock>> clocks;
  std::size_t pool_cursor = 0;

  const auto& users = platform_->users();
  std::size_t last_recorded = 1;
  for (Minutes t = t0 + params_.step; t - t0 <= params_.horizon;
       t += params_.step) {
    const platform::Story& s = platform_->story(id);
    if (s.phase == platform::StoryPhase::kUpcoming &&
        t - t0 > platform_->queue_params().upcoming_lifetime) {
      platform_->expire_stale(t);
    }
    if (platform_->story(id).phase == platform::StoryPhase::kExpired) break;

    // Friends channel: wind each newly exposed watcher's clock.
    {
      const auto& vis = platform_->visibility(id);
      const auto& log = vis.exposure_log();
      for (; pool_cursor < log.size(); ++pool_cursor) {
        const UserId watcher = log[pool_cursor];
        const double rate_per_day =
            (watcher < users.size()
                 ? users[watcher].activity_rate *
                       users[watcher].friends_interface_weight
                 : 1.0) *
            params_.friends_rate_scale * params_.session_rate_scale;
        if (rate_per_day <= 0.0) continue;
        const Minutes delay =
            rng.exponential(rate_per_day / platform::kMinutesPerDay);
        if (delay <= params_.friends_recency_window)
          clocks.push({t + delay, watcher});
      }
    }

    // Fire every clock due this step.
    const bool promoted = s.phase == platform::StoryPhase::kFrontPage;
    const double p_fan = fan_digg_p(promoted);
    while (!clocks.empty() && clocks.top().first <= t) {
      const UserId watcher = clocks.top().second;
      clocks.pop();
      const auto& vis = platform_->visibility(id);
      if (vis.has_voted(watcher)) continue;  // acted via another channel
      if (rng.bernoulli(p_fan)) {
        platform_->vote(id, watcher, t);
        ++run.fan_channel_votes;
      }
    }

    // Discovery channels: aggregate browsing traffic, Poisson per step;
    // each browser diggs with an appeal-dependent probability (browsing
    // and digging are separate events, unlike the two-mechanism model
    // where the discovery rate already folds the appeal in).
    double browse_rate = 0.0;
    double p_digg = 0.0;
    const stats::DiscreteSampler* sampler = nullptr;
    if (!promoted) {
      const double queue_age = t - t0;
      browse_rate =
          (params_.upcoming_browse_rate *
               std::exp(-queue_age / params_.upcoming_visibility_decay) +
           params_.upcoming_background_rate) *
          params_.session_rate_scale * dt_days;
      p_digg = std::min(1.0, params_.upcoming_digg_floor +
                                 params_.upcoming_digg_slope * traits.general);
      sampler = &upcoming_sampler_;
    } else {
      const double fp_age = t - *platform_->story(id).promoted_at;
      browse_rate = params_.front_page_browse_rate *
                    std::pow(0.5, fp_age / params_.novelty_half_life) *
                    params_.session_rate_scale * dt_days;
      p_digg =
          std::min(1.0, params_.front_page_digg_floor +
                            params_.front_page_digg_slope * traits.general);
      sampler = &front_sampler_;
    }
    const std::int64_t browsers = rng.poisson(browse_rate);
    for (std::int64_t k = 0; k < browsers; ++k) {
      if (!rng.bernoulli(p_digg)) continue;
      UserId voter;
      if (!pick_browser(*sampler, platform_->visibility(id), rng, voter))
        break;
      platform_->vote(id, voter, t);
      ++run.discovery_votes;
    }

    const std::size_t count = platform_->story(id).vote_count();
    if (count != last_recorded) {
      run.votes_over_time.append(t - t0, static_cast<double>(count));
      last_recorded = count;
    }
  }
  const std::size_t final_count = platform_->story(id).vote_count();
  if (run.votes_over_time.times().back() < params_.horizon)
    run.votes_over_time.append(params_.horizon,
                               static_cast<double>(final_count));
  static obs::Counter& stories =
      obs::Registry::global().counter("dynamics.stories_simulated");
  static obs::Counter& fan_votes =
      obs::Registry::global().counter("dynamics.fan_votes");
  static obs::Counter& discovery_votes =
      obs::Registry::global().counter("dynamics.discovery_votes");
  stories.inc();
  fan_votes.inc(run.fan_channel_votes);
  discovery_votes.inc(run.discovery_votes);
  return run;
}

std::vector<ModelParam> StochasticModel::params() const {
  return {
      {"session_rate_scale", params_.session_rate_scale},
      {"friends_rate_scale", params_.friends_rate_scale},
      {"friends_recency_window", params_.friends_recency_window},
      {"fan_digg_floor", params_.fan_digg_floor},
      {"fan_digg_community_scale", params_.fan_digg_community_scale},
      {"fan_digg_general_scale", params_.fan_digg_general_scale},
      {"post_promotion_community_factor",
       params_.post_promotion_community_factor},
      {"upcoming_browse_rate", params_.upcoming_browse_rate},
      {"upcoming_visibility_decay", params_.upcoming_visibility_decay},
      {"upcoming_background_rate", params_.upcoming_background_rate},
      {"upcoming_digg_floor", params_.upcoming_digg_floor},
      {"upcoming_digg_slope", params_.upcoming_digg_slope},
      {"front_page_browse_rate", params_.front_page_browse_rate},
      {"novelty_half_life", params_.novelty_half_life},
      {"front_page_digg_floor", params_.front_page_digg_floor},
      {"front_page_digg_slope", params_.front_page_digg_slope},
      {"discovery_activity_cap", params_.discovery_activity_cap},
      {"step", params_.step},
      {"horizon", params_.horizon},
  };
}

bool StochasticModel::set_param(std::string_view name, double value) {
  const std::pair<std::string_view, double StochasticModelParams::*> table[] =
      {
          {"session_rate_scale", &StochasticModelParams::session_rate_scale},
          {"friends_rate_scale", &StochasticModelParams::friends_rate_scale},
          {"friends_recency_window",
           &StochasticModelParams::friends_recency_window},
          {"fan_digg_floor", &StochasticModelParams::fan_digg_floor},
          {"fan_digg_community_scale",
           &StochasticModelParams::fan_digg_community_scale},
          {"fan_digg_general_scale",
           &StochasticModelParams::fan_digg_general_scale},
          {"post_promotion_community_factor",
           &StochasticModelParams::post_promotion_community_factor},
          {"upcoming_browse_rate",
           &StochasticModelParams::upcoming_browse_rate},
          {"upcoming_visibility_decay",
           &StochasticModelParams::upcoming_visibility_decay},
          {"upcoming_background_rate",
           &StochasticModelParams::upcoming_background_rate},
          {"upcoming_digg_floor", &StochasticModelParams::upcoming_digg_floor},
          {"upcoming_digg_slope", &StochasticModelParams::upcoming_digg_slope},
          {"front_page_browse_rate",
           &StochasticModelParams::front_page_browse_rate},
          {"novelty_half_life", &StochasticModelParams::novelty_half_life},
          {"front_page_digg_floor",
           &StochasticModelParams::front_page_digg_floor},
          {"front_page_digg_slope",
           &StochasticModelParams::front_page_digg_slope},
          {"discovery_activity_cap",
           &StochasticModelParams::discovery_activity_cap},
          {"step", &StochasticModelParams::step},
          {"horizon", &StochasticModelParams::horizon},
      };
  for (const auto& [key, member] : table) {
    if (key == name) {
      params_.*member = value;
      return true;
    }
  }
  return false;
}

}  // namespace digg::dynamics
