#include "src/dynamics/vote_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace digg::dynamics {

namespace {

std::vector<double> capped_activity_weights(
    const std::vector<platform::UserProfile>& users, double cap) {
  std::vector<double> weights;
  weights.reserve(users.size());
  for (const platform::UserProfile& u : users)
    weights.push_back(std::max(1e-6, std::min(cap, u.activity_rate)));
  return weights;
}

}  // namespace

VoteSimulator::VoteSimulator(platform::Platform& platform,
                             VoteModelParams params, stats::Rng rng)
    : platform_(&platform),
      params_(std::move(params)),
      rng_(std::move(rng)),
      discovery_sampler_(capped_activity_weights(
          platform.users(), params_.discovery_activity_cap)) {
  if (params_.step <= 0.0)
    throw std::invalid_argument("VoteSimulator: step <= 0");
  if (params_.horizon < params_.step)
    throw std::invalid_argument("VoteSimulator: horizon < step");
}

bool VoteSimulator::pick_discovery_voter(const platform::VisibilitySet& vis,
                                         stats::Rng& rng, UserId& out_voter) {
  // Rejection-sample an out-of-network voter, weighted by (capped) activity:
  // Fig. 2(b)'s heavy-tailed per-user vote counts come from this skew, while
  // the long inactive tail is what makes most voters vote only once.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto user = static_cast<UserId>(discovery_sampler_.sample(rng));
    if (!vis.has_voted(user) && !vis.can_see(user)) {
      out_voter = user;
      return true;
    }
  }
  return false;
}

StoryRun VoteSimulator::run_story(StoryId id, const StoryTraits& traits) {
  if (traits.general < 0.0 || traits.general > 1.0 ||
      traits.community < 0.0 || traits.community > 1.0)
    throw std::invalid_argument("run_story: traits outside [0,1]");

  // The Model RNG contract (model.h): every draw for this story comes from
  // a substream keyed on the story id, derived from the base stream's seed —
  // independent of how many stories ran before, which unpins story order.
  stats::Rng rng = rng_.split(id);

  StoryRun run;
  run.story = id;
  const Minutes t0 = platform_->story(id).submitted_at;
  run.votes_over_time.append(0.0, 1.0);  // submitter's digg

  const double dt_days = params_.step / platform::kMinutesPerDay;
  auto fan_digg_p_now = [&](bool promoted) {
    const double community_scale =
        promoted ? params_.fan_digg_community_scale *
                       params_.post_promotion_community_factor
                 : params_.fan_digg_community_scale;
    return std::min(1.0, params_.fan_digg_floor +
                             community_scale * traits.community +
                             params_.fan_digg_general_scale * traits.general);
  };

  // One-shot exposure bookkeeping for the fan channel: `pending` holds
  // watchers who have not yet considered the story; `pool_cursor` tracks how
  // much of the visibility exposure log has been ingested.
  std::vector<UserId> pending;
  std::size_t pool_cursor = 0;

  std::size_t last_recorded = 1;
  for (Minutes t = t0 + params_.step; t - t0 <= params_.horizon;
       t += params_.step) {
    const platform::Story& s = platform_->story(id);
    if (s.phase == platform::StoryPhase::kUpcoming &&
        t - t0 > platform_->queue_params().upcoming_lifetime) {
      platform_->expire_stale(t);
    }
    if (platform_->story(id).phase == platform::StoryPhase::kExpired) break;

    const auto& vis = platform_->visibility(id);

    // Mechanism 2: network-based spread. Ingest newly exposed watchers —
    // each is engaged (an active Friends-interface user) with probability
    // scaled by their activity — then let a Poisson-distributed number of
    // pending watchers consider the story this step.
    {
      const auto& log = vis.exposure_log();
      const auto& users = platform_->users();
      for (; pool_cursor < log.size(); ++pool_cursor) {
        const UserId watcher = log[pool_cursor];
        const double engaged =
            params_.fan_engagement_scale *
            (watcher < users.size() ? users[watcher].activity_rate : 1.0);
        if (rng.bernoulli(std::min(1.0, engaged)))
          pending.push_back(watcher);
      }
    }
    const double consider_mean = static_cast<double>(pending.size()) *
                                 params_.fan_consider_rate * dt_days;
    // Mechanism 1: interest-based independent discovery.
    double discovery_rate = 0.0;
    if (s.phase == platform::StoryPhase::kUpcoming) {
      const double queue_age = t - t0;
      const double effective_g =
          params_.upcoming_quality_floor +
          (1.0 - params_.upcoming_quality_floor) * traits.general;
      discovery_rate =
          (params_.upcoming_discovery_rate *
               std::exp(-queue_age / params_.upcoming_visibility_decay) +
           params_.upcoming_background_rate) *
          effective_g * dt_days;
    } else {  // front page
      const double fp_age = t - *s.promoted_at;
      discovery_rate = params_.front_page_rate * traits.general *
                       std::pow(0.5, fp_age / params_.novelty_half_life) *
                       dt_days;
    }

    const std::int64_t considering =
        std::min<std::int64_t>(rng.poisson(consider_mean),
                               static_cast<std::int64_t>(pending.size()));
    const std::int64_t discovery_votes = rng.poisson(discovery_rate);
    const double fan_digg_p =
        fan_digg_p_now(s.phase == platform::StoryPhase::kFrontPage);

    for (std::int64_t k = 0; k < considering; ++k) {
      // Draw a random pending watcher and retire them (one-shot).
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(pending.size()) - 1));
      const UserId candidate = pending[idx];
      pending[idx] = pending.back();
      pending.pop_back();
      const auto& live = platform_->visibility(id);
      if (live.has_voted(candidate)) continue;  // acted via another channel
      if (rng.bernoulli(fan_digg_p)) {
        platform_->vote(id, candidate, t);
        ++run.fan_channel_votes;
      }
    }
    for (std::int64_t k = 0; k < discovery_votes; ++k) {
      UserId voter;
      if (!pick_discovery_voter(platform_->visibility(id), rng, voter)) break;
      platform_->vote(id, voter, t);
      ++run.discovery_votes;
    }

    const std::size_t count = platform_->story(id).vote_count();
    if (count != last_recorded) {
      run.votes_over_time.append(t - t0, static_cast<double>(count));
      last_recorded = count;
    }
  }
  // Ensure the series covers the full horizon for resampling.
  const std::size_t final_count = platform_->story(id).vote_count();
  if (run.votes_over_time.times().back() < params_.horizon)
    run.votes_over_time.append(params_.horizon,
                               static_cast<double>(final_count));
  static obs::Counter& stories =
      obs::Registry::global().counter("dynamics.stories_simulated");
  static obs::Counter& fan_votes =
      obs::Registry::global().counter("dynamics.fan_votes");
  static obs::Counter& discovery_votes =
      obs::Registry::global().counter("dynamics.discovery_votes");
  stories.inc();
  fan_votes.inc(run.fan_channel_votes);
  discovery_votes.inc(run.discovery_votes);
  return run;
}

std::vector<ModelParam> VoteModel::params() const {
  return {
      {"fan_consider_rate", params_.fan_consider_rate},
      {"fan_engagement_scale", params_.fan_engagement_scale},
      {"fan_digg_floor", params_.fan_digg_floor},
      {"fan_digg_community_scale", params_.fan_digg_community_scale},
      {"fan_digg_general_scale", params_.fan_digg_general_scale},
      {"post_promotion_community_factor",
       params_.post_promotion_community_factor},
      {"upcoming_discovery_rate", params_.upcoming_discovery_rate},
      {"upcoming_visibility_decay", params_.upcoming_visibility_decay},
      {"upcoming_background_rate", params_.upcoming_background_rate},
      {"upcoming_quality_floor", params_.upcoming_quality_floor},
      {"discovery_activity_cap", params_.discovery_activity_cap},
      {"front_page_rate", params_.front_page_rate},
      {"novelty_half_life", params_.novelty_half_life},
      {"step", params_.step},
      {"horizon", params_.horizon},
  };
}

bool VoteModel::set_param(std::string_view name, double value) {
  const std::pair<std::string_view, double VoteModelParams::*> table[] = {
      {"fan_consider_rate", &VoteModelParams::fan_consider_rate},
      {"fan_engagement_scale", &VoteModelParams::fan_engagement_scale},
      {"fan_digg_floor", &VoteModelParams::fan_digg_floor},
      {"fan_digg_community_scale", &VoteModelParams::fan_digg_community_scale},
      {"fan_digg_general_scale", &VoteModelParams::fan_digg_general_scale},
      {"post_promotion_community_factor",
       &VoteModelParams::post_promotion_community_factor},
      {"upcoming_discovery_rate", &VoteModelParams::upcoming_discovery_rate},
      {"upcoming_visibility_decay",
       &VoteModelParams::upcoming_visibility_decay},
      {"upcoming_background_rate", &VoteModelParams::upcoming_background_rate},
      {"upcoming_quality_floor", &VoteModelParams::upcoming_quality_floor},
      {"discovery_activity_cap", &VoteModelParams::discovery_activity_cap},
      {"front_page_rate", &VoteModelParams::front_page_rate},
      {"novelty_half_life", &VoteModelParams::novelty_half_life},
      {"step", &VoteModelParams::step},
      {"horizon", &VoteModelParams::horizon},
  };
  for (const auto& [key, member] : table) {
    if (key == name) {
      params_.*member = value;
      return true;
    }
  }
  return false;
}

BatchResult simulate_batch(
    platform::Platform& platform, Simulator& sim,
    const std::vector<std::pair<UserId, StoryTraits>>& submissions,
    Minutes spacing_minutes) {
  BatchResult out;
  out.ids.reserve(submissions.size());
  out.runs.reserve(submissions.size());
  simulate_each(platform, sim, submissions, spacing_minutes,
                [&out](StoryId id, StoryRun&& run) {
                  out.ids.push_back(id);
                  out.runs.push_back(std::move(run));
                });
  return out;
}

void simulate_each(
    platform::Platform& platform, Simulator& sim,
    const std::vector<std::pair<UserId, StoryTraits>>& submissions,
    Minutes spacing_minutes,
    const std::function<void(StoryId, StoryRun&&)>& on_story) {
  obs::Span span("simulate_batch", "dynamics");
  Minutes t = 0.0;
  for (const auto& [submitter, traits] : submissions) {
    const StoryId id = platform.submit(submitter, traits.general, t);
    on_story(id, sim.run_story(id, traits));
    t += spacing_minutes;
  }
}

}  // namespace digg::dynamics
