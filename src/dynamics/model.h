#pragma once
// The pluggable generative-model boundary. A dynamics::Model describes one
// theory of how votes accumulate on a story (the paper's two-mechanism
// model, Hogg & Lerman's rate-based stochastic model, ...); everything
// downstream — synthetic generation, streamed generation, the scenario
// presets, the CLI — drives models through this interface instead of
// hard-coding one implementation.
//
// Determinism / RNG contract:
//   - make_simulator() receives an Rng by value; the simulator owns it.
//   - A simulator derives each story's draws from rng.split(story_id), a
//     counter-based substream keyed on the *seed* (stats/rng.h). Story runs
//     therefore do not depend on RNG-consumption order: simulating stories
//     {0,1,2} or just {2} produces bit-identical votes for story 2 (given
//     the same platform submissions). This is what unpins streamed
//     generation from serial story order and what future parallel
//     generation relies on.
//   - run_story must not draw from any other stream, so eager and streamed
//     corpus generation stay bit-identical (data/synthetic.cpp's contract).
//
// Identity: id() is a stable string recorded in snapshots (DIGGSNAP
// MODELINFO section) and used by the CLI scenario parser. Renaming an id is
// a format break — old snapshots name the model that generated them.
//
// Parameters: params()/set_param() expose every numeric knob by name so
// benches and the scenario CLI can override them generically
// (--model-param step=2). Unknown names are rejected, not ignored.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/digg/platform.h"
#include "src/digg/types.h"
#include "src/stats/rng.h"
#include "src/stats/timeseries.h"

namespace digg::dynamics {

using platform::Minutes;
using platform::StoryId;
using platform::UserId;

/// Latent per-story appeal. `general` doubles as Story::quality on the
/// platform; `community` only matters to fans of prior voters.
struct StoryTraits {
  double general = 0.2;    // in [0,1]
  double community = 0.2;  // in [0,1]
};

/// Result of simulating one story to its horizon.
struct StoryRun {
  StoryId story = 0;
  stats::TimeSeries votes_over_time;  // cumulative votes, minute resolution
  std::size_t fan_channel_votes = 0;  // votes that arrived via the Friends
                                      // interface channel (network spread)
  std::size_t discovery_votes = 0;    // independent discovery (upcoming +
                                      // front page)
};

/// One numeric model parameter, exposed by name for CLI/bench overrides.
struct ModelParam {
  std::string name;
  double value = 0.0;
};

/// A per-run simulator instance bound to one platform. Created by
/// Model::make_simulator; drives already-submitted stories to their horizon,
/// recording votes on the platform (promotion fires through the platform's
/// policy, whichever is configured).
class Simulator {
 public:
  virtual ~Simulator() = default;

  /// Simulates the full lifetime of an already-submitted story. Traits'
  /// `general` should match the story's platform quality. All randomness
  /// comes from the simulator's rng.split(id) substream (see the contract
  /// above).
  virtual StoryRun run_story(StoryId id, const StoryTraits& traits) = 0;
};

/// A generative vote model: stable id + parameter set + simulator factory.
/// Models are value-like (clone()) so scenario specs can carry configured
/// instances.
class Model {
 public:
  virtual ~Model() = default;

  /// Stable identifier, recorded in snapshots and used by the CLI.
  [[nodiscard]] virtual std::string id() const = 0;

  /// Every numeric parameter by name, current values.
  [[nodiscard]] virtual std::vector<ModelParam> params() const = 0;
  /// Sets one parameter by name; returns false (and changes nothing) for
  /// unknown names.
  virtual bool set_param(std::string_view name, double value) = 0;

  [[nodiscard]] virtual std::unique_ptr<Model> clone() const = 0;

  /// Binds a simulator to `platform`, owning `rng` as its base stream.
  /// The platform must outlive the simulator.
  [[nodiscard]] virtual std::unique_ptr<Simulator> make_simulator(
      platform::Platform& platform, stats::Rng rng) const = 0;
};

/// Stable ids of the built-in models (registered automatically).
inline constexpr char kLegacyModelId[] = "two-mechanism";
inline constexpr char kStochasticModelId[] = "stochastic";

/// Registers `prototype` under its id(). Returns false (and keeps the
/// existing registration) if the id is already taken. Thread-safe.
bool register_model(std::unique_ptr<Model> prototype);

/// True if a model with this id is registered.
[[nodiscard]] bool model_registered(std::string_view id);

/// All registered ids, sorted (builtins always present).
[[nodiscard]] std::vector<std::string> registered_model_ids();

/// Clone of the registered prototype (default parameters). Throws
/// std::invalid_argument naming the unknown id and listing known ones.
[[nodiscard]] std::unique_ptr<Model> make_model(std::string_view id);

}  // namespace digg::dynamics
