#include "src/dynamics/novelty.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace digg::dynamics {

namespace {

struct Curve {
  std::vector<double> t;  // minutes since promotion
  std::vector<double> v;  // votes since promotion
};

// For a fixed half-life, the least-squares amplitude has the closed form
// A = sum(v_i * f_i) / sum(f_i^2) with f_i = 1 - 2^(-t_i/hl).
double solve_amplitude(const Curve& c, double half_life) {
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < c.t.size(); ++i) {
    const double f = 1.0 - std::pow(0.5, c.t[i] / half_life);
    num += c.v[i] * f;
    den += f * f;
  }
  return den > 0.0 ? num / den : 0.0;
}

double rmse_for(const Curve& c, double half_life, double amplitude) {
  double acc = 0.0;
  for (std::size_t i = 0; i < c.t.size(); ++i) {
    const double f = amplitude * (1.0 - std::pow(0.5, c.t[i] / half_life));
    acc += (c.v[i] - f) * (c.v[i] - f);
  }
  return std::sqrt(acc / static_cast<double>(c.t.size()));
}

}  // namespace

std::optional<NoveltyFit> fit_novelty_decay(const platform::StoryView& story,
                                            std::size_t min_votes,
                                            std::size_t grid) {
  if (!story.promoted()) return std::nullopt;
  const platform::Minutes tp = *story.promoted_at;

  // Post-promotion cumulative curve: (minutes since promotion, votes since
  // promotion) with one point per vote.
  Curve curve;
  for (platform::Minutes time : story.times()) {
    if (time <= tp) continue;
    curve.t.push_back(time - tp);
    curve.v.push_back(static_cast<double>(curve.v.size() + 1));
  }
  if (curve.t.size() < min_votes) return std::nullopt;

  // Log-spaced grid search over the half-life, then local refinement.
  const double lo = 10.0;                                // 10 minutes
  const double hi = 10.0 * platform::kMinutesPerDay;     // 10 days
  double best_hl = lo;
  double best_rmse = std::numeric_limits<double>::infinity();
  double best_amp = 0.0;
  for (std::size_t k = 0; k < grid; ++k) {
    const double frac =
        static_cast<double>(k) / static_cast<double>(grid - 1);
    const double hl = lo * std::pow(hi / lo, frac);
    const double amp = solve_amplitude(curve, hl);
    const double err = rmse_for(curve, hl, amp);
    if (err < best_rmse) {
      best_rmse = err;
      best_hl = hl;
      best_amp = amp;
    }
  }
  // One refinement pass around the best grid point.
  const double step = std::pow(hi / lo, 1.0 / static_cast<double>(grid - 1));
  for (double hl = best_hl / step; hl <= best_hl * step;
       hl += best_hl * (step - 1.0) / 8.0) {
    const double amp = solve_amplitude(curve, hl);
    const double err = rmse_for(curve, hl, amp);
    if (err < best_rmse) {
      best_rmse = err;
      best_hl = hl;
      best_amp = amp;
    }
  }

  NoveltyFit fit;
  fit.half_life_minutes = best_hl;
  fit.amplitude = best_amp;
  fit.rmse = best_rmse;
  fit.samples = curve.t.size();
  return fit;
}

std::vector<NoveltyFit> fit_novelty_decay_all(
    std::span<const platform::StoryView> stories, std::size_t min_votes) {
  std::vector<NoveltyFit> fits;
  for (const platform::StoryView& s : stories) {
    if (const auto fit = fit_novelty_decay(s, min_votes)) {
      fits.push_back(*fit);
    }
  }
  return fits;
}

}  // namespace digg::dynamics
