#include "src/dynamics/cascade_sim.h"

#include <stdexcept>

#include "src/obs/metrics.h"

namespace digg::dynamics {

CascadeResult independent_cascade(const graph::Digraph& g,
                                  const std::vector<graph::NodeId>& seeds,
                                  const CascadeParams& params,
                                  stats::Rng& rng) {
  if (params.activation_prob < 0.0 || params.activation_prob > 1.0)
    throw std::invalid_argument("independent_cascade: bad probability");
  CascadeResult result;
  result.activated.assign(g.node_count(), false);
  std::vector<graph::NodeId> frontier;
  for (graph::NodeId s : seeds) {
    if (s >= g.node_count())
      throw std::out_of_range("independent_cascade: bad seed");
    if (!result.activated[s]) {
      result.activated[s] = true;
      frontier.push_back(s);
    }
  }
  result.per_round.push_back(frontier.size());
  result.total_activated = frontier.size();

  std::vector<graph::NodeId> next;
  for (std::size_t round = 0; round < params.max_rounds && !frontier.empty();
       ++round) {
    next.clear();
    for (graph::NodeId u : frontier) {
      for (graph::NodeId fan : g.fans(u)) {
        if (!result.activated[fan] && rng.bernoulli(params.activation_prob)) {
          result.activated[fan] = true;
          next.push_back(fan);
        }
      }
    }
    if (next.empty()) break;
    result.per_round.push_back(next.size());
    result.total_activated += next.size();
    frontier.swap(next);
  }
  static obs::Counter& cascades =
      obs::Registry::global().counter("dynamics.cascades");
  static obs::Counter& activations =
      obs::Registry::global().counter("dynamics.cascade_activations");
  cascades.inc();
  activations.inc(result.total_activated);
  return result;
}

double mean_cascade_size(const graph::Digraph& g, const CascadeParams& params,
                         std::size_t trials, stats::Rng& rng) {
  if (trials == 0) throw std::invalid_argument("mean_cascade_size: 0 trials");
  if (g.node_count() == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < trials; ++i) {
    const auto seed = static_cast<graph::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(g.node_count()) - 1));
    acc += static_cast<double>(
        independent_cascade(g, {seed}, params, rng).total_activated);
  }
  return acc / static_cast<double>(trials);
}

double global_cascade_probability(const graph::Digraph& g,
                                  const CascadeParams& params,
                                  std::size_t trials, double global_fraction,
                                  stats::Rng& rng) {
  if (trials == 0)
    throw std::invalid_argument("global_cascade_probability: 0 trials");
  if (global_fraction <= 0.0 || global_fraction > 1.0)
    throw std::invalid_argument("global_cascade_probability: bad fraction");
  if (g.node_count() == 0) return 0.0;
  const double threshold =
      global_fraction * static_cast<double>(g.node_count());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < trials; ++i) {
    const auto seed = static_cast<graph::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(g.node_count()) - 1));
    const CascadeResult r = independent_cascade(g, {seed}, params, rng);
    if (static_cast<double>(r.total_activated) >= threshold) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace digg::dynamics
