#include "src/dynamics/threshold_model.h"

#include <algorithm>
#include <stdexcept>

namespace digg::dynamics {

ThresholdResult linear_threshold(const graph::Digraph& g,
                                 const std::vector<graph::NodeId>& seeds,
                                 const ThresholdParams& params,
                                 stats::Rng& rng) {
  if (params.threshold_lo < 0.0 || params.threshold_hi > 1.0 ||
      params.threshold_lo > params.threshold_hi)
    throw std::invalid_argument("linear_threshold: bad threshold range");
  const std::size_t n = g.node_count();

  std::vector<double> threshold(n);
  for (double& t : threshold)
    t = rng.uniform(params.threshold_lo, params.threshold_hi);

  ThresholdResult result;
  result.adopted.assign(n, false);
  for (graph::NodeId s : seeds) {
    if (s >= n) throw std::out_of_range("linear_threshold: bad seed");
    result.adopted[s] = true;
  }
  result.total_adopted =
      static_cast<std::size_t>(std::count(result.adopted.begin(),
                                          result.adopted.end(), true));
  result.per_round.push_back(result.total_adopted);

  std::vector<graph::NodeId> newly;
  for (std::size_t round = 0; round < params.max_rounds; ++round) {
    newly.clear();
    for (graph::NodeId u = 0; u < n; ++u) {
      if (result.adopted[u]) continue;
      const auto friends = g.friends(u);
      if (friends.empty()) continue;
      std::size_t adopted_friends = 0;
      for (graph::NodeId f : friends)
        if (result.adopted[f]) ++adopted_friends;
      const double fraction = static_cast<double>(adopted_friends) /
                              static_cast<double>(friends.size());
      if (fraction >= threshold[u]) newly.push_back(u);
    }
    if (newly.empty()) break;
    for (graph::NodeId u : newly) result.adopted[u] = true;
    result.total_adopted += newly.size();
    result.per_round.push_back(newly.size());
  }
  return result;
}

std::vector<std::pair<double, double>> cascade_window_sweep(
    const graph::Digraph& g, const std::vector<double>& thresholds,
    std::size_t trials, stats::Rng& rng, std::size_t max_rounds) {
  if (trials == 0)
    throw std::invalid_argument("cascade_window_sweep: 0 trials");
  if (g.node_count() == 0)
    throw std::invalid_argument("cascade_window_sweep: empty graph");
  std::vector<std::pair<double, double>> out;
  out.reserve(thresholds.size());
  for (double t : thresholds) {
    ThresholdParams params;
    params.threshold_lo = t;
    params.threshold_hi = t;
    params.max_rounds = max_rounds;
    double acc = 0.0;
    for (std::size_t k = 0; k < trials; ++k) {
      const auto seed = static_cast<graph::NodeId>(rng.uniform_int(
          0, static_cast<std::int64_t>(g.node_count()) - 1));
      const ThresholdResult r = linear_threshold(g, {seed}, params, rng);
      acc += static_cast<double>(r.total_adopted) /
             static_cast<double>(g.node_count());
    }
    out.emplace_back(t, acc / static_cast<double>(trials));
  }
  return out;
}

}  // namespace digg::dynamics
