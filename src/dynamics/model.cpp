#include "src/dynamics/model.h"

#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "src/dynamics/stochastic_model.h"
#include "src/dynamics/vote_model.h"

namespace digg::dynamics {

namespace {

struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Model>> prototypes;
};

/// The global model registry. Built-ins are installed on first touch (no
/// static-initialization-order or dead-stripping hazards — a static
/// self-registration object in a static library would be dropped by the
/// linker unless referenced).
Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry;
    reg->prototypes.emplace(kLegacyModelId, std::make_unique<VoteModel>());
    reg->prototypes.emplace(kStochasticModelId,
                            std::make_unique<StochasticModel>());
    return reg;
  }();
  return *r;
}

std::string known_ids_joined(const Registry& reg) {
  std::string out;
  for (const auto& [id, proto] : reg.prototypes) {
    if (!out.empty()) out += ", ";
    out += id;
  }
  return out;
}

}  // namespace

bool register_model(std::unique_ptr<Model> prototype) {
  if (prototype == nullptr)
    throw std::invalid_argument("register_model: null prototype");
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  const std::string id = prototype->id();
  return reg.prototypes.emplace(id, std::move(prototype)).second;
}

bool model_registered(std::string_view id) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  return reg.prototypes.find(std::string(id)) != reg.prototypes.end();
}

std::vector<std::string> registered_model_ids() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::string> ids;
  ids.reserve(reg.prototypes.size());
  for (const auto& [id, proto] : reg.prototypes) ids.push_back(id);
  return ids;  // std::map iterates sorted
}

std::unique_ptr<Model> make_model(std::string_view id) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.prototypes.find(std::string(id));
  if (it == reg.prototypes.end())
    throw std::invalid_argument("unknown generative model id '" +
                                std::string(id) +
                                "' (known: " + known_ids_joined(reg) + ")");
  return it->second->clone();
}

}  // namespace digg::dynamics
