#pragma once
// Wu–Huberman novelty decay (PNAS 2007), the related work the paper
// contrasts itself with (§2): after promotion, a story's vote rate decays
// and its cumulative count saturates with a half-life of about a day. This
// module fits the decay law to observed vote records so the reproduction
// can *measure* the half-life rather than assume it.
//
// Model: post-promotion cumulative votes follow
//   V(t) = V_p + A * (1 - 2^(-t / half_life)),
// i.e. an exponentially decaying rate. We fit (A, half_life) per story by
// golden-section search on the half-life with A solved in closed form.

#include <optional>
#include <span>
#include <vector>

#include "src/digg/types.h"
#include "src/stats/timeseries.h"

namespace digg::dynamics {

struct NoveltyFit {
  double half_life_minutes = 0.0;
  double amplitude = 0.0;   // A: asymptotic post-promotion votes
  double rmse = 0.0;        // fit quality on the sampled curve
  std::size_t samples = 0;  // points used
};

/// Fits the decay law to one story's post-promotion vote curve. Returns
/// nullopt for unpromoted stories or stories with fewer than `min_votes`
/// post-promotion votes.
[[nodiscard]] std::optional<NoveltyFit> fit_novelty_decay(
    const platform::StoryView& story, std::size_t min_votes = 20,
    std::size_t grid = 64);

/// Fits every promoted story and returns the distribution of half-lives.
/// Accepts any contiguous run of stories (corpus views or platform stories
/// gathered into a vector of views).
[[nodiscard]] std::vector<NoveltyFit> fit_novelty_decay_all(
    std::span<const platform::StoryView> stories, std::size_t min_votes = 20);

}  // namespace digg::dynamics
