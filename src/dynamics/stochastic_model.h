#pragma once
// The rate-based stochastic user model of Hogg & Lerman, "Social Dynamics of
// Digg" (arXiv:1202.0031) — the second registered dynamics::Model (id
// "stochastic", model.h).
//
// Where the two-mechanism model (vote_model.h) treats the fan channel as an
// aggregate one-shot exposure pool, this model is built from *per-user
// activity rates*: each user visits the site as a Poisson process with rate
// ω_u (UserProfile::activity_rate) and splits attention across the three
// visibility channels of the paper's site model —
//
//   - friends interface: when a user becomes a fan-of-a-voter watcher, they
//     next check their Friends page after an Exponential(ω_u · w_friends)
//     delay (their own clock, not a shared pool rate) and consider the
//     story once — the interface only surfaces recent activity, so a
//     watcher who gets there after the recency window never sees it;
//   - upcoming queue: aggregate browsing traffic over the first pages,
//     decaying as newer submissions push the story down, plus an
//     age-independent background (search, external links);
//   - front page: aggregate traffic decaying with the novelty half-life
//     after promotion.
//
// Discovery voters are drawn activity-weighted per channel (front-page
// browsing weighted by ω_u · w_front, queue browsing by ω_u · w_upcoming),
// so the same heavy-tailed per-user vote counts emerge, with a
// channel-specific skew. Promotion is whatever policy the platform is
// configured with — the scenario layer (data/scenario.h) varies it.
//
// RNG contract: identical to every Model — all of a story's draws come from
// the simulator's rng.split(story_id) substream; watcher clocks resolve in
// deterministic (time, user) order via an explicit min-heap.

#include <cstdint>
#include <queue>
#include <vector>

#include "src/digg/platform.h"
#include "src/digg/types.h"
#include "src/dynamics/model.h"
#include "src/stats/rng.h"

namespace digg::dynamics {

struct StochasticModelParams {
  /// Global multiplier on every user's activity rate ω_u (sessions/day) —
  /// the activity-mix scenarios scale the whole population up or down
  /// without regenerating profiles.
  double session_rate_scale = 1.0;
  /// Multiplier on the friends-interface share of a watcher's sessions:
  /// their consideration clock fires at ω_u · w_friends · this (per day).
  double friends_rate_scale = 2.0;
  /// A watcher who reaches the Friends page later than this after exposure
  /// never sees the story (the interface's recency window, §3: 48 hours).
  Minutes friends_recency_window = 48.0 * 60.0;
  /// Digg probability when a watcher considers the story:
  ///   p = floor + community_scale * community + general_scale * general.
  double fan_digg_floor = 0.015;
  double fan_digg_community_scale = 0.10;
  double fan_digg_general_scale = 0.05;
  /// Community-appeal multiplier after promotion (same §5.1 saturation
  /// argument as the two-mechanism model).
  double post_promotion_community_factor = 0.30;

  /// Aggregate upcoming-queue browsing reaching a just-submitted story
  /// (sessions/day), decaying exponentially with queue age.
  double upcoming_browse_rate = 500.0;
  Minutes upcoming_visibility_decay = 60.0;
  /// Age-independent browsing (deep-queue readers, search, external links).
  double upcoming_background_rate = 45.0;
  /// Digg probability of an upcoming-queue browser:
  ///   p = floor + slope * general.
  double upcoming_digg_floor = 0.05;
  double upcoming_digg_slope = 0.60;

  /// Aggregate front-page traffic at the moment of promotion (sessions/day),
  /// halving every novelty_half_life minutes (Wu–Huberman).
  double front_page_browse_rate = 2200.0;
  Minutes novelty_half_life = platform::kMinutesPerDay;
  /// Digg probability of a front-page browser: p = floor + slope * general.
  double front_page_digg_floor = 0.02;
  double front_page_digg_slope = 0.55;

  /// Per-user discovery weights are ω_u · channel weight, capped here
  /// (votes/day) so one hyperactive account cannot absorb an unbounded
  /// share of the discovery traffic (Fig. 2b's per-user tail).
  double discovery_activity_cap = 25.0;

  /// Simulation step and horizon.
  Minutes step = 1.0;
  Minutes horizon = 4.0 * platform::kMinutesPerDay;
};

/// Drives stories through the rate-based stochastic model.
class StochasticSimulator final : public Simulator {
 public:
  StochasticSimulator(platform::Platform& platform,
                      StochasticModelParams params, stats::Rng rng);

  StoryRun run_story(StoryId id, const StoryTraits& traits) override;

 private:
  platform::Platform* platform_;
  StochasticModelParams params_;
  stats::Rng rng_;  // base stream; per-story draws come from rng_.split(id)
  stats::DiscreteSampler front_sampler_;     // ω_u · w_front, capped
  stats::DiscreteSampler upcoming_sampler_;  // ω_u · w_upcoming, capped

  bool pick_browser(const stats::DiscreteSampler& sampler,
                    const platform::VisibilitySet& vis, stats::Rng& rng,
                    UserId& out_voter);
};

/// The stochastic model as a registered dynamics::Model (id "stochastic").
class StochasticModel final : public Model {
 public:
  StochasticModel() = default;
  explicit StochasticModel(StochasticModelParams params) : params_(params) {}

  [[nodiscard]] std::string id() const override { return kStochasticModelId; }
  [[nodiscard]] std::vector<ModelParam> params() const override;
  bool set_param(std::string_view name, double value) override;
  [[nodiscard]] std::unique_ptr<Model> clone() const override {
    return std::make_unique<StochasticModel>(params_);
  }
  [[nodiscard]] std::unique_ptr<Simulator> make_simulator(
      platform::Platform& platform, stats::Rng rng) const override {
    return std::make_unique<StochasticSimulator>(platform, params_,
                                                 std::move(rng));
  }

  [[nodiscard]] const StochasticModelParams& model_params() const noexcept {
    return params_;
  }

 private:
  StochasticModelParams params_;
};

}  // namespace digg::dynamics
