#include "src/dynamics/site_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/parallel.h"

namespace digg::dynamics {

SiteSimulator::SiteSimulator(platform::Platform& platform, SiteParams params,
                             TraitsSampler traits, stats::Rng rng)
    : platform_(&platform),
      params_(std::move(params)),
      traits_sampler_(std::move(traits)),
      rng_(std::move(rng)) {
  if (!traits_sampler_)
    throw std::invalid_argument("SiteSimulator: null traits sampler");
  if (params_.step <= 0.0 || params_.duration < params_.step)
    throw std::invalid_argument("SiteSimulator: bad step/duration");
}

bool SiteSimulator::pick_discovery_voter(const platform::VisibilitySet& vis,
                                         UserId& out_voter) {
  const auto n = static_cast<std::int64_t>(platform_->users().size());
  for (int attempt = 0; attempt < 32; ++attempt) {
    // Activity-skewed mixture: half head-biased, half uniform (cheap
    // approximation of the per-user weighting; the site simulator trades a
    // little fidelity for running every story at once).
    std::int64_t candidate;
    if (rng_.bernoulli(0.5)) {
      const double u = rng_.uniform();
      candidate = std::min<std::int64_t>(
          static_cast<std::int64_t>(u * u * static_cast<double>(n)), n - 1);
    } else {
      candidate = rng_.uniform_int(0, n - 1);
    }
    const auto user = static_cast<UserId>(candidate);
    if (!vis.has_voted(user) && !vis.can_see(user)) {
      out_voter = user;
      return true;
    }
  }
  return false;
}

void SiteSimulator::ingest_watchers(platform::StoryId id) {
  StoryState& state = states_[id];
  const auto& log = platform_->visibility(id).exposure_log();
  const auto& users = platform_->users();
  for (; state.pool_cursor < log.size(); ++state.pool_cursor) {
    const UserId watcher = log[state.pool_cursor];
    const double engaged =
        params_.fan_engagement_scale *
        (watcher < users.size() ? users[watcher].activity_rate : 1.0);
    if (rng_.bernoulli(std::min(1.0, engaged)))
      state.pending.push_back(watcher);
  }
}

void SiteSimulator::fan_step(platform::StoryId id, Minutes now,
                             double dt_days) {
  StoryState& state = states_[id];
  ingest_watchers(id);
  if (state.pending.empty()) return;
  const platform::Story& story = platform_->story(id);
  const bool promoted = story.phase == platform::StoryPhase::kFrontPage;
  const double community_scale =
      promoted ? params_.fan_digg_community_scale *
                     params_.post_promotion_community_factor
               : params_.fan_digg_community_scale;
  const double digg_p = std::min(
      1.0, params_.fan_digg_floor + community_scale * state.traits.community +
               params_.fan_digg_general_scale * state.traits.general);
  const double consider_mean = static_cast<double>(state.pending.size()) *
                               params_.fan_consider_rate * dt_days;
  const std::int64_t considering = std::min<std::int64_t>(
      rng_.poisson(consider_mean),
      static_cast<std::int64_t>(state.pending.size()));
  for (std::int64_t k = 0; k < considering; ++k) {
    const auto idx = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(state.pending.size()) - 1));
    const UserId candidate = state.pending[idx];
    state.pending[idx] = state.pending.back();
    state.pending.pop_back();
    if (platform_->visibility(id).has_voted(candidate)) continue;
    if (rng_.bernoulli(digg_p)) platform_->vote(id, candidate, now);
  }
}

SiteResult SiteSimulator::run() {
  SiteResult result;
  const double dt_days = params_.step / platform::kMinutesPerDay;
  const double submissions_per_step =
      params_.submissions_per_day * dt_days;

  // Submitter weights: heavier users submit more (rates from profiles; a
  // profile with zero rate never submits unless all rates are zero).
  const auto& users = platform_->users();
  std::vector<double> weights;
  weights.reserve(users.size());
  double weight_sum = 0.0;
  for (const platform::UserProfile& u : users) {
    weights.push_back(u.submission_rate);
    weight_sum += u.submission_rate;
  }
  if (weight_sum <= 0.0) std::fill(weights.begin(), weights.end(), 1.0);
  const stats::DiscreteSampler submitter_sampler(weights);

  for (Minutes now = params_.step; now <= params_.duration;
       now += params_.step) {
    platform_->expire_stale(now);

    // --- submissions -------------------------------------------------
    const std::int64_t arriving = rng_.poisson(submissions_per_step);
    for (std::int64_t k = 0; k < arriving; ++k) {
      const auto submitter =
          static_cast<UserId>(submitter_sampler.sample(rng_));
      const StoryTraits traits = traits_sampler_(submitter, rng_);
      const platform::StoryId id =
          platform_->submit(submitter, traits.general, now);
      StoryState state;
      state.traits = traits;
      states_.push_back(std::move(state));
      result.traits.push_back(traits);
      ++result.submissions;
      (void)id;
    }

    // --- upcoming queue discovery ------------------------------------
    // First-pages impressions go to the newest stories in the queue.
    const auto first_pages = platform_->upcoming().first_pages(
        platform_->queue_params().browsed_pages);
    if (!first_pages.empty()) {
      const double per_story_impressions =
          params_.upcoming_impressions_per_day * dt_days /
          static_cast<double>(first_pages.size());
      for (platform::StoryId id : first_pages) {
        const StoryState& state = states_[id];
        const double mean = per_story_impressions *
                            params_.impression_digg_prob *
                            state.traits.general;
        const std::int64_t votes = rng_.poisson(mean);
        for (std::int64_t k = 0; k < votes; ++k) {
          UserId voter;
          if (!pick_discovery_voter(platform_->visibility(id), voter)) break;
          if (platform_->story(id).phase == platform::StoryPhase::kExpired)
            break;
          platform_->vote(id, voter, now);
        }
      }
    }
    // Background discovery for every live upcoming story.
    for (platform::StoryId id : platform_->upcoming().items()) {
      const StoryState& state = states_[id];
      const double mean =
          params_.upcoming_background_rate * state.traits.general * dt_days;
      const std::int64_t votes = rng_.poisson(mean);
      for (std::int64_t k = 0; k < votes; ++k) {
        UserId voter;
        if (!pick_discovery_voter(platform_->visibility(id), voter)) break;
        if (platform_->story(id).phase != platform::StoryPhase::kUpcoming)
          break;
        platform_->vote(id, voter, now);
      }
    }

    // --- front page: shared attention budget -------------------------
    // Each promoted story's share of impressions is proportional to its
    // novelty-decayed weight; a fresh promotion crowds out older stories.
    std::vector<platform::StoryId> front;
    std::vector<double> share;
    double share_sum = 0.0;
    for (platform::StoryId id : platform_->front_page().items()) {
      const platform::Story& s = platform_->story(id);
      const double age = now - *s.promoted_at;
      const double novelty = std::pow(0.5, age / params_.novelty_half_life);
      if (novelty < 1e-3) continue;  // aged out of the attention pool
      // Readers' digging keeps appealing stories visible longer (feeds sort
      // by engagement), so the share couples novelty with revealed appeal.
      const double w = novelty * (0.25 + 0.75 * states_[id].traits.general);
      front.push_back(id);
      share.push_back(w);
      share_sum += w;
    }
    if (share_sum > 0.0) {
      const double impressions =
          params_.front_page_impressions_per_day * dt_days;
      for (std::size_t i = 0; i < front.size(); ++i) {
        const platform::StoryId id = front[i];
        const double mean = impressions * share[i] / share_sum *
                            params_.impression_digg_prob *
                            states_[id].traits.general;
        const std::int64_t votes = rng_.poisson(mean);
        for (std::int64_t k = 0; k < votes; ++k) {
          UserId voter;
          if (!pick_discovery_voter(platform_->visibility(id), voter)) break;
          platform_->vote(id, voter, now);
        }
      }
    }

    // --- fan channel for every live story -----------------------------
    for (platform::StoryId id = 0; id < platform_->story_count(); ++id) {
      if (states_[id].closed) continue;
      const platform::Story& s = platform_->story(id);
      if (s.phase == platform::StoryPhase::kExpired) {
        states_[id].closed = true;
        continue;
      }
      if (s.phase == platform::StoryPhase::kFrontPage &&
          now - *s.promoted_at > 6.0 * params_.novelty_half_life) {
        states_[id].closed = true;  // saturated; stop spending time on it
        continue;
      }
      fan_step(id, now, dt_days);
    }
  }

  for (platform::StoryId id = 0; id < platform_->story_count(); ++id) {
    result.total_votes += platform_->story(id).vote_count();
    if (platform_->story(id).promoted()) ++result.promotions;
  }
  static obs::Counter& votes =
      obs::Registry::global().counter("dynamics.site_votes");
  static obs::Counter& submissions =
      obs::Registry::global().counter("dynamics.site_submissions");
  static obs::Counter& promotions =
      obs::Registry::global().counter("dynamics.site_promotions");
  votes.inc(result.total_votes);
  submissions.inc(result.submissions);
  promotions.inc(result.promotions);
  return result;
}

std::vector<SiteReplicate> run_site_replicates(
    const PlatformFactory& make_platform, const SiteParams& params,
    const TraitsSampler& traits, const stats::Rng& base_rng,
    std::size_t replicates) {
  if (!make_platform)
    throw std::invalid_argument("run_site_replicates: null platform factory");
  static obs::Counter& replicate_count =
      obs::Registry::global().counter("dynamics.site_replicates");
  return runtime::parallel_map<SiteReplicate>(
      replicates, [&](std::size_t i) {
        obs::Span span("site_replicate", "dynamics");
        replicate_count.inc();
        SiteReplicate rep;
        rep.platform = make_platform();
        if (!rep.platform)
          throw std::invalid_argument(
              "run_site_replicates: factory returned null");
        SiteSimulator sim(*rep.platform, params, traits, base_rng.split(i));
        rep.result = sim.run();
        return rep;
      });
}

}  // namespace digg::dynamics
