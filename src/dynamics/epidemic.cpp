#include "src/dynamics/epidemic.h"

#include <algorithm>
#include <stdexcept>

namespace digg::dynamics {

namespace {

enum class State : std::uint8_t { kSusceptible, kInfected, kRecovered };

std::vector<State> seed_infection(std::size_t n, std::size_t initial,
                                  stats::Rng& rng) {
  std::vector<State> state(n, State::kSusceptible);
  const std::size_t seeds = std::min(initial, n);
  std::size_t placed = 0;
  while (placed < seeds) {
    const auto u = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (state[u] != State::kInfected) {
      state[u] = State::kInfected;
      ++placed;
    }
  }
  return state;
}

template <typename OnRecover>
EpidemicResult run_epidemic(const graph::Digraph& g,
                            const EpidemicParams& params, stats::Rng& rng,
                            OnRecover&& recovered_state) {
  if (g.node_count() == 0)
    throw std::invalid_argument("epidemic: empty graph");
  if (params.infection_rate < 0.0 || params.infection_rate > 1.0 ||
      params.recovery_rate < 0.0 || params.recovery_rate > 1.0)
    throw std::invalid_argument("epidemic: bad rates");

  std::vector<State> state =
      seed_infection(g.node_count(), params.initial_infected, rng);
  EpidemicResult result;
  auto count_infected = [&] {
    return static_cast<std::size_t>(
        std::count(state.begin(), state.end(), State::kInfected));
  };
  result.infected_over_time.push_back(count_infected());

  std::vector<State> next = state;
  std::vector<bool> ever_infected(g.node_count(), false);
  for (std::size_t u = 0; u < g.node_count(); ++u)
    if (state[u] == State::kInfected) ever_infected[u] = true;

  for (std::size_t step = 0; step < params.max_steps; ++step) {
    next = state;
    for (graph::NodeId u = 0; u < g.node_count(); ++u) {
      if (state[u] != State::kInfected) continue;
      auto try_infect = [&](graph::NodeId v) {
        if (state[v] == State::kSusceptible &&
            next[v] == State::kSusceptible &&
            rng.bernoulli(params.infection_rate)) {
          next[v] = State::kInfected;
          ever_infected[v] = true;
        }
      };
      for (graph::NodeId v : g.friends(u)) try_infect(v);
      for (graph::NodeId v : g.fans(u)) try_infect(v);
      if (rng.bernoulli(params.recovery_rate)) next[u] = recovered_state();
    }
    state.swap(next);
    result.infected_over_time.push_back(count_infected());
    if (result.infected_over_time.back() == 0) break;
  }

  // Final metric: endemic prevalence (SIS) or attack rate (SIR). The caller
  // distinguishes via recovered_state; we compute both consistently.
  const bool is_sir = recovered_state() == State::kRecovered;
  const double n = static_cast<double>(g.node_count());
  if (is_sir) {
    const auto attacked = static_cast<double>(
        std::count(ever_infected.begin(), ever_infected.end(), true));
    result.final_metric = attacked / n;
  } else {
    const std::size_t steps = result.infected_over_time.size();
    const std::size_t tail_start = steps - std::max<std::size_t>(1, steps / 4);
    double acc = 0.0;
    for (std::size_t i = tail_start; i < steps; ++i)
      acc += static_cast<double>(result.infected_over_time[i]);
    result.final_metric = acc / static_cast<double>(steps - tail_start) / n;
  }
  return result;
}

}  // namespace

EpidemicResult sis_epidemic(const graph::Digraph& g,
                            const EpidemicParams& params, stats::Rng& rng) {
  return run_epidemic(g, params, rng, [] { return State::kSusceptible; });
}

EpidemicResult sir_epidemic(const graph::Digraph& g,
                            const EpidemicParams& params, stats::Rng& rng) {
  return run_epidemic(g, params, rng, [] { return State::kRecovered; });
}

double sis_threshold_estimate(const graph::Digraph& g) {
  if (g.node_count() == 0)
    throw std::invalid_argument("sis_threshold_estimate: empty graph");
  double k_sum = 0.0;
  double k2_sum = 0.0;
  for (graph::NodeId u = 0; u < g.node_count(); ++u) {
    const auto k =
        static_cast<double>(g.friend_count(u) + g.fan_count(u));
    k_sum += k;
    k2_sum += k * k;
  }
  if (k2_sum == 0.0) return 0.0;
  return k_sum / k2_sum;
}

std::vector<std::pair<double, double>> prevalence_sweep(
    const graph::Digraph& g, const std::vector<double>& lambdas,
    double recovery_rate, std::size_t trials, std::size_t max_steps,
    stats::Rng& rng) {
  if (trials == 0) throw std::invalid_argument("prevalence_sweep: 0 trials");
  std::vector<std::pair<double, double>> out;
  out.reserve(lambdas.size());
  for (double lambda : lambdas) {
    EpidemicParams params;
    params.recovery_rate = recovery_rate;
    params.infection_rate = std::min(1.0, lambda * recovery_rate);
    params.max_steps = max_steps;
    double acc = 0.0;
    for (std::size_t t = 0; t < trials; ++t)
      acc += sis_epidemic(g, params, rng).final_metric;
    out.emplace_back(lambda, acc / static_cast<double>(trials));
  }
  return out;
}

}  // namespace digg::dynamics
