#pragma once
// SIS/SIR epidemic models on networks, for the §6 future-work experiment:
// Pastor-Satorras & Vespignani showed that scale-free degree distributions
// drive the SIS epidemic threshold to zero (λ_c = <k>/<k²> under the
// degree-based mean-field), unlike Erdős–Rényi graphs whose threshold stays
// finite. We verify this contrast on our generated networks.

#include <cstddef>
#include <vector>

#include "src/graph/digraph.h"
#include "src/stats/rng.h"

namespace digg::dynamics {

struct EpidemicParams {
  double infection_rate = 0.1;  // per-contact per-step infection probability
  double recovery_rate = 0.2;   // per-step recovery probability
  std::size_t max_steps = 500;
  std::size_t initial_infected = 5;
};

struct EpidemicResult {
  /// Infected count per step (step 0 = initial seeding).
  std::vector<std::size_t> infected_over_time;
  /// SIS: average infected fraction over the last quarter of the run
  /// (endemic prevalence). SIR: final attack rate (ever-infected fraction).
  double final_metric = 0.0;
};

/// Discrete-time SIS along the undirected projection: infected nodes infect
/// each neighbor w.p. infection_rate per step and recover w.p. recovery_rate.
[[nodiscard]] EpidemicResult sis_epidemic(const graph::Digraph& g,
                                          const EpidemicParams& params,
                                          stats::Rng& rng);

/// Discrete-time SIR (recovered nodes become immune).
[[nodiscard]] EpidemicResult sir_epidemic(const graph::Digraph& g,
                                          const EpidemicParams& params,
                                          stats::Rng& rng);

/// Degree-based mean-field SIS threshold estimate: λ_c = <k> / <k²> over the
/// undirected projection. Effective spreading rate is infection/recovery.
[[nodiscard]] double sis_threshold_estimate(const graph::Digraph& g);

/// Sweep of endemic prevalence vs effective spreading rate λ =
/// infection/recovery, holding recovery fixed. Returns (λ, prevalence)
/// pairs averaged over `trials` runs each.
[[nodiscard]] std::vector<std::pair<double, double>> prevalence_sweep(
    const graph::Digraph& g, const std::vector<double>& lambdas,
    double recovery_rate, std::size_t trials, std::size_t max_steps,
    stats::Rng& rng);

}  // namespace digg::dynamics
