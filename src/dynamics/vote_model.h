#pragma once
// The two-mechanism vote model of §5.1, made generative — the first
// registered dynamics::Model (id "two-mechanism", model.h).
//
// The paper argues interest in a story spreads by two mechanisms:
//   1. interest-based — users unconnected to prior voters discover the story
//      independently (upcoming queue while unpromoted, front page after
//      promotion) and digg it with probability governed by its *general
//      appeal*;
//   2. network-based — fans of prior voters see the story in the Friends
//      interface ("social browsing") and digg it with probability governed
//      by its *community appeal*.
//
// A story interesting to a narrow community (high community appeal, low
// general appeal) spreads within that community only; a broadly interesting
// story spreads from many independent seeds. Running this model on a
// realistic fan network reproduces Figs. 1, 3 and 4 and gives the training
// signal for the §5.2 predictor.
//
// The simulation advances in fixed steps (default: one minute, matching the
// time resolution of Fig. 1); per-channel vote counts per step are Poisson.
// Each story draws from the simulator's rng.split(story_id) substream (the
// Model RNG contract), so a story's votes do not depend on which other
// stories ran before it.

#include <cstdint>
#include <functional>
#include <vector>

#include "src/digg/platform.h"
#include "src/digg/types.h"
#include "src/dynamics/model.h"
#include "src/stats/rng.h"
#include "src/stats/timeseries.h"

namespace digg::dynamics {

struct VoteModelParams {
  /// The fan channel is a one-shot exposure process: when a user becomes a
  /// watcher (a fan of a prior voter), they will *consider* the story at
  /// most once — the Friends interface only surfaces recent activity (§3's
  /// 48-hour window), so a fan either acts on a story when they encounter
  /// it or never does. `fan_consider_rate` is the per-day rate at which a
  /// pending watcher gets around to that encounter.
  double fan_consider_rate = 1.2;
  /// Not every fan is an active Friends-interface user: a newly exposed
  /// watcher is *engaged* (will ever consider the story) with probability
  /// min(1, fan_engagement_scale * activity_rate). A mega-hub's audience is
  /// mostly casual accounts, so its effective wave is a fraction of its fan
  /// count — without this, a 15k-fan submitter trivially promotes anything.
  double fan_engagement_scale = 0.5;
  /// Digg probability at consideration:
  ///   p = floor + community_scale * community + general_scale * general,
  /// capped at 1. A broadly interesting story also appeals to fans
  /// (general_scale), while the community term is what lets narrowly
  /// interesting stories ride the network (§5.1). Keep mean_fans * p < 1
  /// for random users or the cascade becomes supercritical globally.
  double fan_digg_floor = 0.01;
  double fan_digg_community_scale = 0.08;
  double fan_digg_general_scale = 0.04;
  /// Community pull after promotion: once a story is on the front page the
  /// Friends-interface referral stops being the scarce discovery channel,
  /// and fans judge the story more like the general audience does. The
  /// community term is multiplied by this factor post-promotion; keeping it
  /// small is what makes narrowly-appealing stories *saturate* at low vote
  /// counts (§5.1: they spread "within that community only").
  double post_promotion_community_factor = 0.25;

  /// Expected out-of-network discoveries per day for a story at the top of
  /// the upcoming queue with general appeal 1. Decays with queue age as
  /// newer submissions push the story off the first pages.
  double upcoming_discovery_rate = 300.0;
  /// Minutes for a story to fall off the browsed pages of the upcoming
  /// queue (1-2 submissions/minute, 15/page, ~3 pages browsed => ~45 min).
  Minutes upcoming_visibility_decay = 45.0;
  /// Age-independent out-of-network discovery rate while upcoming (votes/day
  /// at general appeal 1): deep-queue browsers, search, and "Digg it"
  /// buttons on external sites (§4). This channel is what lets broadly
  /// interesting stories from poorly connected submitters reach promotion.
  double upcoming_background_rate = 25.0;
  /// Queue browsers digg mediocre fresh stories too: the upcoming channels
  /// use effective appeal = floor + (1-floor) * general. This floor controls
  /// how many of a dull story's early votes are out-of-network (Fig. 3b:
  /// only ~30% of front-page stories had half their first 10 in-network).
  double upcoming_quality_floor = 0.0;
  /// Out-of-network voters are drawn proportionally to their activity rate,
  /// capped here (votes/day) so the single busiest user cannot absorb an
  /// unbounded share — Fig. 2b's per-user vote counts top out at a few
  /// hundred over the observation window.
  double discovery_activity_cap = 25.0;

  /// Front-page votes/day for a story of general appeal 1 at the moment of
  /// promotion; decays with the Wu–Huberman novelty half-life (~1 day).
  /// Fan-channel amplification roughly doubles the discovery total.
  double front_page_rate = 1300.0;
  Minutes novelty_half_life = platform::kMinutesPerDay;

  /// Simulation step and horizon. 4 days saturates vote counts (Fig. 1).
  Minutes step = 1.0;
  Minutes horizon = 4.0 * platform::kMinutesPerDay;
};

/// Drives the platform's stories through the two-mechanism vote model.
class VoteSimulator final : public Simulator {
 public:
  VoteSimulator(platform::Platform& platform, VoteModelParams params,
                stats::Rng rng);

  StoryRun run_story(StoryId id, const StoryTraits& traits) override;

  [[nodiscard]] const VoteModelParams& params() const noexcept {
    return params_;
  }

 private:
  platform::Platform* platform_;
  VoteModelParams params_;
  stats::Rng rng_;  // base stream; per-story draws come from rng_.split(id)
  stats::DiscreteSampler discovery_sampler_;  // activity-weighted, capped

  /// Picks an out-of-network voter: an activity-weighted random user who has
  /// neither voted nor watches the story. Returns false if none found.
  bool pick_discovery_voter(const platform::VisibilitySet& vis,
                            stats::Rng& rng, UserId& out_voter);
};

/// The two-mechanism model as a registered dynamics::Model (id
/// "two-mechanism") — a configured VoteModelParams with value semantics.
class VoteModel final : public Model {
 public:
  VoteModel() = default;
  explicit VoteModel(VoteModelParams params) : params_(params) {}

  [[nodiscard]] std::string id() const override { return kLegacyModelId; }
  [[nodiscard]] std::vector<ModelParam> params() const override;
  bool set_param(std::string_view name, double value) override;
  [[nodiscard]] std::unique_ptr<Model> clone() const override {
    return std::make_unique<VoteModel>(params_);
  }
  [[nodiscard]] std::unique_ptr<Simulator> make_simulator(
      platform::Platform& platform, stats::Rng rng) const override {
    return std::make_unique<VoteSimulator>(platform, params_, std::move(rng));
  }

  [[nodiscard]] const VoteModelParams& model_params() const noexcept {
    return params_;
  }

 private:
  VoteModelParams params_;
};

/// Convenience: submit + simulate a batch of stories with the given traits,
/// spacing submissions `spacing_minutes` apart. The votes land on the
/// platform either way; the returned runs add the per-channel breakdown.
/// Works with any Simulator (any registered model).
struct BatchResult {
  std::vector<StoryId> ids;
  std::vector<StoryRun> runs;
};
BatchResult simulate_batch(
    platform::Platform& platform, Simulator& sim,
    const std::vector<std::pair<UserId, StoryTraits>>& submissions,
    Minutes spacing_minutes);

/// Streaming counterpart of simulate_batch: submits and runs the same
/// stories in the same order, but hands each finished run to `on_story`
/// instead of accumulating a BatchResult — O(1) driver memory instead of
/// O(stories) time series. Per-story draws come from split(story_id)
/// substreams (the Model RNG contract), so both drivers produce
/// bit-identical platforms for the same inputs.
/// `on_story` may persist and then drop the story's vote columns
/// (Platform::release_votes); the simulator never revisits a finished story.
void simulate_each(
    platform::Platform& platform, Simulator& sim,
    const std::vector<std::pair<UserId, StoryTraits>>& submissions,
    Minutes spacing_minutes,
    const std::function<void(StoryId, StoryRun&&)>& on_story);

}  // namespace digg::dynamics
