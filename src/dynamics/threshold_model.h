#pragma once
// Linear threshold cascades (Granovetter; Watts 2002): a user adopts once
// the fraction of their *friends* (the users they watch) who have adopted
// reaches a personal threshold. Complements the independent-cascade model:
// thresholds capture peer-pressure saturation, cascades capture one-shot
// exposure. §6's future work asks how structure shapes both.

#include <cstddef>
#include <vector>

#include "src/graph/digraph.h"
#include "src/stats/rng.h"

namespace digg::dynamics {

struct ThresholdParams {
  /// Per-node adoption thresholds are drawn uniformly from
  /// [threshold_lo, threshold_hi] (fractions of watched neighbors).
  double threshold_lo = 0.1;
  double threshold_hi = 0.3;
  std::size_t max_rounds = 200;
};

struct ThresholdResult {
  std::size_t total_adopted = 0;
  std::vector<std::size_t> per_round;  // round 0 = seeds
  std::vector<bool> adopted;
};

/// Synchronous-update linear threshold spread from the given seeds. A node
/// with no outgoing follows (nobody to watch) never adopts unless seeded.
[[nodiscard]] ThresholdResult linear_threshold(
    const graph::Digraph& g, const std::vector<graph::NodeId>& seeds,
    const ThresholdParams& params, stats::Rng& rng);

/// Watts-style cascade-window sweep: mean adoption fraction from a single
/// random seed, as a function of the (uniform) threshold value. Returns
/// (threshold, mean adoption fraction) pairs.
[[nodiscard]] std::vector<std::pair<double, double>> cascade_window_sweep(
    const graph::Digraph& g, const std::vector<double>& thresholds,
    std::size_t trials, stats::Rng& rng, std::size_t max_rounds = 200);

}  // namespace digg::dynamics
