#include "src/runtime/parallel.h"

#include <algorithm>
#include <chrono>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace digg::runtime::detail {

std::size_t chunk_count_for(std::size_t n, std::size_t grain) noexcept {
  if (n == 0) return 0;
  if (grain == 0) {
    // Fixed automatic layout: enough chunks that the atomic cursor balances
    // uneven per-index costs, few enough that claiming stays cheap. Must
    // not depend on the thread count (determinism contract).
    constexpr std::size_t kAutoChunks = 256;
    return std::min(n, kAutoChunks);
  }
  return (n + grain - 1) / grain;
}

std::pair<std::size_t, std::size_t> chunk_bounds(std::size_t n,
                                                 std::size_t chunk_count,
                                                 std::size_t chunk) noexcept {
  const std::size_t base = n / chunk_count;
  const std::size_t rem = n % chunk_count;
  const std::size_t begin = chunk * base + std::min(chunk, rem);
  return {begin, begin + base + (chunk < rem ? 1 : 0)};
}

void run_chunks(std::size_t chunk_count,
                const std::function<void(std::size_t)>& chunk_fn,
                unsigned threads) {
  if (chunk_count == 0) return;
  // Observability only — never read back into computation.
  static obs::Histogram& chunks_per_job = obs::Registry::global().histogram(
      "runtime.chunks_per_job",
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  chunks_per_job.observe(static_cast<double>(chunk_count));
  if (threads == 0) threads = default_threads();
  if (threads <= 1 || chunk_count == 1 || in_parallel_region()) {
    static obs::Counter& chunks_done =
        obs::Registry::global().counter("runtime.chunks");
    static obs::Histogram& chunk_us =
        obs::Registry::global().histogram("runtime.chunk_us");
    // Inline execution: chunks run in ascending order, so the first throw
    // is from the lowest failing chunk — same exception the pool reports.
    for (std::size_t c = 0; c < chunk_count; ++c) {
      const auto chunk_start = std::chrono::steady_clock::now();
      {
        obs::Span span("chunk", "runtime");
        chunk_fn(c);
      }
      chunk_us.observe(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - chunk_start)
                           .count());
      chunks_done.inc();
    }
    return;
  }
  ThreadPool::global()->run(chunk_count, chunk_fn, threads);
}

}  // namespace digg::runtime::detail
