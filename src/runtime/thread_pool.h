#pragma once
// Fixed-size thread pool and thread-count configuration for the parallel
// runtime. The pool executes one "job" at a time: a counted set of chunks
// claimed by workers (plus the calling thread) through an atomic cursor.
// Which thread runs which chunk is scheduling-dependent, but the parallel
// helpers in parallel.h map chunks to output slots by index, so results are
// identical for any thread count — see parallel.h for the determinism
// contract.
//
// Thread count resolution (always >= 1):
//   1. set_default_threads(n) with n > 0 — programmatic override;
//   2. the DIGG_THREADS environment variable;
//   3. std::thread::hardware_concurrency().

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace digg::obs {
class WatchdogTask;
}

namespace digg::runtime {

/// Number of hardware threads, never 0.
[[nodiscard]] unsigned hardware_threads() noexcept;

/// Thread count used when ParallelOptions::threads == 0. See resolution
/// order above.
[[nodiscard]] unsigned default_threads();

/// Overrides the default thread count for subsequent parallel calls.
/// Pass 0 to restore DIGG_THREADS / hardware resolution. Benchmarks use
/// this to pin the thread count per measurement.
void set_default_threads(unsigned threads);

/// True while the calling thread is executing a chunk of a parallel region.
/// Nested parallel calls detect this and run inline (serially) instead of
/// re-entering the pool, which keeps nesting deadlock-free.
[[nodiscard]] bool in_parallel_region() noexcept;

/// Fixed-size pool of `threads - 1` workers; the thread that calls run()
/// participates as the remaining lane.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (threads is clamped to >= 1).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned thread_count() const noexcept {
    return thread_count_;
  }

  /// Executes task(chunk) for every chunk in [0, chunk_count), distributing
  /// chunks over at most `max_threads` lanes (0 = all of them). Blocks until
  /// every chunk has completed. If chunks throw, the exception from the
  /// lowest-numbered throwing chunk is rethrown; the other chunks still run
  /// to completion. Concurrent calls from different threads serialize.
  void run(std::size_t chunk_count,
           const std::function<void(std::size_t)>& task,
           unsigned max_threads = 0);

  /// Process-global pool sized to default_threads(). The pool is recreated
  /// when the configured thread count changes; callers hold a shared_ptr so
  /// an in-flight job keeps its pool alive across a resize.
  [[nodiscard]] static std::shared_ptr<ThreadPool> global();

 private:
  struct Job {
    std::size_t chunk_count = 0;
    const std::function<void(std::size_t)>* task = nullptr;
    obs::WatchdogTask* watchdog = nullptr;  // owned by run(); beaten per chunk
    std::atomic<std::size_t> next{0};
    // Guarded by ThreadPool::mutex_:
    std::size_t finished = 0;
    std::size_t workers_inside = 0;
    std::size_t error_chunk = static_cast<std::size_t>(-1);
    std::exception_ptr error;
    unsigned extra_lanes = 0;  // workers allowed in (caller is lane 0)
  };

  void worker_loop();
  void work_on(Job& job);

  unsigned thread_count_;
  std::mutex mutex_;
  std::condition_variable wake_;  // workers: a job was posted / stopping
  std::condition_variable done_;  // run(): chunks finished, workers drained
  std::mutex run_mutex_;          // serializes run() callers
  Job* job_ = nullptr;            // guarded by mutex_
  std::uint64_t generation_ = 0;  // guarded by mutex_; bumped per job
  bool stop_ = false;             // guarded by mutex_
  std::vector<std::thread> workers_;
};

}  // namespace digg::runtime
