#pragma once
// Deterministic parallel loops over an index space [0, n).
//
// Determinism contract: every helper produces results that are bit-identical
// for any thread count (1 thread vs N threads, any scheduling order):
//   - parallel_for / parallel_map assign work to output slots by index, so
//     scheduling cannot reorder results;
//   - parallel_reduce / parallel_reduce_ranges split [0, n) into a chunk
//     layout that depends only on n and the grain — never on the thread
//     count — compute one partial per chunk, and combine the partials in
//     ascending chunk order on the calling thread. Floating-point reductions
//     therefore combine in one fixed order regardless of how chunks were
//     scheduled.
//
// Stochastic loop bodies keep the contract by drawing from an
// index-addressed substream (stats::Rng::split(i)) instead of a shared
// engine.
//
// Requirements on loop bodies: they are invoked concurrently on distinct
// indices and must not share mutable state (other than through their own
// synchronization). Exceptions propagate: the exception thrown by the
// lowest-numbered failing chunk is rethrown on the calling thread.
//
// Nested parallel calls (a body that itself calls parallel_*) execute
// inline on the calling worker — correct, just not further parallelized.

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "src/runtime/thread_pool.h"

namespace digg::runtime {

struct ParallelOptions {
  /// Lane cap for this call; 0 = default_threads(). Values above
  /// default_threads() are clamped — the pool is sized by the default, so
  /// use set_default_threads (or DIGG_THREADS) to raise the ceiling.
  unsigned threads = 0;
  /// Indices per chunk; 0 = automatic (a fixed layout derived from n only,
  /// currently min(n, 256) chunks). Reductions over large per-chunk partials
  /// (e.g. whole vectors) should pass an explicit grain to bound the number
  /// of partials held alive.
  std::size_t grain = 0;
};

namespace detail {

/// Number of chunks for n indices — a function of n and grain only, never
/// of the thread count (this is what makes reductions thread-count
/// invariant).
[[nodiscard]] std::size_t chunk_count_for(std::size_t n,
                                          std::size_t grain) noexcept;

/// Half-open index range [begin, end) of `chunk` within the fixed layout.
[[nodiscard]] std::pair<std::size_t, std::size_t> chunk_bounds(
    std::size_t n, std::size_t chunk_count, std::size_t chunk) noexcept;

/// Runs chunk_fn(c) for c in [0, chunk_count) on the global pool (or inline
/// when threads <= 1, there is a single chunk, or the caller is already
/// inside a parallel region).
void run_chunks(std::size_t chunk_count,
                const std::function<void(std::size_t)>& chunk_fn,
                unsigned threads);

}  // namespace detail

/// Invokes fn(begin, end) once per chunk, over disjoint ranges covering
/// [0, n). Use when the body wants chunk-local scratch space.
template <typename RangeFn>
void parallel_for_ranges(std::size_t n, RangeFn&& fn,
                         ParallelOptions opts = {}) {
  const std::size_t chunks = detail::chunk_count_for(n, opts.grain);
  detail::run_chunks(
      chunks,
      [&](std::size_t c) {
        const auto [begin, end] = detail::chunk_bounds(n, chunks, c);
        fn(begin, end);
      },
      opts.threads);
}

/// Invokes fn(i) for every i in [0, n).
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, ParallelOptions opts = {}) {
  parallel_for_ranges(
      n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      },
      opts);
}

/// Returns {fn(0), fn(1), ..., fn(n-1)} — results land by index. T must be
/// default-constructible and move-assignable.
template <typename T, typename MapFn>
[[nodiscard]] std::vector<T> parallel_map(std::size_t n, MapFn&& fn,
                                          ParallelOptions opts = {}) {
  std::vector<T> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = fn(i); }, opts);
  return out;
}

/// Reduction over per-chunk partials: partial(c) = range_fn(begin, end) for
/// the chunk's range, then combine(acc, partial) folds the partials in
/// ascending chunk order. The chunk layout depends only on n and the grain,
/// so the combine order — and hence the result, bit for bit — is the same
/// for any thread count.
template <typename T, typename RangeFn, typename CombineFn>
[[nodiscard]] T parallel_reduce_ranges(std::size_t n, T identity,
                                       RangeFn&& range_fn,
                                       CombineFn&& combine,
                                       ParallelOptions opts = {}) {
  const std::size_t chunks = detail::chunk_count_for(n, opts.grain);
  if (chunks == 0) return identity;
  std::vector<T> partials(chunks, identity);
  detail::run_chunks(
      chunks,
      [&](std::size_t c) {
        const auto [begin, end] = detail::chunk_bounds(n, chunks, c);
        partials[c] = range_fn(begin, end);
      },
      opts.threads);
  T acc = std::move(identity);
  for (T& partial : partials) acc = combine(std::move(acc), std::move(partial));
  return acc;
}

/// Map-reduce: acc = combine(acc, map_fn(i)) within each chunk, partials
/// combined in ascending chunk order (same fixed-layout guarantee as
/// parallel_reduce_ranges).
template <typename T, typename MapFn, typename CombineFn>
[[nodiscard]] T parallel_reduce(std::size_t n, T identity, MapFn&& map_fn,
                                CombineFn&& combine,
                                ParallelOptions opts = {}) {
  return parallel_reduce_ranges(
      n, identity,
      [&](std::size_t begin, std::size_t end) {
        T acc = identity;
        for (std::size_t i = begin; i < end; ++i)
          acc = combine(std::move(acc), map_fn(i));
        return acc;
      },
      combine, opts);
}

}  // namespace digg::runtime
