#include "src/runtime/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "src/obs/metrics.h"
#include "src/obs/recorder.h"
#include "src/obs/trace.h"
#include "src/obs/watchdog.h"

namespace digg::runtime {

namespace {

thread_local bool tl_in_region = false;

std::atomic<unsigned> g_thread_override{0};

unsigned env_threads() {
  const char* env = std::getenv("DIGG_THREADS");
  if (!env || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || v <= 0) return 0;
  return static_cast<unsigned>(std::min<long>(v, 1024));
}

}  // namespace

unsigned hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

unsigned default_threads() {
  if (const unsigned o = g_thread_override.load(std::memory_order_relaxed))
    return o;
  if (const unsigned e = env_threads()) return e;
  return hardware_threads();
}

void set_default_threads(unsigned threads) {
  g_thread_override.store(threads, std::memory_order_relaxed);
}

bool in_parallel_region() noexcept { return tl_in_region; }

ThreadPool::ThreadPool(unsigned threads)
    : thread_count_(std::max(threads, 1u)) {
  workers_.reserve(thread_count_ - 1);
  for (unsigned i = 0; i + 1 < thread_count_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    Job* job = job_;
    if (!job || job->workers_inside >= job->extra_lanes) continue;
    ++job->workers_inside;
    lock.unlock();
    work_on(*job);
    lock.lock();
    if (--job->workers_inside == 0) done_.notify_all();
  }
}

void ThreadPool::work_on(Job& job) {
  // Observability only: counts and timings are recorded, never read back,
  // so results stay bit-identical with instrumentation on or off.
  static obs::Counter& chunks_done =
      obs::Registry::global().counter("runtime.chunks");
  static obs::Histogram& chunk_us =
      obs::Registry::global().histogram("runtime.chunk_us");
  tl_in_region = true;
  while (true) {
    const std::size_t chunk =
        job.next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.chunk_count) break;
    obs::record_event(obs::EventKind::kChunkScheduled, thread_count_, chunk,
                      job.chunk_count);
    if (job.watchdog != nullptr) job.watchdog->beat();
    std::exception_ptr error;
    const auto chunk_start = std::chrono::steady_clock::now();
    {
      obs::Span span("chunk", "runtime");
      try {
        (*job.task)(chunk);
      } catch (...) {
        error = std::current_exception();
      }
    }
    chunk_us.observe(std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - chunk_start)
                         .count());
    chunks_done.inc();
    std::lock_guard<std::mutex> lock(mutex_);
    if (error && chunk < job.error_chunk) {
      job.error_chunk = chunk;
      job.error = error;
    }
    if (++job.finished == job.chunk_count) done_.notify_all();
  }
  tl_in_region = false;
}

void ThreadPool::run(std::size_t chunk_count,
                     const std::function<void(std::size_t)>& task,
                     unsigned max_threads) {
  if (chunk_count == 0) return;
  static obs::Counter& jobs = obs::Registry::global().counter("runtime.jobs");
  static obs::Histogram& queue_wait_us =
      obs::Registry::global().histogram("runtime.queue_wait_us");
  static obs::Gauge& utilization =
      obs::Registry::global().gauge("runtime.pool_utilization");
  const unsigned lanes =
      max_threads == 0 ? thread_count_
                       : std::min(max_threads, thread_count_);
  // Queue wait = time this caller spends behind other run() callers.
  const auto wait_start = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> serialize(run_mutex_);
  queue_wait_us.observe(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - wait_start)
                            .count());
  jobs.inc();
  utilization.set(static_cast<double>(lanes) /
                  static_cast<double>(thread_count_));
  obs::Span job_span("job", "runtime");
  obs::record_event(obs::EventKind::kJobStart, 0, chunk_count, lanes);
  // A pool job that goes 60s without claiming a chunk is wedged by any
  // reasonable definition for this workload; the watchdog dumps the flight
  // recorder so the stuck chunk is identifiable.
  obs::WatchdogTask watchdog("runtime.job", 60'000);
  Job job;
  job.chunk_count = chunk_count;
  job.task = &task;
  job.watchdog = &watchdog;
  job.extra_lanes = lanes - 1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++generation_;
  }
  if (job.extra_lanes > 0) wake_.notify_all();
  work_on(job);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] {
      return job.finished == job.chunk_count && job.workers_inside == 0;
    });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

std::shared_ptr<ThreadPool> ThreadPool::global() {
  static std::mutex m;
  static std::shared_ptr<ThreadPool> pool;
  const unsigned want = default_threads();
  std::lock_guard<std::mutex> lock(m);
  if (!pool || pool->thread_count() != want)
    pool = std::make_shared<ThreadPool>(want);
  return pool;
}

}  // namespace digg::runtime
