#include "src/simd/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace digg::simd {

namespace {

Level detect_best() {
#if defined(__x86_64__) || defined(__i386__)
  if (kAvx2Compiled && __builtin_cpu_supports("avx2")) return Level::kAvx2;
  if (kSseCompiled && __builtin_cpu_supports("sse4.2")) return Level::kSse;
#endif
  return Level::kScalar;
}

const KernelTable& table_at(Level level) {
  switch (level) {
    case Level::kAvx2:
      return kAvx2Table;
    case Level::kSse:
      return kSseTable;
    case Level::kScalar:
      break;
  }
  return kScalarTable;
}

Level clamp_supported(Level level) {
  const Level best = best_supported();
  return static_cast<int>(level) > static_cast<int>(best) ? best : level;
}

/// DIGG_SIMD resolution; called once. Warnings go to stderr because the
/// metrics registry may not exist yet when the first kernel call happens
/// (static-init order), and a mis-set env var is an operator-facing issue.
Level resolve_from_env() {
  const Level best = best_supported();
  const char* env = std::getenv("DIGG_SIMD");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "native") == 0)
    return best;
  Level want;
  if (std::strcmp(env, "scalar") == 0) {
    want = Level::kScalar;
  } else if (std::strcmp(env, "sse") == 0) {
    want = Level::kSse;
  } else if (std::strcmp(env, "avx2") == 0) {
    want = Level::kAvx2;
  } else {
    std::fprintf(stderr,
                 "digg: DIGG_SIMD='%s' is not scalar|sse|avx2|native; "
                 "using native (%s)\n",
                 env, level_name(best));
    return best;
  }
  if (static_cast<int>(want) > static_cast<int>(best)) {
    std::fprintf(stderr,
                 "digg: DIGG_SIMD=%s unsupported on this host; "
                 "clamping to %s\n",
                 env, level_name(best));
    return best;
  }
  return want;
}

std::atomic<const KernelTable*> g_active{nullptr};
std::atomic<int> g_active_level{0};
std::once_flag g_resolve_once;

void resolve() {
  std::call_once(g_resolve_once, [] {
    const Level level = resolve_from_env();
    g_active_level.store(static_cast<int>(level), std::memory_order_relaxed);
    g_active.store(&table_at(level), std::memory_order_release);
  });
}

}  // namespace

Level best_supported() {
  static const Level best = detect_best();
  return best;
}

const KernelTable& kernels() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    resolve();
    t = g_active.load(std::memory_order_acquire);
  }
  return *t;
}

const KernelTable& kernels_for(Level level) {
  return table_at(clamp_supported(level));
}

Level active_level() {
  resolve();
  return static_cast<Level>(g_active_level.load(std::memory_order_relaxed));
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kAvx2:
      return "avx2";
    case Level::kSse:
      return "sse4.2";
    case Level::kScalar:
      break;
  }
  return "scalar";
}

void force_level(Level level) {
  resolve();  // ensure the once-flag is consumed before overriding
  const Level clamped = clamp_supported(level);
  g_active_level.store(static_cast<int>(clamped), std::memory_order_relaxed);
  g_active.store(&table_at(clamped), std::memory_order_release);
}

}  // namespace digg::simd
