// SSE4.2 kernels — the middle rung of the dispatch ladder for x86 hosts
// without AVX2. Only set_diff_u32 is vectorized here (4-lane block compare
// with PSHUFB left-packing): the bitmap and tree kernels lean on gathers
// that SSE lacks, so the table points those at the scalar references —
// which is exactly the dispatch contract, a table entry is "best available
// implementation at this level", not "must differ from scalar". Compiled
// with -msse4.2 -mpopcnt (CMakeLists.txt).

#include "src/simd/kernels.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__SSE4_2__)

#include <nmmintrin.h>

#include <cstring>

namespace digg::simd {
namespace {

// 16-entry PSHUFB left-pack table: row m moves the 4-byte lanes whose bit
// is set in m to the front (padding lanes repeat lane 0; never stored past
// the survivor count).
struct PackTable {
  alignas(16) std::uint8_t shuf[16][16];
};

constexpr PackTable make_pack_table() {
  PackTable t{};
  for (int m = 0; m < 16; ++m) {
    int k = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if (((m >> lane) & 1) == 0) continue;
      for (int b = 0; b < 4; ++b)
        t.shuf[m][k * 4 + b] = static_cast<std::uint8_t>(lane * 4 + b);
      ++k;
    }
    for (; k < 4; ++k)
      for (int b = 0; b < 4; ++b)
        t.shuf[m][k * 4 + b] = static_cast<std::uint8_t>(b);
  }
  return t;
}

constexpr PackTable kPack = make_pack_table();

/// Lane mask: for each lane of `a`, all-ones iff the value occurs anywhere
/// in `b` (4x4 all-pairs equality via 3 lane rotations).
inline __m128i match4(__m128i a, __m128i b) {
  __m128i found = _mm_cmpeq_epi32(a, b);
  b = _mm_shuffle_epi32(b, _MM_SHUFFLE(0, 3, 2, 1));
  found = _mm_or_si128(found, _mm_cmpeq_epi32(a, b));
  b = _mm_shuffle_epi32(b, _MM_SHUFFLE(0, 3, 2, 1));
  found = _mm_or_si128(found, _mm_cmpeq_epi32(a, b));
  b = _mm_shuffle_epi32(b, _MM_SHUFFLE(0, 3, 2, 1));
  return _mm_or_si128(found, _mm_cmpeq_epi32(a, b));
}

inline std::size_t pack_store(__m128i v, int mask, std::uint32_t* out) {
  const __m128i shuf =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kPack.shuf[mask]));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out),
                   _mm_shuffle_epi8(v, shuf));
  return static_cast<std::size_t>(
      __builtin_popcount(static_cast<unsigned>(mask)));
}

/// 4-lane version of the AVX2 bounded forward sweep (see kernels_avx2.cpp's
/// avx2_set_diff_skew): one monotone main cursor, per-key 4-lane sweeps up
/// to a block budget, gallop from the cursor past it.
std::size_t sse_set_diff_skew(const std::uint32_t* span, std::size_t span_n,
                              const std::uint32_t* main, std::size_t main_n,
                              std::uint32_t* out, std::uint32_t* out_pos) {
  constexpr std::size_t kScanBudget = 16;  // blocks (64 elements) per key
  std::size_t k = 0;
  std::size_t p = 0;  // lower bound of the previous key; never retreats
  for (std::size_t i = 0; i < span_n; ++i) {
    const std::uint32_t key = span[i];
    const __m128i vkey = _mm_set1_epi32(static_cast<int>(key));
    bool present = false;
    for (std::size_t steps = 0;; ++steps) {
      if (p + 4 > main_n) {
        while (p < main_n && main[p] < key) ++p;
        present = p < main_n && main[p] == key;
        break;
      }
      if (steps == kScanBudget) {
        present = detail::gallop_contains_ptr(main, main_n, key, p);
        break;
      }
      const __m128i blk =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(main + p));
      // Unsigned lane-wise blk >= key via max: max(blk, key) == blk.
      const __m128i ge = _mm_cmpeq_epi32(_mm_max_epu32(blk, vkey), blk);
      const int m = _mm_movemask_ps(_mm_castsi128_ps(ge));
      if (m != 0) {
        p += static_cast<std::size_t>(__builtin_ctz(static_cast<unsigned>(m)));
        present = main[p] == key;
        break;
      }
      p += 4;
    }
    if (!present) {
      out[k] = key;
      out_pos[k] = static_cast<std::uint32_t>(p);  // sweep stopped at the LB
      ++k;
    }
  }
  return k;
}

std::size_t sse_set_diff_u32(const std::uint32_t* span, std::size_t span_n,
                             const std::uint32_t* main, std::size_t main_n,
                             std::uint32_t* out, std::uint32_t* out_pos) {
  if (main_n == 0) {
    std::memcpy(out, span, span_n * sizeof(std::uint32_t));
    std::memset(out_pos, 0, span_n * sizeof(std::uint32_t));
    return span_n;
  }
  // Same skew heuristic as the AVX2 kernel (see kernels_avx2.cpp).
  if (span_n < 8 || main_n / span_n >= 32)
    return sse_set_diff_skew(span, span_n, main, main_n, out, out_pos);

  std::size_t k = 0;
  std::size_t j = 0;  // main cursor, advances in whole 4-lane blocks
  std::size_t i = 0;
  for (; i + 4 <= span_n; i += 4) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(span + i));
    const std::uint32_t a_max = span[i + 3];
    __m128i found = _mm_setzero_si128();
    while (j + 4 <= main_n && main[j + 3] < a_max) {
      found = _mm_or_si128(
          found,
          match4(a, _mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(main + j))));
      j += 4;
    }
    int present;
    if (j + 4 <= main_n) {
      found = _mm_or_si128(
          found,
          match4(a, _mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(main + j))));
      present = _mm_movemask_ps(_mm_castsi128_ps(found));
    } else {
      present = _mm_movemask_ps(_mm_castsi128_ps(found));
      for (int lane = 0; lane < 4; ++lane) {
        if ((present >> lane) & 1) continue;
        const std::uint32_t key = span[i + static_cast<std::size_t>(lane)];
        for (std::size_t t = j; t < main_n && main[t] <= key; ++t) {
          if (main[t] == key) {
            present |= 1 << lane;
            break;
          }
        }
      }
    }
    k += pack_store(a, ~present & 0xf, out + k);
  }
  std::size_t pos = j;
  for (; i < span_n; ++i) {
    if (!detail::gallop_contains_ptr(main, main_n, span[i], pos))
      out[k++] = span[i];
  }
  // Insertion points for the block-compare candidates (see kernels_avx2.cpp).
  std::size_t q = 0;
  for (std::size_t c = 0; c < k; ++c) {
    detail::gallop_contains_ptr(main, main_n, out[c], q);
    out_pos[c] = static_cast<std::uint32_t>(q);
  }
  return k;
}

std::size_t sse_bitmap_set_u32(std::uint64_t* words, const std::uint32_t* ids,
                               std::size_t n) {
  // Scalar word-run merge recompiled with -mpopcnt (see kernels_avx2.cpp's
  // note on the scatter side).
  std::size_t newly = 0;
  std::size_t i = 0;
  while (i < n) {
    const std::uint32_t w = ids[i] >> 6;
    std::uint64_t mask = 0;
    do {
      mask |= 1ull << (ids[i] & 63);
      ++i;
    } while (i < n && (ids[i] >> 6) == w);
    const std::uint64_t old = words[w];
    words[w] = old | mask;
    newly += static_cast<std::size_t>(_mm_popcnt_u64(mask & ~old));
  }
  return newly;
}

}  // namespace

const KernelTable kSseTable = {
    "sse4.2",
    &sse_set_diff_u32,
    &detail::scalar_bitmap_missing_u32,
    &sse_bitmap_set_u32,
    &detail::scalar_c45_leaves,
};
const bool kSseCompiled = true;

}  // namespace digg::simd

#else  // non-x86 or SSE4.2 flags missing: table of scalar fallbacks.

namespace digg::simd {

const KernelTable kSseTable = {
    "sse-unavailable",
    &detail::scalar_set_diff_u32,
    &detail::scalar_bitmap_missing_u32,
    &detail::scalar_bitmap_set_u32,
    &detail::scalar_c45_leaves,
};
const bool kSseCompiled = false;

}  // namespace digg::simd

#endif
