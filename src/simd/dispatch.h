#pragma once
// Runtime ISA dispatch for the SIMD kernel layer (kernels.h). The active
// table is resolved exactly once, on first use, from two inputs:
//
//   1. what the CPU supports (CPUID via __builtin_cpu_supports):
//      AVX2 -> SSE4.2 -> scalar, highest available wins;
//   2. the DIGG_SIMD environment variable, which can only narrow:
//        DIGG_SIMD=scalar   force the scalar reference kernels
//        DIGG_SIMD=sse      cap at SSE4.2
//        DIGG_SIMD=avx2     cap at AVX2 (clamped down if unsupported)
//        DIGG_SIMD=native   the default: best supported level
//      An unsupported or unknown value warns on stderr and falls back to
//      native — an env typo must never change results (it can't: every
//      level is bit-identical) or silently pick a level the host lacks.
//
// After resolution, kernels() is a single relaxed atomic load — callers
// in per-vote hot loops pay one indirect call per kernel use and nothing
// else. force_level() exists for the differential property tests, which
// need to pin each level in turn inside one process; production code never
// calls it.

#include "src/simd/kernels.h"

namespace digg::simd {

enum class Level : int { kScalar = 0, kSse = 1, kAvx2 = 2 };

/// The active kernel table (resolved once; see file comment).
[[nodiscard]] const KernelTable& kernels();

/// The table for a specific level, independent of the active selection.
/// Requesting a level above best_supported() returns the highest real
/// table at or below it (tests iterate levels up to best_supported()).
[[nodiscard]] const KernelTable& kernels_for(Level level);

/// The level kernels() currently resolves to.
[[nodiscard]] Level active_level();

/// Highest level this host can execute.
[[nodiscard]] Level best_supported();

[[nodiscard]] const char* level_name(Level level);

/// Test hook: pins kernels() to `level` (clamped to best_supported()).
/// Takes effect immediately for subsequent kernels() calls.
void force_level(Level level);

}  // namespace digg::simd
