#pragma once
// The SIMD kernel surface: one function-pointer table per ISA level, all
// implementing the same exact-set/exact-tree contracts so the dispatcher
// (dispatch.h) can swap tables without changing any observable output.
//
// Contracts (property-tested against the scalar table in
// tests/simd_kernel_test.cpp):
//
//   set_diff_u32(span, span_n, main, main_n, out, out_pos)
//     span and main are strictly-increasing uint32 arrays. Writes the
//     elements of span NOT present in main to out, in span order, and
//     returns the count; out_pos[i] receives the lower-bound index of
//     out[i] in main (its insertion point). This is the candidate pass of
//     HybridSet's array-mode union_span: because the caller's accept/on_new
//     callbacks may not touch the set, membership can be resolved for the
//     whole span up front without reordering anything the callbacks can
//     observe — and because every kernel walks main to each key's lower
//     bound anyway, the insertion points come out for free, which is what
//     lets the caller's staged merge slide blocks with no binary searches.
//
//   bitmap_missing_u32(words, ids, n, out)
//     ids is strictly increasing; words is a word-packed bitmap covering
//     every id. Writes the ids whose bit is CLEAR to out, in id order, and
//     returns the count — the bitmap-mode candidate pass.
//
//   bitmap_set_u32(words, ids, n)
//     Sets the bit for every id (ids strictly increasing) and returns how
//     many bits were newly set — the union+count commit. Implementations
//     merge the ids of one 64-bit word into a single mask and pay one
//     read-modify-write plus one popcount per touched word.
//
//   c45_leaves(tree, rows, n_rows, stride, out_leaf)
//     Branch-free batched decision-tree descent over a flattened
//     numeric-split tree (FlatTreeView). For every row (stride doubles),
//     walks exactly tree.depth steps — leaves self-loop (left == right ==
//     self, thresh == +inf), so early arrivals idle in place — and writes
//     the leaf index. Missing values (NaN) route to miss[node], matching
//     DecisionTree::walk's majority-child rule; the comparison is
//     v <= thresh with NaN compares false, and orderedness (v == v)
//     selects between the compare result and miss.
//
// Output-buffer slack: the packing kernels store one full vector per
// block and then advance by the survivor count, so `out` must have room
// for span_n/n plus kPackSlack extra lanes. Callers (HybridSet) size
// their scratch accordingly.

#include <cstddef>
#include <cstdint>

namespace digg::simd {

/// Extra writable lanes required past the logical end of every `out`
/// buffer passed to the packing kernels (one 8-lane vector of overstore).
inline constexpr std::size_t kPackSlack = 8;

/// Flattened numeric-split decision tree (built by ml::FlatTree). Leaves
/// self-loop with thresh == +infinity so a fixed-depth descent is exact.
struct FlatTreeView {
  const std::int32_t* attr = nullptr;    // split attribute (leaf: 0)
  const double* thresh = nullptr;        // v <= thresh goes left (leaf: +inf)
  const std::int32_t* left = nullptr;    // child indices (leaf: self)
  const std::int32_t* right = nullptr;
  const std::int32_t* miss = nullptr;    // NaN routing (leaf: self)
  std::size_t node_count = 0;
  std::size_t depth = 0;                 // descent steps to reach any leaf
};

struct KernelTable {
  const char* name = "scalar";
  std::size_t (*set_diff_u32)(const std::uint32_t* span, std::size_t span_n,
                              const std::uint32_t* main, std::size_t main_n,
                              std::uint32_t* out,
                              std::uint32_t* out_pos) = nullptr;
  std::size_t (*bitmap_missing_u32)(const std::uint64_t* words,
                                    const std::uint32_t* ids, std::size_t n,
                                    std::uint32_t* out) = nullptr;
  std::size_t (*bitmap_set_u32)(std::uint64_t* words, const std::uint32_t* ids,
                                std::size_t n) = nullptr;
  void (*c45_leaves)(const FlatTreeView& tree, const double* rows,
                     std::size_t n_rows, std::size_t stride,
                     std::int32_t* out_leaf) = nullptr;
};

namespace detail {

// The scalar reference implementations, shared across TUs: the scalar
// table is made of exactly these, and the SSE/AVX2 kernels call them for
// ragged tails and for the size regimes where vectorization loses
// (see kernels_avx2.cpp's skew heuristic).
std::size_t scalar_set_diff_u32(const std::uint32_t* span, std::size_t span_n,
                                const std::uint32_t* main, std::size_t main_n,
                                std::uint32_t* out, std::uint32_t* out_pos);
std::size_t scalar_bitmap_missing_u32(const std::uint64_t* words,
                                      const std::uint32_t* ids, std::size_t n,
                                      std::uint32_t* out);
std::size_t scalar_bitmap_set_u32(std::uint64_t* words,
                                  const std::uint32_t* ids, std::size_t n);
void scalar_c45_leaves(const FlatTreeView& tree, const double* rows,
                       std::size_t n_rows, std::size_t stride,
                       std::int32_t* out_leaf);

/// Pointer-based galloping membership probe (the hybrid_set.h gallop,
/// restated over raw arrays so the kernel layer stays header-independent
/// of src/digg). `pos` advances to key's lower bound.
inline bool gallop_contains_ptr(const std::uint32_t* sorted, std::size_t n,
                                std::uint32_t key, std::size_t& pos) noexcept {
  if (pos >= n || sorted[pos] >= key) {
    // Already at or past the bracket; fall through to the final check.
  } else {
    std::size_t step = 1;
    std::size_t lo = pos;
    while (lo + step < n && sorted[lo + step] < key) {
      lo += step;
      step <<= 1;
    }
    std::size_t hi = lo + step < n ? lo + step : n;
    ++lo;  // sorted[lo - 1] < key already established
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (sorted[mid] < key)
        lo = mid + 1;
      else
        hi = mid;
    }
    pos = lo;
  }
  return pos < n && sorted[pos] == key;
}

}  // namespace detail

// Per-TU tables. kSseTable/kAvx2Table fall back to the scalar entries when
// their TU was compiled without the matching ISA (non-x86 targets); the
// k*Compiled flags tell the dispatcher which tables are real.
extern const KernelTable kScalarTable;
extern const KernelTable kSseTable;
extern const KernelTable kAvx2Table;
extern const bool kSseCompiled;
extern const bool kAvx2Compiled;

}  // namespace digg::simd
