// AVX2 kernels. This TU is compiled with -mavx2 -mpopcnt (see
// CMakeLists.txt); nothing here may be inlined into generically-compiled
// code, which is why every entry point is a plain extern function reached
// through the dispatch table only. On non-x86 targets the file compiles to
// a table of scalar fallbacks.
//
// Algorithms:
//   set_diff_u32    Schlegel/Lemire-style block intersection: compare each
//                   8-lane span block against 8-lane main blocks via 8
//                   rotations of VPERMD + VPCMPEQD, advancing whichever
//                   side's max is smaller; survivors are left-packed with a
//                   256-entry VPERMD table. A skew heuristic switches to a
//                   bounded 8-lane forward sweep (gallop past the budget)
//                   when main is much larger than the span or the span is
//                   too short to fill vectors.
//   bitmap_missing  8 ids per step: VPSRLD for word indices, two 4-lane
//                   VPGATHERQQ loads, VPSRLVQ bit tests, survivors packed
//                   with the same VPERMD table.
//   bitmap_set      The scalar word-run merge (one RMW + POPCNT per touched
//                   word) — the ids->bits scatter has no AVX2 formulation
//                   that beats it, but compiling it here gets hardware
//                   POPCNT.
//   c45_leaves      4 rows per step, branch-free: gather attributes and
//                   thresholds by the per-lane node cursor (VPGATHERDD /
//                   VPGATHERQPD), VCMPPD LE + ordered-compare for the NaN
//                   route, and VPBLENDVB selects among left/right/miss.
//
// Exactness: every kernel computes the same function as its scalar
// reference (set difference, bit tests, fixed-depth tree descent over the
// same doubles), so outputs are bit-identical by construction — the
// property tests in tests/simd_kernel_test.cpp enforce it.

#include "src/simd/kernels.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

namespace digg::simd {
namespace {

// 256-entry left-pack table: row m holds the lane indices whose bit is set
// in m, in ascending order (padding repeats lane 0, which is never stored
// past the survivor count).
struct PackTable {
  alignas(32) std::uint32_t idx[256][8];
};

constexpr PackTable make_pack_table() {
  PackTable t{};
  for (int m = 0; m < 256; ++m) {
    int k = 0;
    for (int b = 0; b < 8; ++b)
      if ((m >> b) & 1) t.idx[m][k++] = static_cast<std::uint32_t>(b);
    for (; k < 8; ++k) t.idx[m][k] = 0;
  }
  return t;
}

constexpr PackTable kPack = make_pack_table();

/// Lane mask: for each lane of `a`, all-ones iff the value occurs anywhere
/// in `b` (8x8 all-pairs equality via 7 lane rotations).
inline __m256i match8(__m256i a, __m256i b) {
  const __m256i r1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  __m256i found = _mm256_cmpeq_epi32(a, b);
  for (int r = 1; r < 8; ++r) {
    b = _mm256_permutevar8x32_epi32(b, r1);
    found = _mm256_or_si256(found, _mm256_cmpeq_epi32(a, b));
  }
  return found;
}

/// Left-packs the lanes of `v` selected by `mask` (bit per lane) to out,
/// returning the survivor count. Stores a full vector: out needs
/// kPackSlack lanes of slack past the logical end.
inline std::size_t pack_store(__m256i v, int mask, std::uint32_t* out) {
  const __m256i perm = _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kPack.idx[mask]));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                      _mm256_permutevar8x32_epi32(v, perm));
  return static_cast<std::size_t>(__builtin_popcount(
      static_cast<unsigned>(mask)));
}

/// Skewed-ratio set difference: main is much larger than the span, so the
/// all-pairs block compare (which touches every main block the span
/// overlaps) would scan far more than it matches. Instead keep one
/// monotone cursor into main and, per span key, sweep forward 8 lanes at a
/// time until the key's lower bound is reached. The sweep is branch-cheap
/// (one well-predicted loop branch per 8 elements, no compare-result
/// branches), so for the typical inter-key gap — tens of elements — it
/// beats the gallop's log2(gap) dependent, mispredicting probes. A budget
/// bounds the sweep: past kScanBudget blocks the key is genuinely far and
/// the gallop's logarithmic skipping takes over from wherever the sweep
/// stopped, so huge gaps (a one-fan voter against a near-promotion set)
/// cost sweep + O(log gap), never O(gap).
std::size_t avx2_set_diff_skew(const std::uint32_t* span, std::size_t span_n,
                               const std::uint32_t* main, std::size_t main_n,
                               std::uint32_t* out, std::uint32_t* out_pos) {
  constexpr std::size_t kScanBudget = 8;  // blocks (64 elements) per key
  std::size_t k = 0;
  std::size_t p = 0;  // lower bound of the previous key; never retreats
  for (std::size_t i = 0; i < span_n; ++i) {
    const std::uint32_t key = span[i];
    const __m256i vkey = _mm256_set1_epi32(static_cast<int>(key));
    bool present = false;
    for (std::size_t steps = 0;; ++steps) {
      if (p + 8 > main_n) {
        while (p < main_n && main[p] < key) ++p;
        present = p < main_n && main[p] == key;
        break;
      }
      if (steps == kScanBudget) {
        present = detail::gallop_contains_ptr(main, main_n, key, p);
        break;
      }
      const __m256i blk =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(main + p));
      // Unsigned lane-wise blk >= key via max: max(blk, key) == blk.
      const __m256i ge =
          _mm256_cmpeq_epi32(_mm256_max_epu32(blk, vkey), blk);
      const int m = _mm256_movemask_ps(_mm256_castsi256_ps(ge));
      if (m != 0) {
        p += static_cast<std::size_t>(__builtin_ctz(static_cast<unsigned>(m)));
        present = main[p] == key;
        break;
      }
      p += 8;
    }
    if (!present) {
      out[k] = key;
      out_pos[k] = static_cast<std::uint32_t>(p);  // sweep stopped at the LB
      ++k;
    }
  }
  return k;
}

std::size_t avx2_set_diff_u32(const std::uint32_t* span, std::size_t span_n,
                              const std::uint32_t* main, std::size_t main_n,
                              std::uint32_t* out, std::uint32_t* out_pos) {
  if (main_n == 0) {
    std::memcpy(out, span, span_n * sizeof(std::uint32_t));
    std::memset(out_pos, 0, span_n * sizeof(std::uint32_t));
    return span_n;
  }
  // Skew heuristic: the all-pairs block compare below touches every main
  // block the span overlaps, so when main dwarfs the span (or the span
  // can't fill a vector) the bounded forward sweep wins.
  if (span_n < 16 || main_n / span_n >= 32)
    return avx2_set_diff_skew(span, span_n, main, main_n, out, out_pos);

  std::size_t k = 0;
  std::size_t j = 0;  // main cursor, advances in whole 8-lane blocks
  std::size_t i = 0;
  for (; i + 8 <= span_n; i += 8) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(span + i));
    const std::uint32_t a_max = span[i + 7];
    __m256i found = _mm256_setzero_si256();
    // Consume main blocks strictly below a_max. Matches for THIS span
    // block can't live in blocks consumed by earlier iterations: those
    // stopped at the first block whose max reached the previous span
    // block's max, and the span is strictly increasing.
    while (j + 8 <= main_n && main[j + 7] < a_max) {
      found = _mm256_or_si256(
          found, match8(a, _mm256_loadu_si256(
                               reinterpret_cast<const __m256i*>(main + j))));
      j += 8;
    }
    int present;
    if (j + 8 <= main_n) {
      // The straddling block (max >= a_max): compare without consuming —
      // the next span block may still have matches here.
      found = _mm256_or_si256(
          found, match8(a, _mm256_loadu_si256(
                               reinterpret_cast<const __m256i*>(main + j))));
      present = _mm256_movemask_ps(_mm256_castsi256_ps(found));
    } else {
      // Ragged main tail (< 8 elements left): finish the unfound lanes
      // scalar against main[j, main_n).
      present = _mm256_movemask_ps(_mm256_castsi256_ps(found));
      for (int lane = 0; lane < 8; ++lane) {
        if ((present >> lane) & 1) continue;
        const std::uint32_t key = span[i + static_cast<std::size_t>(lane)];
        for (std::size_t t = j; t < main_n && main[t] <= key; ++t) {
          if (main[t] == key) {
            present |= 1 << lane;
            break;
          }
        }
      }
    }
    k += pack_store(a, ~present & 0xff, out + k);
  }
  // Span tail: gallop from j — every main element below j is smaller than
  // the last full block's max, hence smaller than the tail's keys.
  std::size_t pos = j;
  for (; i < span_n; ++i) {
    if (!detail::gallop_contains_ptr(main, main_n, span[i], pos))
      out[k++] = span[i];
  }
  // Insertion points: the block compare answers membership without ever
  // locating lower bounds, so recover them with an advancing-hint gallop
  // over the (ascending) candidates — O(k log gap), a small fraction of
  // the compare work above.
  std::size_t q = 0;
  for (std::size_t c = 0; c < k; ++c) {
    detail::gallop_contains_ptr(main, main_n, out[c], q);
    out_pos[c] = static_cast<std::uint32_t>(q);
  }
  return k;
}

std::size_t avx2_bitmap_missing_u32(const std::uint64_t* words,
                                    const std::uint32_t* ids, std::size_t n,
                                    std::uint32_t* out) {
  std::size_t k = 0;
  std::size_t i = 0;
  const __m256i c63 = _mm256_set1_epi32(63);
  for (; i + 8 <= n; i += 8) {
    const __m256i id =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
    const __m256i widx = _mm256_srli_epi32(id, 6);
    const __m256i w0 = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(words),
        _mm256_castsi256_si128(widx), 8);
    const __m256i w1 = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(words),
        _mm256_extracti128_si256(widx, 1), 8);
    const __m256i sh = _mm256_and_si256(id, c63);
    const __m256i s0 = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(sh));
    const __m256i s1 = _mm256_cvtepu32_epi64(_mm256_extracti128_si256(sh, 1));
    // Shift the tested bit to the sign position so MOVMSKPD reads it.
    const __m256i b0 = _mm256_slli_epi64(_mm256_srlv_epi64(w0, s0), 63);
    const __m256i b1 = _mm256_slli_epi64(_mm256_srlv_epi64(w1, s1), 63);
    const int present =
        _mm256_movemask_pd(_mm256_castsi256_pd(b0)) |
        (_mm256_movemask_pd(_mm256_castsi256_pd(b1)) << 4);
    k += pack_store(id, ~present & 0xff, out + k);
  }
  for (; i < n; ++i) {
    const std::uint32_t id = ids[i];
    if (((words[id >> 6] >> (id & 63)) & 1u) == 0) out[k++] = id;
  }
  return k;
}

std::size_t avx2_bitmap_set_u32(std::uint64_t* words, const std::uint32_t* ids,
                                std::size_t n) {
  // Word-run merge (see kernels.h): the scatter side has no profitable
  // AVX2 formulation, but compiled here the popcount is the POPCNT
  // instruction. Same code shape as the scalar reference.
  std::size_t newly = 0;
  std::size_t i = 0;
  while (i < n) {
    const std::uint32_t w = ids[i] >> 6;
    std::uint64_t mask = 0;
    do {
      mask |= 1ull << (ids[i] & 63);
      ++i;
    } while (i < n && (ids[i] >> 6) == w);
    const std::uint64_t old = words[w];
    words[w] = old | mask;
    newly += static_cast<std::size_t>(_mm_popcnt_u64(mask & ~old));
  }
  return newly;
}

/// Narrows a 4x64 compare mask to a 4x32 mask (low halves; a compare mask's
/// halves are identical).
inline __m128i narrow_mask(__m256d m) {
  const __m256 ps = _mm256_castpd_ps(m);
  const __m128 lo = _mm256_castps256_ps128(ps);
  const __m128 hi = _mm256_extractf128_ps(ps, 1);
  return _mm_castps_si128(_mm_shuffle_ps(lo, hi, _MM_SHUFFLE(2, 0, 2, 0)));
}

void avx2_c45_leaves(const FlatTreeView& tree, const double* rows,
                     std::size_t n_rows, std::size_t stride,
                     std::int32_t* out_leaf) {
  std::size_t r = 0;
  const auto s32 = static_cast<std::int32_t>(stride);
  for (; r + 4 <= n_rows; r += 4) {
    const double* base = rows + r * stride;
    // Per-lane offset of each row's start within the 4-row window.
    const __m128i row_off = _mm_setr_epi32(0, s32, 2 * s32, 3 * s32);
    __m128i cur = _mm_setzero_si128();
    for (std::size_t d = 0; d < tree.depth; ++d) {
      const __m128i attr = _mm_i32gather_epi32(tree.attr, cur, 4);
      const __m256d v = _mm256_i32gather_pd(
          base, _mm_add_epi32(row_off, attr), 8);
      const __m256d th = _mm256_i32gather_pd(tree.thresh, cur, 8);
      const __m128i go_left = narrow_mask(_mm256_cmp_pd(v, th, _CMP_LE_OQ));
      const __m128i ordered = narrow_mask(_mm256_cmp_pd(v, v, _CMP_ORD_Q));
      const __m128i left = _mm_i32gather_epi32(tree.left, cur, 4);
      const __m128i right = _mm_i32gather_epi32(tree.right, cur, 4);
      const __m128i miss = _mm_i32gather_epi32(tree.miss, cur, 4);
      cur = _mm_blendv_epi8(miss, _mm_blendv_epi8(right, left, go_left),
                            ordered);
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out_leaf + r), cur);
  }
  if (r < n_rows)
    detail::scalar_c45_leaves(tree, rows + r * stride, n_rows - r, stride,
                              out_leaf + r);
}

}  // namespace

const KernelTable kAvx2Table = {
    "avx2",
    &avx2_set_diff_u32,
    &avx2_bitmap_missing_u32,
    &avx2_bitmap_set_u32,
    &avx2_c45_leaves,
};
const bool kAvx2Compiled = true;

}  // namespace digg::simd

#else  // non-x86 or AVX2 flags missing: table of scalar fallbacks.

namespace digg::simd {

const KernelTable kAvx2Table = {
    "avx2-unavailable",
    &detail::scalar_set_diff_u32,
    &detail::scalar_bitmap_missing_u32,
    &detail::scalar_bitmap_set_u32,
    &detail::scalar_c45_leaves,
};
const bool kAvx2Compiled = false;

}  // namespace digg::simd

#endif
