// Scalar reference kernels — the semantics every vectorized table is
// property-tested against (tests/simd_kernel_test.cpp), and the fallback
// the SSE/AVX2 TUs call for ragged tails and skewed size regimes. Keep
// these boring and obviously correct: they define the contract.

#include <cmath>

#include "src/simd/kernels.h"

namespace digg::simd::detail {

std::size_t scalar_set_diff_u32(const std::uint32_t* span, std::size_t span_n,
                                const std::uint32_t* main, std::size_t main_n,
                                std::uint32_t* out, std::uint32_t* out_pos) {
  // Gallop with an advancing hint: both arrays are strictly increasing, so
  // each probe starts where the last one left off — O(log gap) per element,
  // the hybrid_set gallop-intersect restated over raw pointers. The gallop
  // lands on each key's lower bound, which is exactly the insertion point
  // the contract owes out_pos.
  std::size_t pos = 0;
  std::size_t k = 0;
  for (std::size_t i = 0; i < span_n; ++i) {
    if (!gallop_contains_ptr(main, main_n, span[i], pos)) {
      out[k] = span[i];
      out_pos[k] = static_cast<std::uint32_t>(pos);
      ++k;
    }
  }
  return k;
}

std::size_t scalar_bitmap_missing_u32(const std::uint64_t* words,
                                      const std::uint32_t* ids, std::size_t n,
                                      std::uint32_t* out) {
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t id = ids[i];
    if (((words[id >> 6] >> (id & 63)) & 1u) == 0) out[k++] = id;
  }
  return k;
}

std::size_t scalar_bitmap_set_u32(std::uint64_t* words,
                                  const std::uint32_t* ids, std::size_t n) {
  // ids are strictly increasing, so ids sharing a word are adjacent: merge
  // each run into one mask and pay a single read-modify-write plus one
  // popcount per touched word — the word-at-a-time union+count commit.
  std::size_t newly = 0;
  std::size_t i = 0;
  while (i < n) {
    const std::uint32_t w = ids[i] >> 6;
    std::uint64_t mask = 0;
    do {
      mask |= 1ull << (ids[i] & 63);
      ++i;
    } while (i < n && (ids[i] >> 6) == w);
    const std::uint64_t old = words[w];
    words[w] = old | mask;
    newly += static_cast<std::size_t>(__builtin_popcountll(mask & ~old));
  }
  return newly;
}

void scalar_c45_leaves(const FlatTreeView& tree, const double* rows,
                       std::size_t n_rows, std::size_t stride,
                       std::int32_t* out_leaf) {
  for (std::size_t r = 0; r < n_rows; ++r) {
    const double* row = rows + r * stride;
    std::int32_t cur = 0;
    // Exactly depth steps: leaves self-loop, so early arrivals idle in
    // place and every lane of a future vector batch stays in lockstep.
    for (std::size_t d = 0; d < tree.depth; ++d) {
      const double v = row[tree.attr[cur]];
      cur = std::isnan(v) ? tree.miss[cur]
                          : (v <= tree.thresh[cur] ? tree.left[cur]
                                                   : tree.right[cur]);
    }
    out_leaf[r] = cur;
  }
}

}  // namespace digg::simd::detail

namespace digg::simd {

const KernelTable kScalarTable = {
    "scalar",
    &detail::scalar_set_diff_u32,
    &detail::scalar_bitmap_missing_u32,
    &detail::scalar_bitmap_set_u32,
    &detail::scalar_c45_leaves,
};

}  // namespace digg::simd
