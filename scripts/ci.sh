#!/usr/bin/env bash
# Tier-1 verification matrix, one configuration per invocation (or 'all'):
#   release  Release build + full ctest suite (the tier-1 gate)
#   asan     Debug build, -DDIGG_SANITIZE=address,undefined + full suite
#   tsan     RelWithDebInfo build, -DDIGG_SANITIZE=thread + the tests that
#            exercise the thread pool (label filter TSAN_LABELS below —
#            TSan slows single-threaded statistics tests ~10x for no
#            additional race coverage)
#   large    Release build + the out-of-core smoke: stream-generate a
#            large corpus to a snapshot, mmap-load it, and replay it
#            through the stream engine (perf_corpus_io's large leg,
#            downscaled via LARGE_USERS/LARGE_STORIES so the smoke stays
#            minutes-cheap; the nightly perf job runs the full million)
#   obs      Release build + the telemetry-exporter smoke: run perf_stream
#            with DIGG_METRICS_PORT=0 (ephemeral bind, port parsed from the
#            DIGG_METRICS_PORT_BOUND= stdout line) and --serve-ms holding
#            the process alive, curl the endpoint, and verify the
#            Prometheus text exposition (TYPE lines, histogram buckets,
#            ingest counter)
#   serve    Release build + the ingest-server smoke: start serve_digg on
#            an ephemeral port (parsed from DIGG_SERVE_PORT_BOUND=) with
#            background checkpointing on, drive a few thousand votes over
#            several connections with serve_load --smoke (which also
#            verifies every reply against a local engine and demands v10
#            predictions), SIGTERM the server, and assert a clean drain
#            plus a restorable checkpoint (serve_digg --inspect)
#   scenarios
#            Release build + the scenario-engine smoke: run the fig7
#            prediction-comparison bench in --smoke mode (downscaled
#            corpora), which generates every named scenario, races the
#            Bayes fit against the C4.5 tree, and fails unless every
#            registered dynamics::Model id is covered by the matrix
#   simd     Release build + the kernel-dispatch smoke: run the SIMD
#            differential property suite and the hybrid-set suite under
#            DIGG_SIMD=scalar and =native, then a downscaled fig3a under
#            both levels and diff the stdout byte-for-byte — the scalar
#            fallback must produce the exact figures the vector kernels do
#   all      every configuration above, failing fast on the first broken one
#
# The GitHub Actions matrix (.github/workflows/ci.yml) runs one mode per
# job via this script, so CI legs are reproducible locally with the same
# command CI uses.
#
# Usage: scripts/ci.sh [release|asan|tsan|large|obs|serve|scenarios|simd|all] [ctest args...]
#   RELEASE_DIR / ASAN_DIR / TSAN_DIR
#                build dirs (default build-release, build-asan, build-tsan)
#   JOBS         parallelism (default nproc)
#   WERROR       ON to add -Werror (CI sets this; local default OFF)
#   TSAN_LABELS  ctest -L regex for the tsan leg
#   LARGE_USERS / LARGE_STORIES
#                large-corpus smoke scale (default 200000 users, 200
#                stories — big enough to leave RAM-cached territory, small
#                enough for a PR gate)
set -euo pipefail
cd "$(dirname "$0")/.."

RELEASE_DIR=${RELEASE_DIR:-build-release}
ASAN_DIR=${ASAN_DIR:-build-asan}
TSAN_DIR=${TSAN_DIR:-build-tsan}
JOBS=${JOBS:-$(nproc)}
WERROR=${WERROR:-OFF}
TSAN_LABELS=${TSAN_LABELS:-'^(runtime_test|stream_test|obs_test|digg_hybrid_set_test|serve_test|simd_kernel_test)$'}
LARGE_USERS=${LARGE_USERS:-200000}
LARGE_STORIES=${LARGE_STORIES:-200}

MODE=all
case "${1:-}" in
  release|asan|tsan|large|obs|serve|scenarios|simd|all)
    MODE=$1
    shift
    ;;
esac
CTEST_ARGS=("$@")

# wait_for_line <pid> <log> <prefix>: polls <log> until a line starting with
# <prefix> appears (echoes the remainder) or <pid> exits (fails). Both the
# obs and serve smokes bind ephemeral ports and advertise them this way.
wait_for_line() {
  local pid=$1 log=$2 prefix=$3 value=""
  for _ in $(seq 1 120); do
    value=$(sed -n "s/^${prefix}//p" "$log" | head -n1)
    if [[ -n $value ]]; then
      echo "$value"
      return 0
    fi
    kill -0 "$pid" 2>/dev/null || {
      echo "smoke: process exited before printing ${prefix}" >&2
      cat "$log" >&2
      return 1
    }
    sleep 0.5
  done
  echo "smoke: timed out waiting for ${prefix}" >&2
  cat "$log" >&2
  return 1
}

# run_config <dir> <label> [cmake args...] [-- ctest args...]
run_config() {
  local dir=$1 label=$2
  shift 2
  local cmake_args=()
  while [[ $# -gt 0 && "$1" != "--" ]]; do
    cmake_args+=("$1")
    shift
  done
  [[ $# -gt 0 ]] && shift  # drop the --
  echo "== [$label] configure + build ($dir) =="
  cmake -B "$dir" -S . -DDIGG_WERROR="$WERROR" "${cmake_args[@]}"
  cmake --build "$dir" -j "$JOBS"
  echo "== [$label] ctest =="
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" "$@" "${CTEST_ARGS[@]}")
}

if [[ $MODE == release || $MODE == all ]]; then
  run_config "$RELEASE_DIR" "Release" -DCMAKE_BUILD_TYPE=Release
fi
if [[ $MODE == asan || $MODE == all ]]; then
  run_config "$ASAN_DIR" "Debug+ASan/UBSan" -DCMAKE_BUILD_TYPE=Debug \
    -DDIGG_SANITIZE=address,undefined
fi
if [[ $MODE == tsan || $MODE == all ]]; then
  run_config "$TSAN_DIR" "TSan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDIGG_SANITIZE=thread -- -L "$TSAN_LABELS"
fi
if [[ $MODE == obs || $MODE == all ]]; then
  echo "== [exporter smoke] configure + build ($RELEASE_DIR) =="
  cmake -B "$RELEASE_DIR" -S . -DDIGG_WERROR="$WERROR" \
    -DCMAKE_BUILD_TYPE=Release
  cmake --build "$RELEASE_DIR" -j "$JOBS" --target perf_stream
  echo "== [exporter smoke] serve + scrape =="
  OBS_LOG=$(mktemp)
  DIGG_METRICS_PORT=0 "$RELEASE_DIR"/bench/perf_stream \
    --serve-ms 60000 >"$OBS_LOG" 2>&1 &
  OBS_PID=$!
  # shellcheck disable=SC2064  # expand $OBS_PID now, not at trap time
  trap "kill $OBS_PID 2>/dev/null || true; rm -f $OBS_LOG" EXIT
  # Ephemeral bind: the exporter prints the port it actually got.
  OBS_PORT=$(wait_for_line "$OBS_PID" "$OBS_LOG" "DIGG_METRICS_PORT_BOUND=")
  # The exporter answers as soon as the corpus generates, well before the
  # replay populates histograms — keep scraping until the ingest counter
  # shows up, not merely until some exposition arrives.
  scrape=""
  for _ in $(seq 1 60); do
    if scrape=$(curl -sf "http://127.0.0.1:$OBS_PORT/metrics"); then
      grep -qF 'digg_stream_votes_ingested_total' <<<"$scrape" && break
    fi
    kill -0 "$OBS_PID" 2>/dev/null || {
      echo "exporter smoke: perf_stream exited early" >&2; exit 1; }
    sleep 1
  done
  kill "$OBS_PID" 2>/dev/null || true
  wait "$OBS_PID" 2>/dev/null || true
  trap - EXIT
  for needle in \
    '# TYPE digg_' \
    '_bucket{le="' \
    'digg_stream_votes_ingested_total'; do
    if ! grep -qF "$needle" <<<"$scrape"; then
      echo "exporter smoke: exposition is missing '$needle'" >&2
      printf '%s\n' "$scrape" | head -40 >&2
      exit 1
    fi
  done
  rm -f "$OBS_LOG"
  echo "exporter smoke: Prometheus exposition ok ($(wc -l <<<"$scrape") lines)"
fi

if [[ $MODE == serve || $MODE == all ]]; then
  echo "== [serve smoke] configure + build ($RELEASE_DIR) =="
  cmake -B "$RELEASE_DIR" -S . -DDIGG_WERROR="$WERROR" \
    -DCMAKE_BUILD_TYPE=Release
  cmake --build "$RELEASE_DIR" -j "$JOBS" --target serve_digg serve_load
  echo "== [serve smoke] ingest + query + drain + restore =="
  SERVE_TMP=$(mktemp -d)
  SERVE_LOG="$SERVE_TMP/serve.log"
  SERVE_CKPT="$SERVE_TMP/serve.ckpt"
  DIGG_CHECKPOINT_MS=500 "$RELEASE_DIR"/examples/serve_digg --smoke \
    --checkpoint "$SERVE_CKPT" >"$SERVE_LOG" 2>&1 &
  SERVE_PID=$!
  # shellcheck disable=SC2064  # expand now, not at trap time
  trap "kill $SERVE_PID 2>/dev/null || true; rm -rf $SERVE_TMP" EXIT
  SERVE_PORT=$(wait_for_line "$SERVE_PID" "$SERVE_LOG" "DIGG_SERVE_PORT_BOUND=")
  # Drive the corpus at the server over several connections; --smoke also
  # verifies every state/prediction reply against a local engine.
  "$RELEASE_DIR"/examples/serve_load --smoke --port "$SERVE_PORT"
  # SIGTERM -> graceful drain -> final checkpoint, and the process exits 0.
  kill -TERM "$SERVE_PID"
  if ! wait "$SERVE_PID"; then
    echo "serve smoke: serve_digg exited non-zero after SIGTERM" >&2
    cat "$SERVE_LOG" >&2
    exit 1
  fi
  if ! grep -q '^drained: ' "$SERVE_LOG"; then
    echo "serve smoke: no drain line in the server log" >&2
    cat "$SERVE_LOG" >&2
    exit 1
  fi
  # The drain checkpoint must be complete and restorable.
  "$RELEASE_DIR"/examples/serve_digg --inspect "$SERVE_CKPT" \
    | grep -q '^checkpoint ok: ' || {
      echo "serve smoke: drain checkpoint failed inspection" >&2
      exit 1
    }
  trap - EXIT
  rm -rf "$SERVE_TMP"
  echo "serve smoke: ingest, verify, drain, and restore all green"
fi

if [[ $MODE == scenarios || $MODE == all ]]; then
  echo "== [scenario smoke] configure + build ($RELEASE_DIR) =="
  cmake -B "$RELEASE_DIR" -S . -DDIGG_WERROR="$WERROR" \
    -DCMAKE_BUILD_TYPE=Release
  cmake --build "$RELEASE_DIR" -j "$JOBS" --target fig7_model_prediction
  echo "== [scenario smoke] every scenario x both predictors =="
  "$RELEASE_DIR"/bench/fig7_model_prediction --smoke
fi

if [[ $MODE == simd || $MODE == all ]]; then
  echo "== [simd smoke] configure + build ($RELEASE_DIR) =="
  cmake -B "$RELEASE_DIR" -S . -DDIGG_WERROR="$WERROR" \
    -DCMAKE_BUILD_TYPE=Release
  cmake --build "$RELEASE_DIR" -j "$JOBS" \
    --target simd_kernel_test digg_hybrid_set_test fig3a_influence
  echo "== [simd smoke] kernel + set suites at both dispatch levels =="
  for level in scalar native; do
    DIGG_SIMD=$level "$RELEASE_DIR"/tests/simd_kernel_test \
      --gtest_brief=1
    DIGG_SIMD=$level "$RELEASE_DIR"/tests/digg_hybrid_set_test \
      --gtest_brief=1
  done
  echo "== [simd smoke] fig3a byte-identity scalar vs native =="
  SIMD_TMP=$(mktemp -d)
  # shellcheck disable=SC2064  # expand now, not at trap time
  trap "rm -rf $SIMD_TMP" EXIT
  # The scalar fallback must not merely agree statistically: the rendered
  # figure output has to match the vector kernels byte-for-byte. The bench
  # prints the active level, which legitimately differs — strip that line.
  for level in scalar native; do
    DIGG_SIMD=$level "$RELEASE_DIR"/bench/fig3a_influence --smoke \
      | grep -v 'simd=' >"$SIMD_TMP/fig3a.$level"
  done
  if ! diff -u "$SIMD_TMP/fig3a.scalar" "$SIMD_TMP/fig3a.native"; then
    echo "simd smoke: fig3a output differs between scalar and native" >&2
    exit 1
  fi
  trap - EXIT
  rm -rf "$SIMD_TMP"
  echo "simd smoke: dispatch levels byte-identical"
fi

if [[ $MODE == large || $MODE == all ]]; then
  echo "== [large-corpus smoke] configure + build ($RELEASE_DIR) =="
  cmake -B "$RELEASE_DIR" -S . -DDIGG_WERROR="$WERROR" \
    -DCMAKE_BUILD_TYPE=Release
  cmake --build "$RELEASE_DIR" -j "$JOBS" --target perf_corpus_io
  echo "== [large-corpus smoke] generate -> mmap -> replay =="
  "$RELEASE_DIR"/bench/perf_corpus_io \
    --large-users "$LARGE_USERS" --large-stories "$LARGE_STORIES"
fi

echo "ci.sh: $MODE green"
