#!/usr/bin/env bash
# Tier-1 verification matrix in one invocation:
#   1. Release build + full ctest suite (the tier-1 gate)
#   2. Debug build with -DDIGG_SANITIZE=address + full ctest suite
# Fails fast on the first broken configuration.
#
# Usage: scripts/ci.sh [ctest args...]
#   RELEASE_DIR  Release build dir (default build-release)
#   ASAN_DIR     Debug+ASan build dir (default build-asan)
#   JOBS         parallelism (default nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

RELEASE_DIR=${RELEASE_DIR:-build-release}
ASAN_DIR=${ASAN_DIR:-build-asan}
JOBS=${JOBS:-$(nproc)}

run_config() {
  local dir=$1 label=$2
  shift 2
  echo "== [$label] configure + build ($dir) =="
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  echo "== [$label] ctest =="
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" "${CTEST_ARGS[@]}")
}

CTEST_ARGS=("$@")

run_config "$RELEASE_DIR" "Release" -DCMAKE_BUILD_TYPE=Release
run_config "$ASAN_DIR" "Debug+ASan" -DCMAKE_BUILD_TYPE=Debug \
  -DDIGG_SANITIZE=address

echo "ci.sh: both configurations green"
