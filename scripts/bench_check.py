#!/usr/bin/env python3
"""Bench-regression gate: compare fresh BENCH_*.json reports to baselines.

Usage:
  scripts/bench_check.py [--threshold 0.25] BASELINE_DIR NEW_DIR
  scripts/bench_check.py --self-test

Each report is the BENCH_<name>.json perf-trajectory format written by
bench/common.h and bench/perf_micro.cpp:

  {"bench": ..., "seed": ..., "wall_ms": ..., "metrics": {"gauges": {...}}}

For every report present in BASELINE_DIR, the same file must exist in
NEW_DIR and every *gated metric* must be within --threshold (default 25%)
of its baseline in the bad direction:

  - gauges ending in  per_sec / per_s / _ipc
                                          higher is better
  - gauges ending in  _ms / _us / _bytes / _ns_per_op / _ns_per_vote / _p99
                                          lower is better
  - wall_ms                               lower is better (reported but NOT
    gated: it includes corpus generation and, for perf_micro, however many
    benchmark repetitions google-benchmark chose — too noisy to gate on
    shared CI runners; the per-metric gauges are the stable signal)

Improvements never fail the gate. Counters and histograms are ignored: they
measure workload shape, not speed (the registry derives a gated <hist>_p99
gauge from every latency histogram, which is the gated tail-latency
signal). A report present only in NEW_DIR is listed as new and passes
(first PR for a bench commits its baseline).

A gated metric that exists in the baseline but not the new report fails the
gate — except *_ipc gauges, which are published only where perf_event
hardware counters open; those vanish as info when a runner has no PMU.

Exit status: 0 all gated metrics within threshold, 1 regression or missing
report, 2 usage/IO error. A delta table is always printed.
"""

import argparse
import json
import pathlib
import sys
import tempfile

HIGHER_BETTER = ("per_sec", "per_s", "_ipc")
LOWER_BETTER = ("_ms", "_us", "_bytes", "_ns_per_op", "_ns_per_vote", "_p99")
# Gated, but allowed to vanish: hardware-counter gauges only exist where
# perf_event_open works (bare metal, VMs with a vPMU).
HARDWARE_DEPENDENT = ("_ipc", "_cache_miss_pct")


def direction(name):
    """+1 higher-is-better, -1 lower-is-better, 0 not gated."""
    if name == "wall_ms":  # reported only; see the module docstring
        return 0
    if name.endswith(HIGHER_BETTER):
        return 1
    if name.endswith(LOWER_BETTER):
        return -1
    return 0


def load_report(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    metrics = {"wall_ms": float(doc.get("wall_ms", 0.0))}
    for name, value in doc.get("metrics", {}).get("gauges", {}).items():
        metrics[name] = float(value)
    return metrics


def compare_dirs(baseline_dir, new_dir, threshold, out=sys.stdout):
    """Returns the list of failure strings; prints the delta table."""
    baseline_dir = pathlib.Path(baseline_dir)
    new_dir = pathlib.Path(new_dir)
    failures = []
    rows = []

    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        failures.append(f"no BENCH_*.json baselines in {baseline_dir}")
    for base_path in baselines:
        new_path = new_dir / base_path.name
        if not new_path.exists():
            failures.append(f"{base_path.name}: missing from {new_dir}")
            continue
        base = load_report(base_path)
        new = load_report(new_path)
        for name in sorted(base):
            if name not in new:
                if name.endswith(HARDWARE_DEPENDENT):
                    rows.append(
                        (base_path.name, name, base[name], 0, 0.0, "info")
                    )
                elif direction(name) != 0:
                    failures.append(f"{base_path.name}: metric {name} vanished")
                continue
            b, n = base[name], new[name]
            delta = 0.0 if b == 0 else (n - b) / b
            gate = direction(name)
            # Regression = the bad direction for this metric's polarity.
            regressed = gate != 0 and (
                (gate > 0 and delta < -threshold)
                or (gate < 0 and delta > threshold)
            )
            status = "FAIL" if regressed else ("  ok" if gate else "info")
            rows.append(
                (base_path.name, name, b, n, 100.0 * delta, status)
            )
            if regressed:
                failures.append(
                    f"{base_path.name}: {name} regressed "
                    f"{100.0 * abs(delta):.1f}% "
                    f"(baseline {b:.6g}, new {n:.6g}, "
                    f"threshold {100.0 * threshold:.0f}%)"
                )
    for new_path in sorted(new_dir.glob("BENCH_*.json")):
        if not (baseline_dir / new_path.name).exists():
            rows.append((new_path.name, "(new benchmark)", 0, 0, 0.0, " new"))

    if rows:
        name_w = max(len(r[0]) for r in rows)
        metric_w = max(len(r[1]) for r in rows)
        print(
            f"{'report':<{name_w}}  {'metric':<{metric_w}}  "
            f"{'baseline':>12}  {'new':>12}  {'delta':>8}  status",
            file=out,
        )
        for name, metric, b, n, delta, status in rows:
            print(
                f"{name:<{name_w}}  {metric:<{metric_w}}  "
                f"{b:>12.6g}  {n:>12.6g}  {delta:>+7.1f}%  {status}",
                file=out,
            )
    return failures


def self_test():
    """Proves the gate trips on a 30% slowdown and stays green otherwise."""
    base = {
        "bench": "selftest",
        "seed": 42,
        "wall_ms": 100.0,
        "metrics": {"gauges": {"x.bench_votes_per_sec": 1000.0,
                               "x.scenario_gen_votes_per_sec": 5000.0,
                               "x.bench_replay_ms": 50.0,
                               "x.union_ns_per_op": 80.0,
                               "x.union_array_ns_per_op": 900.0,
                               "x.union_bitmap_ns_per_op": 60.0,
                               "x.bayes_fit_ns_per_vote": 40.0,
                               "x.ingest_story_us_p99": 120.0,
                               "x.bench_ipc": 2.0,
                               "serve.ingest_votes_per_sec": 2.0e6,
                               "serve.query_us_p99": 150.0,
                               "x.some_ratio": 0.5}},
    }

    def variant(scale_throughput, scale_latency):
        doc = json.loads(json.dumps(base))
        gauges = doc["metrics"]["gauges"]
        gauges["x.bench_votes_per_sec"] *= scale_throughput
        gauges["x.scenario_gen_votes_per_sec"] *= scale_throughput
        gauges["x.bench_ipc"] *= scale_throughput
        gauges["serve.ingest_votes_per_sec"] *= scale_throughput
        gauges["x.bench_replay_ms"] *= scale_latency
        gauges["x.union_ns_per_op"] *= scale_latency
        gauges["x.union_array_ns_per_op"] *= scale_latency
        gauges["x.union_bitmap_ns_per_op"] *= scale_latency
        gauges["x.bayes_fit_ns_per_vote"] *= scale_latency
        gauges["x.ingest_story_us_p99"] *= scale_latency
        gauges["serve.query_us_p99"] *= scale_latency
        return doc

    with tempfile.TemporaryDirectory() as tmp:
        tmp = pathlib.Path(tmp)
        for sub in ("baseline", "slow", "fine", "nopmu"):
            (tmp / sub).mkdir()
        (tmp / "baseline" / "BENCH_x.json").write_text(json.dumps(base))
        # 30% throughput/IPC drop AND 30% latency/ns-op/p99 growth: all
        # eleven gated gauges (including the serve ingest/query pair and
        # the per-mode union splits) must trip.
        (tmp / "slow" / "BENCH_x.json").write_text(
            json.dumps(variant(0.7, 1.3))
        )
        # 10% wobble plus an ungated gauge change: must pass.
        wobble = variant(0.9, 1.1)
        wobble["metrics"]["gauges"]["x.some_ratio"] = 9.9
        (tmp / "fine" / "BENCH_x.json").write_text(json.dumps(wobble))
        # IPC gauge vanished (runner without a PMU): must pass; a vanished
        # gated latency gauge must still fail.
        nopmu = json.loads(json.dumps(base))
        del nopmu["metrics"]["gauges"]["x.bench_ipc"]
        (tmp / "nopmu" / "BENCH_x.json").write_text(json.dumps(nopmu))

        slow = compare_dirs(tmp / "baseline", tmp / "slow", 0.25)
        assert len(slow) == 11, f"expected 11 failures, got {slow}"
        fine = compare_dirs(tmp / "baseline", tmp / "fine", 0.25)
        assert fine == [], f"expected clean pass, got {fine}"
        vanished_ipc = compare_dirs(tmp / "baseline", tmp / "nopmu", 0.25)
        assert vanished_ipc == [], (
            f"vanished _ipc must not fail, got {vanished_ipc}"
        )
        nop99 = json.loads(json.dumps(base))
        del nop99["metrics"]["gauges"]["x.ingest_story_us_p99"]
        (tmp / "nopmu" / "BENCH_x.json").write_text(json.dumps(nop99))
        vanished_p99 = compare_dirs(tmp / "baseline", tmp / "nopmu", 0.25)
        assert any("vanished" in f for f in vanished_p99), (
            f"vanished _p99 must fail, got {vanished_p99}"
        )
        missing = compare_dirs(tmp / "baseline", tmp / "fine" / "nope", 0.25)
        assert missing, "expected a failure for a missing report"
    print("bench_check.py self-test: ok")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate trips on a 30%% slowdown")
    parser.add_argument("dirs", nargs="*", metavar="DIR",
                        help="BASELINE_DIR NEW_DIR")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if len(args.dirs) != 2:
        parser.error("expected BASELINE_DIR and NEW_DIR (or --self-test)")
    failures = compare_dirs(args.dirs[0], args.dirs[1], args.threshold)
    if failures:
        print("\nbench_check.py: FAILED", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nbench_check.py: all benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
