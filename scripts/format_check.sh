#!/usr/bin/env bash
# clang-format gate over the files a change actually touches. Checking only
# the diff keeps the gate adoptable on a living tree: nobody is forced to
# reformat files their PR never opened.
#
# Usage: scripts/format_check.sh [base-ref]
#   base-ref  diff base (default: merge-base with origin/main, falling back
#             to HEAD~1). CI passes the PR base sha.
set -euo pipefail
cd "$(dirname "$0")/.."

BASE=${1:-$(git merge-base HEAD origin/main 2>/dev/null || echo 'HEAD~1')}

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format_check.sh: clang-format not installed; skipping (CI installs it)"
  exit 0
fi

mapfile -t files < <(git diff --name-only --diff-filter=ACMR "$BASE" -- \
  '*.cpp' '*.h' | while read -r f; do [[ -f $f ]] && echo "$f"; done)

if [[ ${#files[@]} -eq 0 ]]; then
  echo "format_check.sh: no C++ files changed since $BASE"
  exit 0
fi

echo "format_check.sh: checking ${#files[@]} file(s) changed since $BASE"
clang-format --dry-run --Werror "${files[@]}"
echo "format_check.sh: clean"
