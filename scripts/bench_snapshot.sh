#!/usr/bin/env bash
# Refreshes the per-PR perf trajectory:
#   BENCH_parallel.json   perf_micro suite with its --json reporter (metrics
#                         snapshot + wall clock; see bench/perf_micro.cpp)
#   BENCH_corpus_io.json  perf_corpus_io (CSV load vs snapshot save/load vs
#                         mmap, plus the million-user out-of-core leg:
#                         streamed generation RSS, mmap load, stream replay;
#                         exits nonzero if the snapshot-load 5x bar is
#                         missed; CORPUS_IO_ARGS can downscale, e.g.
#                         CORPUS_IO_ARGS='--large-users 200000')
#   BENCH_stream.json     perf_stream (vote-stream replay throughput and
#                         checkpoint save/restore latency)
#   BENCH_visibility.json perf_visibility (hybrid-set fan-union and
#                         membership ns/op, replay state bytes)
#   BENCH_serve.json      perf_serve (sustained multi-client live ingest
#                         over loopback TCP + online query tail latency;
#                         gates serve.ingest_votes_per_sec and
#                         serve.query_us_p99)
#
# Usage: scripts/bench_snapshot.sh [extra perf_micro args...]
#   BUILD_DIR       build directory (default build-release)
#   BENCH_MIN_TIME  --benchmark_min_time seconds (default 0.05; benchmark
#                   1.7.x takes a bare float)
#   SERVE_VOTES     perf_serve total vote volume (default 2000000; the
#                   nightly perf job raises it)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-release}
BENCH_MIN_TIME=${BENCH_MIN_TIME:-0.05}
SERVE_VOTES=${SERVE_VOTES:-2000000}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target perf_micro --target perf_corpus_io \
  --target perf_stream --target perf_visibility --target perf_serve

"$BUILD_DIR/bench/perf_micro" \
  --json BENCH_parallel.json \
  --benchmark_min_time="$BENCH_MIN_TIME" \
  "$@"
echo "wrote $(pwd)/BENCH_parallel.json"

# shellcheck disable=SC2086  # CORPUS_IO_ARGS is deliberately word-split
"$BUILD_DIR/bench/perf_corpus_io" --json BENCH_corpus_io.json \
  ${CORPUS_IO_ARGS:-}
echo "wrote $(pwd)/BENCH_corpus_io.json"

"$BUILD_DIR/bench/perf_stream" --json BENCH_stream.json
echo "wrote $(pwd)/BENCH_stream.json"

"$BUILD_DIR/bench/perf_visibility" --json BENCH_visibility.json
echo "wrote $(pwd)/BENCH_visibility.json"

"$BUILD_DIR/bench/perf_serve" --json BENCH_serve.json --votes "$SERVE_VOTES"
echo "wrote $(pwd)/BENCH_serve.json"
