# Empty dependencies file for ablation_modularity.
# This may be replaced when dependencies are built.
