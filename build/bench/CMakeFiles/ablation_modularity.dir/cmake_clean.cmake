file(REMOVE_RECURSE
  "CMakeFiles/ablation_modularity.dir/ablation_modularity.cpp.o"
  "CMakeFiles/ablation_modularity.dir/ablation_modularity.cpp.o.d"
  "ablation_modularity"
  "ablation_modularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_modularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
