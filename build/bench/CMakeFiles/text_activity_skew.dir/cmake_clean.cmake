file(REMOVE_RECURSE
  "CMakeFiles/text_activity_skew.dir/text_activity_skew.cpp.o"
  "CMakeFiles/text_activity_skew.dir/text_activity_skew.cpp.o.d"
  "text_activity_skew"
  "text_activity_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_activity_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
