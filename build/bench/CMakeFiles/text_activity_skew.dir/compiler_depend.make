# Empty compiler generated dependencies file for text_activity_skew.
# This may be replaced when dependencies are built.
