file(REMOVE_RECURSE
  "CMakeFiles/fig3a_influence.dir/fig3a_influence.cpp.o"
  "CMakeFiles/fig3a_influence.dir/fig3a_influence.cpp.o.d"
  "fig3a_influence"
  "fig3a_influence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_influence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
