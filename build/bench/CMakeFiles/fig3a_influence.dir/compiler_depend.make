# Empty compiler generated dependencies file for fig3a_influence.
# This may be replaced when dependencies are built.
