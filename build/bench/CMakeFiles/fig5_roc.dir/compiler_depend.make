# Empty compiler generated dependencies file for fig5_roc.
# This may be replaced when dependencies are built.
