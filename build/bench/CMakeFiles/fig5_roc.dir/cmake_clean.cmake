file(REMOVE_RECURSE
  "CMakeFiles/fig5_roc.dir/fig5_roc.cpp.o"
  "CMakeFiles/fig5_roc.dir/fig5_roc.cpp.o.d"
  "fig5_roc"
  "fig5_roc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_roc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
