
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2b_user_activity.cpp" "bench/CMakeFiles/fig2b_user_activity.dir/fig2b_user_activity.cpp.o" "gcc" "bench/CMakeFiles/fig2b_user_activity.dir/fig2b_user_activity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/digg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/digg_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamics/CMakeFiles/digg_dynamics.dir/DependInfo.cmake"
  "/root/repo/build/src/digg/CMakeFiles/digg_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/digg_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/digg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/digg_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
