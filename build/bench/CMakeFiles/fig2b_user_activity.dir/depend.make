# Empty dependencies file for fig2b_user_activity.
# This may be replaced when dependencies are built.
