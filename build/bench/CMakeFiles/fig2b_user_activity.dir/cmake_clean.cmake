file(REMOVE_RECURSE
  "CMakeFiles/fig2b_user_activity.dir/fig2b_user_activity.cpp.o"
  "CMakeFiles/fig2b_user_activity.dir/fig2b_user_activity.cpp.o.d"
  "fig2b_user_activity"
  "fig2b_user_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_user_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
