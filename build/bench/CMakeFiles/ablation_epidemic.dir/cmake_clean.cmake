file(REMOVE_RECURSE
  "CMakeFiles/ablation_epidemic.dir/ablation_epidemic.cpp.o"
  "CMakeFiles/ablation_epidemic.dir/ablation_epidemic.cpp.o.d"
  "ablation_epidemic"
  "ablation_epidemic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_epidemic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
