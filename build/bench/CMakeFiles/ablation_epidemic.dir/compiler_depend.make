# Empty compiler generated dependencies file for ablation_epidemic.
# This may be replaced when dependencies are built.
