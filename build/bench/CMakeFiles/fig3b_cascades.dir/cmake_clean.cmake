file(REMOVE_RECURSE
  "CMakeFiles/fig3b_cascades.dir/fig3b_cascades.cpp.o"
  "CMakeFiles/fig3b_cascades.dir/fig3b_cascades.cpp.o.d"
  "fig3b_cascades"
  "fig3b_cascades.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_cascades.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
