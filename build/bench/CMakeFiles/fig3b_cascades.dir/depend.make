# Empty dependencies file for fig3b_cascades.
# This may be replaced when dependencies are built.
