file(REMOVE_RECURSE
  "CMakeFiles/fig4_innetwork_vs_final.dir/fig4_innetwork_vs_final.cpp.o"
  "CMakeFiles/fig4_innetwork_vs_final.dir/fig4_innetwork_vs_final.cpp.o.d"
  "fig4_innetwork_vs_final"
  "fig4_innetwork_vs_final.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_innetwork_vs_final.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
