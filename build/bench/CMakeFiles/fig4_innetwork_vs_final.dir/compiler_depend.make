# Empty compiler generated dependencies file for fig4_innetwork_vs_final.
# This may be replaced when dependencies are built.
