# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig4_innetwork_vs_final.
