# Empty compiler generated dependencies file for fig1_vote_timeseries.
# This may be replaced when dependencies are built.
