file(REMOVE_RECURSE
  "CMakeFiles/fig1_vote_timeseries.dir/fig1_vote_timeseries.cpp.o"
  "CMakeFiles/fig1_vote_timeseries.dir/fig1_vote_timeseries.cpp.o.d"
  "fig1_vote_timeseries"
  "fig1_vote_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_vote_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
