file(REMOVE_RECURSE
  "CMakeFiles/fig2a_vote_histogram.dir/fig2a_vote_histogram.cpp.o"
  "CMakeFiles/fig2a_vote_histogram.dir/fig2a_vote_histogram.cpp.o.d"
  "fig2a_vote_histogram"
  "fig2a_vote_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_vote_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
