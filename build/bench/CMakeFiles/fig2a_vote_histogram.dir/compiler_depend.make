# Empty compiler generated dependencies file for fig2a_vote_histogram.
# This may be replaced when dependencies are built.
