# Empty dependencies file for fig6_friends_fans.
# This may be replaced when dependencies are built.
