file(REMOVE_RECURSE
  "CMakeFiles/fig6_friends_fans.dir/fig6_friends_fans.cpp.o"
  "CMakeFiles/fig6_friends_fans.dir/fig6_friends_fans.cpp.o.d"
  "fig6_friends_fans"
  "fig6_friends_fans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_friends_fans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
