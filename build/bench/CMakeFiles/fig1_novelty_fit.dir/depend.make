# Empty dependencies file for fig1_novelty_fit.
# This may be replaced when dependencies are built.
