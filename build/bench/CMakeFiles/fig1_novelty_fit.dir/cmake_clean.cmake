file(REMOVE_RECURSE
  "CMakeFiles/fig1_novelty_fit.dir/fig1_novelty_fit.cpp.o"
  "CMakeFiles/fig1_novelty_fit.dir/fig1_novelty_fit.cpp.o.d"
  "fig1_novelty_fit"
  "fig1_novelty_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_novelty_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
