# Empty dependencies file for weka_export.
# This may be replaced when dependencies are built.
