file(REMOVE_RECURSE
  "CMakeFiles/weka_export.dir/weka_export.cpp.o"
  "CMakeFiles/weka_export.dir/weka_export.cpp.o.d"
  "weka_export"
  "weka_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weka_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
