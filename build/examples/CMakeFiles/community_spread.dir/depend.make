# Empty dependencies file for community_spread.
# This may be replaced when dependencies are built.
