file(REMOVE_RECURSE
  "CMakeFiles/community_spread.dir/community_spread.cpp.o"
  "CMakeFiles/community_spread.dir/community_spread.cpp.o.d"
  "community_spread"
  "community_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
