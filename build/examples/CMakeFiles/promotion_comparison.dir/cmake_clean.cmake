file(REMOVE_RECURSE
  "CMakeFiles/promotion_comparison.dir/promotion_comparison.cpp.o"
  "CMakeFiles/promotion_comparison.dir/promotion_comparison.cpp.o.d"
  "promotion_comparison"
  "promotion_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promotion_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
