# Empty compiler generated dependencies file for promotion_comparison.
# This may be replaced when dependencies are built.
