file(REMOVE_RECURSE
  "CMakeFiles/centrality_analysis.dir/centrality_analysis.cpp.o"
  "CMakeFiles/centrality_analysis.dir/centrality_analysis.cpp.o.d"
  "centrality_analysis"
  "centrality_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centrality_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
