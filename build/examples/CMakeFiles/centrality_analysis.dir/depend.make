# Empty dependencies file for centrality_analysis.
# This may be replaced when dependencies are built.
