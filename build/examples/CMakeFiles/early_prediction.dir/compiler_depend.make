# Empty compiler generated dependencies file for early_prediction.
# This may be replaced when dependencies are built.
