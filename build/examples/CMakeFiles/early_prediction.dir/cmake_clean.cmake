file(REMOVE_RECURSE
  "CMakeFiles/early_prediction.dir/early_prediction.cpp.o"
  "CMakeFiles/early_prediction.dir/early_prediction.cpp.o.d"
  "early_prediction"
  "early_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/early_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
