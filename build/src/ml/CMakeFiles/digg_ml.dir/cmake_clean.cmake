file(REMOVE_RECURSE
  "CMakeFiles/digg_ml.dir/arff.cpp.o"
  "CMakeFiles/digg_ml.dir/arff.cpp.o.d"
  "CMakeFiles/digg_ml.dir/baseline.cpp.o"
  "CMakeFiles/digg_ml.dir/baseline.cpp.o.d"
  "CMakeFiles/digg_ml.dir/c45.cpp.o"
  "CMakeFiles/digg_ml.dir/c45.cpp.o.d"
  "CMakeFiles/digg_ml.dir/dataset.cpp.o"
  "CMakeFiles/digg_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/digg_ml.dir/forest.cpp.o"
  "CMakeFiles/digg_ml.dir/forest.cpp.o.d"
  "CMakeFiles/digg_ml.dir/roc.cpp.o"
  "CMakeFiles/digg_ml.dir/roc.cpp.o.d"
  "CMakeFiles/digg_ml.dir/validation.cpp.o"
  "CMakeFiles/digg_ml.dir/validation.cpp.o.d"
  "libdigg_ml.a"
  "libdigg_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digg_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
