
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/arff.cpp" "src/ml/CMakeFiles/digg_ml.dir/arff.cpp.o" "gcc" "src/ml/CMakeFiles/digg_ml.dir/arff.cpp.o.d"
  "/root/repo/src/ml/baseline.cpp" "src/ml/CMakeFiles/digg_ml.dir/baseline.cpp.o" "gcc" "src/ml/CMakeFiles/digg_ml.dir/baseline.cpp.o.d"
  "/root/repo/src/ml/c45.cpp" "src/ml/CMakeFiles/digg_ml.dir/c45.cpp.o" "gcc" "src/ml/CMakeFiles/digg_ml.dir/c45.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/digg_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/digg_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/forest.cpp" "src/ml/CMakeFiles/digg_ml.dir/forest.cpp.o" "gcc" "src/ml/CMakeFiles/digg_ml.dir/forest.cpp.o.d"
  "/root/repo/src/ml/roc.cpp" "src/ml/CMakeFiles/digg_ml.dir/roc.cpp.o" "gcc" "src/ml/CMakeFiles/digg_ml.dir/roc.cpp.o.d"
  "/root/repo/src/ml/validation.cpp" "src/ml/CMakeFiles/digg_ml.dir/validation.cpp.o" "gcc" "src/ml/CMakeFiles/digg_ml.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/digg_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
