file(REMOVE_RECURSE
  "libdigg_ml.a"
)
