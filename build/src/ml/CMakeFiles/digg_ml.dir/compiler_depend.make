# Empty compiler generated dependencies file for digg_ml.
# This may be replaced when dependencies are built.
