file(REMOVE_RECURSE
  "libdigg_data.a"
)
