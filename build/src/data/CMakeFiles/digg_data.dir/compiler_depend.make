# Empty compiler generated dependencies file for digg_data.
# This may be replaced when dependencies are built.
