file(REMOVE_RECURSE
  "CMakeFiles/digg_data.dir/corpus.cpp.o"
  "CMakeFiles/digg_data.dir/corpus.cpp.o.d"
  "CMakeFiles/digg_data.dir/filters.cpp.o"
  "CMakeFiles/digg_data.dir/filters.cpp.o.d"
  "CMakeFiles/digg_data.dir/io.cpp.o"
  "CMakeFiles/digg_data.dir/io.cpp.o.d"
  "CMakeFiles/digg_data.dir/synthetic.cpp.o"
  "CMakeFiles/digg_data.dir/synthetic.cpp.o.d"
  "libdigg_data.a"
  "libdigg_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digg_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
