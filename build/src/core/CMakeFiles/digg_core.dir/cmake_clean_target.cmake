file(REMOVE_RECURSE
  "libdigg_core.a"
)
