# Empty dependencies file for digg_core.
# This may be replaced when dependencies are built.
