file(REMOVE_RECURSE
  "CMakeFiles/digg_core.dir/ablation.cpp.o"
  "CMakeFiles/digg_core.dir/ablation.cpp.o.d"
  "CMakeFiles/digg_core.dir/cascade.cpp.o"
  "CMakeFiles/digg_core.dir/cascade.cpp.o.d"
  "CMakeFiles/digg_core.dir/experiment.cpp.o"
  "CMakeFiles/digg_core.dir/experiment.cpp.o.d"
  "CMakeFiles/digg_core.dir/features.cpp.o"
  "CMakeFiles/digg_core.dir/features.cpp.o.d"
  "CMakeFiles/digg_core.dir/influence.cpp.o"
  "CMakeFiles/digg_core.dir/influence.cpp.o.d"
  "CMakeFiles/digg_core.dir/predictor.cpp.o"
  "CMakeFiles/digg_core.dir/predictor.cpp.o.d"
  "CMakeFiles/digg_core.dir/report.cpp.o"
  "CMakeFiles/digg_core.dir/report.cpp.o.d"
  "libdigg_core.a"
  "libdigg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
