file(REMOVE_RECURSE
  "CMakeFiles/digg_graph.dir/centrality.cpp.o"
  "CMakeFiles/digg_graph.dir/centrality.cpp.o.d"
  "CMakeFiles/digg_graph.dir/community.cpp.o"
  "CMakeFiles/digg_graph.dir/community.cpp.o.d"
  "CMakeFiles/digg_graph.dir/digraph.cpp.o"
  "CMakeFiles/digg_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/digg_graph.dir/generators.cpp.o"
  "CMakeFiles/digg_graph.dir/generators.cpp.o.d"
  "CMakeFiles/digg_graph.dir/metrics.cpp.o"
  "CMakeFiles/digg_graph.dir/metrics.cpp.o.d"
  "CMakeFiles/digg_graph.dir/traversal.cpp.o"
  "CMakeFiles/digg_graph.dir/traversal.cpp.o.d"
  "libdigg_graph.a"
  "libdigg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
