# Empty dependencies file for digg_graph.
# This may be replaced when dependencies are built.
