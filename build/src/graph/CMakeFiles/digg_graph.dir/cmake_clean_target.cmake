file(REMOVE_RECURSE
  "libdigg_graph.a"
)
