
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/digg/friends_interface.cpp" "src/digg/CMakeFiles/digg_platform.dir/friends_interface.cpp.o" "gcc" "src/digg/CMakeFiles/digg_platform.dir/friends_interface.cpp.o.d"
  "/root/repo/src/digg/platform.cpp" "src/digg/CMakeFiles/digg_platform.dir/platform.cpp.o" "gcc" "src/digg/CMakeFiles/digg_platform.dir/platform.cpp.o.d"
  "/root/repo/src/digg/promotion.cpp" "src/digg/CMakeFiles/digg_platform.dir/promotion.cpp.o" "gcc" "src/digg/CMakeFiles/digg_platform.dir/promotion.cpp.o.d"
  "/root/repo/src/digg/queue.cpp" "src/digg/CMakeFiles/digg_platform.dir/queue.cpp.o" "gcc" "src/digg/CMakeFiles/digg_platform.dir/queue.cpp.o.d"
  "/root/repo/src/digg/story.cpp" "src/digg/CMakeFiles/digg_platform.dir/story.cpp.o" "gcc" "src/digg/CMakeFiles/digg_platform.dir/story.cpp.o.d"
  "/root/repo/src/digg/user.cpp" "src/digg/CMakeFiles/digg_platform.dir/user.cpp.o" "gcc" "src/digg/CMakeFiles/digg_platform.dir/user.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/digg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/digg_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
