# Empty dependencies file for digg_platform.
# This may be replaced when dependencies are built.
