file(REMOVE_RECURSE
  "CMakeFiles/digg_platform.dir/friends_interface.cpp.o"
  "CMakeFiles/digg_platform.dir/friends_interface.cpp.o.d"
  "CMakeFiles/digg_platform.dir/platform.cpp.o"
  "CMakeFiles/digg_platform.dir/platform.cpp.o.d"
  "CMakeFiles/digg_platform.dir/promotion.cpp.o"
  "CMakeFiles/digg_platform.dir/promotion.cpp.o.d"
  "CMakeFiles/digg_platform.dir/queue.cpp.o"
  "CMakeFiles/digg_platform.dir/queue.cpp.o.d"
  "CMakeFiles/digg_platform.dir/story.cpp.o"
  "CMakeFiles/digg_platform.dir/story.cpp.o.d"
  "CMakeFiles/digg_platform.dir/user.cpp.o"
  "CMakeFiles/digg_platform.dir/user.cpp.o.d"
  "libdigg_platform.a"
  "libdigg_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digg_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
