file(REMOVE_RECURSE
  "libdigg_platform.a"
)
