# Empty dependencies file for digg_stats.
# This may be replaced when dependencies are built.
