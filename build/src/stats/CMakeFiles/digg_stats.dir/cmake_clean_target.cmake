file(REMOVE_RECURSE
  "libdigg_stats.a"
)
