file(REMOVE_RECURSE
  "CMakeFiles/digg_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/digg_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/digg_stats.dir/histogram.cpp.o"
  "CMakeFiles/digg_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/digg_stats.dir/hypothesis.cpp.o"
  "CMakeFiles/digg_stats.dir/hypothesis.cpp.o.d"
  "CMakeFiles/digg_stats.dir/powerlaw.cpp.o"
  "CMakeFiles/digg_stats.dir/powerlaw.cpp.o.d"
  "CMakeFiles/digg_stats.dir/rng.cpp.o"
  "CMakeFiles/digg_stats.dir/rng.cpp.o.d"
  "CMakeFiles/digg_stats.dir/summary.cpp.o"
  "CMakeFiles/digg_stats.dir/summary.cpp.o.d"
  "CMakeFiles/digg_stats.dir/table.cpp.o"
  "CMakeFiles/digg_stats.dir/table.cpp.o.d"
  "CMakeFiles/digg_stats.dir/timeseries.cpp.o"
  "CMakeFiles/digg_stats.dir/timeseries.cpp.o.d"
  "libdigg_stats.a"
  "libdigg_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digg_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
