# Empty dependencies file for digg_dynamics.
# This may be replaced when dependencies are built.
