file(REMOVE_RECURSE
  "libdigg_dynamics.a"
)
