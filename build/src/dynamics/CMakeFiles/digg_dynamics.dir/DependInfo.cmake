
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dynamics/cascade_sim.cpp" "src/dynamics/CMakeFiles/digg_dynamics.dir/cascade_sim.cpp.o" "gcc" "src/dynamics/CMakeFiles/digg_dynamics.dir/cascade_sim.cpp.o.d"
  "/root/repo/src/dynamics/epidemic.cpp" "src/dynamics/CMakeFiles/digg_dynamics.dir/epidemic.cpp.o" "gcc" "src/dynamics/CMakeFiles/digg_dynamics.dir/epidemic.cpp.o.d"
  "/root/repo/src/dynamics/novelty.cpp" "src/dynamics/CMakeFiles/digg_dynamics.dir/novelty.cpp.o" "gcc" "src/dynamics/CMakeFiles/digg_dynamics.dir/novelty.cpp.o.d"
  "/root/repo/src/dynamics/site_sim.cpp" "src/dynamics/CMakeFiles/digg_dynamics.dir/site_sim.cpp.o" "gcc" "src/dynamics/CMakeFiles/digg_dynamics.dir/site_sim.cpp.o.d"
  "/root/repo/src/dynamics/threshold_model.cpp" "src/dynamics/CMakeFiles/digg_dynamics.dir/threshold_model.cpp.o" "gcc" "src/dynamics/CMakeFiles/digg_dynamics.dir/threshold_model.cpp.o.d"
  "/root/repo/src/dynamics/vote_model.cpp" "src/dynamics/CMakeFiles/digg_dynamics.dir/vote_model.cpp.o" "gcc" "src/dynamics/CMakeFiles/digg_dynamics.dir/vote_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/digg/CMakeFiles/digg_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/digg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/digg_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
