file(REMOVE_RECURSE
  "CMakeFiles/digg_dynamics.dir/cascade_sim.cpp.o"
  "CMakeFiles/digg_dynamics.dir/cascade_sim.cpp.o.d"
  "CMakeFiles/digg_dynamics.dir/epidemic.cpp.o"
  "CMakeFiles/digg_dynamics.dir/epidemic.cpp.o.d"
  "CMakeFiles/digg_dynamics.dir/novelty.cpp.o"
  "CMakeFiles/digg_dynamics.dir/novelty.cpp.o.d"
  "CMakeFiles/digg_dynamics.dir/site_sim.cpp.o"
  "CMakeFiles/digg_dynamics.dir/site_sim.cpp.o.d"
  "CMakeFiles/digg_dynamics.dir/threshold_model.cpp.o"
  "CMakeFiles/digg_dynamics.dir/threshold_model.cpp.o.d"
  "CMakeFiles/digg_dynamics.dir/vote_model.cpp.o"
  "CMakeFiles/digg_dynamics.dir/vote_model.cpp.o.d"
  "libdigg_dynamics.a"
  "libdigg_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digg_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
