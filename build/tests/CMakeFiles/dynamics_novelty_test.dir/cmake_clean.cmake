file(REMOVE_RECURSE
  "CMakeFiles/dynamics_novelty_test.dir/dynamics_novelty_test.cpp.o"
  "CMakeFiles/dynamics_novelty_test.dir/dynamics_novelty_test.cpp.o.d"
  "dynamics_novelty_test"
  "dynamics_novelty_test.pdb"
  "dynamics_novelty_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamics_novelty_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
