# Empty dependencies file for dynamics_novelty_test.
# This may be replaced when dependencies are built.
