# Empty dependencies file for digg_promotion_test.
# This may be replaced when dependencies are built.
