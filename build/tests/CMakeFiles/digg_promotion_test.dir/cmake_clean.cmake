file(REMOVE_RECURSE
  "CMakeFiles/digg_promotion_test.dir/digg_promotion_test.cpp.o"
  "CMakeFiles/digg_promotion_test.dir/digg_promotion_test.cpp.o.d"
  "digg_promotion_test"
  "digg_promotion_test.pdb"
  "digg_promotion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digg_promotion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
