file(REMOVE_RECURSE
  "CMakeFiles/graph_community_test.dir/graph_community_test.cpp.o"
  "CMakeFiles/graph_community_test.dir/graph_community_test.cpp.o.d"
  "graph_community_test"
  "graph_community_test.pdb"
  "graph_community_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_community_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
