# Empty compiler generated dependencies file for graph_community_test.
# This may be replaced when dependencies are built.
