# Empty dependencies file for digg_friends_test.
# This may be replaced when dependencies are built.
