file(REMOVE_RECURSE
  "CMakeFiles/digg_friends_test.dir/digg_friends_test.cpp.o"
  "CMakeFiles/digg_friends_test.dir/digg_friends_test.cpp.o.d"
  "digg_friends_test"
  "digg_friends_test.pdb"
  "digg_friends_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digg_friends_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
