file(REMOVE_RECURSE
  "CMakeFiles/ml_baseline_test.dir/ml_baseline_test.cpp.o"
  "CMakeFiles/ml_baseline_test.dir/ml_baseline_test.cpp.o.d"
  "ml_baseline_test"
  "ml_baseline_test.pdb"
  "ml_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
