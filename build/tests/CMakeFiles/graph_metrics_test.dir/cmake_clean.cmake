file(REMOVE_RECURSE
  "CMakeFiles/graph_metrics_test.dir/graph_metrics_test.cpp.o"
  "CMakeFiles/graph_metrics_test.dir/graph_metrics_test.cpp.o.d"
  "graph_metrics_test"
  "graph_metrics_test.pdb"
  "graph_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
