# Empty dependencies file for property_ml_test.
# This may be replaced when dependencies are built.
