file(REMOVE_RECURSE
  "CMakeFiles/property_ml_test.dir/property_ml_test.cpp.o"
  "CMakeFiles/property_ml_test.dir/property_ml_test.cpp.o.d"
  "property_ml_test"
  "property_ml_test.pdb"
  "property_ml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_ml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
