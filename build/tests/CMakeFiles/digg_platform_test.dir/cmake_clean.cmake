file(REMOVE_RECURSE
  "CMakeFiles/digg_platform_test.dir/digg_platform_test.cpp.o"
  "CMakeFiles/digg_platform_test.dir/digg_platform_test.cpp.o.d"
  "digg_platform_test"
  "digg_platform_test.pdb"
  "digg_platform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digg_platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
