# Empty dependencies file for digg_platform_test.
# This may be replaced when dependencies are built.
