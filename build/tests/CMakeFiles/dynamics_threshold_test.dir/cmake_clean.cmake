file(REMOVE_RECURSE
  "CMakeFiles/dynamics_threshold_test.dir/dynamics_threshold_test.cpp.o"
  "CMakeFiles/dynamics_threshold_test.dir/dynamics_threshold_test.cpp.o.d"
  "dynamics_threshold_test"
  "dynamics_threshold_test.pdb"
  "dynamics_threshold_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamics_threshold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
