# Empty dependencies file for dynamics_threshold_test.
# This may be replaced when dependencies are built.
