# Empty dependencies file for ml_c45_test.
# This may be replaced when dependencies are built.
