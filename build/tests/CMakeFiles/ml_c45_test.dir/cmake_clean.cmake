file(REMOVE_RECURSE
  "CMakeFiles/ml_c45_test.dir/ml_c45_test.cpp.o"
  "CMakeFiles/ml_c45_test.dir/ml_c45_test.cpp.o.d"
  "ml_c45_test"
  "ml_c45_test.pdb"
  "ml_c45_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_c45_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
