file(REMOVE_RECURSE
  "CMakeFiles/data_filters_test.dir/data_filters_test.cpp.o"
  "CMakeFiles/data_filters_test.dir/data_filters_test.cpp.o.d"
  "data_filters_test"
  "data_filters_test.pdb"
  "data_filters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_filters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
