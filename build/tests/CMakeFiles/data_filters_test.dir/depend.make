# Empty dependencies file for data_filters_test.
# This may be replaced when dependencies are built.
