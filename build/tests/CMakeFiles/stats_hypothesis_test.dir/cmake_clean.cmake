file(REMOVE_RECURSE
  "CMakeFiles/stats_hypothesis_test.dir/stats_hypothesis_test.cpp.o"
  "CMakeFiles/stats_hypothesis_test.dir/stats_hypothesis_test.cpp.o.d"
  "stats_hypothesis_test"
  "stats_hypothesis_test.pdb"
  "stats_hypothesis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_hypothesis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
