# Empty dependencies file for stats_hypothesis_test.
# This may be replaced when dependencies are built.
