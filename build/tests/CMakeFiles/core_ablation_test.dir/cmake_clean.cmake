file(REMOVE_RECURSE
  "CMakeFiles/core_ablation_test.dir/core_ablation_test.cpp.o"
  "CMakeFiles/core_ablation_test.dir/core_ablation_test.cpp.o.d"
  "core_ablation_test"
  "core_ablation_test.pdb"
  "core_ablation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ablation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
