file(REMOVE_RECURSE
  "CMakeFiles/dynamics_site_sim_test.dir/dynamics_site_sim_test.cpp.o"
  "CMakeFiles/dynamics_site_sim_test.dir/dynamics_site_sim_test.cpp.o.d"
  "dynamics_site_sim_test"
  "dynamics_site_sim_test.pdb"
  "dynamics_site_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamics_site_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
