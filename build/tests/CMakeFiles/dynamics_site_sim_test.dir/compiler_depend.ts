# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dynamics_site_sim_test.
