# Empty compiler generated dependencies file for dynamics_site_sim_test.
# This may be replaced when dependencies are built.
