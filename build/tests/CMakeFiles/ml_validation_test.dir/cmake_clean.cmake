file(REMOVE_RECURSE
  "CMakeFiles/ml_validation_test.dir/ml_validation_test.cpp.o"
  "CMakeFiles/ml_validation_test.dir/ml_validation_test.cpp.o.d"
  "ml_validation_test"
  "ml_validation_test.pdb"
  "ml_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
