# Empty dependencies file for ml_roc_test.
# This may be replaced when dependencies are built.
