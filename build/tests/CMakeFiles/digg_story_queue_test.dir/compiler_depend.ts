# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for digg_story_queue_test.
