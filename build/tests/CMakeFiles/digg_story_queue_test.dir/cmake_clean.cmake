file(REMOVE_RECURSE
  "CMakeFiles/digg_story_queue_test.dir/digg_story_queue_test.cpp.o"
  "CMakeFiles/digg_story_queue_test.dir/digg_story_queue_test.cpp.o.d"
  "digg_story_queue_test"
  "digg_story_queue_test.pdb"
  "digg_story_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digg_story_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
