# Empty compiler generated dependencies file for digg_story_queue_test.
# This may be replaced when dependencies are built.
