file(REMOVE_RECURSE
  "CMakeFiles/digg_user_test.dir/digg_user_test.cpp.o"
  "CMakeFiles/digg_user_test.dir/digg_user_test.cpp.o.d"
  "digg_user_test"
  "digg_user_test.pdb"
  "digg_user_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digg_user_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
