# Empty compiler generated dependencies file for digg_user_test.
# This may be replaced when dependencies are built.
