# Empty compiler generated dependencies file for dynamics_vote_model_test.
# This may be replaced when dependencies are built.
