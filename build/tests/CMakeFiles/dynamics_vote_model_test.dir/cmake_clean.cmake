file(REMOVE_RECURSE
  "CMakeFiles/dynamics_vote_model_test.dir/dynamics_vote_model_test.cpp.o"
  "CMakeFiles/dynamics_vote_model_test.dir/dynamics_vote_model_test.cpp.o.d"
  "dynamics_vote_model_test"
  "dynamics_vote_model_test.pdb"
  "dynamics_vote_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamics_vote_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
