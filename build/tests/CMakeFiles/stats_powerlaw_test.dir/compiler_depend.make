# Empty compiler generated dependencies file for stats_powerlaw_test.
# This may be replaced when dependencies are built.
