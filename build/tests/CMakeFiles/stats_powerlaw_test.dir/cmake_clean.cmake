file(REMOVE_RECURSE
  "CMakeFiles/stats_powerlaw_test.dir/stats_powerlaw_test.cpp.o"
  "CMakeFiles/stats_powerlaw_test.dir/stats_powerlaw_test.cpp.o.d"
  "stats_powerlaw_test"
  "stats_powerlaw_test.pdb"
  "stats_powerlaw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_powerlaw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
