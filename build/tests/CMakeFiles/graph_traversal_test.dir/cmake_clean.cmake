file(REMOVE_RECURSE
  "CMakeFiles/graph_traversal_test.dir/graph_traversal_test.cpp.o"
  "CMakeFiles/graph_traversal_test.dir/graph_traversal_test.cpp.o.d"
  "graph_traversal_test"
  "graph_traversal_test.pdb"
  "graph_traversal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_traversal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
