file(REMOVE_RECURSE
  "CMakeFiles/data_corpus_test.dir/data_corpus_test.cpp.o"
  "CMakeFiles/data_corpus_test.dir/data_corpus_test.cpp.o.d"
  "data_corpus_test"
  "data_corpus_test.pdb"
  "data_corpus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
