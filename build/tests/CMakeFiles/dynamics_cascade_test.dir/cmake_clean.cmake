file(REMOVE_RECURSE
  "CMakeFiles/dynamics_cascade_test.dir/dynamics_cascade_test.cpp.o"
  "CMakeFiles/dynamics_cascade_test.dir/dynamics_cascade_test.cpp.o.d"
  "dynamics_cascade_test"
  "dynamics_cascade_test.pdb"
  "dynamics_cascade_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamics_cascade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
