# Empty compiler generated dependencies file for dynamics_cascade_test.
# This may be replaced when dependencies are built.
