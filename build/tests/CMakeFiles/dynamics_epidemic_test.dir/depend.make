# Empty dependencies file for dynamics_epidemic_test.
# This may be replaced when dependencies are built.
