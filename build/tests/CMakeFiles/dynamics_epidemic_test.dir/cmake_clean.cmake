file(REMOVE_RECURSE
  "CMakeFiles/dynamics_epidemic_test.dir/dynamics_epidemic_test.cpp.o"
  "CMakeFiles/dynamics_epidemic_test.dir/dynamics_epidemic_test.cpp.o.d"
  "dynamics_epidemic_test"
  "dynamics_epidemic_test.pdb"
  "dynamics_epidemic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamics_epidemic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
