file(REMOVE_RECURSE
  "CMakeFiles/ml_arff_test.dir/ml_arff_test.cpp.o"
  "CMakeFiles/ml_arff_test.dir/ml_arff_test.cpp.o.d"
  "ml_arff_test"
  "ml_arff_test.pdb"
  "ml_arff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_arff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
