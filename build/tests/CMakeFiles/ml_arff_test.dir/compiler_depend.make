# Empty compiler generated dependencies file for ml_arff_test.
# This may be replaced when dependencies are built.
