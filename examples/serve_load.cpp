// Load driver for serve_digg: replays a scenario corpus AT the server over
// several TCP connections — submits + votes in, then a sync barrier, then a
// cascade-state and a promotion-prediction query per story. With --verify
// it applies the identical events to a local live-mode engine and demands
// the server's replies match field for field: an end-to-end proof that the
// ingest path (frames -> rings -> shard-parallel apply) computes exactly
// what a single-threaded engine would.
//
// Stories are partitioned across connections (a story's votes must arrive
// in time order, so one story never spans two sockets); cross-story
// interleaving is whatever TCP delivers, which is precisely the ordering
// freedom throughput mode claims is harmless.
//
// Usage: serve_load [seed] [--scenario <name>] --port <p>
//                   [--connections <n>] [--stories <n>] [--votes <n>]
//                   [--verify] [--smoke]
//
//   --port <p>         serve_digg's bound port (required)
//   --connections <n>  parallel client connections (default 4)
//   --stories <n>      stories to submit (default 400)
//   --votes <n>        max votes per story incl. the submit (default 50)
//   --verify           compare every reply against a local engine
//   --smoke            CI smoke defaults: 120 stories, 3 connections,
//                      --verify on, and at least one v10 prediction demanded

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/core/features.h"
#include "src/core/predictor.h"
#include "src/serve/client.h"
#include "src/stream/engine.h"

using namespace digg;
using serve::connect_loopback;
using serve::read_messages;
using serve::write_all;

int main(int argc, char** argv) {
  long port = 0, connections = 4, max_stories = 400, max_votes = 50;
  bool verify = false, smoke = false;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    auto take_long = [&](const char* flag) -> long {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
        std::exit(2);
      }
      return std::strtol(argv[++i], nullptr, 10);
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      port = take_long("--port");
    } else if (std::strcmp(argv[i], "--connections") == 0) {
      connections = take_long("--connections");
    } else if (std::strcmp(argv[i], "--stories") == 0) {
      max_stories = take_long("--stories");
    } else if (std::strcmp(argv[i], "--votes") == 0) {
      max_votes = take_long("--votes");
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (smoke) {
    verify = true;
    max_stories = 120;
    connections = 3;
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "%s: --port is required\n", argv[0]);
    return 2;
  }
  if (connections < 1) connections = 1;

  const bench::Context ctx =
      bench::make_context(static_cast<int>(args.size()), args.data(),
                          "Serve load driver");
  const data::Corpus& corpus = ctx.synthetic.corpus;

  // The load: real corpus stories (upcoming first — they carry the v10
  // checkpoint crossings the prediction queries care about), truncated to
  // max_votes events each.
  struct Load {
    const data::Story* story;
    std::size_t events;  // submit + votes to send
  };
  std::vector<Load> load;
  for (const auto* list : {&corpus.upcoming, &corpus.front_page}) {
    for (const data::Story& s : *list) {
      if (static_cast<long>(load.size()) >= max_stories) break;
      const std::size_t events =
          std::min(s.vote_count(), static_cast<std::size_t>(max_votes));
      if (events == 0) continue;
      load.push_back({&s, events});
    }
  }
  std::size_t total_events = 0;
  for (const Load& l : load) total_events += l.events;
  std::printf("load: %zu stories, %zu events, %ld connections\n\n",
              load.size(), total_events, connections);

  // Pre-encode each connection's event frames (story i -> connection
  // i % connections, so per-story order survives).
  std::vector<std::vector<char>> send_buf(
      static_cast<std::size_t>(connections));
  for (std::size_t i = 0; i < load.size(); ++i) {
    auto& buf = send_buf[i % static_cast<std::size_t>(connections)];
    const data::Story& v = *load[i].story;
    serve::encode(serve::SubmitMsg{v.id, v.voters()[0], v.times()[0]}, buf);
    for (std::size_t k = 1; k < load[i].events; ++k)
      serve::encode(serve::VoteMsg{v.id, v.voters()[k], v.times()[k]}, buf);
  }

  // Drive. Each connection: events, sync barrier, then per-story state +
  // predict queries.
  struct ConnResult {
    bool ok = false;
    std::string error;
    std::vector<serve::StateReplyMsg> states;     // by owned-story order
    std::vector<serve::PredictReplyMsg> predicts;
  };
  std::vector<ConnResult> results(static_cast<std::size_t>(connections));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (long c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      ConnResult& r = results[static_cast<std::size_t>(c)];
      const int fd = connect_loopback(static_cast<std::uint16_t>(port));
      if (fd < 0) {
        r.error = "connect failed";
        return;
      }
      serve::FrameDecoder decoder;
      std::vector<serve::Message> replies;
      do {
        const auto& buf = send_buf[static_cast<std::size_t>(c)];
        if (!write_all(fd, buf.data(), buf.size())) {
          r.error = "event write failed";
          break;
        }
        std::vector<char> frame;
        serve::encode(serve::SyncMsg{static_cast<std::uint32_t>(c)}, frame);
        if (!write_all(fd, frame.data(), frame.size())) {
          r.error = "sync write failed";
          break;
        }
        if (!read_messages(fd, decoder, replies, 1, r.error)) break;
        if (!std::holds_alternative<serve::SyncReplyMsg>(replies[0])) {
          r.error = "expected sync reply";
          break;
        }
        // Queries for every story this connection owns.
        frame.clear();
        std::size_t owned = 0;
        for (std::size_t i = static_cast<std::size_t>(c); i < load.size();
             i += static_cast<std::size_t>(connections)) {
          const std::uint32_t id = load[i].story->id;
          serve::encode(serve::QueryStateMsg{id}, frame);
          serve::encode(serve::QueryPredictMsg{id}, frame);
          ++owned;
        }
        if (!write_all(fd, frame.data(), frame.size())) {
          r.error = "query write failed";
          break;
        }
        replies.clear();
        if (!read_messages(fd, decoder, replies, owned * 2, r.error)) break;
        r.ok = true;
        for (const serve::Message& m : replies) {
          if (const auto* s = std::get_if<serve::StateReplyMsg>(&m))
            r.states.push_back(*s);
          else if (const auto* p = std::get_if<serve::PredictReplyMsg>(&m))
            r.predicts.push_back(*p);
          else {
            r.ok = false;
            r.error = "unexpected reply type";
            break;
          }
        }
        if (r.ok && (r.states.size() != owned || r.predicts.size() != owned)) {
          r.ok = false;
          r.error = "reply count mismatch";
        }
      } while (false);
      ::close(fd);
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  for (long c = 0; c < connections; ++c) {
    if (!results[static_cast<std::size_t>(c)].ok) {
      std::fprintf(stderr, "connection %ld failed: %s\n", c,
                   results[static_cast<std::size_t>(c)].error.c_str());
      return 1;
    }
  }
  std::printf("sent %zu events in %.3fs (%.0f events/sec)\n", total_events,
              wall_s, static_cast<double>(total_events) / wall_s);

  std::size_t v10_predictions = 0;
  for (const ConnResult& r : results)
    for (const serve::PredictReplyMsg& p : r.predicts)
      if (p.has_c45) ++v10_predictions;
  std::printf("v10 predictions made: %zu\n", v10_predictions);
  if (smoke && v10_predictions == 0) {
    std::fprintf(stderr, "smoke: expected at least one v10 prediction\n");
    return 1;
  }

  if (!verify) return 0;

  // Local oracle: same events through a single-threaded live engine. Per-
  // story outcomes are independent of cross-story order, so story-major
  // application here must match whatever interleaving the server saw.
  const std::vector<core::StoryFeatures> training =
      core::extract_features(corpus.front_page, corpus.network);
  const core::InterestingnessPredictor predictor =
      core::InterestingnessPredictor::train(training);
  stream::StreamParams sp;
  sp.predictor = &predictor;
  sp.bayes.enabled = true;
  stream::StreamEngine oracle(corpus.network, sp);
  for (const Load& l : load) {
    const data::Story& v = *l.story;
    const auto slot = oracle.live_submit(v.id, v.voters()[0], v.times()[0]);
    for (std::size_t k = 1; k < l.events; ++k)
      oracle.live_vote(slot, v.voters()[k], v.times()[k]);
    oracle.note_events_applied(l.events);
  }

  std::size_t mismatches = 0;
  for (long c = 0; c < connections; ++c) {
    const ConnResult& r = results[static_cast<std::size_t>(c)];
    std::size_t j = 0;
    for (std::size_t i = static_cast<std::size_t>(c); i < load.size();
         i += static_cast<std::size_t>(connections), ++j) {
      const auto expect =
          oracle.query_story(static_cast<std::uint32_t>(i));
      const serve::StateReplyMsg& st = r.states[j];
      const serve::PredictReplyMsg& pr = r.predicts[j];
      bool ok = st.found == 1 && st.story_id == expect.id &&
                st.votes == expect.final_votes &&
                st.fans1 == expect.fans1 &&
                st.cascade.size() == expect.cascade.size() &&
                st.promoted == (expect.promoted_time.has_value() ? 1 : 0) &&
                st.promoted_time == expect.promoted_time.value_or(0.0);
      for (std::size_t k = 0; ok && k < st.cascade.size(); ++k)
        ok = st.cascade[k] == expect.cascade[k];
      ok = ok && pr.found == 1 &&
           pr.has_c45 == (expect.predicted_interesting.has_value() ? 1 : 0) &&
           pr.c45_yes ==
               (expect.predicted_interesting.value_or(false) ? 1 : 0) &&
           pr.has_bayes == (expect.bayes_interesting.has_value() ? 1 : 0) &&
           pr.bayes_yes == (expect.bayes_interesting.value_or(false) ? 1 : 0) &&
           pr.bayes_expected_final == expect.bayes_expected_final;
      if (!ok) {
        ++mismatches;
        if (mismatches <= 5)
          std::fprintf(stderr,
                       "mismatch story id=%u: server votes=%llu fans1=%u "
                       "vs local votes=%zu fans1=%zu\n",
                       st.story_id,
                       static_cast<unsigned long long>(st.votes), st.fans1,
                       expect.final_votes, expect.fans1);
      }
    }
  }
  std::printf("verify vs local engine: %zu mismatching stories%s\n",
              mismatches, mismatches == 0 ? " (exact)" : "");
  return mismatches == 0 ? 0 : 1;
}
