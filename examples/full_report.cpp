// Full reproduction report: generate (or load) a corpus and emit the
// complete paper-vs-measured Markdown document in one call. Pass a
// directory containing the four corpus CSVs to run on real data:
//   ./full_report                        # synthetic corpus, seed 42
//   ./full_report 7                      # synthetic corpus, another seed
//   ./full_report --scenario stochastic  # another generative scenario
//   ./full_report --load /path/to/csvs   # converted real data

#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "src/core/report.h"
#include "src/data/io.h"
#include "src/data/synthetic.h"

int main(int argc, char** argv) {
  using namespace digg;

  // --load <dir> bypasses generation; everything else is the shared
  // scenario/seed grammar from bench/common.h.
  const char* load_dir = nullptr;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--load") == 0 && i + 1 < argc)
      load_dir = argv[++i];
    else
      passthrough.push_back(argv[i]);
  }
  const bench::CliOptions opts = bench::parse_cli(
      static_cast<int>(passthrough.size()), passthrough.data());

  data::Corpus corpus;
  if (load_dir != nullptr) {
    corpus = data::load_corpus(load_dir);
  } else {
    data::ScenarioSpec spec;
    try {
      spec = data::make_scenario(opts.scenario, opts.seed);
    } catch (const std::invalid_argument& err) {
      std::fprintf(stderr, "error: %s\n", err.what());
      return 2;
    }
    stats::Rng rng(spec.seed);
    corpus = data::generate_corpus(spec.params, rng).corpus;
  }

  stats::Rng rng(opts.seed ^ 0xabcdef);
  core::write_reproduction_report(corpus, rng, std::cout);
  return 0;
}
