// Full reproduction report: generate (or load) a corpus and emit the
// complete paper-vs-measured Markdown document in one call. Pass a
// directory containing the four corpus CSVs to run on real data:
//   ./full_report                 # synthetic corpus, seed 42
//   ./full_report 7               # synthetic corpus, another seed
//   ./full_report /path/to/csvs   # converted real data

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/core/report.h"
#include "src/data/io.h"
#include "src/data/synthetic.h"

int main(int argc, char** argv) {
  using namespace digg;
  const std::string arg = argc > 1 ? argv[1] : "42";
  const bool is_seed =
      !arg.empty() && std::all_of(arg.begin(), arg.end(), [](unsigned char c) {
        return std::isdigit(c);
      });

  data::Corpus corpus;
  std::uint64_t seed = 42;
  if (is_seed) {
    seed = std::strtoull(arg.c_str(), nullptr, 10);
    stats::Rng rng(seed);
    corpus = data::generate_corpus(data::SyntheticParams{}, rng).corpus;
  } else {
    corpus = data::load_corpus(arg);
  }

  stats::Rng rng(seed ^ 0xabcdef);
  core::write_reproduction_report(corpus, rng, std::cout);
  return 0;
}
