// Streaming replay demo: the corpus as a live site. Votes arrive one at a
// time in global time order and the engine makes the paper's decisions the
// moment they become possible — the §5.2 interestingness call at vote 10,
// the June-2006 promotion at vote 43 — instead of after a batch pass over
// finished stories. Midway through, the replay is "killed": a checkpoint is
// saved, a fresh engine restores it, and the resumed run finishes with
// state bit-identical to the uninterrupted one.
//
// Usage: stream_replay [seed] [--scenario <name>]

#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench/common.h"
#include "src/core/experiment.h"
#include "src/stream/checkpoint.h"
#include "src/stream/engine.h"
#include "src/stream/source.h"

int main(int argc, char** argv) {
  using namespace digg;
  namespace fs = std::filesystem;
  const bench::Context ctx = bench::make_context(
      argc, argv, "Stream replay: online decisions + kill/resume");
  const data::Corpus& corpus = ctx.synthetic.corpus;

  // Train the paper's (v10, fans1) classifier on the front page, then let
  // the engine apply it online as upcoming-queue votes stream in.
  const std::vector<core::StoryFeatures> training =
      core::extract_features(corpus.front_page, corpus.network);
  const core::InterestingnessPredictor predictor =
      core::InterestingnessPredictor::train(training);

  const stream::EventStream es = stream::build_event_stream(corpus);
  stream::StreamParams sp;
  sp.predictor = &predictor;
  sp.bayes.enabled = true;  // the online Gamma-Poisson fit races the tree
  std::printf("stream: %zu vote events\n\n",
              static_cast<std::size_t>(es.total_events()));

  // --- run 1: interrupted. Play 40%, checkpoint, throw the engine away.
  const fs::path ckpt =
      fs::temp_directory_path() / "digg_stream_replay.ckpt";
  {
    stream::StreamEngine engine(es, corpus.network, sp);
    engine.run_until(es.total_events() * 2 / 5);
    engine.save_checkpoint(ckpt);
    std::printf("killed at event %llu/%llu, checkpoint: %s (%ju bytes)\n",
                static_cast<unsigned long long>(engine.events_applied()),
                static_cast<unsigned long long>(engine.total_events()),
                ckpt.c_str(),
                static_cast<std::uintmax_t>(fs::file_size(ckpt)));
  }

  // --- run 2: resume from the checkpoint and finish.
  stream::StreamEngine engine(es, corpus.network, sp);
  const stream::CheckpointInfo info = stream::read_checkpoint_info(ckpt);
  engine.restore_checkpoint(ckpt);
  std::printf("resumed at event %llu (checkpoint v%u)\n\n",
              static_cast<unsigned long long>(info.events_applied),
              info.version);
  engine.run_all();
  const stream::StreamResult result = engine.result();

  // --- reference: one uninterrupted replay, for the bit-identity claim.
  stream::StreamEngine reference(es, corpus.network, sp);
  reference.run_all();
  const stream::StreamResult expect = reference.result();
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < result.stories.size(); ++i) {
    const stream::StoryOutcome& a = result.stories[i];
    const stream::StoryOutcome& b = expect.stories[i];
    if (a.cascade != b.cascade || a.influence != b.influence ||
        a.final_votes != b.final_votes ||
        a.predicted_interesting != b.predicted_interesting ||
        a.bayes_interesting != b.bayes_interesting ||
        a.bayes_expected_final != b.bayes_expected_final ||
        a.promoted_time != b.promoted_time)
      ++mismatches;
  }
  std::printf("kill/resume vs uninterrupted: %zu mismatching stories%s\n\n",
              mismatches, mismatches == 0 ? " (bit-identical)" : "");

  // --- what the online hooks saw.
  std::size_t predicted = 0, predicted_yes = 0, yes_correct = 0;
  std::size_t promoted = 0, bayes_yes = 0, bayes_yes_correct = 0;
  for (const stream::StoryOutcome& o : result.stories) {
    if (o.promoted_time) ++promoted;
    if (o.bayes_interesting && *o.bayes_interesting) {
      ++bayes_yes;
      if (o.interesting) ++bayes_yes_correct;
    }
    if (!o.predicted_interesting) continue;
    ++predicted;
    if (*o.predicted_interesting) {
      ++predicted_yes;
      if (o.interesting) ++yes_correct;
    }
  }
  std::printf("online decisions over the replay:\n");
  std::printf("  stories reaching vote 43 (promotion rule):   %zu\n",
              promoted);
  std::printf("  stories judged at vote 10:                   %zu\n",
              predicted);
  std::printf("  ... called interesting:                      %zu\n",
              predicted_yes);
  if (predicted_yes > 0)
    std::printf("  ... of those, actually interesting:          %zu (P=%.2f)\n",
                yes_correct,
                static_cast<double>(yes_correct) /
                    static_cast<double>(predicted_yes));
  std::printf("  Bayes fit called interesting:                %zu\n",
              bayes_yes);
  if (bayes_yes > 0)
    std::printf("  ... of those, actually interesting:          %zu (P=%.2f)\n",
                bayes_yes_correct,
                static_cast<double>(bayes_yes_correct) /
                    static_cast<double>(bayes_yes));

  std::error_code ec;
  fs::remove(ckpt, ec);
  return mismatches == 0 ? 0 : 1;
}
