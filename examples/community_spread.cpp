// Community spread demo (§5.1 + §6): the two spreading mechanisms on an
// explicitly modular network. A story seeded inside a tight community with
// high community appeal saturates that community and stalls; a broadly
// appealing story seeded anywhere keeps finding independent adopters. The
// same contrast drives the paper's in-network early-vote signal.

#include <cstdio>

#include "bench/common.h"
#include "src/core/cascade.h"
#include "src/digg/platform.h"
#include "src/dynamics/cascade_sim.h"
#include "src/dynamics/vote_model.h"
#include "src/graph/community.h"
#include "src/graph/generators.h"
#include "src/obs/log.h"
#include "src/stats/table.h"

int main(int argc, char** argv) {
  using namespace digg;
  // Seed via the shared CLI grammar (the modular network is hand-built, so
  // no scenario/corpus generation here).
  bench::CliOptions opts = bench::parse_cli(argc, argv);
  if (argc <= 1) opts.seed = 11;  // this demo's historical default
  std::printf("== Community spread: narrow vs broad stories ==\n\n");

  // A modular fan network: 8 communities of 500 users.
  stats::Rng rng(opts.seed);
  graph::PlantedPartitionParams net_params;
  net_params.node_count = 4000;
  net_params.communities = 8;
  net_params.p_in = 0.05;
  net_params.p_out = 0.001;
  const graph::Digraph network = graph::planted_partition(net_params, rng);
  const auto truth = graph::planted_communities(net_params);
  obs::log_info("community_spread", "modular network built",
                {{"users", network.node_count()},
                 {"edges", network.edge_count()},
                 {"modularity", graph::modularity(network, truth)}});

  // Abstract cascade view first: activation spread from one seed.
  dynamics::CascadeParams cascade;
  cascade.activation_prob = 0.06;
  stats::Rng c_rng = rng.fork();
  double total = 0.0, inside = 0.0;
  constexpr int kTrials = 25;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto seed = static_cast<graph::NodeId>(
        c_rng.uniform_int(0, static_cast<std::int64_t>(network.node_count()) - 1));
    const auto result =
        dynamics::independent_cascade(network, {seed}, cascade, c_rng);
    total += static_cast<double>(result.total_activated);
    for (graph::NodeId u = 0; u < network.node_count(); ++u) {
      if (result.activated[u] && truth[u] == truth[seed]) inside += 1.0;
    }
  }
  std::printf(
      "independent cascades (25 random seeds): mean %.0f users activated,\n"
      "%.0f%% inside the seed's own community (community size 500)\n\n",
      total / kTrials, 100.0 * inside / total);

  // Full platform view: narrow vs broad story from the same submitter.
  const auto users = platform::generate_population(
      platform::PopulationParams{.user_count = net_params.node_count}, rng);
  platform::Platform plat(network, users, platform::make_june2006_policy());
  dynamics::VoteModelParams vm;
  vm.step = 2.0;
  dynamics::VoteSimulator sim(plat, vm, rng.fork());

  struct Case {
    const char* label;
    dynamics::StoryTraits traits;
  };
  const Case cases[] = {
      {"narrow (community 0.9 / general 0.05)", {0.05, 0.9}},
      {"broad  (community 0.3 / general 0.7)", {0.7, 0.3}},
  };
  stats::TextTable table({"story", "final votes", "promoted",
                          "in-network of first 10", "voters in submitter's community"});
  for (const Case& c : cases) {
    const auto id = plat.submit(/*submitter=*/0, c.traits.general, 0.0);
    sim.run_story(id, c.traits);
    const platform::Story& story = plat.story(id);
    std::size_t same_community = 0;
    for (platform::UserId voter : story.voters)
      if (truth[voter] == truth[0]) ++same_community;
    table.add_row(
        {c.label, stats::fmt(static_cast<std::int64_t>(story.vote_count())),
         story.promoted() ? "yes" : "no",
         stats::fmt(static_cast<std::int64_t>(
             core::in_network_votes(story, network, 10))),
         stats::fmt_pct(static_cast<double>(same_community) /
                        static_cast<double>(story.vote_count()))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "the narrow story's votes come from inside the community (high early\n"
      "in-network count); the broad story spreads from independent seeds —\n"
      "the paper's two mechanisms (§5.1), here with ground-truth communities.\n");
  return 0;
}
