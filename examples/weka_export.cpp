// Weka interop: export the paper's exact training/test datasets as ARFF so
// the original tool (Weka's J48) can be run on our corpus, closing the loop
// with the paper's §5.2 methodology. Writes:
//   digg_train.arff  — front-page stories, attributes (v10, fans1)
//   digg_test.arff   — the top-user queue holdout candidates
//   digg_extended.arff — the extended feature set (v6, v10, v20, fans1,
//                        influence10), for feature-selection experiments.

#include <cstdio>

#include "bench/common.h"
#include "src/core/features.h"
#include "src/core/predictor.h"
#include "src/data/synthetic.h"
#include "src/ml/arff.h"
#include "src/obs/log.h"

int main(int argc, char** argv) {
  using namespace digg;
  const bench::Context ctx = bench::make_context(
      argc, argv, "Weka export: the paper's ARFF datasets");
  const data::Corpus& corpus = ctx.synthetic.corpus;

  const auto train_features =
      core::extract_features(corpus.front_page, corpus.network);
  const auto test_stories = core::top_user_testset(corpus);
  const auto test_features =
      core::extract_features(test_stories, corpus.network);

  const ml::Dataset train = core::InterestingnessPredictor::make_dataset(
      train_features, core::FeatureSet::kPaper);
  const ml::Dataset test = core::InterestingnessPredictor::make_dataset(
      test_features, core::FeatureSet::kPaper);
  const ml::Dataset extended = core::InterestingnessPredictor::make_dataset(
      train_features, core::FeatureSet::kExtended);

  ml::save_arff(train, "digg_frontpage_train", "digg_train.arff");
  ml::save_arff(test, "digg_topuser_queue_test", "digg_test.arff");
  ml::save_arff(extended, "digg_frontpage_extended", "digg_extended.arff");

  obs::log_info("weka_export", "wrote ARFF datasets",
                {{"train", train.size()},
                 {"test", test.size()},
                 {"extended", extended.size()}});
  std::printf(
      "Reproduce the paper's run with:\n"
      "  java weka.classifiers.trees.J48 -t digg_train.arff -T digg_test.arff\n");
  return 0;
}
