// CSV -> binary snapshot converter: one-time conversion of a scraped (or
// synthetic) CSV corpus into the single-file snapshot format, after which
// analyses load the snapshot instead of re-parsing millions of CSV rows.
//
// Usage: snapshot_convert <csv_dir> <snapshot_file>
//        snapshot_convert --demo       (synthetic corpus, temp files)
//
// The conversion validates on load, verifies the written snapshot by
// reloading it, and reports the size and wall-clock of both paths.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "src/data/io.h"
#include "src/data/snapshot.h"
#include "src/data/synthetic.h"
#include "src/obs/log.h"

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace digg;
  namespace fs = std::filesystem;

  fs::path csv_dir;
  fs::path snap_path;
  bool demo = false;
  if (argc == 2 && std::strcmp(argv[1], "--demo") == 0) {
    demo = true;
    csv_dir = fs::temp_directory_path() / "digg_snapshot_convert_demo";
    snap_path = csv_dir / "corpus.snap";
    std::printf("demo mode: generating a synthetic corpus under %s\n",
                csv_dir.c_str());
    stats::Rng rng(42);
    data::SyntheticParams params;
    params.user_count = 20000;
    params.story_count = 400;
    const data::SyntheticCorpus syn = data::generate_corpus(params, rng);
    data::save_corpus(syn.corpus, csv_dir);
  } else if (argc == 3) {
    csv_dir = argv[1];
    snap_path = argv[2];
  } else {
    std::fprintf(stderr,
                 "usage: %s <csv_dir> <snapshot_file>\n"
                 "       %s --demo\n",
                 argv[0], argv[0]);
    return 2;
  }

  auto t0 = std::chrono::steady_clock::now();
  const data::Corpus corpus = data::load_corpus(csv_dir);
  const double csv_ms = ms_since(t0);
  std::printf("loaded CSV corpus: %zu users, %zu stories, %zu votes (%.1f ms)\n",
              corpus.user_count(), corpus.story_count(),
              corpus.vote_store.total_votes(), csv_ms);

  t0 = std::chrono::steady_clock::now();
  data::save_snapshot(corpus, snap_path);
  const double save_ms = ms_since(t0);

  t0 = std::chrono::steady_clock::now();
  const data::Corpus reloaded = data::load_snapshot(snap_path);
  const double load_ms = ms_since(t0);
  if (reloaded.story_count() != corpus.story_count() ||
      reloaded.vote_store.total_votes() != corpus.vote_store.total_votes()) {
    std::fprintf(stderr, "snapshot verification failed: story/vote mismatch\n");
    return 1;
  }

  t0 = std::chrono::steady_clock::now();
  const data::Corpus mapped = data::load_snapshot_mmap(snap_path);
  const double mmap_ms = ms_since(t0);
  if (mapped.story_count() != corpus.story_count() ||
      mapped.vote_store.total_votes() != corpus.vote_store.total_votes()) {
    std::fprintf(stderr, "mmap verification failed: story/vote mismatch\n");
    return 1;
  }

  std::uintmax_t csv_bytes = 0;
  for (const char* name :
       {"network.csv", "stories.csv", "votes.csv", "top_users.csv"})
    csv_bytes += fs::file_size(csv_dir / name);
  const std::uintmax_t snap_bytes = fs::file_size(snap_path);

  std::printf(
      "wrote %s: %.1f MiB (CSV pair: %.1f MiB)\n"
      "  snapshot save: %8.1f ms\n"
      "  snapshot load: %8.1f ms  (verified against the CSV corpus)\n"
      "  mmap load:     %8.1f ms  (zero-copy; verified too)\n"
      "  CSV load:      %8.1f ms  (%.1fx slower than snapshot load)\n",
      snap_path.c_str(), static_cast<double>(snap_bytes) / (1024.0 * 1024.0),
      static_cast<double>(csv_bytes) / (1024.0 * 1024.0), save_ms, load_ms,
      mmap_ms, csv_ms, csv_ms / load_ms);

  if (demo) fs::remove_all(csv_dir);
  return 0;
}
