// Live vote-ingest daemon: a digg-like site front door over the streaming
// engine. Builds the scenario's social network, trains the paper's (v10,
// fans1) C4.5 classifier on the front page, arms the online Bayes fit, and
// then serves the binary ingest protocol (src/serve/protocol.h) on
// 127.0.0.1 — submits and votes stream in over TCP, cascade state and
// promotion predictions stream back out, checkpoints land in the background.
// SIGTERM (or --serve-ms expiring) drains gracefully: every accepted event
// is applied and a final checkpoint is written before exit.
//
// Usage: serve_digg [seed] [--scenario <name>] [--json <path>]
//                   [--checkpoint <path>] [--restore <path>]
//                   [--inspect <path>] [--determinism]
//                   [--serve-ms <n>] [--smoke]
//
//   --checkpoint <path>  checkpoint target (periodic cadence comes from
//                        DIGG_CHECKPOINT_MS; the drain checkpoint is
//                        always written when a path is set)
//   --restore <path>     restore a previous drain checkpoint before serving
//   --inspect <path>     do not serve: validate that the checkpoint is
//                        restorable (full restore into a fresh engine) and
//                        print its meta, then exit
//   --determinism        strict global event ordering (bit-identical
//                        checkpoints; the kill/resume e2e mode)
//   --serve-ms <n>       stop serving after n ms (CI watchdog)
//   --smoke              smoke-test defaults: caps --serve-ms at 30000 so a
//                        lost SIGTERM cannot hang a CI job
//
// Environment:
//   DIGG_SERVE_PORT      listen port (default 0 = ephemeral)
//   DIGG_CHECKPOINT_MS   background checkpoint cadence in ms (default 0)
//
// Prints `DIGG_SERVE_PORT_BOUND=<port>` on stdout once listening — the
// parseable hand-off scripts/ci.sh's serve smoke consumes.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/core/features.h"
#include "src/core/predictor.h"
#include "src/serve/server.h"
#include "src/stream/checkpoint.h"

namespace {

std::atomic<digg::serve::Server*> g_server{nullptr};
std::atomic<bool> g_stop{false};

void handle_term(int) {
  g_stop.store(true);
  if (auto* s = g_server.load()) s->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace digg;

  std::string checkpoint_path, restore_path, inspect_path;
  bool determinism = false, smoke = false;
  long serve_ms = 0;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    auto take_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--checkpoint") == 0) {
      checkpoint_path = take_value("--checkpoint");
    } else if (std::strcmp(argv[i], "--restore") == 0) {
      restore_path = take_value("--restore");
    } else if (std::strcmp(argv[i], "--inspect") == 0) {
      inspect_path = take_value("--inspect");
    } else if (std::strcmp(argv[i], "--determinism") == 0) {
      determinism = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--serve-ms") == 0) {
      serve_ms = std::strtol(take_value("--serve-ms"), nullptr, 10);
    } else {
      args.push_back(argv[i]);
    }
  }
  if (smoke && (serve_ms <= 0 || serve_ms > 30000)) serve_ms = 30000;

  const bench::Context ctx =
      bench::make_context(static_cast<int>(args.size()), args.data(),
                          "Live vote-ingest server");
  const data::Corpus& corpus = ctx.synthetic.corpus;

  // The online hooks: the §5.2 tree trained on the promoted stories, and
  // the Gamma-Poisson rate fit racing it — both fire per incoming vote.
  const std::vector<core::StoryFeatures> training =
      core::extract_features(corpus.front_page, corpus.network);
  const core::InterestingnessPredictor predictor =
      core::InterestingnessPredictor::train(training);

  serve::ServeParams params;
  params.stream.predictor = &predictor;
  params.stream.bayes.enabled = true;
  params.determinism = determinism;
  params.checkpoint_path = checkpoint_path;
  if (const char* env = std::getenv("DIGG_SERVE_PORT"))
    params.port = static_cast<std::uint16_t>(std::strtoul(env, nullptr, 10));
  if (const char* env = std::getenv("DIGG_CHECKPOINT_MS"))
    params.checkpoint_ms =
        static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));

  if (!inspect_path.empty()) {
    // Restorability proof, not just a header peek: a fresh engine must
    // accept the checkpoint end to end (fingerprint, config, prefixes).
    const stream::CheckpointInfo info =
        stream::read_checkpoint_info(inspect_path);
    serve::Server probe(corpus.network, params);
    probe.restore_checkpoint(inspect_path);
    std::printf(
        "checkpoint ok: version=%u live=%d events=%llu stories=%llu "
        "fingerprint=%016llx\n",
        info.version, info.live ? 1 : 0,
        static_cast<unsigned long long>(info.events_applied),
        static_cast<unsigned long long>(info.story_count),
        static_cast<unsigned long long>(info.fingerprint));
    return 0;
  }

  serve::Server server(corpus.network, params);
  if (!restore_path.empty()) {
    server.restore_checkpoint(restore_path);
    std::printf("restored: events=%llu stories=%u\n",
                static_cast<unsigned long long>(
                    server.engine().events_applied()),
                server.engine().story_count());
  }

  g_server.store(&server);
  struct sigaction sa{};
  sa.sa_handler = handle_term;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  const std::uint16_t port = server.start();
  std::printf("DIGG_SERVE_PORT_BOUND=%u\n", static_cast<unsigned>(port));
  std::fflush(stdout);

  std::thread watchdog;
  if (serve_ms > 0) {
    watchdog = std::thread([&server, serve_ms] {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(serve_ms);
      while (!g_stop.load() && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      server.request_stop();
    });
  }

  server.wait();
  g_server.store(nullptr);
  if (watchdog.joinable()) {
    g_stop.store(true);
    watchdog.join();
  }

  std::printf("drained: events=%llu stories=%u%s%s\n",
              static_cast<unsigned long long>(
                  server.engine().events_applied()),
              server.engine().story_count(),
              checkpoint_path.empty() ? "" : " checkpoint=",
              checkpoint_path.c_str());
  return 0;
}
