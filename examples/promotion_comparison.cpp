// Promotion-policy comparison: the September-2006 "digging diversity"
// change (§5). The same submission stream is simulated on two identical
// platforms that differ only in promotion rule:
//   - June 2006:      promote at 43 votes (count only);
//   - September 2006: promote at diversity-weighted mass 43, where votes
//     from fans of prior voters count less.
// The diversity rule specifically suppresses fan-driven (dull top-user)
// promotions — exactly what the paper's §5.2 predictor achieves by
// classification instead.

#include <cstdio>
#include <cstring>
#include <memory>

#include "bench/common.h"
#include "src/digg/platform.h"
#include "src/dynamics/vote_model.h"
#include "src/graph/generators.h"
#include "src/obs/log.h"
#include "src/stats/table.h"

int main(int argc, char** argv) {
  using namespace digg;

  // Seed via the shared CLI grammar (no corpus generation here — the two
  // platforms below share one hand-built world).
  bench::CliOptions opts = bench::parse_cli(argc, argv);
  if (argc <= 1) opts.seed = 2026;  // this demo's historical default

  // Shared world: one fan network, one population, one submission stream.
  stats::Rng rng(opts.seed);
  graph::PreferentialAttachmentParams net_params;
  net_params.node_count = 12000;
  net_params.mean_out_degree = 4.0;
  net_params.smoothing = 0.6;
  const graph::Digraph network =
      graph::preferential_attachment(net_params, rng);
  platform::PopulationParams pop;
  pop.user_count = net_params.node_count;
  const auto users = platform::generate_population(pop, rng);

  struct Submission {
    platform::UserId submitter;
    dynamics::StoryTraits traits;
    bool dull_top;
  };
  std::vector<Submission> submissions;
  for (int i = 0; i < 400; ++i) {
    Submission s;
    const bool top = rng.bernoulli(0.5);
    s.submitter = top ? static_cast<platform::UserId>(rng.uniform_int(0, 99))
                      : static_cast<platform::UserId>(
                            rng.uniform_int(0, 11999));
    const bool dull = rng.bernoulli(top ? 0.6 : 0.25);
    s.traits.general = dull ? rng.uniform(0.02, 0.13) : rng.uniform(0.2, 0.8);
    s.traits.community = std::min(
        1.0, 0.2 + 0.5 * s.traits.general + (top ? 0.5 : 0.0));
    s.dull_top = top && dull;
    submissions.push_back(s);
  }

  auto run_with_policy =
      [&](std::unique_ptr<platform::PromotionPolicy> policy) {
        platform::Platform plat(network, users, std::move(policy));
        dynamics::VoteModelParams params;
        params.step = 2.0;
        dynamics::VoteSimulator sim(plat, params, stats::Rng(7));
        std::size_t promoted = 0;
        std::size_t dull_top_promoted = 0;
        std::size_t interesting_promoted = 0;
        platform::Minutes t = 0.0;
        for (const Submission& s : submissions) {
          const auto id = plat.submit(s.submitter, s.traits.general, t);
          sim.run_story(id, s.traits);
          t += 2.0;
          const platform::Story& story = plat.story(id);
          if (!story.promoted()) continue;
          ++promoted;
          if (s.dull_top) ++dull_top_promoted;
          if (story.vote_count() > 520) ++interesting_promoted;
        }
        struct Result {
          std::size_t promoted, dull_top_promoted, interesting_promoted;
        };
        return Result{promoted, dull_top_promoted, interesting_promoted};
      };

  std::printf("== Promotion policy comparison (June vs September 2006) ==\n");
  obs::log_info("promotion_comparison", "world built",
                {{"users", network.node_count()},
                 {"submissions", submissions.size()},
                 {"top_user_share", 0.5}});

  const auto june = run_with_policy(platform::make_june2006_policy());
  const auto sept = run_with_policy(platform::make_september2006_policy());
  const auto rate = run_with_policy(
      std::make_unique<platform::VoteRatePolicy>(43, 10, 6.0 * 60.0));

  stats::TextTable table({"policy", "promoted", "dull top-user promotions",
                          "front-page precision"});
  auto add = [&](const char* name, const auto& r) {
    table.add_row({name, stats::fmt(static_cast<std::int64_t>(r.promoted)),
                   stats::fmt(static_cast<std::int64_t>(r.dull_top_promoted)),
                   r.promoted == 0
                       ? "n/a"
                       : stats::fmt_pct(
                             static_cast<double>(r.interesting_promoted) /
                             static_cast<double>(r.promoted))});
  };
  add("June 2006 (43 votes)", june);
  add("count + rate", rate);
  add("Sept 2006 (diversity-weighted)", sept);
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected: the diversity rule promotes fewer dull top-user stories,\n"
      "raising front-page precision — the paper argues the same signal is\n"
      "better used for *prediction* than for discounting votes.\n");
  return 0;
}
