// Calibration report: prints how the synthetic corpus generator's latent
// traits map onto observables (promotion rate, final votes, early cascade
// mix), band by band. Use this when re-tuning SyntheticParams or the vote
// model against the paper's measured marginals (Fig. 2a, §3 statistics).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/core/cascade.h"
#include "src/data/synthetic.h"
#include "src/obs/log.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

namespace {

struct Band {
  const char* name;
  double lo, hi;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace digg;
  const bench::Context ctx = bench::make_context(
      argc, argv, "Calibration report: latent traits vs observables");
  const data::SyntheticParams& params = ctx.scenario.params;
  const data::SyntheticCorpus& synthetic = ctx.synthetic;
  const data::Corpus& corpus = synthetic.corpus;
  obs::log_info("calibration_report", "corpus ready",
                {{"seed", ctx.scenario.seed},
                 {"scenario", ctx.scenario.name.c_str()},
                 {"users", corpus.user_count()},
                 {"stories", corpus.story_count()},
                 {"front_page", corpus.front_page.size()},
                 {"upcoming", corpus.upcoming.size()}});

  // Index stories by id to join with traits.
  std::vector<const data::Story*> by_id(corpus.story_count(), nullptr);
  for (const data::Story& s : corpus.front_page) by_id[s.id] = &s;
  for (const data::Story& s : corpus.upcoming) by_id[s.id] = &s;

  const Band bands[] = {{"dull", params.dull_lo, params.dull_hi},
                        {"mid", params.mid_lo, params.mid_hi},
                        {"hot", params.hot_lo, params.hot_hi}};
  stats::TextTable table({"band", "stories", "promoted", "med votes",
                          "p10 votes", "p90 votes", "med v10", "<500", ">1500"});
  for (const Band& band : bands) {
    std::vector<double> votes;
    std::vector<double> v10s;
    std::size_t total = 0;
    std::size_t promoted = 0;
    std::size_t below500 = 0;
    std::size_t above1500 = 0;
    for (std::size_t id = 0; id < corpus.story_count(); ++id) {
      const double g = synthetic.traits[id].general;
      if (g < band.lo || g >= band.hi || by_id[id] == nullptr) continue;
      const data::Story& s = *by_id[id];
      ++total;
      if (!s.promoted()) continue;
      ++promoted;
      votes.push_back(static_cast<double>(s.vote_count()));
      v10s.push_back(static_cast<double>(
          core::in_network_votes(s, corpus.network, 10)));
      if (s.vote_count() < 500) ++below500;
      if (s.vote_count() > 1500) ++above1500;
    }
    const stats::Summary sum = stats::summarize(votes);
    const stats::Summary v10sum = stats::summarize(v10s);
    table.add_row({band.name, stats::fmt(std::int64_t(total)),
                   stats::fmt(std::int64_t(promoted)), stats::fmt(sum.median, 0),
                   stats::fmt(votes.empty() ? 0.0 : stats::quantile(votes, 0.1), 0),
                   stats::fmt(votes.empty() ? 0.0 : stats::quantile(votes, 0.9), 0),
                   stats::fmt(v10sum.median, 1),
                   stats::fmt(std::int64_t(below500)),
                   stats::fmt(std::int64_t(above1500))});
  }
  std::printf("%s\n", table.render().c_str());

  // Front-page aggregate: the Fig. 2a shape targets.
  std::vector<double> fp_votes = data::final_votes(corpus.front_page);
  const stats::Summary fp = stats::summarize(fp_votes);
  const auto frac = [&](auto pred) {
    return static_cast<double>(
               std::count_if(fp_votes.begin(), fp_votes.end(), pred)) /
           static_cast<double>(fp_votes.empty() ? 1 : fp_votes.size());
  };
  std::printf("front page: median=%.0f  <500: %s  >1500: %s  (targets ~20%% each)\n",
              fp.median,
              stats::fmt_pct(frac([](double v) { return v < 500.0; })).c_str(),
              stats::fmt_pct(frac([](double v) { return v > 1500.0; })).c_str());

  // Promotion speed and boundary (§3: promotion within a day, 43-vote bar).
  std::size_t late_promotions = 0;
  for (const data::Story& s : corpus.front_page) {
    if (s.promoted_at && *s.promoted_at - s.submitted_at >
                             platform::kMinutesPerDay)
      ++late_promotions;
  }
  std::printf("promotions after 24h: %zu (policy window should make this 0)\n",
              late_promotions);

  // In-network share of early votes, front page (Fig. 3b flavour).
  std::size_t half_in_network = 0;
  for (const data::Story& s : corpus.front_page) {
    if (core::in_network_votes(s, corpus.network, 10) >= 5) ++half_in_network;
  }
  std::printf("front-page stories with >=5 of first 10 in-network: %s "
              "(paper: ~30%%)\n",
              stats::fmt_pct(static_cast<double>(half_in_network) /
                             static_cast<double>(std::max<std::size_t>(
                                 1, corpus.front_page.size())))
                  .c_str());
  return 0;
}
