// Early-prediction walkthrough: the paper's §5.2 pipeline as a downstream
// user would run it on their own data.
//   1. generate (or load) a corpus;
//   2. train the C4.5 interestingness predictor on front-page history;
//   3. watch a fresh story's first ten votes arrive and emit a prediction
//      the moment the tenth vote lands — long before Digg's own ~40-vote
//      promotion decision;
//   4. compare the prediction against the story's eventual fate.
// Also demonstrates CSV round-tripping so real scraped data can be used.

#include <cstdio>
#include <filesystem>

#include "bench/common.h"
#include "src/core/experiment.h"
#include "src/data/io.h"
#include "src/data/synthetic.h"
#include "src/obs/log.h"

int main(int argc, char** argv) {
  using namespace digg;

  // 1. Corpus — any scenario/seed via the shared CLI. (Swap for
  //    data::load_corpus(dir) to run on converted real data — the analysis
  //    below is unchanged.)
  bench::CliOptions opts = bench::parse_cli(argc, argv);
  if (argc <= 1) opts.seed = 7;  // this walkthrough's historical default
  const bench::Context ctx = bench::make_context(
      opts, "Early prediction: the Sec. 5.2 pipeline, online");
  const data::SyntheticCorpus& synthetic = ctx.synthetic;
  const data::Corpus& corpus = synthetic.corpus;

  const auto dir = std::filesystem::temp_directory_path() / "digg_example";
  data::save_corpus(corpus, dir);
  const data::Corpus reloaded = data::load_corpus(dir);
  obs::log_info("early_prediction", "corpus round-tripped",
                {{"dir", dir.c_str()}, {"stories", reloaded.story_count()}});

  // 2. Train on the front page (the paper's 207-story analogue).
  const auto training =
      core::extract_features(reloaded.front_page, reloaded.network);
  const auto predictor = core::InterestingnessPredictor::train(training);
  obs::log_info("early_prediction", "predictor trained",
                {{"front_page_stories", training.size()}});
  std::printf("tree:\n%s\n", predictor.tree().render().c_str());

  // 3. Replay fresh top-user queue stories vote by vote; predict at vote 10.
  const auto queue_stories = core::top_user_testset(reloaded);
  obs::log_info("early_prediction", "replaying top-user queue",
                {{"stories", queue_stories.size()}});
  std::size_t correct = 0;
  std::size_t shown = 0;
  for (const data::Story& story : queue_stories) {
    // Truncate the record to the first 10 votes after the submitter —
    // everything the predictor is allowed to see.
    data::Story partial = story.truncated(11);
    partial.promoted_at.reset();
    const core::StoryFeatures early =
        core::extract_features(partial, reloaded.network);
    const bool predicted_interesting = predictor.predict(early);

    const bool actually_interesting =
        story.vote_count() > core::kInterestingnessThreshold;
    if (predicted_interesting == actually_interesting) ++correct;
    if (shown < 8) {
      ++shown;
      std::printf(
          "story %4u: v10=%2zu fans1=%4zu -> predicted %-15s final=%5zu (%s)\n",
          story.id, early.v10, early.fans1,
          predicted_interesting ? "interesting" : "not interesting",
          story.vote_count(), actually_interesting ? "interesting" : "not");
    }
  }
  std::printf("\naccuracy at the 10th vote: %zu/%zu\n", correct,
              queue_stories.size());
  std::printf("(Digg itself decides promotion only after ~40 votes, §5.2)\n");

  std::filesystem::remove_all(dir);
  return 0;
}
