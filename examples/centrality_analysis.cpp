// Centrality analysis: how a submitter's position in the fan network
// relates to their stories' fate — the structural side of §5's "difficult
// to decipher between a user's popularity and story interestingness".
// Computes PageRank and core numbers over the fan graph, then contrasts
// promotion rates and early in-network votes across centrality quartiles.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "src/core/cascade.h"
#include "src/data/synthetic.h"
#include "src/graph/centrality.h"
#include "src/obs/log.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

int main() {
  using namespace digg;
  std::printf("== Submitter centrality vs story outcomes ==\n\n");

  stats::Rng rng(31);
  data::SyntheticParams params;
  const data::SyntheticCorpus syn = data::generate_corpus(params, rng);
  const data::Corpus& corpus = syn.corpus;

  obs::log_info("centrality_analysis", "computing PageRank and k-cores",
                {{"users", corpus.user_count()}});
  const auto pr = graph::pagerank(corpus.network);
  const auto core_num = graph::core_numbers(corpus.network);

  // Rank all submitters by PageRank, split their stories into quartiles.
  struct StoryView {
    const data::Story* story;
    double submitter_pagerank;
  };
  std::vector<StoryView> stories;
  auto absorb = [&](const std::vector<data::Story>& bucket) {
    for (const data::Story& s : bucket)
      stories.push_back({&s, pr[s.submitter]});
  };
  absorb(corpus.front_page);
  absorb(corpus.upcoming);
  std::sort(stories.begin(), stories.end(),
            [](const StoryView& a, const StoryView& b) {
              return a.submitter_pagerank < b.submitter_pagerank;
            });

  stats::TextTable table({"submitter PageRank quartile", "stories",
                          "promoted", "median final votes", "median v10",
                          "median submitter core"});
  const std::size_t q = stories.size() / 4;
  const char* names[] = {"Q1 (least central)", "Q2", "Q3",
                         "Q4 (most central)"};
  for (int quartile = 0; quartile < 4; ++quartile) {
    const std::size_t begin = static_cast<std::size_t>(quartile) * q;
    const std::size_t end =
        quartile == 3 ? stories.size() : begin + q;
    std::size_t promoted = 0;
    std::vector<double> finals;
    std::vector<double> v10s;
    std::vector<double> cores;
    for (std::size_t i = begin; i < end; ++i) {
      const data::Story& s = *stories[i].story;
      if (s.promoted()) ++promoted;
      finals.push_back(static_cast<double>(s.vote_count()));
      v10s.push_back(static_cast<double>(
          core::in_network_votes(s, corpus.network, 10)));
      cores.push_back(static_cast<double>(core_num[s.submitter]));
    }
    table.add_row(
        {names[quartile], stats::fmt(static_cast<std::int64_t>(end - begin)),
         stats::fmt_pct(static_cast<double>(promoted) /
                        static_cast<double>(end - begin)),
         stats::fmt(stats::summarize(finals).median, 0),
         stats::fmt(stats::summarize(v10s).median, 1),
         stats::fmt(stats::summarize(cores).median, 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: central submitters promote far more often (the network does\n"
      "the promoting) and their stories carry more early in-network votes —\n"
      "exactly the confound the paper's v10 feature untangles.\n");
  return 0;
}
