// Quickstart: generate a synthetic Digg corpus, inspect the headline
// statistics, train the paper's early-vote interestingness predictor, and
// classify one story. Start here to see the whole public API in ~80 lines.

#include <cstdio>

#include "src/core/experiment.h"
#include "src/data/synthetic.h"
#include "src/obs/log.h"

int main() {
  using namespace digg;

  // 1. Generate a corpus calibrated to the paper's June-2006 snapshot
  //    (§3.1): a scale-free fan network, skewed user activity, and vote
  //    records produced by the two-mechanism spread model.
  stats::Rng rng(42);
  data::SyntheticParams params;
  const data::SyntheticCorpus synthetic = data::generate_corpus(params, rng);
  const data::Corpus& corpus = synthetic.corpus;
  data::validate(corpus);

  obs::log_info("quickstart", "corpus ready",
                {{"users", corpus.user_count()},
                 {"front_page", corpus.front_page.size()},
                 {"upcoming", corpus.upcoming.size()}});

  // 2. Headline distribution checks (Fig. 2a).
  const core::Fig2aResult fig2a = core::fig2a_vote_histogram(corpus);
  std::printf("front-page final votes: median %.0f, %0.f%% < 500, %.0f%% > 1500\n",
              fig2a.votes_summary.median, fig2a.fraction_below_500 * 100.0,
              fig2a.fraction_above_1500 * 100.0);

  // 3. The social-voting signal (Fig. 4): in-network early votes anticipate
  //    final popularity inversely.
  const core::Fig4Result fig4 = core::fig4_innetwork_vs_final(corpus);
  std::printf("Spearman(v10, final votes) = %.2f (paper: clearly negative)\n",
              fig4.spearman_v10_final);

  // 4. Train the paper's C4.5 predictor on (v10, fans1) and evaluate on the
  //    top-user upcoming held-out set (§5.2).
  const core::Fig5Result fig5 =
      core::fig5_prediction(corpus, core::Fig5Params{}, rng);
  std::printf("10-fold CV: %zu/%zu correct\n",
              fig5.cross_validation.pooled.correct(),
              fig5.cross_validation.pooled.total());
  std::printf("holdout (%zu top-user upcoming stories): %s\n",
              fig5.holdout_stories, fig5.holdout.to_string().c_str());
  std::printf("precision: digg-promotion %.2f vs social-signal %.2f\n",
              fig5.digg_precision(), fig5.our_precision());
  std::printf("\nlearned tree:\n%s", fig5.predictor.tree().render().c_str());

  // 5. Classify a single story from its first ten votes.
  if (!corpus.upcoming.empty()) {
    const core::StoryFeatures f =
        core::extract_features(corpus.upcoming.front(), corpus.network);
    std::printf("\nstory %u: v10=%zu fans1=%zu -> %s\n", f.story, f.v10,
                f.fans1,
                fig5.predictor.predict(f) ? "interesting" : "not interesting");
  }
  return 0;
}
