// Figure 5 and §5.2: the C4.5 decision tree over early-vote features.
// Paper results to reproduce in shape:
//   - the learned tree splits on v10 first, then fans1 (Fig. 5);
//   - 10-fold cross-validation classifies 174/207 (84%) correctly;
//   - on 48 held-out top-user queue stories: TP=4 TN=32 FP=11 FN=1;
//   - precision: Digg's own promotion 0.36 (5/14) vs this predictor 0.57
//     (4/7) — the social signal beats the platform's decision.
// Also runs the extended feature set and baseline learners as ablations.

#include "bench/common.h"
#include "src/core/experiment.h"
#include "src/ml/baseline.h"
#include "src/ml/forest.h"
#include "src/stats/table.h"

int main(int argc, char** argv) {
  using namespace digg;
  bench::Context ctx = bench::make_context(
      argc, argv, "Figure 5 / Section 5.2: predicting interestingness");

  const core::Fig5Result r =
      core::fig5_prediction(ctx.synthetic.corpus, core::Fig5Params{}, ctx.rng);

  std::printf("learned C4.5 tree (paper Fig. 5 analogue):\n%s\n",
              r.predictor.tree().render().c_str());

  stats::TextTable table({"result", "paper", "measured"});
  table.add_row(
      {"training stories", "207",
       stats::fmt(static_cast<std::int64_t>(r.training_stories))});
  table.add_row(
      {"10-fold CV correct", "174/207 (84.1%)",
       stats::fmt(static_cast<std::int64_t>(
           r.cross_validation.pooled.correct())) +
           "/" +
           stats::fmt(static_cast<std::int64_t>(
               r.cross_validation.pooled.total())) +
           " (" + stats::fmt_pct(r.cross_validation.pooled.accuracy()) + ")"});
  table.add_row({"held-out top-user stories", "48",
                 stats::fmt(static_cast<std::int64_t>(r.holdout_stories))});
  table.add_row({"held-out confusion", "TP=4 TN=32 FP=11 FN=1",
                 r.holdout.to_string()});
  table.add_row({"Digg promotion precision", "0.36 (5/14)",
                 stats::fmt(r.digg_precision(), 2) + " (" +
                     stats::fmt(static_cast<std::int64_t>(
                         r.digg_promoted_interesting)) +
                     "/" +
                     stats::fmt(static_cast<std::int64_t>(r.digg_promoted)) +
                     ")"});
  table.add_row({"our predictor precision", "0.57 (4/7)",
                 stats::fmt(r.our_precision(), 2) + " (" +
                     stats::fmt(static_cast<std::int64_t>(
                         r.ours_predicted_interesting)) +
                     "/" +
                     stats::fmt(static_cast<std::int64_t>(r.ours_predicted)) +
                     ")"});
  std::printf("%s\n", table.render().c_str());

  // Ablation: extended early-vote features (v6, v20, influence10).
  core::Fig5Params extended;
  extended.features = core::FeatureSet::kExtended;
  stats::Rng rng_ext = ctx.rng.fork();
  const core::Fig5Result ext =
      core::fig5_prediction(ctx.synthetic.corpus, extended, rng_ext);

  // Baselines on the paper's feature encoding.
  const std::vector<core::StoryFeatures> features =
      core::extract_features(ctx.synthetic.corpus.front_page,
                             ctx.synthetic.corpus.network);
  const ml::Dataset dataset = core::InterestingnessPredictor::make_dataset(
      features, core::FeatureSet::kPaper);
  stats::Rng rng_b = ctx.rng.fork();
  const auto majority_cv =
      ml::cross_validate(ml::majority_trainer(), dataset, 10, rng_b);
  const auto stump_cv =
      ml::cross_validate(ml::stump_trainer(), dataset, 10, rng_b);
  const auto logistic_cv =
      ml::cross_validate(ml::logistic_trainer(), dataset, 10, rng_b);
  ml::ForestParams forest_params;
  forest_params.tree_count = 25;
  const auto forest_cv = ml::cross_validate(
      ml::forest_trainer(forest_params, /*seed=*/91), dataset, 10, rng_b);

  stats::TextTable ablation({"model", "10-fold CV accuracy"});
  ablation.add_row({"C4.5 (v10, fans1) [paper]",
                    stats::fmt_pct(r.cross_validation.pooled.accuracy())});
  ablation.add_row({"C4.5 (v6,v10,v20,fans1,influence10)",
                    stats::fmt_pct(ext.cross_validation.pooled.accuracy())});
  ablation.add_row(
      {"majority class", stats::fmt_pct(majority_cv.pooled.accuracy())});
  ablation.add_row(
      {"decision stump", stats::fmt_pct(stump_cv.pooled.accuracy())});
  ablation.add_row({"logistic regression",
                    stats::fmt_pct(logistic_cv.pooled.accuracy())});
  ablation.add_row({"bagged C4.5 forest (25 trees)",
                    stats::fmt_pct(forest_cv.pooled.accuracy())});
  std::printf("ablation:\n%s", ablation.render().c_str());
  return 0;
}
