// Figure 1: time series of votes received by randomly chosen front-page
// stories — slow accumulation in the upcoming queue, a jump at promotion,
// then saturation with a roughly one-day half-life (Wu & Huberman).

#include "bench/common.h"
#include "src/core/experiment.h"
#include "src/stats/table.h"

int main(int argc, char** argv) {
  using namespace digg;
  bench::Context ctx = bench::make_context(
      argc, argv, "Figure 1: vote time series of front-page stories");

  const core::Fig1Result fig1 =
      core::fig1_vote_dynamics(ctx.synthetic.corpus, 6, ctx.rng);

  for (const auto& curve : fig1.curves) {
    std::printf("story %u: promoted after %.0f min with %zu votes", curve.story,
                curve.promoted_after.value_or(-1.0),
                curve.votes_at_promotion);
    if (curve.post_promotion_half_life) {
      std::printf(", post-promotion half-life %.0f min (paper: ~1 day)",
                  *curve.post_promotion_half_life);
    }
    std::printf(", final %0.f votes\n", curve.series.values().back());
    const stats::TimeSeries sampled =
        curve.series.resample(4.0 * platform::kMinutesPerDay, 16);
    std::printf("%s\n",
                stats::render_series(sampled.times(), sampled.values()).c_str());
  }

  // Aggregate shape statistics across a larger sample.
  stats::Rng rng2 = ctx.rng.fork();
  const core::Fig1Result big =
      core::fig1_vote_dynamics(ctx.synthetic.corpus, 100, rng2);
  std::size_t exploding = 0;
  std::vector<double> half_lives;
  for (const auto& c : big.curves) {
    const double tp = *c.promoted_after;
    const double pre_rate = c.series.at(tp) / tp;
    const double post_rate = (c.series.at(tp + 120.0) - c.series.at(tp)) / 120.0;
    if (post_rate > pre_rate) ++exploding;
    if (c.post_promotion_half_life)
      half_lives.push_back(*c.post_promotion_half_life);
  }
  const stats::Summary hl = stats::summarize(half_lives);
  std::printf("aggregate over %zu stories:\n", big.curves.size());
  std::printf("  stories exploding at promotion: %zu/%zu\n", exploding,
              big.curves.size());
  std::printf("  median post-promotion half-life: %.0f min (paper: ~1440)\n",
              hl.median);
  return 0;
}
