// Figure 4: final vote count (interestingness) vs the number of in-network
// votes among the first 6 / 10 / 20 votes, as median and trimmed spread per
// group. The paper's headline: "a clear inverse relationship between
// interestingness and the fraction of in-network votes ... visible early".

#include "bench/common.h"
#include "src/core/experiment.h"
#include "src/stats/table.h"

namespace {

void print_groups(const char* label,
                  const std::vector<digg::core::Fig4Group>& groups) {
  using digg::stats::fmt;
  digg::stats::TextTable table(
      {"in-network votes", "stories", "median final", "trimmed lo",
       "trimmed hi"});
  for (const auto& g : groups) {
    if (g.final_votes.n == 0) continue;
    table.add_row({fmt(static_cast<std::int64_t>(g.in_network_votes)),
                   fmt(static_cast<std::int64_t>(g.final_votes.n)),
                   fmt(g.final_votes.median, 0), fmt(g.final_votes.trimmed_lo, 0),
                   fmt(g.final_votes.trimmed_hi, 0)});
  }
  std::printf("%s:\n%s\n", label, table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace digg;
  bench::Context ctx = bench::make_context(
      argc, argv, "Figure 4: in-network early votes vs final popularity");

  const core::Fig4Result r =
      core::fig4_innetwork_vs_final(ctx.synthetic.corpus);
  print_groups("after first 6 votes", r.after_6);
  print_groups("after first 10 votes", r.after_10);
  print_groups("after first 20 votes", r.after_20);

  std::printf(
      "Spearman correlation between v10 and final votes: %.2f\n"
      "(paper: a clear inverse relationship, visible within 6-10 votes)\n",
      r.spearman_v10_final);
  return 0;
}
